"""Figure 3: HyFM stage breakdown across program sizes.

Paper claim: the ranking stage grows quadratically with the number of
functions and comes to dominate HyFM's runtime — small programs are
codegen-bound, large programs are ranking-bound — and much of the time goes
to *unsuccessful* pairs.
"""

import pytest

from repro.harness import format_table, run_merging

from conftest import header, workload

SIZES = [300, 1200, 3000]

_cache = {}


def _breakdown(n):
    if n not in _cache:
        module = workload(n, "fig3")
        _cache[n] = run_merging(module, "hyfm")
    return _cache[n]


@pytest.mark.parametrize("n", SIZES)
def test_fig03_single_size(benchmark, n):
    """Benchmark the full HyFM pass at one size (timing series)."""
    result = benchmark.pedantic(_breakdown, args=(n,), rounds=1, iterations=1)
    assert result.merges > 0


def test_fig03_breakdown_table(benchmark):
    def collect():
        return {n: _breakdown(n) for n in SIZES}

    reports = benchmark.pedantic(collect, rounds=1, iterations=1)
    header("Figure 3 — HyFM stage breakdown by program size")
    rows = []
    ranking_share = {}
    comparisons = {}
    for n in SIZES:
        report = reports[n]
        b = report.stage_breakdown()
        ranking = b["ranking_success"] + b["ranking_fail"]
        total = sum(b.values())
        ranking_share[n] = ranking / total if total else 0.0
        comparisons[n] = report.comparisons
        rows.append(
            (
                n,
                f"{b['preprocess']:.3f}",
                f"{b['ranking_success']:.3f}",
                f"{b['ranking_fail']:.3f}",
                f"{b['align_success'] + b['align_fail']:.3f}",
                f"{b['codegen_success'] + b['codegen_fail']:.3f}",
                f"{ranking_share[n]:.1%}",
                report.comparisons,
            )
        )
    print(
        format_table(
            [
                "functions",
                "preprocess",
                "rank_ok",
                "rank_fail",
                "align",
                "codegen",
                "rank_share",
                "comparisons",
            ],
            rows,
        )
    )
    # Quadratic ranking: comparisons grow ~n^2 (x10 functions => ~x100
    # comparisons); allow generous slack for population effects.
    small, large = SIZES[0], SIZES[-1]
    growth = comparisons[large] / comparisons[small]
    expected = (large / small) ** 2
    assert growth > expected * 0.5, (growth, expected)
    # Ranking's share of the pass grows with program size.
    assert ranking_share[large] > ranking_share[small]
