"""Extension experiment: ThinLTO-style partitioned merging (paper §VI).

The paper's future work proposes integrating function merging with
summary-based LTO.  This experiment quantifies the two halves of that
argument on one workload:

1. splitting the program into partitions loses cross-partition merge
   pairs, so size reduction degrades monotonically with partition count;
2. a global MinHash summary index identifies exactly which functions' best
   partners live elsewhere — the import list a ThinLTO integration would
   need — showing the F3M fingerprint is the right summary format.
"""

from repro.harness import format_table
from repro.merge import partitioned_merging

from conftest import header, workload

N = 600
PARTITIONS = [1, 2, 4, 8]

_cache = {}


def _sweep():
    if "data" not in _cache:
        data = {}
        for k in PARTITIONS:
            module = workload(N, "thinlto")
            data[k] = partitioned_merging(module, k)
        _cache["data"] = data
    return _cache["data"]


def test_ext_thinlto_partition_sweep(benchmark):
    data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    header("Extension — ThinLTO-style partitioned merging (paper §VI)")
    rows = []
    for k in PARTITIONS:
        report = data[k]
        rows.append(
            (
                k,
                report.merges,
                f"{report.size_reduction:.2%}",
                report.cross_partition_candidates,
            )
        )
    print(
        format_table(
            ["partitions", "merges", "size reduction", "cross-partition partners"],
            rows,
        )
    )
    print(
        "cross-partition partners = functions whose best global match (per "
        "the MinHash summary index) lives in another partition; a ThinLTO "
        "integration would import those."
    )
    # Monotone degradation with partition count.
    reductions = [data[k].size_reduction for k in PARTITIONS]
    assert all(b <= a + 0.005 for a, b in zip(reductions, reductions[1:]))
    assert reductions[0] > reductions[-1]
    # The summary index sees the loss coming.
    assert data[8].cross_partition_candidates > data[2].cross_partition_candidates
    assert data[1].cross_partition_candidates == 0
