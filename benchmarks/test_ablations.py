"""Ablations for the design choices DESIGN.md calls out.

* shingle size K (paper Section III-B: K = 2 is best — K = 1 loses
  structure, K > 2 loses hash matches);
* the xor-salt trick vs k independent hash functions (paper: "a very small
  effect on the quality ... many times faster");
* the post-merge clean-up pipeline (our stand-in for LLVM's -Os backend
  passes) and its effect on measured size reduction.
"""

import time

from repro.fingerprint import MinHashConfig
from repro.harness import correlation_experiment, format_table, run_merging

from conftest import header, workload

_cache = {}


def _corpus():
    if "corpus" not in _cache:
        _cache["corpus"] = workload(300, "ablate")
    return _cache["corpus"]


def test_ablation_shingle_size(benchmark):
    """K = 2 should correlate with alignment at least as well as K = 1
    (which ignores order) and K = 3 (which over-fragments)."""

    def run():
        out = {}
        for k in (1, 2, 3):
            result = correlation_experiment(
                _corpus(),
                "minhash",
                max_pairs=8_000,
                minhash_config=MinHashConfig(shingle_size=k),
            )
            out[k] = result.correlation
        return out

    corr = benchmark.pedantic(run, rounds=1, iterations=1)
    header("Ablation — shingle size K")
    print(
        format_table(
            ["K", "similarity/alignment correlation"],
            [(k, f"{corr[k]:.3f}") for k in sorted(corr)],
        )
    )
    # K=2 captures structure K=1 cannot and keeps matches K=3 loses —
    # the paper's stated reason for choosing K=2.
    assert corr[2] >= corr[1] - 0.02
    assert corr[2] >= corr[3] - 0.02


def test_ablation_xor_salt_trick(benchmark):
    """The single-hash + xor-salts derivation must match independent hash
    functions on estimate quality while being much faster to compute."""
    from repro.fingerprint import MinHashFingerprint, encode_function, exact_jaccard

    functions = _corpus().defined_functions()[:60]
    encoded = [encode_function(f) for f in functions]

    def build(independent):
        cfg = MinHashConfig(k=128, independent_hashes=independent)
        start = time.perf_counter()
        fps = [MinHashFingerprint.from_encoded(e, cfg) for e in encoded]
        elapsed = time.perf_counter() - start
        errors = []
        for i in range(0, len(fps) - 1, 2):
            estimated = fps[i].similarity(fps[i + 1])
            exact = exact_jaccard(encoded[i], encoded[i + 1])
            errors.append(abs(estimated - exact))
        return elapsed, sum(errors) / len(errors)

    xor_time, xor_err = benchmark.pedantic(build, args=(False,), rounds=1, iterations=1)
    ind_time, ind_err = build(True)
    header("Ablation — xor-salt trick vs independent hashes")
    print(
        format_table(
            ["variant", "fingerprint time", "mean |estimate - exact|"],
            [
                ("single hash + xor salts (paper)", f"{xor_time * 1000:.1f}ms", f"{xor_err:.3f}"),
                ("k independent hashes", f"{ind_time * 1000:.1f}ms", f"{ind_err:.3f}"),
            ],
        )
    )
    assert xor_time < ind_time  # "many times faster"
    assert abs(xor_err - ind_err) < 0.08  # "very small effect on quality"


def test_ablation_postmerge_cleanup(benchmark):
    """Running the clean-up pipeline after merging only improves the
    measured size, and never breaks the module."""
    from repro.analysis import module_size
    from repro.ir import verify_module
    from repro.transforms import optimize_module

    def run():
        module = workload(300, "ablate-opt")
        report = run_merging(module, "f3m")
        merged_size = module_size(module)
        # Library semantics: every function is a potential entry point, so
        # global DCE of unreferenced functions would overstate the win.
        stats = optimize_module(module, drop_dead_functions=False)
        verify_module(module)
        return report.size_before, merged_size, module_size(module), stats

    original, merged, cleaned, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    header("Ablation — post-merge clean-up pipeline")
    print(
        format_table(
            ["stage", "modelled size", "reduction vs original"],
            [
                ("original", original, "-"),
                ("after merging", merged, f"{1 - merged / original:.2%}"),
                ("after merging + cleanup", cleaned, f"{1 - cleaned / original:.2%}"),
            ],
        )
    )
    print(
        f"cleanup work: {stats.folds} folds, {stats.cfg_changes} CFG changes, "
        f"{stats.dead_instructions} dead instructions, "
        f"{stats.dead_functions} dead functions"
    )
    assert cleaned <= merged <= original
