"""Figure 15: fingerprint-size (k) and row-count (r) sweep.

Paper claim: increasing r cuts compilation time sharply but costs size
(r = 8 loses much of the reduction); shrinking k trades size for time more
gradually, which is why the adaptive policy fixes r = 2 and controls k/b.
"""

from repro.fingerprint import MinHashConfig
from repro.harness import CompileTimeModel, format_table, run_merging

from conftest import header, workload

N = 350
K_VALUES = [25, 50, 100, 200]
R_VALUES = [1, 2, 4, 8]

_cache = {}


def _sweep():
    if "data" in _cache:
        return _cache["data"]
    model = CompileTimeModel()
    data = {}
    # k sweep at r=2 (paper's left panel).
    for k in K_VALUES:
        module = workload(N, "fig15")
        report = run_merging(
            module,
            "f3m",
            rows=2,
            bands=k // 2,
            config=MinHashConfig(k=k),
        )
        data[("k", k)] = (report.size_after, model.total_time(report, module), report.comparisons)
    # r sweep at k=200 (paper's right panel).
    for r in R_VALUES:
        module = workload(N, "fig15")
        report = run_merging(
            module,
            "f3m",
            rows=r,
            bands=200 // r,
            config=MinHashConfig(k=200),
        )
        data[("r", r)] = (report.size_after, model.total_time(report, module), report.comparisons)
    _cache["data"] = data
    return data


def test_fig15_k_and_r_sweep(benchmark):
    data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    header("Figure 15 — fingerprint size (k) and LSH rows (r) sweep")
    base_size, base_time, base_cmp = data[("k", 200)]

    rows = []
    for k in K_VALUES:
        size, time, cmp_ = data[("k", k)]
        rows.append(
            (f"k={k}, r=2", size, f"{(size - base_size) / base_size:+.2%}", cmp_)
        )
    for r in R_VALUES:
        size, time, cmp_ = data[("r", r)]
        rows.append(
            (f"k=200, r={r}", size, f"{(size - base_size) / base_size:+.2%}", cmp_)
        )
    print(format_table(["config", "size", "size vs default", "comparisons"], rows))

    # Larger r => fewer bands => fewer comparisons (faster ranking).
    assert data[("r", 8)][2] <= data[("r", 1)][2]
    # Aggressive r costs size relative to the default r=2.
    assert data[("r", 8)][0] >= data[("r", 2)][0]
    # Shrinking k reduces comparisons too (fewer bands at r=2).
    assert data[("k", 25)][2] <= data[("k", 200)][2]
    # The default (k=200, r=2) gives the best or near-best size.
    best_size = min(v[0] for v in data.values())
    assert data[("k", 200)][0] <= best_size * 1.02
