"""Performance-regression gates for the attempt-stage engine.

Tier-2 + ``perf`` marked: these assert *timing* relationships, so they are
excluded from the default (tier-1) run and should be exercised on a quiet
machine::

    PYTHONPATH=src python -m pytest benchmarks/test_attempt_perf_regression.py -m perf --no-header

The margins are deliberately conservative (the measured warm batched
alignment advantage at 600+ functions is ~8-9x; the gate asserts 2.5x) so
scheduler noise on a loaded box does not produce false alarms, while a
real regression — losing the plan cache, or breaking the scalar block
keys — still trips them.  Identity assertions, by contrast, are exact:
the engine must never change a decision to go faster.
"""

import pytest

from repro.harness.profile import alignment_microbench, _merged_pairs
from repro.ir.printer import print_module
from repro.merge.pass_ import FunctionMergingPass, PassConfig
from repro.search.pairing import ExhaustiveRanker
from repro.workloads import build_workload

pytestmark = [pytest.mark.tier2, pytest.mark.perf]

_SIZE = 600


@pytest.fixture(scope="module")
def functions():
    return build_workload(_SIZE, "attemptgate").defined_functions()


class TestBatchedAlignmentBeatsPure:
    @pytest.mark.parametrize("strategy", ["linear", "nw"])
    def test_warm_alignment_speedup(self, functions, strategy):
        micro = alignment_microbench(functions, strategy=strategy, repeats=3)
        # Decision identity first: speed means nothing if decisions drift.
        assert micro["bit_identical"] is True
        # Warm (steady-state: engine shared across attempts, remerge
        # rounds and partitions, as the pass actually uses it).
        assert micro["speedup_warm"] >= 2.5, micro


class TestBoundSavesWorkWithoutChangingDecisions:
    @pytest.fixture(scope="class")
    def reports(self):
        out = {}
        for bound in (True, False):
            module = build_workload(150, "attemptgate-bound")
            config = PassConfig(verify=False, prealign_bound=bound)
            report = FunctionMergingPass(ExhaustiveRanker(), config).run(module)
            out[bound] = (print_module(module), report)
        return out

    def test_bound_reduces_attempted_alignments(self, reports):
        _, bounded = reports[True]
        _, unbounded = reports[False]
        aligned_bounded = sum(1 for a in bounded.attempts if a.align_time > 0)
        aligned_unbounded = sum(1 for a in unbounded.attempts if a.align_time > 0)
        assert bounded.outcome_counts()["rejected_bound"] > 0
        assert aligned_bounded < aligned_unbounded

    def test_decisions_identical(self, reports):
        text_bounded, bounded = reports[True]
        text_unbounded, unbounded = reports[False]
        assert text_bounded == text_unbounded
        assert bounded.merges == unbounded.merges
        assert _merged_pairs(bounded) == _merged_pairs(unbounded)
