"""Figure 17: runtime impact of merged code.

Paper claim: merged functions execute extra guard branches and selects, so
merging can slow programs down — on affected SPEC benchmarks the average
slowdown is ~4–5%, usually below 5%, with neither HyFM nor F3M
systematically worse (the effect depends on *which* hot function got
merged, not on the selection strategy).  Our proxy is the dynamic
instruction count of the workload driver under the reference interpreter.
"""

from repro.harness import format_table, runtime_impact_experiment

from conftest import header

SUITE_SIZES = [80, 150, 250]

_cache = {}


def _impacts():
    if "data" not in _cache:
        data = {}
        for n in SUITE_SIZES:
            data[n] = runtime_impact_experiment(
                n, strategies=("hyfm", "f3m", "f3m-adaptive"), name=f"fig17_{n}"
            )
        _cache["data"] = data
    return _cache["data"]


def test_fig17_dynamic_instruction_overhead(benchmark):
    data = benchmark.pedantic(_impacts, rounds=1, iterations=1)
    header("Figure 17 — dynamic instruction overhead of merged code")
    rows = []
    for n in SUITE_SIZES:
        rows.append(
            (
                n,
                f"{data[n]['hyfm'] - 1:+.1%}",
                f"{data[n]['f3m'] - 1:+.1%}",
                f"{data[n]['f3m-adaptive'] - 1:+.1%}",
            )
        )
    print(format_table(["functions", "HyFM", "F3M", "F3M-adaptive"], rows))

    slowdowns = [v for per in data.values() for v in per.values()]
    avg = sum(slowdowns) / len(slowdowns)
    print(f"average overhead: {avg - 1:+.1%} (paper: +3.9% to +5%)")

    for per in data.values():
        for strategy, ratio in per.items():
            # Merged code executes more instructions, but within reason.
            assert ratio >= 0.99, (strategy, ratio)
            assert ratio < 1.9, (strategy, ratio)
    # F3M is not systematically worse than HyFM at runtime.
    f3m_avg = sum(data[n]["f3m"] for n in SUITE_SIZES) / len(SUITE_SIZES)
    hyfm_avg = sum(data[n]["hyfm"] for n in SUITE_SIZES) / len(SUITE_SIZES)
    assert abs(f3m_avg - hyfm_avg) < 0.15


def test_fig17_profile_guided_extension(benchmark):
    """Paper Section IV-F (future work, implemented here): steering merging
    away from hot functions should "eliminate all or almost all performance
    overhead" at a modest size cost."""
    from repro.ir import Interpreter
    from repro.merge import (
        FunctionMergingPass,
        HotnessFilter,
        PassConfig,
        ProfileGuidedPass,
        profile_module,
    )
    from repro.search import MinHashLSHRanker
    from repro.workloads import build_workload

    n = 200
    inputs = (1, 5, 11)

    def measure():
        baseline = build_workload(n, "fig17pgo")
        driver = baseline.get_function("driver")
        base = sum(
            Interpreter().run(driver, [x]).instructions_executed for x in inputs
        )

        plain_mod = build_workload(n, "fig17pgo")
        plain_rep = FunctionMergingPass(
            MinHashLSHRanker(), PassConfig(verify=False)
        ).run(plain_mod)
        plain = sum(
            Interpreter()
            .run(plain_mod.get_function("driver"), [x])
            .instructions_executed
            for x in inputs
        )

        pgo_mod = build_workload(n, "fig17pgo")
        hotness = HotnessFilter(profile_module(pgo_mod, inputs=inputs), 0.3)
        pgo_rep = ProfileGuidedPass(
            MinHashLSHRanker(), hotness, PassConfig(verify=False)
        ).run(pgo_mod)
        pgo = sum(
            Interpreter()
            .run(pgo_mod.get_function("driver"), [x])
            .instructions_executed
            for x in inputs
        )
        return base, (plain, plain_rep), (pgo, pgo_rep)

    base, (plain, plain_rep), (pgo, pgo_rep) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    header("Figure 17 extension — profile-guided merging (Section IV-F)")
    rows = [
        ("F3M", f"{plain / base - 1:+.1%}", f"{plain_rep.size_reduction:.1%}"),
        ("F3M + PGO", f"{pgo / base - 1:+.1%}", f"{pgo_rep.size_reduction:.1%}"),
    ]
    print(format_table(["variant", "runtime overhead", "size reduction"], rows))
    # PGO removes the majority of the dynamic overhead...
    assert (pgo / base - 1.0) <= 0.6 * max(plain / base - 1.0, 1e-9)
    # ...while keeping a meaningful share of the size reduction.
    assert pgo_rep.size_reduction > 0.4 * plain_rep.size_reduction
