"""Figure 14: similarity-threshold sweep.

Paper claim: raising the threshold t reduces compilation time (fewer
wasteful merge attempts) at the cost of code size; there is no single best
static threshold — an oracle picking t per benchmark beats any fixed t,
which motivates the adaptive policy.
"""

from repro.harness import CompileTimeModel, format_table, run_merging
from repro.merge import PassConfig

from conftest import header, workload

THRESHOLDS = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
SUITES = ["a", "b", "c"]  # three differently-seeded 350-function programs
N = 350

_cache = {}


def _sweep():
    if "rows" in _cache:
        return _cache["rows"]
    model = CompileTimeModel()
    rows = {}
    for suite in SUITES:
        rows[suite] = {}
        for t in THRESHOLDS:
            module = workload(N, f"fig14{suite}")
            report = run_merging(
                module, "f3m", pass_config=PassConfig(threshold=t, verify=False)
            )
            rows[suite][t] = (
                report.size_after,
                model.total_time(report, module),
                report.merges,
            )
    _cache["rows"] = rows
    return rows


def test_fig14_threshold_tradeoff(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    header("Figure 14 — threshold sweep (relative to t=0.0)")
    table = []
    for t in THRESHOLDS:
        size_deltas = []
        time_deltas = []
        for suite in SUITES:
            size0, time0, _m = rows[suite][0.0]
            size, time, _merges = rows[suite][t]
            size_deltas.append((size - size0) / size0)
            time_deltas.append((time - time0) / time0)
        table.append(
            (
                f"{t:.1f}",
                f"{sum(size_deltas) / len(size_deltas):+.2%}",
                f"{sum(time_deltas) / len(time_deltas):+.2%}",
            )
        )
    print(format_table(["threshold", "avg size delta", "avg time delta"], table))

    # Oracle: best per-suite threshold subject to <= 0.1% size loss.
    oracle_times = []
    for suite in SUITES:
        size0, time0, _ = rows[suite][0.0]
        candidates = [
            time
            for t, (size, time, _m) in rows[suite].items()
            if (size - size0) / size0 <= 0.001
        ]
        oracle_times.append(min(candidates) / time0 - 1.0)
    print(
        f"oracle (per-suite best threshold) avg time delta: "
        f"{sum(oracle_times) / len(oracle_times):+.2%}"
    )

    # Monotonicity claims: size never shrinks and merges never increase as
    # the threshold rises.
    for suite in SUITES:
        sizes = [rows[suite][t][0] for t in THRESHOLDS]
        merges = [rows[suite][t][2] for t in THRESHOLDS]
        assert all(b >= a - 1 for a, b in zip(sizes, sizes[1:])), suite
        assert all(b <= a for a, b in zip(merges, merges[1:])), suite
    # The oracle never does worse than any fixed threshold.
    assert min(oracle_times) <= 0.0 + 1e-9
