"""Figures 12 and 13: compile-time overhead and merging-stage breakdown.

Figure 12 claim: for small programs the three configurations cost about the
same; beyond ~9k functions F3M compiles consistently faster than HyFM, and
the adaptive variant faster still.  Whole-compilation time is modelled as
(merging pass) + (backend ∝ post-merge module size); see
``repro.harness.CompileTimeModel``.

Figure 13 claim: the HyFM pass is ranking-dominated for large programs;
F3M trades a higher preprocess cost for a drastically cheaper ranking
stage, and the adaptive variant cuts ranking further.
"""

from repro.harness import CompileTimeModel, format_table, run_merging
from repro.workloads import build_workload

from conftest import header, workload

SIZES = [300, 1500, 12000]
STRATEGIES = ["hyfm", "f3m", "f3m-adaptive"]

_cache = {}


def _runs():
    if "runs" in _cache:
        return _cache["runs"]
    model = CompileTimeModel()
    runs = {}
    for n in SIZES:
        baseline_module = workload(n, "fig12")
        baseline_backend = model.backend_time(baseline_module)
        runs[n] = {"baseline": baseline_backend}
        for strategy in STRATEGIES:
            module = workload(n, "fig12")
            report = run_merging(module, strategy)
            runs[n][strategy] = (report, model.total_time(report, module))
    _cache["runs"] = runs
    return runs


def test_fig12_compile_time_overhead(benchmark):
    runs = benchmark.pedantic(_runs, rounds=1, iterations=1)
    header("Figure 12 — modelled whole-compilation time vs baseline")
    rows = []
    for n in SIZES:
        base = runs[n]["baseline"]
        row = [n, f"{base:.2f}s"]
        for s in STRATEGIES:
            _report, total = runs[n][s]
            row.append(f"{total / base:.2f}x")
        rows.append(tuple(row))
    print(
        format_table(
            ["functions", "baseline", "HyFM", "F3M", "F3M-adaptive"], rows
        )
    )
    largest = SIZES[-1]
    hyfm_report, hyfm_total = runs[largest]["hyfm"]
    f3m_report, f3m_total = runs[largest]["f3m"]
    adapt_report, adapt_total = runs[largest]["f3m-adaptive"]
    print(
        f"n={largest}: HyFM {hyfm_total:.2f}s, F3M {f3m_total:.2f}s, "
        f"adaptive {adapt_total:.2f}s"
    )
    # Paper: for large programs merging under F3M is faster than HyFM
    # (ranking goes from quadratic to near-linear); with equal size
    # reduction the backend term is equal, so the pass time decides.
    assert f3m_report.merge_time < hyfm_report.merge_time * 1.05
    # The machine-independent version of the same claim.
    assert f3m_report.comparisons < hyfm_report.comparisons / 5
    # The adaptive variant does no more search work than the static one
    # (smaller fingerprints, fewer bands).  Compare the machine-independent
    # comparison counts; wall times wobble under CPU contention.
    assert adapt_report.comparisons <= f3m_report.comparisons


def test_fig13_stage_breakdown(benchmark):
    runs = benchmark.pedantic(_runs, rounds=1, iterations=1)
    header("Figure 13 — merging-pass stage breakdown (normalized to HyFM)")
    largest = SIZES[-1]
    rows = []
    hyfm_total = runs[largest]["hyfm"][0].total_time
    for s in STRATEGIES:
        report, _total = runs[largest][s]
        b = report.stage_breakdown()
        ranking = b["ranking_success"] + b["ranking_fail"]
        rows.append(
            (
                s,
                f"{b['preprocess'] / hyfm_total:.2f}",
                f"{ranking / hyfm_total:.2f}",
                f"{(b['align_success'] + b['align_fail']) / hyfm_total:.2f}",
                f"{(b['codegen_success'] + b['codegen_fail']) / hyfm_total:.2f}",
                report.comparisons,
            )
        )
    print(
        format_table(
            ["strategy", "preprocess", "ranking", "align", "codegen", "comparisons"],
            rows,
        )
    )
    hyfm_rank = (
        runs[largest]["hyfm"][0].stage_breakdown()["ranking_success"]
        + runs[largest]["hyfm"][0].stage_breakdown()["ranking_fail"]
    )
    f3m_rank = (
        runs[largest]["f3m"][0].stage_breakdown()["ranking_success"]
        + runs[largest]["f3m"][0].stage_breakdown()["ranking_fail"]
    )
    f3m_pre = runs[largest]["f3m"][0].stage_breakdown()["preprocess"]
    hyfm_pre = runs[largest]["hyfm"][0].stage_breakdown()["preprocess"]
    # F3M: cheaper ranking, more expensive preprocessing (MinHash).
    assert f3m_rank < hyfm_rank
    assert f3m_pre > hyfm_pre
    # Comparisons gap is the machine-independent signal (paper: orders of
    # magnitude for Chrome-scale programs).
    assert (
        runs[largest]["f3m"][0].comparisons
        < runs[largest]["hyfm"][0].comparisons / 3
    )
