"""Observability overhead gates (tier 2 + perf).

The tracing layer's contract (DESIGN.md §10, docs/observability.md): with
a live tracer *and* a metrics registry attached, the full merging pass on
the 2000-function workload slows down by less than 5%; and the span-time
totals must agree with the profiler's stage table — they are two views of
the same timed regions, so disagreement means an instrumentation bug.

Run on a quiet machine::

    PYTHONPATH=src python -m pytest benchmarks/test_obs_overhead.py -m perf --no-header -s
"""

import pytest

from repro.harness.experiments import make_ranker
from repro.harness.profile import _best_of_paired, profile_from_report
from repro.merge import FunctionMergingPass, PassConfig
from repro.obs.metrics import Registry
from repro.obs.trace import Tracer, span_totals
from repro.workloads import build_workload

pytestmark = [pytest.mark.tier2, pytest.mark.perf]

_SIZE = 2000
_REPEATS = 3
# Measured overhead is ~2.5% (≈12k spans + ~4k events over a ~4.3s pass);
# the 5% gate is the documented contract and leaves ~2x headroom for
# scheduler jitter on a loaded host.
_GATE = 0.05


def _run_pass(module, tracer=None, registry=None):
    pass_ = FunctionMergingPass(
        make_ranker("f3m"), PassConfig(verify=False), metrics=registry
    )
    if tracer is None:
        return pass_.run(module)
    with tracer.install():
        return pass_.run(module)


class TestEnabledTracingOverhead:
    def test_overhead_under_budget(self):
        # Fresh module per rep (the pass mutates its input); pre-built so
        # only the pass is inside the timed region.  Interleaved rounds so
        # both variants sample the same machine state.
        plain = [build_workload(_SIZE, "obs-overhead") for _ in range(_REPEATS)]
        traced = [build_workload(_SIZE, "obs-overhead") for _ in range(_REPEATS)]

        def run_plain():
            _run_pass(plain.pop())

        def run_traced():
            _run_pass(traced.pop(), tracer=Tracer(), registry=Registry())

        best = _best_of_paired(
            {"plain": run_plain, "traced": run_traced}, _REPEATS
        )
        overhead = best["traced"] / best["plain"] - 1.0
        print(
            f"\nobs overhead @ {_SIZE} functions: plain={best['plain']:.3f}s "
            f"traced={best['traced']:.3f}s overhead={overhead:+.2%}"
        )
        assert overhead < _GATE, (
            f"enabled tracing+metrics overhead {overhead:.2%} exceeds the "
            f"{_GATE:.0%} contract"
        )


class TestSpanTotalsAgreeWithProfiler:
    def test_stage_tables_match(self):
        module = build_workload(_SIZE, "obs-agree")
        ranker = make_ranker("f3m")
        pass_ = FunctionMergingPass(ranker, PassConfig(verify=False))
        tracer = Tracer(maxlen=1 << 20)
        with tracer.install():
            report = pass_.run(module)
        totals = span_totals(tracer.finished())
        stages = profile_from_report(report, ranker).stages
        assert tracer.spans_dropped == 0  # ring sized for the full run
        for stage, seconds in stages.items():
            if seconds < 0.01:
                continue  # sub-10ms stages are below timing resolution
            assert stage in totals, f"no spans recorded for stage {stage!r}"
            span_s = totals[stage]["total_s"]
            assert span_s == pytest.approx(seconds, rel=0.05), (
                f"stage {stage!r}: span total {span_s:.4f}s vs profiler "
                f"{seconds:.4f}s disagree by more than 5%"
            )
