"""Section III-E: effect of the HyFM SSA-repair bug fixes.

Paper claims: (a) the two placement bugs caused undefined behaviour in
merged blocks, which downstream optimizations then deleted, making the
buggy HyFM *over-report* its code-size savings (8.5% -> 7.2% after the
fix); (b) the fixed pipeline is what both HyFM and F3M must use.

In our pipeline the legacy placements produce observably wrong values (our
interpreter gives uninitialized slots a defined zero value instead of UB),
so the experiment shows the *miscompilation* directly: merged modules
built with ``legacy_bugs=True`` can compute different driver outputs.
"""

from repro.harness import format_table
from repro.ir import Interpreter, Trap, parse_module
from repro.merge import FunctionMergingPass, PassConfig
from repro.merge.ssa_repair import _demote_to_stack
from repro.search import ExhaustiveRanker

from conftest import header, workload

INPUTS = (0, 1, 5, 9, 17, 33)


def _driver_outputs(module):
    driver = module.get_function("driver")
    out = []
    for x in INPUTS:
        try:
            out.append(Interpreter().run(driver, [x]).value)
        except Trap as trap:  # legacy code may divide by a stale zero
            out.append(f"trap:{trap}")
    return out


def test_sec3e_bug1_miscompiles(benchmark):
    """Direct reproduction of bug 1 on the paper's scenario."""
    text = """
define i32 @f(i32 %x, i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %va = add i32 %x, 1
  br label %join
b:
  %vb = add i32 %x, 2
  br label %join
join:
  %p = phi i32 [ %va, %a ], [ %vb, %b ]
  %q = phi i32 [ 1, %a ], [ 2, %b ]
  %u = mul i32 %p, %q
  ret i32 %u
}
"""

    def run(legacy):
        module = parse_module(text)
        func = module.get_function("f")
        phi = func.blocks[3].phis()[0]
        _demote_to_stack(func, phi, legacy_bugs=legacy)
        return Interpreter().run(func, [10, 1]).value

    fixed = benchmark.pedantic(run, args=(False,), rounds=1, iterations=1)
    legacy = run(True)
    header("Section III-E — bug 1 (phi store placement)")
    print(format_table(["variant", "f(10, true)"], [("fixed", fixed), ("legacy", legacy)]))
    assert fixed == 11
    assert legacy == 0  # same-block loads read the stale slot


def test_sec3e_whole_module_effect(benchmark):
    """Module-scale run: fixed pipeline preserves the driver's semantics;
    the legacy pipeline is allowed to (and does, on some seeds) diverge."""

    def run(legacy):
        module = workload(150, "sec3e")
        config = PassConfig(legacy_bugs=legacy, verify=False)
        report = FunctionMergingPass(ExhaustiveRanker(), config).run(module)
        return report, _driver_outputs(module)

    baseline = _driver_outputs(workload(150, "sec3e"))
    report_fixed, out_fixed = benchmark.pedantic(
        run, args=(False,), rounds=1, iterations=1
    )
    report_legacy, out_legacy = run(True)

    header("Section III-E — whole-module bug-fix effect")
    rows = [
        ("fixed", f"{report_fixed.size_reduction:.2%}", out_fixed == baseline),
        ("legacy", f"{report_legacy.size_reduction:.2%}", out_legacy == baseline),
    ]
    print(format_table(["pipeline", "reported size reduction", "semantics preserved"], rows))

    # The fixed pipeline is semantics-preserving — this is the paper's
    # requirement for the numbers to be meaningful at all.
    assert out_fixed == baseline
    # Both pipelines report similar headline reductions; the paper's point
    # is that the legacy number is not trustworthy, not that it is smaller.
    assert report_legacy.merges > 0
