"""Tier-2 regression gates for the corpus-scale sweep (ROADMAP item 2).

Runs the same machinery as ``repro bench-perf --scale`` at a CI-sized
corpus and gates on the two properties the scaling work must never lose:

* **Exactness** — fingerprints in the memmap store are bit-identical to
  the in-RAM batch engine, and the sharded batched ``best_match_all``
  makes exactly the serial ``LSHIndex``'s decisions at every shard count.
* **Memory** — at the largest size the memmap-store path's peak RSS
  (fork-isolated, kernel-accounted) stays strictly below the in-RAM
  path's.  This is the reason the store exists; losing it silently would
  make the 10^5-10^6 regime unreachable again.

There is deliberately **no multi-shard speedup gate**: shard parallelism
only pays on multi-core boxes, and this suite must not flake on a
single-CPU runner.  Wall-clock ratios are recorded in the emitted bench
JSON for post-hoc inspection instead.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_scale_regression.py -m perf --no-header
"""

import pytest

from repro.harness.bench import write_bench_json
from repro.harness.scale import run_scale_bench

pytestmark = [pytest.mark.tier2, pytest.mark.perf]

_SIZES = (2000, 20000)
_SHARDS = (1, 2)


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    rows, metadata = run_scale_bench(
        sizes=_SIZES, chunk=2000, shard_counts=_SHARDS
    )
    out = tmp_path_factory.mktemp("bench") / "BENCH_scale.json"
    write_bench_json(str(out), "scale", rows, metadata)
    return rows, metadata


class TestExactness:
    def test_fingerprints_bit_identical(self, sweep):
        rows, _ = sweep
        assert rows, "sweep produced no rows"
        for row in rows:
            assert row["fingerprints_bit_identical"] is True, row["size"]

    def test_sharded_decisions_equal_serial(self, sweep):
        rows, _ = sweep
        for row in rows:
            assert row["decisions_identical"], row["size"]
            for name, identical in row["decisions_identical"].items():
                assert identical is True, (row["size"], name)


class TestMemory:
    def test_store_peak_rss_below_inram_at_largest(self, sweep):
        rows, _ = sweep
        largest = max(rows, key=lambda row: row["size"])
        assert largest["size"] == max(_SIZES)
        assert largest["store_peak_rss_kb"] < largest["inram_peak_rss_kb"], {
            "store_kb": largest["store_peak_rss_kb"],
            "inram_kb": largest["inram_peak_rss_kb"],
        }


class TestShape:
    def test_per_stage_timings_and_rss_recorded(self, sweep):
        rows, metadata = sweep
        for row in rows:
            for name, stage in row["stages"].items():
                assert stage["seconds"] >= 0.0, (row["size"], name)
                assert stage["rss_peak_kb"] >= stage["rss_baseline_kb"] >= 0
        assert "headline" in metadata
