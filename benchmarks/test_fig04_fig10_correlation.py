"""Figures 4 and 10: fingerprint similarity vs alignment correlation.

Paper claim: opcode-frequency similarity correlates weakly with the actual
alignment ratio (R ≈ 0.20 on Linux), while MinHash similarity correlates
about 3× better (R ≈ 0.62).  On our synthetic population both correlations
sit higher (generated functions are more homogeneous than Linux), but the
ordering and the gap reproduce.
"""

from repro.harness import correlation_experiment, format_table, histogram2d

from conftest import header, workload

N_FUNCTIONS = 400
MAX_PAIRS = 20_000

_cache = {}


def _corpus():
    if "corpus" not in _cache:
        _cache["corpus"] = workload(N_FUNCTIONS, "fig4")
    return _cache["corpus"]


def _result(kind):
    if kind not in _cache:
        _cache[kind] = correlation_experiment(_corpus(), kind, max_pairs=MAX_PAIRS)
    return _cache[kind]


def test_fig04_opcode_correlation_is_weak(benchmark):
    opcode = benchmark.pedantic(_result, args=("opcode",), rounds=1, iterations=1)
    header("Figure 4 — opcode-frequency similarity vs alignment ratio")
    counts, _, _ = histogram2d(*zip(*opcode.pairs))
    print(f"pairs sampled: {len(opcode.pairs)}")
    print(f"heatmap cells populated: {(counts > 0).sum()} / {counts.size}")
    print(f"Pearson R = {opcode.correlation:.3f}  (paper: ~0.20)")
    assert opcode.correlation < 0.6


def test_fig10_minhash_correlation_is_strong(benchmark):
    minhash = benchmark.pedantic(_result, args=("minhash",), rounds=1, iterations=1)
    opcode = _result("opcode")
    header("Figure 10 — MinHash similarity vs alignment ratio")
    print(f"Pearson R = {minhash.correlation:.3f}  (paper: ~0.62)")
    print(
        f"identical-fingerprint/no-alignment pairs: "
        f"{minhash.identical_no_alignment()}"
    )
    print(
        f"disjoint-fingerprint/full-alignment pairs: "
        f"{minhash.disjoint_full_alignment()}"
    )
    rows = [
        ("opcode-frequency (HyFM)", f"{opcode.correlation:.3f}", "0.20"),
        ("MinHash (F3M)", f"{minhash.correlation:.3f}", "0.62"),
        (
            "improvement",
            f"{minhash.correlation / max(opcode.correlation, 1e-9):.2f}x",
            "~3x",
        ),
    ]
    print(format_table(["fingerprint", "measured R", "paper R"], rows))
    # The headline claim: MinHash correlates substantially better.
    assert minhash.correlation > opcode.correlation + 0.1
    assert minhash.correlation > 0.5


def test_fig10_encoding_ablation(benchmark):
    """DESIGN.md ablation: hashing *encoded* instructions (types folded in)
    must correlate at least as well as the default; the encoding is what
    separates mergeable from textually-identical."""
    from repro.fingerprint import EncodingOptions

    def run():
        return correlation_experiment(
            _corpus(),
            "minhash",
            max_pairs=10_000,
            encoding=EncodingOptions(include_predicates=True),
        )

    with_preds = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"minhash R with predicate-aware encoding: {with_preds.correlation:.3f}")
    assert with_preds.correlation > 0.4
