"""Figures 6 and 9: quality of the pairs each ranking strategy selects.

Figure 6 (HyFM): selected nearest-neighbour pairs are spread across the
whole similarity range; a noticeable share of *profitable* pairs have low
fingerprint similarity — which is why HyFM cannot simply prune by
similarity and why approximate search under that metric loses size.

Figure 9 (F3M): with MinHash similarity, code-size reduction concentrates
in the high-similarity bins while low-similarity pairs contribute mostly
wasted merging time.
"""

from repro.harness import binned_sums, format_table, selected_pairs_experiment

from conftest import header, workload

N = 500

_cache = {}


def _pairs(strategy):
    if strategy not in _cache:
        _cache[strategy] = selected_pairs_experiment(workload(N, "fig6"), strategy)
    return _cache[strategy]


def test_fig06_hyfm_selected_pairs_histogram(benchmark):
    pairs = benchmark.pedantic(_pairs, args=("hyfm",), rounds=1, iterations=1)
    header("Figure 6 — similarity histogram of HyFM-selected pairs")
    bins = 10
    total = [0] * bins
    profitable = [0] * bins
    for sim, ok, _saving, _t in pairs:
        b = min(int(sim * bins), bins - 1)
        total[b] += 1
        profitable[b] += int(ok)
    rows = [
        (f"{i / bins:.1f}-{(i + 1) / bins:.1f}", total[i], profitable[i])
        for i in range(bins)
    ]
    print(format_table(["similarity", "selected", "profitable"], rows))

    profitable_pairs = [(s, ok) for s, ok, _sv, _t in pairs if ok]
    low_sim_profitable = sum(1 for s, _ in profitable_pairs if s < 0.5)
    share = low_sim_profitable / max(len(profitable_pairs), 1)
    print(
        f"profitable pairs with similarity < 0.5: {share:.1%} "
        f"(paper: ~10% — distant pairs can still merge profitably)"
    )
    # Pairs get selected across a wide similarity range.
    populated = sum(1 for t in total if t > 0)
    assert populated >= 3
    assert len(profitable_pairs) > 0


def test_fig09_f3m_contributions_by_similarity(benchmark):
    pairs = benchmark.pedantic(_pairs, args=("f3m",), rounds=1, iterations=1)
    header("Figure 9 — F3M: saving and overhead contributions by similarity")
    sims = [p[0] for p in pairs]
    savings = [max(p[2], 0) for p in pairs]
    times = [p[3] for p in pairs]
    saving_bins = binned_sums(sims, savings, bins=10)
    time_bins = binned_sums(sims, times, bins=10)
    rows = [
        (f"{edge:.1f}", f"{sv:.0f}", f"{tm * 1000:.1f}ms")
        for (edge, sv), (_e, tm) in zip(saving_bins, time_bins)
    ]
    print(format_table(["similarity>=", "size saving (bytes)", "merge time"], rows))

    # Claim: high-similarity pairs contribute the bulk of the size savings.
    low = sum(sv for edge, sv in saving_bins if edge < 0.5)
    high = sum(sv for edge, sv in saving_bins if edge >= 0.5)
    assert high > low, (high, low)

    # Claim: low-similarity pairs still cost merge time (wasted effort).
    low_time = sum(t for edge, t in time_bins if edge < 0.5)
    total_time = sum(t for _e, t in time_bins)
    print(f"share of merge time below similarity 0.5: {low_time / total_time:.1%}")
