"""Tier-2 regression gates for optimistic cross-partition merging.

Runs the same machinery as ``repro bench-perf --reconcile`` at CI size
and gates on the properties the two-phase sweep must never lose:

* **Recovery** — on a workload whose similarity families straddle
  partition boundaries (the standard generated workload with 4
  hash-assigned partitions), the reconcile phase must recover a nonzero
  number of cross-partition pairs and the final module must be strictly
  smaller than the partition-local result (``recovered_size_delta > 0``;
  the headline gate is >= 0 — reconciliation may at worst break even,
  never lose bytes).
* **Replay fidelity** — the optimistic sweep's phase-1 size equals the
  partition-local baseline's final size, so the recovered delta measures
  exactly the reconcile phase.
* **Determinism** — the sweep digest (partition decisions plus phase-2
  reconcile decisions) is identical across repeated runs and across
  worker counts.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_reconcile_perf.py -m perf --no-header
"""

import pytest

from repro.harness.bench import write_bench_json
from repro.harness.reconcile_bench import run_reconcile_bench

pytestmark = [pytest.mark.tier2, pytest.mark.perf]

_SIZES = (48, 96)


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    rows, metadata = run_reconcile_bench(sizes=_SIZES, partitions=4, repeats=2)
    out = tmp_path_factory.mktemp("bench") / "BENCH_reconcile.json"
    write_bench_json(str(out), "reconcile", rows, metadata)
    return rows, metadata


class TestRecovery:
    def test_recovers_cross_partition_pairs(self, sweep):
        rows, _ = sweep
        assert rows, "sweep produced no rows"
        for row in rows:
            assert row["recovered_pairs"] > 0, row["size"]

    def test_final_module_strictly_smaller_than_partition_local(self, sweep):
        rows, _ = sweep
        for row in rows:
            assert row["size_after"] < row["baseline_size_after"], {
                "size": row["size"],
                "size_after": row["size_after"],
                "baseline_size_after": row["baseline_size_after"],
            }

    def test_headline_delta_nonnegative(self, sweep):
        _, metadata = sweep
        assert metadata["headline"]["recovered_size_delta"] >= 0


class TestReplayFidelity:
    def test_phase1_size_matches_partition_local_baseline(self, sweep):
        rows, _ = sweep
        for row in rows:
            assert row["phase1_size_identical"] is True, {
                "size": row["size"],
                "size_phase1": row["size_phase1"],
                "baseline_size_after": row["baseline_size_after"],
            }

    def test_replay_never_diverges(self, sweep):
        rows, _ = sweep
        for row in rows:
            assert row["replay_diverged"] == 0, row["size"]
            assert row["replay_merges"] == row["baseline_merges"], row["size"]


class TestDeterminism:
    def test_decisions_deterministic_across_runs_and_workers(self, sweep):
        rows, metadata = sweep
        for row in rows:
            assert row["decisions_deterministic"] is True, row["size"]
        assert metadata["headline"]["decisions_deterministic"] is True

    def test_no_reapply_failures(self, sweep):
        rows, _ = sweep
        for row in rows:
            assert row["reapply_failures"] == 0, row["size"]
