"""Tier-2 regression gates for the merge daemon (``repro serve``).

Runs the same machinery as ``repro bench-perf --serve`` at a CI-sized
corpus and gates on the two properties the daemon must never lose:

* **Warm speedup** — a merge served from hot caches (fingerprints,
  alignments, plans resident from the submit) must beat a cold
  subprocess one-shot by a comfortable margin.  The headline claim is
  >=5x at full scale; the CI gate uses 2.5x so a slow shared runner
  cannot flake it while still catching any "caches stopped being
  consulted" regression, which shows up as ~1x.
* **Decision identity** — the daemon's merge output is byte-identical
  to the one-shot ``repro merge -s f3m`` pipeline, and the incrementally
  maintained index (tombstone removes + re-inserts) gives every function
  the same best match as a serial replay of the identical op sequence.

There is deliberately **no delta-speedup gate here**: the >=10x
delta-vs-rebuild headline is only meaningful at the 20k scale of the
committed ``BENCH_serve.json``, and at CI scale the absolute times are
small enough that the ratio is noise-dominated.  The ratio is recorded
in the emitted bench JSON for post-hoc inspection instead.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_serve_perf.py -m perf --no-header
"""

import pytest

from repro.harness.bench import write_bench_json
from repro.harness.serve_bench import run_serve_bench

pytestmark = [pytest.mark.tier2, pytest.mark.perf]

_SIZES = (2000,)
_MIN_WARM_SPEEDUP = 2.5


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    rows, metadata = run_serve_bench(sizes=_SIZES, repeats=2)
    out = tmp_path_factory.mktemp("bench") / "BENCH_serve.json"
    write_bench_json(str(out), "serve", rows, metadata)
    return rows, metadata


class TestWarmSpeedup:
    def test_warm_merge_beats_cold_subprocess(self, sweep):
        rows, _ = sweep
        assert rows, "sweep produced no rows"
        for row in rows:
            assert row["warm_speedup"] >= _MIN_WARM_SPEEDUP, {
                "size": row["size"],
                "warm_speedup": row["warm_speedup"],
                "cold_subprocess_s": row["cold_subprocess_s"],
                "warm_steady_s": row["warm_steady_s"],
            }


class TestDecisionIdentity:
    def test_served_merge_identical_to_one_shot(self, sweep):
        rows, _ = sweep
        for row in rows:
            assert row["decisions_identical"] is True, row["size"]

    def test_incremental_index_matches_serial_replay(self, sweep):
        rows, _ = sweep
        for row in rows:
            assert row["serial_identical"] is True, row["size"]


class TestShape:
    def test_delta_ratio_and_headline_recorded(self, sweep):
        rows, metadata = sweep
        for row in rows:
            assert row["delta_update_s"] > 0.0
            assert row["full_rebuild_s"] > 0.0
            assert row["delta_speedup"] > 0.0
            assert 0.0 <= row["rebuild_agreement"] <= 1.0
        assert "headline" in metadata
