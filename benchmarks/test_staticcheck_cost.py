"""Commit-gate cost: static merge-safety linter vs differential oracle.

The §III-E invariants can be enforced two ways — statically (the
``staticcheck`` merge-safety linter) or dynamically (the differential-
execution oracle).  This suite measures both gates per module over the
generated workloads, prints the side-by-side table, and emits
``BENCH_staticcheck.json`` so the static-vs-dynamic cost ratio is tracked
in the perf trajectory.

The qualitative claim under test: the static gate costs a small fraction
of the oracle gate (no interpretation, no input generation) while agreeing
with it on every fixed-pipeline merge (zero vetoes from either).
"""

import os

from repro.harness import (
    format_gate_cost_table,
    gate_cost_row,
    load_bench_json,
    write_bench_json,
)
from repro.merge import FunctionMergingPass, PassConfig
from repro.search import ExhaustiveRanker

from conftest import header, workload

_SIZES = (60, 120, 200)
_BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_staticcheck.json")


def _run(n, tag, **config):
    module = workload(n, tag)
    report = FunctionMergingPass(
        ExhaustiveRanker(), PassConfig(verify=False, **config)
    ).run(module)
    return gate_cost_row(f"{tag}{n}", report)


class TestGateCost:
    def test_static_gate_cheaper_than_oracle_gate(self):
        header("Commit-gate cost: staticcheck vs oracle (per module)")
        rows = []
        for n in _SIZES:
            row = _run(n, "gatecost", static_check=True, oracle=True)
            rows.append(row)
            # Neither gate vetoes a fixed-pipeline merge...
            assert row["static_fails"] == 0
            assert row["oracle_fails"] == 0
            assert row["merges"] > 0
            # ...and the static screen is the cheap one by a wide margin.
            assert row["static_time"] < row["oracle_time"]
        print(format_gate_cost_table(rows))
        write_bench_json(
            _BENCH_PATH,
            "staticcheck",
            rows,
            metadata={"sizes": list(_SIZES), "ranker": "exhaustive"},
        )
        payload = load_bench_json(_BENCH_PATH)
        assert payload["bench"] == "staticcheck"
        assert len(payload["rows"]) == len(_SIZES)

    def test_static_gate_alone_overhead_is_small(self):
        # The static gate on its own should not dominate the pass: its
        # summed per-attempt cost stays within half the total pass time.
        row = _run(120, "gateonly", static_check=True)
        assert row["static_fails"] == 0
        assert row["static_time"] < 0.5 * row["total_time"]
