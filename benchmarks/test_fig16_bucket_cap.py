"""Figure 16: bucket search cap sweep.

Paper claim: over-populated buckets are rare (<0.03% of buckets on Linux)
but dominate the fingerprint-comparison count (~75%); capping comparisons
per bucket at 100 — or even as low as 2 — loses no statistically
significant code size while cutting search work.
"""

from repro.fingerprint import minhash_function
from repro.harness import format_table, run_merging
from repro.search import LSHIndex

from conftest import header, workload

N = 1200
CAPS = [2, 10, 100, None]

_cache = {}


def _sweep():
    if "data" in _cache:
        return _cache["data"]
    data = {}
    for cap in CAPS:
        module = workload(N, "fig16")
        report = run_merging(module, "f3m", bucket_cap=cap)
        data[cap] = report
    _cache["data"] = data
    return data


def test_fig16_cap_sweep(benchmark):
    data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    header("Figure 16 — bucket search cap sweep")
    rows = []
    uncapped = data[None]
    for cap in CAPS:
        report = data[cap]
        rows.append(
            (
                "none" if cap is None else cap,
                f"{report.size_reduction:.2%}",
                report.merges,
                report.comparisons,
                f"{report.comparisons / max(uncapped.comparisons, 1):.2f}x",
            )
        )
    print(
        format_table(
            ["cap", "size reduction", "merges", "comparisons", "vs uncapped"], rows
        )
    )
    # Cap 100 must match the uncapped size reduction almost exactly while
    # doing no more work.
    assert abs(data[100].size_reduction - uncapped.size_reduction) < 0.005
    assert data[100].comparisons <= uncapped.comparisons
    # Even cap=2 keeps the majority of the size reduction (similar
    # functions share many buckets, paper Section IV-E) at a fraction of
    # the comparisons.  Our synthetic population leans harder on mid-
    # similarity pairs than Linux does, so the paper's "no effect at
    # cap=2" weakens to "~70% of the reduction for ~5% of the work".
    assert data[2].size_reduction > uncapped.size_reduction * 0.65
    assert data[2].comparisons < uncapped.comparisons / 5
    # cap=10 already recovers the full reduction.
    assert abs(data[10].size_reduction - uncapped.size_reduction) < 0.005


def test_fig16_bucket_population_distribution(benchmark):
    """Over-populated buckets are a tiny fraction of all buckets, yet a
    disproportionate share of pairwise work happens inside them."""

    def build_index():
        module = workload(N, "fig16")
        index = LSHIndex(rows=2, bands=100, bucket_cap=None)
        for func in module.defined_functions():
            index.insert(id(func), minhash_function(func))
        return index.bucket_stats()

    stats = benchmark.pedantic(build_index, rounds=1, iterations=1)
    total_pairwork = sum(p * p for p in stats.populations)
    big_pairwork = sum(p * p for p in stats.populations if p >= 64)
    big_buckets = sum(1 for p in stats.populations if p >= 64)
    print(
        f"buckets: {stats.total_buckets}, max population: {stats.max_population}, "
        f">=128: {stats.overpopulated} "
        f"({stats.overpopulated / stats.total_buckets:.3%})"
    )
    print(
        f"buckets with population >=64: {big_buckets} "
        f"({big_buckets / stats.total_buckets:.3%}) carrying "
        f"{big_pairwork / total_pairwork:.1%} of quadratic scan work"
    )
    # Rare but dominant: well under 1% of buckets carry a hugely
    # disproportionate share (>20%) of the quadratic scan work.
    assert big_buckets / stats.total_buckets < 0.01
    assert big_pairwork / total_pairwork > 0.2
