"""Commit-gate cost: translation validator vs differential oracle.

The validator exists to replace most oracle runs: a ``proved`` verdict
lets the pipeline skip differential execution entirely, and only the
``unknown`` residue escalates.  For that trade to pay off, two things
must hold at scale, and this suite pins both over the generated
workloads (validator and oracle observing the *same* attempts):

* **cost** — the product-CFG walk is at least 5x cheaper than the
  differential oracle on the largest workload (2000 functions);
* **coverage** — the ``unknown`` residue stays at or below 20% of the
  validated attempts, so the gate actually absorbs the oracle's work
  instead of forwarding it.

Emits ``BENCH_validate.json`` for the perf trajectory.
"""

import os

import pytest

from repro.harness import load_bench_json, write_bench_json
from repro.harness.experiments import make_ranker
from repro.harness.table import format_table
from repro.merge import FunctionMergingPass, PassConfig

from conftest import header, workload

pytestmark = [pytest.mark.tier2]

SIZES = (200, 600, 2000)
_BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_validate.json")

_cache = {}


def _rows():
    if "rows" in _cache:
        return _cache["rows"]
    rows = []
    for n in SIZES:
        module = workload(n, "valcost")
        report = FunctionMergingPass(
            make_ranker("f3m"),
            PassConfig(verify=False, validate="observe", oracle=True),
        ).run(module)
        verdicts = {"proved": 0, "refuted": 0, "unknown": 0}
        for att in report.attempts:
            if att.validate_verdict is not None:
                verdicts[att.validate_verdict] += 1
        validated = sum(verdicts.values())
        validate_time = sum(a.validate_time for a in report.attempts)
        oracle_time = sum(a.oracle_time for a in report.attempts)
        rows.append(
            {
                "module": f"valcost{n}",
                "functions": n,
                "attempts": len(report.attempts),
                "merges": report.merges,
                "validated": validated,
                "proved": verdicts["proved"],
                "refuted": verdicts["refuted"],
                "unknown": verdicts["unknown"],
                "unknown_rate": (verdicts["unknown"] / validated) if validated else 0.0,
                "validate_time": validate_time,
                "oracle_time": oracle_time,
                "speedup": (oracle_time / validate_time) if validate_time else 0.0,
                "total_time": report.total_time,
            }
        )
    _cache["rows"] = rows
    return rows


class TestValidatorCost:
    def test_validator_is_5x_cheaper_than_oracle_at_scale(self):
        header("Commit-gate cost: translation validator vs oracle")
        rows = _rows()
        print(
            format_table(
                ["module", "validated", "proved", "unknown", "val s", "oracle s", "x"],
                [
                    (
                        r["module"],
                        r["validated"],
                        r["proved"],
                        r["unknown"],
                        f"{r['validate_time']:.3f}",
                        f"{r['oracle_time']:.3f}",
                        f"{r['speedup']:.1f}",
                    )
                    for r in rows
                ],
            )
        )
        largest = rows[-1]
        assert largest["functions"] == 2000
        assert largest["validated"] > 0
        assert largest["speedup"] >= 5.0, (
            f"validator only {largest['speedup']:.1f}x cheaper than the oracle"
        )

    def test_unknown_residue_stays_under_twenty_percent(self):
        for row in _rows():
            assert row["unknown_rate"] <= 0.20, (
                f"{row['module']}: unknown rate {row['unknown_rate']:.1%} "
                f"({row['unknown']}/{row['validated']})"
            )

    def test_validator_never_refutes_a_fixed_pipeline_merge(self):
        # On the fixed repair path there is nothing to refute: a refuted
        # verdict here is a validator soundness/precision bug, the exact
        # analogue of the staticcheck suite's zero-veto assertion.
        for row in _rows():
            assert row["refuted"] == 0, row

    def test_bench_json_written(self):
        rows = _rows()
        write_bench_json(
            _BENCH_PATH,
            "validate",
            rows,
            metadata={"sizes": list(SIZES), "ranker": "f3m", "oracle": "observe+on"},
        )
        payload = load_bench_json(_BENCH_PATH)
        assert payload["bench"] == "validate"
        assert len(payload["rows"]) == len(SIZES)
