"""Figure 11: linked object size reduction per benchmark and strategy.

Paper claim: F3M achieves code size reduction on par with (on average
slightly better than) HyFM on every benchmark, despite evaluating far fewer
candidate pairs.  Benchmarks are ordered by function count.
"""

from repro.harness import format_table, run_merging
from repro.workloads import build_benchmark

from conftest import header

# (benchmark, scale): large programs scaled down for the Python host.
SELECTION = [
    ("462.libquantum", 1.0),
    ("444.namd", 1.0),
    ("458.sjeng", 1.0),
    ("401.bzip2", 1.0),
    ("400.perlbench", 0.35),
    ("linux", 0.04),  # 1800 functions
]

STRATEGIES = ["hyfm", "f3m", "f3m-adaptive"]

_cache = {}


def _reductions():
    if "rows" in _cache:
        return _cache["rows"]
    rows = []
    for name, scale in SELECTION:
        per_strategy = {}
        for strategy in STRATEGIES:
            module = build_benchmark(name, scale=scale)
            report = run_merging(module, strategy)
            per_strategy[strategy] = report
        rows.append((name, scale, per_strategy))
    _cache["rows"] = rows
    return rows


def test_fig11_size_reduction_table(benchmark):
    rows = benchmark.pedantic(_reductions, rounds=1, iterations=1)
    header("Figure 11 — object size reduction by benchmark (ordered by size)")
    table = []
    for name, scale, reports in rows:
        table.append(
            (
                name,
                reports["hyfm"].num_functions,
                f"{reports['hyfm'].size_reduction:.1%}",
                f"{reports['f3m'].size_reduction:.1%}",
                f"{reports['f3m-adaptive'].size_reduction:.1%}",
            )
        )
    print(
        format_table(
            ["benchmark", "functions", "HyFM", "F3M", "F3M-adaptive"], table
        )
    )
    avg = {
        s: sum(r[2][s].size_reduction for r in rows) / len(rows) for s in STRATEGIES
    }
    print(
        f"average reduction: HyFM {avg['hyfm']:.1%}, F3M {avg['f3m']:.1%}, "
        f"adaptive {avg['f3m-adaptive']:.1%} (paper: HyFM ~7.2%, F3M ~7.6%)"
    )

    for name, _scale, reports in rows:
        # Every benchmark sees real size reduction from both techniques.
        assert reports["hyfm"].size_reduction > 0.01, name
        assert reports["f3m"].size_reduction > 0.01, name
        # F3M must not lose meaningful size versus HyFM on any benchmark.
        assert (
            reports["f3m"].size_reduction
            >= reports["hyfm"].size_reduction - 0.03
        ), name
    # On average F3M matches or beats HyFM (paper: +0.4pp after bug fix).
    assert avg["f3m"] >= avg["hyfm"] - 0.005


def test_fig11_identical_only_baseline(benchmark):
    """Context row (paper Section V): merging *identical* functions only —
    what GCC/LLVM ship.  On exact duplicates it is actually the better
    tool (a folded duplicate carries no guard plumbing), but it captures
    nothing else; similarity-based merging on top finds substantial
    additional savings on every benchmark."""
    from repro.analysis import module_size
    from repro.harness import run_merging
    from repro.merge import merge_identical_functions

    def run():
        rows = []
        for name, scale in SELECTION[:4]:
            module = build_benchmark(name, scale=scale)
            before = module_size(module)
            merge_identical_functions(module)
            ident_only = 1.0 - module_size(module) / before
            run_merging(module, "f3m")  # F3M over the deduplicated module
            pipeline = 1.0 - module_size(module) / before
            rows.append((name, ident_only, pipeline))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    reductions = _reductions()
    table = []
    for (name, ident_red, pipe_red), (name2, _scale, reports) in zip(rows, reductions):
        assert name == name2
        table.append(
            (
                name,
                f"{ident_red:.2%}",
                f"{reports['f3m'].size_reduction:.2%}",
                f"{pipe_red:.2%}",
            )
        )
    print(
        format_table(
            ["benchmark", "identical-only", "F3M alone", "identical + F3M"], table
        )
    )
    for name, ident_red, pipe_red in rows:
        # Similarity-based merging finds savings identical-only cannot.
        assert pipe_red > ident_red + 0.01, name


def test_fig11_f3m_examines_fewer_pairs(benchmark):
    rows = benchmark.pedantic(_reductions, rounds=1, iterations=1)
    table = []
    for name, _scale, reports in rows:
        table.append(
            (
                name,
                reports["hyfm"].comparisons,
                reports["f3m"].comparisons,
                f"{reports['hyfm'].comparisons / max(reports['f3m'].comparisons, 1):.1f}x",
            )
        )
    print(format_table(["benchmark", "HyFM cmp", "F3M cmp", "ratio"], table))
    for name, _scale, reports in rows:
        if reports["hyfm"].num_functions >= 500:
            assert reports["f3m"].comparisons < reports["hyfm"].comparisons, name
