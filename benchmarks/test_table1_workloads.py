"""Table I: the workload list.

Prints the benchmark table (name, paper-scale function count, category,
size class) and benchmarks workload construction itself.
"""

from repro.harness import format_table
from repro.workloads import BENCHMARKS, build_workload, size_class

from conftest import header


def test_table1_workload_list(benchmark):
    header("Table I — workloads (paper-scale function counts)")
    rows = [
        (b.name, b.functions, b.category, size_class(b.functions))
        for b in BENCHMARKS
    ]
    print(format_table(["benchmark", "functions", "suite", "class"], rows))

    # Benchmark: building a small workload module.
    module = benchmark(build_workload, 100, "table1")
    assert len(module.defined_functions()) >= 100

    # Table sanity: the paper-stated counts are present.
    by_name = {b.name: b.functions for b in BENCHMARKS}
    assert by_name["400.perlbench"] == 1837
    assert by_name["linux"] == 45_000
    assert by_name["chrome"] == 1_200_000
