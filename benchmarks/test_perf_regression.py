"""Performance-regression gates for the batched fingerprint engine.

Tier-2 + ``perf`` marked: these assert *timing* relationships, so they are
excluded from the default (tier-1) run and should be exercised on a quiet
machine::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_regression.py -m perf --no-header

The margins are deliberately conservative (the measured batched-engine
advantage at 500+ functions is ~4-6x; the gate asserts 2x) so scheduler
noise on a loaded box does not produce false alarms, while a real
regression — accidentally re-introducing per-function array round-trips —
still trips them.
"""

import pytest

from repro.fingerprint import FingerprintCache, MinHashConfig, minhash_module
from repro.harness.profile import fingerprint_microbench, profile_pass
from repro.workloads import build_workload

pytestmark = [pytest.mark.tier2, pytest.mark.perf]

_SIZE = 500


@pytest.fixture(scope="module")
def functions():
    return build_workload(_SIZE, "perfgate").defined_functions()


class TestBatchedEngineBeatsPerFunction:
    def test_preprocess_speedup(self, functions):
        micro = fingerprint_microbench(functions, repeats=3)
        assert micro["bit_identical"] is True
        # Full engine (fingerprint + LSH index build): batched must beat the
        # per-function path clearly, not marginally.
        assert micro["speedup_preprocess"] >= 2.0, micro

    def test_fingerprint_speedup(self, functions):
        micro = fingerprint_microbench(functions, repeats=3)
        assert micro["speedup_fingerprint"] >= 2.0, micro


class TestCacheEffectiveness:
    def test_remerge_hits_cache(self, functions):
        cache = FingerprintCache()
        config = MinHashConfig()
        minhash_module(functions, config, cache=cache)
        assert cache.stats.hit_rate >= 0.0  # cold run may already dedup clones
        before = cache.stats.hits
        minhash_module(functions, config, cache=cache)
        assert cache.stats.hits > before
        assert cache.stats.hit_rate > 0


class TestDecisionEquivalence:
    def test_merge_decisions_identical(self):
        _, batched = profile_pass(build_workload(_SIZE, "perfgate-eq"), "f3m")
        _, loop = profile_pass(
            build_workload(_SIZE, "perfgate-eq"), "f3m", batched=False
        )
        assert batched.merges == loop.merges
        assert [
            (a.function, a.candidate, str(a.outcome)) for a in batched.attempts
        ] == [(a.function, a.candidate, str(a.outcome)) for a in loop.attempts]
