"""Shared helpers for the figure-reproduction benchmarks.

Each ``test_figXX_*.py`` regenerates one table/figure of the paper: it
prints the same rows/series the paper reports (captured with ``pytest -s``)
and asserts the *qualitative* claim the figure makes.  Workload sizes are
scaled to what a Python host simulates comfortably; the DESIGN.md
experiment index records the mapping.
"""

from __future__ import annotations

import sys

import pytest

from repro.workloads import build_workload

_CACHE = {}


def workload(n: int, tag: str = "bench"):
    """A fresh copy of a deterministic workload (module objects are mutated
    by merging, so each caller gets its own build)."""
    return build_workload(n, f"{tag}{n}")


def header(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}", file=sys.stderr)
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


@pytest.fixture
def show():
    """Print helper that also lands in captured output."""

    def _show(text: str) -> None:
        print(text)

    return _show
