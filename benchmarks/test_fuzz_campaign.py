"""Tier-2 smoke campaign: the fuzz engine at --budget 50.

Gates the two campaign-level contracts that tier-1 only samples:

* **determinism** — two gates-off legacy campaigns with the same seed
  produce byte-identical manifests;
* **discovery** — at smoke scale the campaign already rediscovers both
  §III-E bug shapes, dedups them to exactly two signatures, and
  minimizes each below the 15-instruction bound.

Emits ``BENCH_fuzz.json`` with throughput (candidates/sec) and the
unique-bug / dedup-rate counters.
"""

import time

import pytest

from repro.fuzz import FuzzConfig, run_campaign
from repro.harness import format_table
from repro.harness.bench import write_bench_json

from conftest import header

pytestmark = [pytest.mark.tier2]

BUDGET = 50
SEED = 42


def _campaign_config(**over):
    base = dict(
        budget=BUDGET,
        seed=SEED,
        legacy_bugs=True,
        oracle_gate=False,
        static_gate=False,
        workers=2,
        timeout=60.0,
    )
    base.update(over)
    return FuzzConfig(**base)


def test_smoke_campaign(tmp_path):
    t0 = time.perf_counter()
    campaign = run_campaign(
        _campaign_config(), manifest_path=str(tmp_path / "a.json")
    )
    elapsed = time.perf_counter() - t0

    # Discovery: both legacy bug patterns, exactly two signatures.
    shapes = {s.shape for s in campaign.signatures}
    assert shapes == {"stale-reload", "phi-reload"}
    assert campaign.triage.unique_bugs == 2
    for signature in campaign.signatures:
        reduction = campaign.reductions[signature.bug_id]
        assert reduction["reproduced"] and reduction["instructions"] <= 15
    assert campaign.quarantined == []

    # Determinism: a second identical run produces the same bytes.
    t1 = time.perf_counter()
    run_campaign(_campaign_config(), manifest_path=str(tmp_path / "b.json"))
    second = time.perf_counter() - t1
    assert (tmp_path / "a.json").read_bytes() == (tmp_path / "b.json").read_bytes()

    rows = [
        {
            "budget": BUDGET,
            "seed": SEED,
            "elapsed_s": round(elapsed, 3),
            "candidates_per_sec": round(BUDGET / elapsed, 2),
            "total_failures": campaign.triage.total_failures,
            "unique_bugs": campaign.triage.unique_bugs,
            "dedup_rate": round(campaign.triage.dedup_rate, 4),
            "minimized_instructions": {
                s.bug_id: campaign.reductions[s.bug_id]["instructions"]
                for s in campaign.signatures
            },
        }
    ]
    metadata = {
        "config": campaign.config.semantic_dict(),
        "workers": campaign.config.workers,
        "second_run_s": round(second, 3),
        "manifest_identical": True,
    }
    write_bench_json("BENCH_fuzz.json", "fuzz_campaign", rows, metadata)

    header(f"Fuzz smoke campaign — budget {BUDGET}, seed {SEED}")
    print(
        format_table(
            ["metric", "value"],
            [
                ("candidates/sec", rows[0]["candidates_per_sec"]),
                ("failures", rows[0]["total_failures"]),
                ("unique bugs", rows[0]["unique_bugs"]),
                ("dedup rate", rows[0]["dedup_rate"]),
                ("manifests identical", True),
            ],
        )
    )


def test_gated_pipeline_contains_everything():
    """Same candidates, gates on: nothing lands as a committed miscompile."""
    campaign = run_campaign(
        _campaign_config(oracle_gate=True, static_gate=True, budget=25),
        minimize=False,
    )
    outcomes = {f["outcome"] for r in campaign.results for f in r["failures"]}
    assert "miscompile_static" not in outcomes
    assert "miscompile_diff" not in outcomes
