#!/usr/bin/env python
"""Lint the repository's Markdown for formatting drift and dead links.

Three checks, all cheap enough for tier 1 (``tests/test_docs.py`` runs
``run_checks`` directly):

1. **CHANGES.md format** — one line per PR, each matching ``PR <n>: ...``
   with strictly increasing numbers starting at 1.  The file is the
   inter-session ledger, so a stray bullet or renumbering breaks the
   next session's ability to diff it against git history.
2. **ROADMAP.md format** — the sections the builder and the
   feature-requester both key off (``## Open items``, ``## Recent``)
   exist exactly once and in that order, and every open item is a
   sequentially numbered ``N. **...`` entry.
3. **Dead relative links** — every ``[text](target)`` in every tracked
   Markdown file resolves to a real file (http/mailto and in-page
   anchors excluded; tier 1 has no network).

Usage (from the repository root)::

    python tools/lint_docs.py          # exit 1 and list problems if any
"""

from __future__ import annotations

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_CHANGES_RE = re.compile(r"^PR (\d+): \S")
_OPEN_ITEM_RE = re.compile(r"^(\d+)\. \*\*")
# [text](target) — excluding images and pure in-page anchors.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)#\s]+)[^)]*\)")


def _markdown_files() -> list:
    """Every .md file in the repo, skipping VCS/venv/cache directories."""
    skip = {".git", ".venv", "__pycache__", "node_modules", ".pytest_cache"}
    found = []
    for dirpath, dirnames, filenames in os.walk(REPO_ROOT):
        dirnames[:] = [d for d in dirnames if d not in skip]
        for name in sorted(filenames):
            if name.endswith(".md"):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def check_changes(problems: list) -> None:
    path = os.path.join(REPO_ROOT, "CHANGES.md")
    if not os.path.exists(path):
        problems.append("CHANGES.md: missing")
        return
    with open(path, "r", encoding="utf-8") as fh:
        lines = [ln.rstrip("\n") for ln in fh]
    expected = 1
    for num, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        match = _CHANGES_RE.match(line)
        if not match:
            problems.append(
                f"CHANGES.md:{num}: line must start 'PR <n>: ' "
                f"(got {line[:40]!r})"
            )
            continue
        got = int(match.group(1))
        if got != expected:
            problems.append(
                f"CHANGES.md:{num}: expected PR {expected}, got PR {got} "
                "(entries must be sequential from 1)"
            )
            expected = got
        expected += 1


def check_roadmap(problems: list) -> None:
    path = os.path.join(REPO_ROOT, "ROADMAP.md")
    if not os.path.exists(path):
        problems.append("ROADMAP.md: missing")
        return
    with open(path, "r", encoding="utf-8") as fh:
        lines = [ln.rstrip("\n") for ln in fh]
    headings = [ln for ln in lines if ln.startswith("## ")]
    for required in ("## Open items", "## Recent"):
        if headings.count(required) != 1:
            problems.append(
                f"ROADMAP.md: expected exactly one '{required}' section "
                f"(found {headings.count(required)})"
            )
    if "## Open items" in headings and "## Recent" in headings:
        if headings.index("## Open items") > headings.index("## Recent"):
            problems.append(
                "ROADMAP.md: '## Open items' must precede '## Recent'"
            )
    # Open items are 'N. **Title.**' entries numbered 1, 2, 3, ...
    try:
        start = lines.index("## Open items") + 1
    except ValueError:
        return
    end = next(
        (i for i in range(start, len(lines)) if lines[i].startswith("## ")),
        len(lines),
    )
    expected = 1
    for num in range(start, end):
        match = _OPEN_ITEM_RE.match(lines[num])
        if not match:
            continue
        got = int(match.group(1))
        if got != expected:
            problems.append(
                f"ROADMAP.md:{num + 1}: open item numbered {got}, "
                f"expected {expected}"
            )
            expected = got
        expected += 1


def check_links(problems: list) -> None:
    for path in _markdown_files():
        rel = os.path.relpath(path, REPO_ROOT)
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        base = os.path.dirname(path)
        for target in _LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if not os.path.exists(os.path.normpath(os.path.join(base, target))):
                problems.append(f"{rel}: dead relative link ({target})")


def run_checks() -> list:
    problems = []
    check_changes(problems)
    check_roadmap(problems)
    check_links(problems)
    return problems


def main(argv=None) -> int:
    problems = run_checks()
    for problem in problems:
        sys.stderr.write(problem + "\n")
    if problems:
        sys.stderr.write(f"{len(problems)} problem(s) found\n")
        return 1
    print(f"lint_docs: {len(_markdown_files())} Markdown files clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
