"""The crash-isolated worker pool: isolation, quarantine, invariance.

These spawn real subprocess workers, so budgets are small; the hang
test uses a short deadline to keep the retry-then-quarantine path under
a few seconds.
"""

import pytest

from repro.fuzz import FuzzConfig, run_campaign
from repro.fuzz.worker import WorkerPool, _parse_worker_fault

_BASE = dict(budget=6, seed=7, legacy_bugs=True, oracle_gate=False, static_gate=False)


def test_parse_worker_fault_spec():
    assert _parse_worker_fault("worker_crash:3") == ("worker_crash", 3)
    assert _parse_worker_fault("worker_hang:0") == ("worker_hang", 0)
    assert _parse_worker_fault("codegen:2") is None  # pipeline fault, not ours
    assert _parse_worker_fault(None) is None


def test_subprocess_pool_matches_inline_results():
    inline = WorkerPool(FuzzConfig(**_BASE, workers=0))
    inline.run(list(range(6)))
    isolated = WorkerPool(FuzzConfig(**_BASE, workers=2, timeout=60.0))
    isolated.run(list(range(6)))
    assert inline.results == isolated.results
    assert isolated.quarantined == []


@pytest.mark.parametrize(
    "fault,timeout",
    [("worker_crash:3", 60.0), ("worker_hang:3", 1.0)],
)
def test_fault_is_quarantined_without_collateral(fault, timeout):
    clean = run_campaign(FuzzConfig(**_BASE, workers=0), minimize=False)
    faulty = run_campaign(
        FuzzConfig(**_BASE, workers=2, timeout=timeout, inject_fault=fault),
        minimize=False,
    )
    assert faulty.quarantined == [3]
    assert faulty.results[3]["status"] == "quarantined"
    # Every other candidate's result is exactly what the clean run saw.
    for index in range(6):
        if index != 3:
            assert faulty.results[index] == clean.results[index]


def test_quarantine_is_recorded_in_manifest(tmp_path):
    run_campaign(
        FuzzConfig(**_BASE, workers=2, timeout=60.0, inject_fault="worker_crash:1"),
        manifest_path=str(tmp_path / "m.json"),
        minimize=False,
    )
    from repro.obs.manifest import load_manifest

    manifest = load_manifest(str(tmp_path / "m.json"))
    assert manifest.metrics["quarantined"] == [1]
    assert manifest.outcomes.get("candidate_quarantined") == 1
