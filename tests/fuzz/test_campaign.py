"""Campaign orchestration: determinism, triage wiring, manifest, replay.

These run the pool in-process (``workers=0``) so tier-1 stays fast;
the subprocess path has its own suite in ``test_worker_pool.py``.
"""

import json

from repro.fuzz import FuzzConfig, replay_campaign, run_campaign
from repro.obs.manifest import load_manifest

_LEGACY = dict(
    budget=10,
    seed=42,
    legacy_bugs=True,
    oracle_gate=False,
    static_gate=False,
    workers=0,
)


def test_legacy_campaign_finds_both_sec3e_bugs(tmp_path):
    campaign = run_campaign(
        FuzzConfig(**_LEGACY, out_dir=str(tmp_path / "bugs")),
        manifest_path=str(tmp_path / "m.json"),
    )
    shapes = {s.shape for s in campaign.signatures}
    assert shapes == {"stale-reload", "phi-reload"}
    assert campaign.triage.unique_bugs == 2
    assert campaign.triage.total_failures > 2  # dedup did real work
    for signature in campaign.signatures:
        reduction = campaign.reductions[signature.bug_id]
        assert reduction["reproduced"]
        assert reduction["instructions"] <= 15
        assert (tmp_path / "bugs" / f"{signature.bug_id}.ir").exists()
        command = (tmp_path / "bugs" / f"{signature.bug_id}.cmd").read_text()
        assert "--legacy-bugs" in command and "--check" in command
    index = json.loads((tmp_path / "bugs" / "signatures.json").read_text())
    assert len(index) == 2


def test_fixed_pipeline_campaign_is_clean():
    campaign = run_campaign(
        FuzzConfig(budget=8, seed=42, oracle_gate=False, static_gate=False, workers=0),
        minimize=False,
    )
    assert campaign.triage.unique_bugs == 0
    assert all(r["status"] == "ok" for r in campaign.results)


def test_gates_veto_legacy_bugs_before_commit():
    campaign = run_campaign(
        FuzzConfig(budget=10, seed=42, legacy_bugs=True, workers=0),
        minimize=False,
    )
    # Every failure the gated pipeline records is a contained veto, never
    # a committed miscompile.
    outcomes = {f["outcome"] for r in campaign.results for f in r["failures"]}
    assert outcomes <= {"static_fail", "oracle_fail", "oracle_timeout", "rolled_back"}
    assert "miscompile_static" not in outcomes
    assert "miscompile_diff" not in outcomes


def test_manifests_are_byte_identical(tmp_path):
    config = FuzzConfig(**_LEGACY)
    run_campaign(config, manifest_path=str(tmp_path / "a.json"), minimize=False)
    run_campaign(config, manifest_path=str(tmp_path / "b.json"), minimize=False)
    assert (tmp_path / "a.json").read_bytes() == (tmp_path / "b.json").read_bytes()


def test_manifest_is_semantic_only(tmp_path):
    run_campaign(
        FuzzConfig(**_LEGACY), manifest_path=str(tmp_path / "m.json"), minimize=False
    )
    manifest = load_manifest(str(tmp_path / "m.json"))
    assert manifest.kind == "fuzz"
    assert manifest.created_unix == 0.0
    assert manifest.total_time == 0.0
    assert "workers" not in manifest.config  # infrastructure, not semantics
    assert manifest.metrics["unique_bugs"] == 2
    assert manifest.metrics["signatures"][0]["bug_id"] == "bug-001"


def test_replay_reproduces_recorded_signatures(tmp_path):
    run_campaign(
        FuzzConfig(**_LEGACY), manifest_path=str(tmp_path / "m.json"), minimize=False
    )
    verdict = replay_campaign(load_manifest(str(tmp_path / "m.json")))
    assert verdict["reproduced"]
    assert verdict["missing"] == []
    assert verdict["candidates"] > 0
