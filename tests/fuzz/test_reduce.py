"""Reducer: minimized reproducers stay buggy, get small, and round-trip."""

import pytest

from repro.fuzz import (
    FuzzConfig,
    candidate_family,
    generate_candidate,
    module_instruction_count,
    reduce_module,
    replay_shapes,
)
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module

_CFG = FuzzConfig(seed=42, legacy_bugs=True, oracle_gate=False, static_gate=False)


def _first_candidate(family):
    for index in range(40):
        if candidate_family(_CFG.seed, index) == family:
            return index
    raise AssertionError(f"no {family} candidate in window")


@pytest.mark.parametrize(
    "family,pair,shape",
    [
        ("diamond", ["d1", "d2"], "stale-reload"),
        ("invoke", ["v1", "v2"], "phi-reload"),
    ],
)
def test_minimizes_below_fifteen_instructions(family, pair, shape):
    index = _first_candidate(family)
    module = generate_candidate(_CFG, index)
    text = print_module(module)
    before = module_instruction_count(module)

    out = reduce_module(text, pair, legacy_bugs=True, shape=shape)

    assert out["reproduced"]
    assert out["instructions"] <= 15 < before
    # The reproducer is still valid IR and still exhibits exactly the bug...
    reduced = parse_module(str(out["text"]))
    verify_module(reduced)
    assert shape in replay_shapes(reduced, pair, legacy_bugs=True)
    # ...and the fixed repair path is clean on it.
    reduced = parse_module(str(out["text"]))
    assert replay_shapes(reduced, pair, legacy_bugs=False) == []


def test_non_reproducing_input_returned_unchanged():
    index = _first_candidate("diamond")
    text = print_module(generate_candidate(_CFG, index))
    out = reduce_module(text, ["d1", "d2"], legacy_bugs=False, shape="stale-reload")
    assert not out["reproduced"]
    assert out["text"] == text


def test_unknown_pair_yields_no_shapes():
    index = _first_candidate("diamond")
    module = generate_candidate(_CFG, index)
    assert replay_shapes(module, ["nope", "d2"], legacy_bugs=True) == []
