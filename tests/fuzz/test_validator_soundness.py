"""Property test: the translation validator is one-sided sound.

The validator's contract is that ``proved`` is trustworthy — the merge
pipeline *skips the differential oracle* on proved merges, so a single
false ``proved`` silently ships a miscompile.  Hypothesis drives the
fuzz campaign's own candidate generator (both repair paths, danger bias
up) and checks every attempt two independent ways:

* pipeline: an attempt the validator ``proved`` must never be failed by
  the oracle that ran right after it (``validate="observe"`` keeps the
  oracle on for every attempt);
* post-hoc: a *committed* merge the validator ``proved`` must show no
  static demote shape and no behavioural divergence against the
  pre-merge snapshot (the campaign's other two verifiers).

``refuted``/``unknown`` verdicts are unconstrained here — refuting or
giving up on a good merge costs recall, not correctness.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.fuzz.config import FuzzConfig
from repro.fuzz.verify import evaluate_candidate
from repro.harness.experiments import make_ranker
from repro.merge.pass_ import FunctionMergingPass, PassConfig
from repro.oracle import DifferentialOracle, OracleConfig

from .test_corpus import CORPUS, ENTRIES  # reuse the checked-in reproducers


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    index=st.integers(min_value=0, max_value=7),
    legacy=st.booleans(),
)
def test_proved_is_never_oracle_failed(seed, index, legacy):
    from repro.fuzz.generate import generate_candidate

    config = FuzzConfig(
        budget=1, seed=seed, legacy_bugs=legacy, danger_bias=0.9,
        inputs_per_function=4,
    )
    module = generate_candidate(config, index)
    pass_config = PassConfig(
        legacy_bugs=legacy, validate="observe", oracle=True
    )
    pass_ = FunctionMergingPass(
        make_ranker("f3m"),
        pass_config,
        oracle=DifferentialOracle(OracleConfig(inputs_per_function=4)),
    )
    report = pass_.run(module)
    for att in report.attempts:
        if att.validate_verdict != "proved":
            continue
        assert str(att.outcome) not in ("oracle_fail", "oracle_timeout"), (
            f"validator proved {att.function}/{att.candidate} "
            f"but the oracle failed it: {att.error}"
        )


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    index=st.integers(min_value=0, max_value=5),
    legacy=st.booleans(),
)
def test_proved_commits_survive_all_campaign_verifiers(seed, index, legacy):
    config = FuzzConfig(
        budget=1, seed=seed, legacy_bugs=legacy, danger_bias=0.9,
        inputs_per_function=4,
    )
    result = evaluate_candidate(config, index)
    shapes = {f["shape"] for f in result["failures"]}
    assert "validator-false-proved" not in shapes, result["failures"]


@pytest.mark.parametrize("name,pair,shape", ENTRIES)
def test_corpus_reproducers_never_prove_on_legacy_path(name, pair, shape):
    # The two known miscompile shapes are the validator's reason to
    # exist: a regression to ``proved`` (or even ``unknown``) on either
    # one means the static gate no longer catches the paper's bugs.
    from repro.alignment import align_functions
    from repro.ir.parser import parse_module
    from repro.merge.merger import MergeOptions, merge_functions
    from repro.staticcheck import REFUTED, validate_merge

    module = parse_module((CORPUS / name).read_text(), name=name)
    alignment = align_functions(
        module.get_function(pair[0]), module.get_function(pair[1])
    )
    merged = merge_functions(
        alignment, module, options=MergeOptions(legacy_bugs=True)
    )
    assert validate_merge(merged).verdict == REFUTED
