"""Triage: canonicalization and two-layer deduplication."""

from repro.fuzz import TriageIndex, canonical_tokens


def _failure(**over):
    base = {
        "candidate": 3,
        "family": "diamond",
        "stage": "codegen",
        "outcome": "miscompile_static",
        "shape": "stale-reload",
        "detail": (
            "reload of demotion slot %demote.p3 executes before any store "
            "to it (store placed after the use)"
        ),
        "function": "merged.d1.d2",
        "pair": ["d1", "d2"],
    }
    base.update(over)
    return base


def test_canonical_tokens_strip_run_noise():
    a = canonical_tokens(_failure())
    b = canonical_tokens(
        _failure(detail=a and _failure()["detail"].replace("%demote.p3", "%demote.q17"))
    )
    assert a == b
    assert a[:3] == ("codegen", "miscompile_static", "stale-reload")
    assert "<reg>" in a


def test_numbers_and_function_names_normalize():
    a = canonical_tokens(_failure(detail="@merged.d1.d2 diverges on 42 inputs"))
    b = canonical_tokens(_failure(detail="@merged.x.y diverges on 7 inputs"))
    assert a == b


def test_exact_duplicates_collapse():
    index = TriageIndex()
    sig1, new1 = index.add(_failure(candidate=1))
    sig2, new2 = index.add(_failure(candidate=9, detail=_failure()["detail"].replace("p3", "z9")))
    assert new1 and not new2
    assert sig1 is sig2
    assert sig1.count == 2
    assert sig1.candidates == [1, 9]
    assert index.unique_bugs == 1
    assert index.dedup_rate == 0.5


def test_distinct_shapes_stay_distinct():
    index = TriageIndex()
    index.add(_failure())
    _sig, new = index.add(
        _failure(
            shape="phi-reload",
            detail=(
                "reload of demotion slot %demote.inv1 feeds a phi but no "
                "store reaches it (legacy phi/invoke placement bug)"
            ),
        )
    )
    assert new
    assert index.unique_bugs == 2


def test_near_duplicate_detail_drift_collapses():
    index = TriageIndex()
    letters = "abcdefghij"
    long_tail = " ".join(f"w{letters[i // 10]}{letters[i % 10]}" for i in range(40))
    index.add(_failure(detail=f"divergence in shared tail: {long_tail}"))
    _sig, new = index.add(
        _failure(detail=f"divergence in shared tail: {long_tail} extra")
    )
    assert not new  # token streams are ~98% similar -> LSH layer catches it
    assert index.unique_bugs == 1


def test_signature_records_first_sighting():
    index = TriageIndex()
    sig, _ = index.add(_failure(candidate=5))
    assert sig.bug_id == "bug-001"
    assert sig.first_candidate == 5
    assert sig.decisions == [["d1", "d2"]]
    payload = sig.to_dict()
    assert payload["shape"] == "stale-reload"
    assert payload["count"] == 1
