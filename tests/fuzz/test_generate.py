"""Candidate generation: determinism, validity, family coverage."""

from repro.fuzz import (
    FAMILIES,
    FuzzConfig,
    candidate_family,
    candidate_seed,
    generate_candidate,
)
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module


def test_candidate_seed_decorrelates():
    seeds = {candidate_seed(s, i) for s in range(4) for i in range(16)}
    assert len(seeds) == 64  # no collisions across nearby (seed, index)


def test_candidate_family_matches_generation():
    config = FuzzConfig(seed=3)
    for index in range(8):
        family = candidate_family(config.seed, index)
        assert family in FAMILIES
        module = generate_candidate(config, index)
        assert module.name.startswith("fuzz.") or family == "frontend"


def test_generation_is_deterministic():
    config = FuzzConfig(seed=42)
    for index in range(6):
        a = print_module(generate_candidate(config, index))
        b = print_module(generate_candidate(config, index))
        assert a == b


def test_different_indices_differ():
    config = FuzzConfig(seed=42)
    texts = {print_module(generate_candidate(config, i)) for i in range(6)}
    assert len(texts) == 6


def test_all_candidates_verify():
    config = FuzzConfig(seed=7, danger_bias=1.0)
    for index in range(10):
        verify_module(generate_candidate(config, index))


def test_family_coverage_over_a_small_window():
    families = {candidate_family(42, i) for i in range(25)}
    assert families == set(FAMILIES)


def test_danger_families_contain_their_shapes():
    config = FuzzConfig(seed=42)
    saw_diamond = saw_invoke = False
    for index in range(25):
        family = candidate_family(config.seed, index)
        if family == "diamond" and not saw_diamond:
            module = generate_candidate(config, index)
            assert module.get_function("d1") is not None
            assert module.get_function("d2") is not None
            saw_diamond = True
        if family == "invoke" and not saw_invoke:
            module = generate_candidate(config, index)
            assert module.get_function("v1") is not None
            assert module.get_function("v2") is not None
            saw_invoke = True
    assert saw_diamond and saw_invoke
