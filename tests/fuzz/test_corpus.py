"""Known-bug detection over the checked-in regression corpus.

Every minimized reproducer in ``corpus/`` must (a) still trigger its
recorded §III-E shape on the legacy repair path and (b) be clean on the
fixed path.  If (a) ever fails, the bug *model* drifted — the campaign
would stop rediscovering the paper's bugs.  If (b) fails, the fix
regressed.
"""

from pathlib import Path

import pytest

from repro.fuzz import classify_diagnostic, replay_shapes
from repro.ir.parser import parse_module
from repro.ir.verifier import verify_module
from repro.staticcheck.lint import demote_reload_diagnostics

CORPUS = Path(__file__).resolve().parents[2] / "corpus"

# (file, pair, shape) — keep in lockstep with corpus/README.md.
ENTRIES = [
    ("sec3e_stale_reload.ir", ["d1", "d2"], "stale-reload"),
    ("sec3e_phi_reload.ir", ["v1", "v2"], "phi-reload"),
]


def _load(name):
    module = parse_module((CORPUS / name).read_text(), name=name)
    verify_module(module)
    return module


def test_corpus_covers_both_sec3e_shapes():
    assert {shape for _f, _p, shape in ENTRIES} == {"stale-reload", "phi-reload"}
    on_disk = {p.name for p in CORPUS.glob("*.ir")}
    assert on_disk == {name for name, _p, _s in ENTRIES}


@pytest.mark.parametrize("name,pair,shape", ENTRIES)
def test_legacy_path_still_reproduces(name, pair, shape):
    shapes = replay_shapes(_load(name), pair, legacy_bugs=True)
    assert shape in shapes


@pytest.mark.parametrize("name,pair,shape", ENTRIES)
def test_fixed_path_is_clean(name, pair, shape):
    assert replay_shapes(_load(name), pair, legacy_bugs=False) == []


@pytest.mark.parametrize("name,pair,shape", ENTRIES)
def test_reproducers_are_minimal(name, pair, shape):
    module = _load(name)
    total = sum(f.num_instructions for f in module.defined_functions())
    assert total <= 15


def test_shape_classifier_matches_lint_messages():
    # The corpus shapes come from classify_diagnostic over real lint
    # output; pin the mapping the campaign and corpus both rely on.
    assert classify_diagnostic("... feeds a phi but no store reaches it ...") == "phi-reload"
    assert classify_diagnostic("... executes before any store to it ...") == "stale-reload"
    assert demote_reload_diagnostics is not None
