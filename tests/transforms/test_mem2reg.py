"""Tests for SSA construction (mem2reg)."""

import pytest

from repro.frontend import compile_source
from repro.ir import Interpreter, Load, Store, parse_module, verify_function, verify_module
from repro.transforms import dominance_frontiers, promote_allocas, promote_module
from repro.analysis import DominatorTree


def _loads_stores(func):
    loads = sum(1 for i in func.instructions() if isinstance(i, Load))
    stores = sum(1 for i in func.instructions() if isinstance(i, Store))
    return loads, stores


class TestDominanceFrontiers:
    def test_diamond_frontier_is_join(self, module):
        from tests.conftest import build_diamond

        func = build_diamond(module)
        entry, big, small, join = func.blocks
        dt = DominatorTree(func)
        frontiers = dominance_frontiers(func, dt)
        assert frontiers[id(big)] == {join}
        assert frontiers[id(small)] == {join}
        assert frontiers[id(entry)] == set()

    def test_loop_header_in_own_frontier(self, module):
        from tests.conftest import build_loop

        func = build_loop(module)
        entry, header, body, exit_bb = func.blocks
        dt = DominatorTree(func)
        frontiers = dominance_frontiers(func, dt)
        assert header in frontiers[id(body)]
        assert header in frontiers[id(header)]  # loops: header dominates itself


class TestPromotion:
    def test_straightline_promotion(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i32\n"
            "  store i32 %x, i32* %p\n  %v = load i32, i32* %p\n"
            "  %r = add i32 %v, 1\n  ret i32 %r\n}"
        )
        module = parse_module(text)
        func = module.get_function("f")
        assert promote_allocas(func) == 1
        verify_function(func)
        assert _loads_stores(func) == (0, 0)
        assert Interpreter().run(func, [4]).value == 5

    def test_diamond_gets_phi(self):
        text = """
define i32 @f(i32 %x, i1 %c) {
entry:
  %p = alloca i32
  store i32 0, i32* %p
  br i1 %c, label %a, label %b
a:
  store i32 1, i32* %p
  br label %join
b:
  store i32 2, i32* %p
  br label %join
join:
  %v = load i32, i32* %p
  ret i32 %v
}
"""
        module = parse_module(text)
        func = module.get_function("f")
        promote_allocas(func)
        verify_function(func)
        join = func.blocks[-1]
        assert join.phis(), "a phi must be placed at the join"
        assert Interpreter().run(func, [0, 1]).value == 1
        assert Interpreter().run(func, [0, 0]).value == 2

    def test_read_before_write_is_undef_not_crash(self):
        text = (
            "define i32 @f() {\nentry:\n  %p = alloca i32\n"
            "  %v = load i32, i32* %p\n  ret i32 %v\n}"
        )
        module = parse_module(text)
        func = module.get_function("f")
        promote_allocas(func)
        verify_function(func)
        assert Interpreter().run(func, []).value == 0  # undef reads as 0

    def test_escaped_alloca_not_promoted(self):
        text = """
define void @sink(i32* %p) {
entry:
  ret void
}
define i32 @f(i32 %x) {
entry:
  %p = alloca i32
  store i32 %x, i32* %p
  call void @sink(i32* %p)
  %v = load i32, i32* %p
  ret i32 %v
}
"""
        module = parse_module(text)
        func = module.get_function("f")
        assert promote_allocas(func) == 0
        assert Interpreter().run(func, [3]).value == 3

    def test_stored_pointer_not_promoted(self):
        # Storing the alloca's address itself must block promotion.
        text = """
define i32 @f(i32 %x) {
entry:
  %p = alloca i32
  %pp = alloca i32*
  store i32* %p, i32** %pp
  store i32 %x, i32* %p
  %v = load i32, i32* %p
  ret i32 %v
}
"""
        module = parse_module(text)
        func = module.get_function("f")
        promoted = promote_allocas(func)
        # %p escapes via the store into %pp; %pp itself is promotable.
        assert promoted == 1
        verify_function(func)
        assert Interpreter().run(func, [3]).value == 3


class TestOnFrontendOutput:
    GCD = """
    int gcd(int a, int b) {
        while (b != 0) { int t = b; b = a % b; a = t; }
        return a;
    }
    """

    def test_gcd_promotes_fully(self):
        module = compile_source(self.GCD)
        func = module.get_function("gcd")
        before_loads, before_stores = _loads_stores(func)
        assert before_loads > 0 and before_stores > 0
        promote_module(module)
        verify_module(module)
        assert _loads_stores(func) == (0, 0)
        assert Interpreter().run(func, [48, 36]).value == 12

    @pytest.mark.parametrize(
        "src,name,args,expected",
        [
            (
                "int fact(int n) { int a = 1; for (int i = 2; i <= n; i = i + 1)"
                " { a = a * i; } return a; }",
                "fact",
                [6],
                720,
            ),
            (
                "int fib(int n) { if (n < 2) { return n; }"
                " return fib(n-1) + fib(n-2); }",
                "fib",
                [10],
                55,
            ),
            (
                "double avg(double a, double b) { return (a + b) / 2.0; }",
                "avg",
                [3.0, 5.0],
                4.0,
            ),
        ],
    )
    def test_equivalence_after_promotion(self, src, name, args, expected):
        module = compile_source(src)
        func = module.get_function(name)
        assert Interpreter().run(func, args).value == expected
        promote_module(module)
        verify_module(module)
        assert Interpreter().run(func, args).value == expected

    def test_promotion_shrinks_code(self):
        module = compile_source(self.GCD)
        before = module.num_instructions
        promote_module(module)
        assert module.num_instructions < before
