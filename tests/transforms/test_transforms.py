"""Tests for the clean-up passes (DCE, SimplifyCFG, constant folding)."""

import random

import pytest

from repro.ir import (
    BasicBlock,
    Branch,
    ConstantInt,
    I32,
    Interpreter,
    Module,
    parse_module,
    verify_function,
    verify_module,
)
from repro.transforms import (
    eliminate_dead_code,
    eliminate_dead_functions,
    fold_constants,
    optimize_function,
    optimize_module,
    simplify_cfg,
)
from tests.conftest import build_diamond, build_loop, build_straightline


class TestDCE:
    def test_removes_unused_pure_instruction(self, module):
        func = build_straightline(module)
        from repro.ir import BinaryOp, Opcode

        dead = BinaryOp(Opcode.MUL, func.args[0], ConstantInt(I32, 9))
        dead.name = "dead"
        func.entry.insert(0, dead)
        assert eliminate_dead_code(func) == 1
        verify_function(func)

    def test_keeps_side_effects(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i32\n"
            "  store i32 %x, i32* %p\n  ret i32 %x\n}"
        )
        m = parse_module(text)
        func = m.get_function("f")
        assert eliminate_dead_code(func) == 0

    def test_cascading_removal(self, module):
        func = build_straightline(module)
        from repro.ir import BinaryOp, Opcode

        a = BinaryOp(Opcode.ADD, func.args[0], ConstantInt(I32, 1))
        b = BinaryOp(Opcode.MUL, a, ConstantInt(I32, 2))
        func.entry.insert(0, a)
        func.entry.insert(1, b)
        assert eliminate_dead_code(func) == 2

    def test_unused_phi_removed(self, module):
        func = build_diamond(module)
        join = func.blocks[-1]
        from repro.ir import Phi

        extra = Phi(I32)
        for pred in join.predecessors():
            extra.add_incoming(ConstantInt(I32, 0), pred)
        join.insert(0, extra)
        assert eliminate_dead_code(func) == 1
        verify_function(func)

    def test_dead_function_elimination(self):
        m = Module("m")
        build_straightline(m, "unused")
        keep = build_straightline(m, "kept")
        keep.internal = False
        assert eliminate_dead_functions(m) == 1
        assert m.get_function("unused") is None
        assert m.get_function("kept") is not None


class TestConstFold:
    def test_binary_fold(self):
        text = (
            "define i32 @f() {\nentry:\n  %a = add i32 3, 4\n"
            "  %b = mul i32 %a, 2\n  ret i32 %b\n}"
        )
        m = parse_module(text)
        func = m.get_function("f")
        folded = fold_constants(func)
        assert folded == 2
        assert Interpreter().run(func, []).value == 14

    def test_identity_simplifications(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, 0\n"
            "  %b = mul i32 %a, 1\n  %c = xor i32 %b, 0\n  ret i32 %c\n}"
        )
        m = parse_module(text)
        func = m.get_function("f")
        fold_constants(func)
        eliminate_dead_code(func)
        assert func.num_instructions == 1  # just the ret
        assert Interpreter().run(func, [9]).value == 9

    def test_select_fold(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n"
            "  %s = select i1 1, i32 %x, i32 7\n  ret i32 %s\n}"
        )
        m = parse_module(text)
        func = m.get_function("f")
        assert fold_constants(func) == 1
        assert Interpreter().run(func, [5]).value == 5

    def test_select_equal_arms(self):
        text = (
            "define i32 @f(i1 %c) {\nentry:\n"
            "  %s = select i1 %c, i32 7, i32 7\n  ret i32 %s\n}"
        )
        m = parse_module(text)
        assert fold_constants(m.get_function("f")) == 1

    def test_icmp_fold(self):
        text = (
            "define i32 @f() {\nentry:\n  %c = icmp slt i32 -1, 1\n"
            "  %z = zext i1 %c to i32\n  ret i32 %z\n}"
        )
        m = parse_module(text)
        func = m.get_function("f")
        fold_constants(func)
        assert Interpreter().run(func, []).value == 1

    def test_no_fold_of_division_by_zero(self):
        text = "define i32 @f() {\nentry:\n  %a = sdiv i32 4, 0\n  ret i32 %a\n}"
        m = parse_module(text)
        assert fold_constants(m.get_function("f")) == 0  # trap preserved

    def test_sdiv_signed_semantics(self):
        text = "define i32 @f() {\nentry:\n  %a = sdiv i32 -7, 2\n  ret i32 %a\n}"
        m = parse_module(text)
        func = m.get_function("f")
        fold_constants(func)
        assert Interpreter().run(func, []).value == (-3) & 0xFFFFFFFF


class TestSimplifyCFG:
    def test_constant_branch_folded(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n  br i1 1, label %a, label %b\n"
            "a:\n  ret i32 1\nb:\n  ret i32 2\n}"
        )
        m = parse_module(text)
        func = m.get_function("f")
        simplify_cfg(func)
        verify_function(func)
        assert len(func.blocks) <= 2
        assert Interpreter().run(func, [0]).value == 1

    def test_empty_block_forwarding(self):
        text = (
            "define i32 @f(i1 %c) {\nentry:\n  br i1 %c, label %hop, label %out\n"
            "hop:\n  br label %out\n"
            "out:\n  %p = phi i32 [ 1, %hop ], [ 2, %entry ]\n  ret i32 %p\n}"
        )
        m = parse_module(text)
        func = m.get_function("f")
        before = Interpreter().run(func, [1]).value, Interpreter().run(func, [0]).value
        simplify_cfg(func)
        verify_function(func)
        after = Interpreter().run(func, [1]).value, Interpreter().run(func, [0]).value
        assert before == after == (1, 2)

    def test_chain_merging(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, 1\n  br label %next\n"
            "next:\n  %b = mul i32 %a, 2\n  br label %last\n"
            "last:\n  ret i32 %b\n}"
        )
        m = parse_module(text)
        func = m.get_function("f")
        simplify_cfg(func)
        verify_function(func)
        assert len(func.blocks) == 1
        assert Interpreter().run(func, [3]).value == 8

    def test_diamond_untouched(self, module):
        func = build_diamond(module)
        n_blocks = len(func.blocks)
        simplify_cfg(func)
        verify_function(func)
        assert len(func.blocks) == n_blocks
        assert Interpreter().run(func, [7, 8]).value == 30

    def test_loop_preserved(self, module):
        func = build_loop(module, trip=5)
        simplify_cfg(func)
        verify_function(func)
        assert Interpreter().run(func, [10]).value == 20


class TestPipeline:
    def test_optimize_function_reaches_fixpoint(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n  %c = icmp sgt i32 5, 3\n"
            "  br i1 %c, label %a, label %b\n"
            "a:\n  %v = add i32 %x, 0\n  br label %out\n"
            "b:\n  br label %out\n"
            "out:\n  %p = phi i32 [ %v, %a ], [ 9, %b ]\n  ret i32 %p\n}"
        )
        m = parse_module(text)
        func = m.get_function("f")
        stats = optimize_function(func)
        verify_function(func)
        assert stats.total > 0
        assert len(func.blocks) == 1
        assert Interpreter().run(func, [4]).value == 4

    def test_optimize_module_preserves_workload_semantics(self):
        from repro.workloads import build_workload

        module = build_workload(60, "optcheck")
        driver = module.get_function("driver")
        ref = {x: Interpreter().run(driver, [x]).value for x in (0, 5, 12)}
        optimize_module(module)
        verify_module(module)
        new_driver = module.get_function("driver")
        for x, expected in ref.items():
            assert Interpreter().run(new_driver, [x]).value == expected

    def test_optimize_after_merge_shrinks_module(self):
        """The realistic pipeline: merge, then clean up; size only drops."""
        from repro.analysis import module_size
        from repro.merge import FunctionMergingPass
        from repro.search import MinHashLSHRanker
        from repro.workloads import build_workload

        module = build_workload(80, "mergeopt")
        driver = module.get_function("driver")
        ref = Interpreter().run(driver, [3]).value
        FunctionMergingPass(MinHashLSHRanker()).run(module)
        merged_size = module_size(module)
        optimize_module(module)
        verify_module(module)
        assert module_size(module) <= merged_size
        assert Interpreter().run(module.get_function("driver"), [3]).value == ref


class TestPropertyPreservation:
    @pytest.mark.parametrize("seed", range(6))
    def test_pipeline_preserves_generated_functions(self, seed):
        from repro.workloads import FunctionGenerator

        module = Module(f"pp{seed}")
        gen = FunctionGenerator(module, random.Random(seed))
        funcs = [gen.generate(f"g{i}") for i in range(4)]
        rng = random.Random(seed + 1)
        cases = []
        for func in funcs:
            args = [
                1.5 if p.is_float else rng.randint(0, 40)
                for p in func.ftype.params
            ]
            try:
                cases.append((func, args, Interpreter().run(func, args).value))
            except Exception:
                cases.append((func, args, "trap"))
        optimize_module(module)
        verify_module(module)
        for func, args, expected in cases:
            if expected == "trap" or module.get_function(func.name) is None:
                continue
            assert Interpreter().run(func, args).value == expected
