"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.ir import (
    BasicBlock,
    Function,
    FunctionType,
    I32,
    IRBuilder,
    ICmpPred,
    Module,
    parse_module,
)


@pytest.fixture
def module() -> Module:
    return Module("test")


def build_diamond(module: Module, name: str = "diamond", mul_by: int = 2) -> Function:
    """i32 f(i32 x, i32 y): classic if/else diamond with a phi join."""
    func = Function(FunctionType(I32, [I32, I32]), name, parent=module)
    b = IRBuilder(BasicBlock("entry", func))
    s = b.add(func.args[0], func.args[1])
    c = b.icmp(ICmpPred.SGT, s, b.const_int(I32, 10))
    big = BasicBlock("big", func)
    small = BasicBlock("small", func)
    join = BasicBlock("join", func)
    b.cond_br(c, big, small)
    b.position_at_end(big)
    v1 = b.mul(s, b.const_int(I32, mul_by))
    b.br(join)
    b.position_at_end(small)
    v2 = b.sub(s, b.const_int(I32, 1))
    b.br(join)
    b.position_at_end(join)
    p = b.phi(I32)
    p.add_incoming(v1, big)
    p.add_incoming(v2, small)
    b.ret(p)
    return func


def build_straightline(module: Module, name: str = "line", k: int = 3) -> Function:
    """i32 f(i32 x): a short straight-line function."""
    func = Function(FunctionType(I32, [I32]), name, parent=module)
    b = IRBuilder(BasicBlock("entry", func))
    v = b.add(func.args[0], b.const_int(I32, k))
    v = b.mul(v, b.const_int(I32, 3))
    v = b.xor(v, b.const_int(I32, 0x55))
    b.ret(v)
    return func


def build_loop(module: Module, name: str = "loop", trip: int = 5) -> Function:
    """i32 f(i32 x): accumulate x over a counted loop."""
    func = Function(FunctionType(I32, [I32]), name, parent=module)
    entry = BasicBlock("entry", func)
    header = BasicBlock("header", func)
    body = BasicBlock("body", func)
    exit_bb = BasicBlock("exit", func)
    b = IRBuilder(entry)
    b.br(header)
    b.position_at_end(header)
    iv = b.phi(I32, "iv")
    acc = b.phi(I32, "acc")
    iv.add_incoming(b.const_int(I32, 0), entry)
    acc.add_incoming(func.args[0], entry)
    cond = b.icmp(ICmpPred.SLT, iv, b.const_int(I32, trip))
    b.cond_br(cond, body, exit_bb)
    b.position_at_end(body)
    acc_next = b.add(acc, iv)
    # Named "iv.next" so the mutation engine never breaks loop termination
    # (same convention as the workload generator).
    iv_next = b.add(iv, b.const_int(I32, 1), "iv.next")
    b.br(header)
    iv.add_incoming(iv_next, body)
    acc.add_incoming(acc_next, body)
    b.position_at_end(exit_bb)
    b.ret(acc)
    return func


def parse(text: str) -> Module:
    return parse_module(text)
