"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def module_file(tmp_path):
    path = tmp_path / "prog.ll"
    assert main(["generate", "-n", "30", "-o", str(path)]) == 0
    return path


class TestGenerate:
    def test_writes_parseable_module(self, module_file):
        from repro.ir import parse_module, verify_module

        module = parse_module(module_file.read_text())
        verify_module(module)
        assert len(module.defined_functions()) >= 30

    def test_stdout_output(self, capsys):
        assert main(["generate", "-n", "10"]) == 0
        out = capsys.readouterr().out
        assert "define" in out


class TestStats:
    def test_prints_metrics(self, module_file, capsys):
        assert main(["stats", str(module_file)]) == 0
        out = capsys.readouterr().out
        assert "functions (defined)" in out
        assert "modelled size" in out


class TestMerge:
    @pytest.mark.parametrize("strategy", ["hyfm", "f3m", "f3m-adaptive", "identical"])
    def test_strategies_produce_valid_output(self, module_file, tmp_path, strategy):
        out = tmp_path / f"out-{strategy}.ll"
        assert (
            main(["merge", str(module_file), "-s", strategy, "-o", str(out)]) == 0
        )
        from repro.ir import parse_module, verify_module

        verify_module(parse_module(out.read_text()))

    def test_merge_reduces_size(self, module_file, tmp_path):
        from repro.analysis import module_size
        from repro.ir import parse_module

        out = tmp_path / "merged.ll"
        main(["merge", str(module_file), "-s", "f3m", "-o", str(out)])
        before = module_size(parse_module(module_file.read_text()))
        after = module_size(parse_module(out.read_text()))
        assert after < before

    def test_merge_preserves_semantics(self, module_file, tmp_path, capsys):
        out = tmp_path / "merged.ll"
        main(["merge", str(module_file), "-s", "f3m", "-o", str(out)])
        assert main(["run", str(module_file), "--entry", "driver", "-a", "7"]) == 0
        ref = capsys.readouterr().out
        assert main(["run", str(out), "--entry", "driver", "-a", "7"]) == 0
        assert capsys.readouterr().out == ref

    def test_optimize_flag(self, module_file, tmp_path):
        out = tmp_path / "opt.ll"
        assert (
            main(
                ["merge", str(module_file), "-s", "f3m", "--optimize", "-o", str(out)]
            )
            == 0
        )


class TestMergeRobustnessFlags:
    def test_oracle_flag_preserves_semantics(self, module_file, tmp_path, capsys):
        out = tmp_path / "merged.ll"
        assert (
            main(["merge", str(module_file), "-s", "hyfm", "--oracle", "-o", str(out)])
            == 0
        )
        err = capsys.readouterr().err
        assert "outcome" in err  # the per-outcome table is printed
        assert main(["run", str(module_file), "--entry", "driver", "-a", "7"]) == 0
        ref = capsys.readouterr().out
        assert main(["run", str(out), "--entry", "driver", "-a", "7"]) == 0
        assert capsys.readouterr().out == ref

    def test_inject_fault_is_contained_by_default(self, module_file, tmp_path, capsys):
        out = tmp_path / "merged.ll"
        assert (
            main(
                [
                    "merge",
                    str(module_file),
                    "-s",
                    "hyfm",
                    "--inject-fault",
                    "codegen:1",
                    "-o",
                    str(out),
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "contained failure" in err
        assert "codegen:InjectedFault" in err
        from repro.ir import parse_module, verify_module

        verify_module(parse_module(out.read_text()))

    def test_inject_fault_with_on_error_raise(self, module_file, tmp_path):
        from repro.faults import InjectedFault

        with pytest.raises(InjectedFault):
            main(
                [
                    "merge",
                    str(module_file),
                    "-s",
                    "hyfm",
                    "--inject-fault",
                    "codegen:1",
                    "--on-error",
                    "raise",
                    "-o",
                    str(tmp_path / "x.ll"),
                ]
            )

    def test_fault_every_commit_yields_identity(self, module_file, tmp_path, capsys):
        # Failing every commit means no merge can land; the output module
        # must equal the input byte for byte.
        out = tmp_path / "merged.ll"
        assert (
            main(
                [
                    "merge",
                    str(module_file),
                    "-s",
                    "hyfm",
                    "--inject-fault",
                    "commit",
                    "-o",
                    str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert out.read_text() == module_file.read_text()


class TestRun:
    def test_missing_entry_fails(self, module_file):
        assert main(["run", str(module_file), "--entry", "nope"]) == 1

    def test_wrong_arity_fails(self, module_file):
        assert main(["run", str(module_file), "--entry", "driver"]) == 1

    def test_runs_driver(self, module_file, capsys):
        assert main(["run", str(module_file), "--entry", "driver", "-a", "3"]) == 0
        assert "result:" in capsys.readouterr().out


class TestCompare:
    def test_prints_all_strategies(self, capsys):
        assert main(["compare", "-n", "60"]) == 0
        out = capsys.readouterr().out
        for name in ("hyfm", "f3m", "f3m-adaptive"):
            assert name in out


class TestCompile:
    SOURCE = "int sq(int x) { return x * x; }\nint f(int x) { return sq(x) + 1; }\n"

    def test_compile_and_run(self, tmp_path, capsys):
        src = tmp_path / "prog.mc"
        src.write_text(self.SOURCE)
        out = tmp_path / "prog.ll"
        assert main(["compile", str(src), "-o", str(out)]) == 0
        assert main(["run", str(out), "--entry", "f", "-a", "6"]) == 0
        assert "result: 37" in capsys.readouterr().out

    def test_no_mem2reg_keeps_allocas(self, tmp_path):
        src = tmp_path / "prog.mc"
        src.write_text(self.SOURCE)
        out = tmp_path / "raw.ll"
        assert main(["compile", str(src), "--no-mem2reg", "-o", str(out)]) == 0
        assert "alloca" in out.read_text()
        out2 = tmp_path / "ssa.ll"
        assert main(["compile", str(src), "-o", str(out2)]) == 0
        assert "alloca" not in out2.read_text()

    def test_compile_then_merge_toolchain(self, tmp_path, capsys):
        src = tmp_path / "prog.mc"
        src.write_text(
            "int a(int x) { int v = x * 3; if (v > 10) { v = v - 10; } return v; }\n"
            "int b(int x) { int v = x * 5; if (v > 10) { v = v - 10; } return v; }\n"
            "int use(int x) { return a(x) + b(x); }\n"
        )
        out = tmp_path / "prog.ll"
        merged = tmp_path / "merged.ll"
        assert main(["compile", str(src), "-o", str(out)]) == 0
        assert main(["run", str(out), "--entry", "use", "-a", "4"]) == 0
        ref = capsys.readouterr().out
        assert main(["merge", str(out), "-s", "f3m", "-o", str(merged)]) == 0
        assert "merged." in merged.read_text()
        assert main(["run", str(merged), "--entry", "use", "-a", "4"]) == 0
        assert capsys.readouterr().out == ref


class TestObservability:
    def test_trace_and_manifest_emitted(self, module_file, tmp_path):
        trace_path = tmp_path / "t.jsonl"
        manifest_path = tmp_path / "run.json"
        out = tmp_path / "out.ll"
        assert (
            main(
                [
                    "merge", str(module_file), "-s", "f3m",
                    "--trace", str(trace_path),
                    "--manifest", str(manifest_path),
                    "-o", str(out),
                ]
            )
            == 0
        )
        from repro.obs.manifest import load_manifest
        from repro.obs.trace import load_trace, span_totals

        spans = load_trace(str(trace_path))
        totals = span_totals(spans)
        assert totals["attempt"]["count"] >= 30  # one per candidate
        assert "rank" in totals
        manifest = load_manifest(str(manifest_path))
        assert manifest.kind == "merge"
        assert manifest.functions >= 30
        assert tuple(manifest.outcomes)  # outcome table present
        # Span stage totals and the manifest's profiler stage table are two
        # views of the same timed regions.
        assert totals["rank"]["total_s"] == pytest.approx(
            manifest.stages["rank"], rel=0.05, abs=1e-3
        )

    def test_metrics_flag_writes_default_manifest(self, module_file, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "out.ll"
        assert main(["merge", str(module_file), "-s", "f3m", "--metrics", "-o", str(out)]) == 0
        err = capsys.readouterr().err
        assert "wrote manifest run-manifest.json" in err
        assert "ranking.queries" in err  # rendered metrics table
        assert (tmp_path / "run-manifest.json").exists()

    def test_report_renders_and_diffs(self, module_file, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        out = tmp_path / "out.ll"
        for path in (a, b):
            assert (
                main(
                    [
                        "merge", str(module_file), "-s", "f3m",
                        "--manifest", str(path), "-o", str(out),
                    ]
                )
                == 0
            )
        capsys.readouterr()
        assert main(["report", str(a)]) == 0
        assert "strategy" in capsys.readouterr().out
        # The two runs merged the same module the same way; only timing
        # (stages, total_time, metrics histograms) and provenance differ.
        rc = main(
            [
                "report", str(a), str(b),
                "--ignore", "created_unix,git_rev,stages,total_time,metrics",
            ]
        )
        assert rc == 0
        assert "manifests identical" in capsys.readouterr().out

    def test_report_diff_exits_nonzero_on_difference(self, module_file, tmp_path, capsys):
        import json

        a = tmp_path / "a.json"
        out = tmp_path / "out.ll"
        assert (
            main(["merge", str(module_file), "-s", "f3m", "--manifest", str(a), "-o", str(out)]) == 0
        )
        payload = json.loads(a.read_text())
        payload["merges"] += 1
        b = tmp_path / "b.json"
        b.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["report", str(a), str(b)]) == 1
        assert "merges" in capsys.readouterr().out

    def test_no_flags_no_manifest(self, module_file, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "out.ll"
        assert main(["merge", str(module_file), "-s", "f3m", "-o", str(out)]) == 0
        assert not (tmp_path / "run-manifest.json").exists()
