"""Copy-on-write clones, external-fingerprint probes, tombstone re-insert
and the configurable compaction ratio — the serve-daemon index primitives."""

import pytest

from repro.fingerprint import MinHashConfig, MinHashFingerprint
from repro.search import LSHIndex
from repro.search.sharded import ShardedLSHIndex


def fp(seq, k=200):
    return MinHashFingerprint.from_encoded(seq, MinHashConfig(k=k))


def seq(i, drift=0):
    base = list(range(i * 7, i * 7 + 40))
    if drift:
        base[:drift] = range(9000 + i, 9000 + i + drift)
    return base


def populated(cls=LSHIndex, n=20, **kwargs):
    index = cls(rows=2, bands=100, **kwargs)
    index.insert_batch([f"f{i}" for i in range(n)], [fp(seq(i % 5, drift=i // 5)) for i in range(n)])
    return index


def answers(index):
    return {key: index.best_match(key) for key in list(index._row_of) if key in index}


class TestTombstoneReinsert:
    def test_removed_key_can_reenter(self):
        index = LSHIndex(rows=2, bands=100)
        index.insert("a", fp(seq(0)))
        index.insert("b", fp(seq(0)))
        index.remove("a")
        index.insert("a", fp(seq(0, drift=3)))
        assert "a" in index
        assert len(index) == 2
        name, _ = index.best_match("b")
        assert name == "a"

    def test_live_duplicate_still_rejected(self):
        index = LSHIndex(rows=2, bands=100)
        index.insert("a", fp(seq(0)))
        with pytest.raises(ValueError):
            index.insert("a", fp(seq(1)))
        with pytest.raises(ValueError):
            index.insert_batch(["a"], [fp(seq(1))])

    def test_compaction_after_reinsert_keeps_new_row(self):
        index = LSHIndex(rows=2, bands=100, compact_ratio=None)
        index.insert("a", fp(seq(0)))
        index.insert("b", fp(seq(0)))
        index.remove("a")
        index.insert("a", fp(seq(0, drift=2)))
        index.compact()
        assert len(index) == 2
        assert index.index_stats()["tombstones"] == 0
        assert index.best_match("b")[0] == "a"


class TestCompactRatio:
    def test_default_ratio_matches_historical_half_live(self):
        index = populated(n=100)
        for i in range(50):
            index.remove(f"f{i}")
        assert index.compactions == 0  # 50 live, 50 tombstones: not yet
        index.remove("f50")
        assert index.compactions == 1  # 49 live, 51 tombstones: > ratio*live

    def test_low_ratio_compacts_earlier(self):
        index = populated(n=100, compact_ratio=0.25)
        for i in range(20):
            index.remove(f"f{i}")
        assert index.compactions == 0
        index.remove("f20")
        assert index.compactions == 1  # 79 live, 21 dead > 0.25*79

    def test_none_disables_auto_compaction(self):
        index = populated(n=100, compact_ratio=None)
        for i in range(99):
            index.remove(f"f{i}")
        assert index.compactions == 0
        assert index.index_stats()["tombstones"] == 99

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            LSHIndex(compact_ratio=0.0)
        with pytest.raises(ValueError):
            LSHIndex(compact_ratio=-1.0)

    def test_ranker_and_pass_config_plumb_the_knob(self):
        from repro.merge.pass_ import FunctionMergingPass, PassConfig
        from repro.search.pairing import MinHashLSHRanker

        ranker = MinHashLSHRanker(compact_ratio=0.25)
        assert ranker.compact_ratio == 0.25
        ranker.preprocess([])
        assert ranker._index.compact_ratio == 0.25

        with pytest.raises(ValueError):
            PassConfig(lsh_compact_ratio=0.0)
        ranker2 = MinHashLSHRanker()
        FunctionMergingPass(ranker2, PassConfig(lsh_compact_ratio=0.5))
        assert ranker2.compact_ratio == 0.5


class TestClone:
    def test_clone_answers_identically(self):
        index = populated()
        dup = index.clone()
        assert answers(dup) == answers(index)

    def test_clone_mutations_invisible_to_source(self):
        index = populated()
        before = answers(index)
        dup = index.clone()
        dup.remove("f0")
        dup.insert("new", fp(seq(0)))
        dup.insert_batch(["n2", "n3"], [fp(seq(1)), fp(seq(2))])
        assert answers(index) == before
        assert "new" in dup and "new" not in index
        assert "f0" not in dup and "f0" in index

    def test_clone_compaction_does_not_corrupt_source(self):
        index = populated()
        before = answers(index)
        dup = index.clone()
        for i in range(15):
            dup.remove(f"f{i}")
        dup.compact()
        assert answers(index) == before
        assert dup.index_stats()["tombstones"] == 0

    def test_source_compaction_does_not_corrupt_clone(self):
        index = populated()
        dup = index.clone()
        before = answers(dup)
        for i in range(15):
            index.remove(f"f{i}")
        index.compact()
        assert answers(dup) == before

    def test_clone_chain(self):
        index = populated()
        gen2 = index.clone().clone()
        gen2.insert("x", fp(seq(3)))
        assert "x" in gen2 and "x" not in index

    def test_capacity_growth_unshares_buffers(self):
        index = populated(n=8)
        dup = index.clone()
        before = answers(index)
        # Push the clone past the shared buffer capacity.
        dup.insert_batch(
            [f"g{i}" for i in range(300)], [fp(seq(i % 7)) for i in range(300)]
        )
        assert not dup._buffers_shared
        assert answers(index) == before


class TestShardedClone:
    def test_sharded_clone_matches_serial_clone(self):
        serial = populated(LSHIndex)
        sharded = populated(ShardedLSHIndex, shards=4)
        sdup = sharded.clone()
        sdup.remove("f0")
        sdup.insert("new", fp(seq(1)))
        sref = serial.clone()
        sref.remove("f0")
        sref.insert("new", fp(seq(1)))
        assert answers(sdup) == answers(sref)
        assert answers(sharded) == answers(serial)

    def test_sharded_clone_isolated_from_source(self):
        sharded = populated(ShardedLSHIndex, shards=2)
        before = answers(sharded)
        dup = sharded.clone()
        for i in range(10):
            dup.remove(f"f{i}")
        dup.compact()
        assert answers(sharded) == before

    def test_frozen_store_backed_index_refuses_clone(self, tmp_path):
        import numpy as np

        from repro.fingerprint.store import FingerprintStore

        config = MinHashConfig()
        store = FingerprintStore.create(str(tmp_path / "s"), config, store_encoded=False)
        fps = [fp(seq(i)) for i in range(6)]
        store.append_fingerprints(
            values=np.stack([f.values for f in fps]),
            lengths=np.full(6, 40, dtype=np.int64),
            h1=np.arange(6, dtype=np.int64),
            h2=np.arange(100, 106, dtype=np.int64),
            num_shingles=np.full(6, 38, dtype=np.int64),
        )
        index = ShardedLSHIndex.from_store(store, rows=2, bands=100, shards=2)
        with pytest.raises(RuntimeError):
            index.clone()


class TestProbe:
    def test_probe_matches_resident_query_plus_self(self):
        index = populated()
        resident = index.fingerprint("f0")
        probe_hits = dict(index.probe(resident))
        query_hits = dict(index.query("f0"))
        assert probe_hits.pop("f0") == 1.0  # probe sees the resident twin
        assert probe_hits == query_hits

    def test_probe_skips_tombstones(self):
        index = LSHIndex(rows=2, bands=100)
        index.insert("a", fp(seq(0)))
        index.insert("b", fp(seq(0)))
        index.remove("a")
        hits = dict(index.probe(fp(seq(0))))
        assert "a" not in hits and "b" in hits

    def test_probe_is_read_only(self):
        index = populated()
        live = len(index)
        index.probe(fp([1, 2, 3, 4, 5]))
        assert len(index) == live

    def test_probe_on_sharded_matches_serial(self):
        serial = populated(LSHIndex)
        sharded = populated(ShardedLSHIndex, shards=4)
        probe = fp(seq(2, drift=1))
        assert sorted(serial.probe(probe)) == sorted(sharded.probe(probe))

    def test_probe_rejects_undersized_fingerprint(self):
        index = populated()
        with pytest.raises(ValueError):
            index.probe(fp([1, 2, 3], k=50))
