"""Tests for the banded LSH index."""

import numpy as np
import pytest

from repro.fingerprint import MinHashConfig, MinHashFingerprint
from repro.search import LSHIndex, LSHQueryStats, lsh_match_probability


def fp(seq, k=200):
    return MinHashFingerprint.from_encoded(seq, MinHashConfig(k=k))


class TestBasics:
    def test_insert_query_similar(self):
        index = LSHIndex(rows=2, bands=100)
        base = list(range(50))
        variant = list(range(50))
        variant[10] = 999
        far = list(range(1000, 1050))
        index.insert("base", fp(base))
        index.insert("variant", fp(variant))
        index.insert("far", fp(far))
        result = index.best_match("base")
        assert result is not None
        name, sim = result
        assert name == "variant"
        assert sim > 0.5

    def test_dissimilar_not_candidates(self):
        index = LSHIndex(rows=2, bands=100)
        index.insert("a", fp(list(range(0, 60))))
        index.insert("b", fp(list(range(5000, 5060))))
        names = [k for k, _ in index.query("a")]
        assert "b" not in names

    def test_duplicate_key_rejected(self):
        index = LSHIndex()
        index.insert("a", fp([1, 2, 3]))
        with pytest.raises(ValueError):
            index.insert("a", fp([1, 2, 3]))

    def test_fingerprint_too_small_rejected(self):
        index = LSHIndex(rows=2, bands=100)
        with pytest.raises(ValueError):
            index.insert("a", fp([1, 2, 3], k=50))

    def test_len_and_contains(self):
        index = LSHIndex()
        index.insert("a", fp([1, 2, 3]))
        index.insert("b", fp([4, 5, 6]))
        assert len(index) == 2
        assert "a" in index
        index.remove("a")
        assert len(index) == 1
        assert "a" not in index

    def test_removed_keys_not_returned(self):
        index = LSHIndex()
        seq = list(range(40))
        index.insert("a", fp(seq))
        index.insert("b", fp(seq))
        index.insert("c", fp(seq))
        index.remove("b")
        names = {k for k, _ in index.query("a")}
        assert names == {"c"}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LSHIndex(rows=0)
        with pytest.raises(ValueError):
            LSHIndex(bands=0)


class TestBucketCap:
    def _crowded_index(self, cap, population=40):
        index = LSHIndex(rows=2, bands=100, bucket_cap=cap)
        seq = list(range(30))  # identical fingerprints: all in same buckets
        for i in range(population):
            index.insert(f"f{i}", fp(seq))
        return index

    def test_cap_limits_comparisons(self):
        capped = self._crowded_index(cap=5)
        stats = LSHQueryStats()
        capped.query("f0", stats)
        uncapped = self._crowded_index(cap=None)
        stats_unc = LSHQueryStats()
        uncapped.query("f0", stats_unc)
        assert stats.comparisons < stats_unc.comparisons
        assert stats.capped_buckets > 0
        assert stats_unc.capped_buckets == 0

    def test_identical_functions_still_found_under_cap(self):
        # Paper Section IV-E: similar functions share many buckets, so even
        # an aggressive cap keeps them discoverable.
        index = self._crowded_index(cap=2)
        result = index.best_match("f0")
        assert result is not None
        assert result[1] == 1.0

    def test_bucket_stats(self):
        index = self._crowded_index(cap=100, population=130)
        stats = index.bucket_stats()
        assert stats.max_population == 130
        assert stats.overpopulated >= 1
        assert stats.total_buckets >= 1


class TestBandingProbability:
    def test_empirical_matches_equation2(self):
        """Empirical bucket-sharing frequency tracks p = 1-(1-s^r)^b."""
        rng = np.random.default_rng(11)
        rows, bands = 2, 32
        k = rows * bands
        trials = 120
        target_sim = 0.5
        hits = 0
        for t in range(trials):
            n = 60
            base = list(rng.integers(0, 10_000, size=n))
            variant = list(base)
            # Replace enough elements to pull Jaccard towards target_sim.
            n_replace = int(n * (1 - target_sim) / (1 + (1 - target_sim)))
            for pos in rng.choice(n, size=n_replace, replace=False):
                variant[int(pos)] = int(rng.integers(10_000, 20_000))
            index = LSHIndex(rows=rows, bands=bands)
            cfg = MinHashConfig(k=k)
            fa = MinHashFingerprint.from_encoded(base, cfg)
            fb = MinHashFingerprint.from_encoded(variant, cfg)
            index.insert("a", fa)
            index.insert("b", fb)
            if index.query("a"):
                hits += 1
        expected = lsh_match_probability(target_sim, rows, bands)
        assert hits / trials == pytest.approx(expected, abs=0.25)
