"""Tests for the banded LSH index."""

import numpy as np
import pytest

from repro.fingerprint import MinHashConfig, MinHashFingerprint
from repro.search import LSHIndex, LSHQueryStats, lsh_match_probability


def fp(seq, k=200):
    return MinHashFingerprint.from_encoded(seq, MinHashConfig(k=k))


class TestBasics:
    def test_insert_query_similar(self):
        index = LSHIndex(rows=2, bands=100)
        base = list(range(50))
        variant = list(range(50))
        variant[10] = 999
        far = list(range(1000, 1050))
        index.insert("base", fp(base))
        index.insert("variant", fp(variant))
        index.insert("far", fp(far))
        result = index.best_match("base")
        assert result is not None
        name, sim = result
        assert name == "variant"
        assert sim > 0.5

    def test_dissimilar_not_candidates(self):
        index = LSHIndex(rows=2, bands=100)
        index.insert("a", fp(list(range(0, 60))))
        index.insert("b", fp(list(range(5000, 5060))))
        names = [k for k, _ in index.query("a")]
        assert "b" not in names

    def test_duplicate_key_rejected(self):
        index = LSHIndex()
        index.insert("a", fp([1, 2, 3]))
        with pytest.raises(ValueError):
            index.insert("a", fp([1, 2, 3]))

    def test_fingerprint_too_small_rejected(self):
        index = LSHIndex(rows=2, bands=100)
        with pytest.raises(ValueError):
            index.insert("a", fp([1, 2, 3], k=50))

    def test_len_and_contains(self):
        index = LSHIndex()
        index.insert("a", fp([1, 2, 3]))
        index.insert("b", fp([4, 5, 6]))
        assert len(index) == 2
        assert "a" in index
        index.remove("a")
        assert len(index) == 1
        assert "a" not in index

    def test_removed_keys_not_returned(self):
        index = LSHIndex()
        seq = list(range(40))
        index.insert("a", fp(seq))
        index.insert("b", fp(seq))
        index.insert("c", fp(seq))
        index.remove("b")
        names = {k for k, _ in index.query("a")}
        assert names == {"c"}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LSHIndex(rows=0)
        with pytest.raises(ValueError):
            LSHIndex(bands=0)


class TestBucketCap:
    def _crowded_index(self, cap, population=40):
        index = LSHIndex(rows=2, bands=100, bucket_cap=cap)
        seq = list(range(30))  # identical fingerprints: all in same buckets
        for i in range(population):
            index.insert(f"f{i}", fp(seq))
        return index

    def test_cap_limits_comparisons(self):
        capped = self._crowded_index(cap=5)
        stats = LSHQueryStats()
        capped.query("f0", stats)
        uncapped = self._crowded_index(cap=None)
        stats_unc = LSHQueryStats()
        uncapped.query("f0", stats_unc)
        assert stats.comparisons < stats_unc.comparisons
        assert stats.capped_buckets > 0
        assert stats_unc.capped_buckets == 0

    def test_identical_functions_still_found_under_cap(self):
        # Paper Section IV-E: similar functions share many buckets, so even
        # an aggressive cap keeps them discoverable.
        index = self._crowded_index(cap=2)
        result = index.best_match("f0")
        assert result is not None
        assert result[1] == 1.0

    def test_bucket_stats(self):
        index = self._crowded_index(cap=100, population=130)
        stats = index.bucket_stats()
        assert stats.max_population == 130
        assert stats.overpopulated >= 1
        assert stats.total_buckets >= 1


class TestBandingProbability:
    def test_empirical_matches_equation2(self):
        """Empirical bucket-sharing frequency tracks p = 1-(1-s^r)^b."""
        rng = np.random.default_rng(11)
        rows, bands = 2, 32
        k = rows * bands
        trials = 120
        target_sim = 0.5
        hits = 0
        for t in range(trials):
            n = 60
            base = list(rng.integers(0, 10_000, size=n))
            variant = list(base)
            # Replace enough elements to pull Jaccard towards target_sim.
            n_replace = int(n * (1 - target_sim) / (1 + (1 - target_sim)))
            for pos in rng.choice(n, size=n_replace, replace=False):
                variant[int(pos)] = int(rng.integers(10_000, 20_000))
            index = LSHIndex(rows=rows, bands=bands)
            cfg = MinHashConfig(k=k)
            fa = MinHashFingerprint.from_encoded(base, cfg)
            fb = MinHashFingerprint.from_encoded(variant, cfg)
            index.insert("a", fa)
            index.insert("b", fb)
            if index.query("a"):
                hits += 1
        expected = lsh_match_probability(target_sim, rows, bands)
        assert hits / trials == pytest.approx(expected, abs=0.25)


class TestInsertBatch:
    def _random_fps(self, n, seed=3, k=200):
        rng = np.random.default_rng(seed)
        fps = []
        for i in range(n):
            base = list(rng.integers(0, 400, size=30))
            fps.append(fp(base, k=k))
        return fps

    def test_equivalent_to_sequential_inserts(self):
        fps = self._random_fps(80)
        batch = LSHIndex(rows=2, bands=100)
        batch.insert_batch([f"k{i}" for i in range(80)], fps)
        seq = LSHIndex(rows=2, bands=100)
        for i, f in enumerate(fps):
            seq.insert(f"k{i}", f)
        assert len(batch) == len(seq) == 80
        for i in range(80):
            key = f"k{i}"
            sa, sb = LSHQueryStats(), LSHQueryStats()
            assert batch.best_match(key, sa) == seq.best_match(key, sb)
            assert sa.buckets_probed == sb.buckets_probed
            assert sa.candidates_seen == sb.candidates_seen
            assert sa.capped_buckets == sb.capped_buckets
        ba, bb = batch.bucket_stats(), seq.bucket_stats()
        assert ba.populations == bb.populations

    def test_single_inserts_layer_on_top_of_batch(self):
        fps = self._random_fps(20, seed=9)
        index = LSHIndex(rows=2, bands=100)
        index.insert_batch([f"k{i}" for i in range(19)], fps[:19])
        index.insert("late", fps[19])
        # A duplicate of an early member inserted late is still found.
        index.insert("clone", fps[0])
        result = index.best_match("clone")
        assert result is not None and result[0] == "k0" and result[1] == 1.0
        assert "late" in index

    def test_duplicate_key_in_batch_rejected(self):
        fps = self._random_fps(2)
        index = LSHIndex()
        with pytest.raises(ValueError):
            index.insert_batch(["a", "a"], fps)

    def test_duplicate_of_existing_key_rejected(self):
        fps = self._random_fps(2)
        index = LSHIndex()
        index.insert("a", fps[0])
        with pytest.raises(ValueError):
            index.insert_batch(["a"], [fps[1]])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LSHIndex().insert_batch(["a"], [])

    def test_empty_batch_is_noop(self):
        index = LSHIndex()
        index.insert_batch([], [])
        assert len(index) == 0


class TestCompaction:
    def test_removals_trigger_compaction(self):
        fps = TestInsertBatch()._random_fps(100, seed=5)
        index = LSHIndex(rows=2, bands=100)
        index.insert_batch([f"k{i}" for i in range(100)], fps)
        for i in range(60):
            index.remove(f"k{i}")
        assert index.compactions >= 1
        assert len(index) == 40
        # Removed keys are forgotten entirely; survivors still query fine.
        assert "k0" not in index
        for i in range(60, 100):
            assert f"k{i}" in index
        survivors = LSHIndex(rows=2, bands=100)
        for i in range(60, 100):
            survivors.insert(f"k{i}", fps[i])
        for i in range(60, 100):
            assert index.best_match(f"k{i}") == survivors.best_match(f"k{i}")

    def test_inserts_after_compaction(self):
        fps = TestInsertBatch()._random_fps(80, seed=7)
        index = LSHIndex(rows=2, bands=100)
        index.insert_batch([f"k{i}" for i in range(70)], fps[:70])
        for i in range(50):
            index.remove(f"k{i}")
        assert index.compactions >= 1
        for i in range(70, 80):
            index.insert(f"k{i}", fps[i])
        assert len(index) == 30
        # A post-compaction insert of a surviving member's twin is found.
        index.insert("clone-of-60", fps[60])
        result = index.best_match("clone-of-60")
        assert result is not None
        assert result[0] == "k60" and result[1] == 1.0
