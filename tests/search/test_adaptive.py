"""Tests for the adaptive policy (paper Equations 2, 3 and 4)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.search import (
    adaptive_bands,
    adaptive_parameters,
    adaptive_threshold,
    lsh_match_probability,
)


class TestThreshold:
    def test_small_programs_conservative(self):
        # "programs with fewer than 5000 functions do not benefit from
        # aggressive similarity thresholds ... a very conservative threshold
        # of 0.05"
        for n in (1, 100, 1000, 3000):
            assert adaptive_threshold(n) == 0.05

    def test_large_programs_capped(self):
        assert adaptive_threshold(20_000_000) == 0.4

    def test_middle_follows_log_formula(self):
        for n in (10_000, 100_000, 1_000_000):
            expected = (math.log10(n) - 3.0) / 10.0
            assert adaptive_threshold(n) == pytest.approx(expected)

    def test_chrome_scale_threshold(self):
        # Paper Section IV-C: for Chrome the adaptive variant raises the
        # threshold to about 0.31.
        assert adaptive_threshold(1_200_000) == pytest.approx(0.31, abs=0.01)

    @given(st.integers(1, 10**8))
    def test_monotone_and_bounded(self, n):
        t = adaptive_threshold(n)
        assert 0.05 <= t <= 0.4
        assert adaptive_threshold(n + 1000) >= t - 1e-12


class TestBands:
    def test_paper_reported_band_counts(self):
        # Section III-D: "57 for programs with 10k functions, 25 for 100k
        # functions, 14 for 1m functions".
        assert adaptive_bands(adaptive_threshold(10_000), 10_000) == 57
        assert adaptive_bands(adaptive_threshold(100_000), 100_000) == 25
        assert adaptive_bands(adaptive_threshold(1_000_000), 1_000_000) == 14

    def test_small_programs_pinned_to_100(self):
        assert adaptive_bands(adaptive_threshold(100), 100) == 100
        assert adaptive_bands(adaptive_threshold(4999), 4999) == 100

    def test_chrome_band_count(self):
        # Section IV-C: "reducing the number of bands to just 13".
        assert adaptive_bands(adaptive_threshold(1_200_000), 1_200_000) == 13

    @given(st.integers(5000, 10**8))
    def test_bands_decrease_with_size(self, n):
        b = adaptive_bands(adaptive_threshold(n), n)
        b_bigger = adaptive_bands(adaptive_threshold(n * 2), n * 2)
        assert 1 <= b <= 100
        assert b_bigger <= b


class TestMatchProbability:
    def test_equation2_reference_values(self):
        # p = 1 - (1 - s^r)^b
        assert lsh_match_probability(0.5, 2, 100) == pytest.approx(
            1 - (1 - 0.25) ** 100
        )
        assert lsh_match_probability(0.0, 2, 100) == 0.0
        assert lsh_match_probability(1.0, 2, 100) == 1.0

    @given(st.floats(0, 1), st.integers(1, 8), st.integers(1, 100))
    def test_probability_bounds(self, s, r, b):
        p = lsh_match_probability(s, r, b)
        assert 0.0 <= p <= 1.0

    def test_discovery_guarantee(self):
        """The derived b gives >= 90% discovery probability at t + 0.1,
        which is the design requirement Equation 4 encodes."""
        for n in (10_000, 100_000, 1_000_000):
            params = adaptive_parameters(n)
            p = lsh_match_probability(
                params.threshold + 0.1, params.rows, params.bands
            )
            assert p >= 0.9


class TestParameterBundle:
    def test_fingerprint_size(self):
        params = adaptive_parameters(10_000)
        assert params.fingerprint_size == params.rows * params.bands
        assert params.rows == 2

    def test_small_program_defaults(self):
        params = adaptive_parameters(500)
        assert params.bands == 100
        assert params.threshold == 0.05
        assert params.fingerprint_size == 200
