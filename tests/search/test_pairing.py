"""Tests for the ranking strategies (exhaustive vs MinHash+LSH)."""

import random

import pytest

from repro.search import ExhaustiveRanker, MinHashLSHRanker
from repro.workloads import make_variant
from tests.conftest import build_diamond, build_loop, build_straightline


def _population(module):
    base = build_diamond(module, "base")
    rng = random.Random(5)
    near = make_variant(base, "near", rng, 1, module)
    far1 = build_loop(module, "far1")
    far2 = build_straightline(module, "far2")
    return [base, near, far1, far2]


class TestExhaustiveRanker:
    def test_finds_nearest_neighbour(self, module):
        funcs = _population(module)
        ranker = ExhaustiveRanker()
        ranker.preprocess(funcs)
        match = ranker.best_match(funcs[0])
        assert match is not None
        assert match.function.name == "near"
        assert match.similarity > 0.8

    def test_comparison_count_is_quadratic(self, module):
        funcs = _population(module)
        ranker = ExhaustiveRanker()
        ranker.preprocess(funcs)
        for f in funcs:
            ranker.best_match(f)
        # n queries x (n-1) live candidates each.
        assert ranker.stats.comparisons == len(funcs) * (len(funcs) - 1)

    def test_removal_excludes_candidates(self, module):
        funcs = _population(module)
        ranker = ExhaustiveRanker()
        ranker.preprocess(funcs)
        ranker.remove(funcs[1])
        match = ranker.best_match(funcs[0])
        assert match.function.name != "near"

    def test_single_function_no_match(self, module):
        func = build_diamond(module)
        ranker = ExhaustiveRanker()
        ranker.preprocess([func])
        assert ranker.best_match(func) is None

    def test_similarity_helper(self, module):
        funcs = _population(module)
        ranker = ExhaustiveRanker()
        ranker.preprocess(funcs)
        assert ranker.similarity(funcs[0], funcs[0]) == 1.0


class TestMinHashLSHRanker:
    def test_finds_near_duplicate(self, module):
        funcs = _population(module)
        ranker = MinHashLSHRanker()
        ranker.preprocess(funcs)
        match = ranker.best_match(funcs[0])
        assert match is not None
        assert match.function.name == "near"

    def test_threshold_filters_matches(self, module):
        funcs = _population(module)
        ranker = MinHashLSHRanker(threshold=0.999)
        ranker.preprocess(funcs)
        # 'near' was mutated, so its similarity is below 0.999.
        match = ranker.best_match(funcs[0])
        assert match is None or match.similarity >= 0.999

    def test_removal(self, module):
        funcs = _population(module)
        ranker = MinHashLSHRanker()
        ranker.preprocess(funcs)
        ranker.remove(funcs[1])
        match = ranker.best_match(funcs[0])
        assert match is None or match.function.name != "near"

    def test_stats_accumulate(self, module):
        funcs = _population(module)
        ranker = MinHashLSHRanker()
        ranker.preprocess(funcs)
        for f in funcs:
            ranker.best_match(f)
        assert ranker.stats.queries == len(funcs)
        assert ranker.stats.buckets_probed > 0

    def test_adaptive_configuration(self, module):
        funcs = _population(module)
        ranker = MinHashLSHRanker(adaptive=True)
        ranker.preprocess(funcs)
        # Small module: paper defaults.
        assert ranker.parameters.bands == 100
        assert ranker.threshold == 0.05
        assert ranker.config.k == 200
        assert ranker.name == "f3m-adaptive"

    def test_custom_bands_and_rows(self, module):
        funcs = _population(module)
        ranker = MinHashLSHRanker(rows=4, bands=50)
        ranker.preprocess(funcs)
        assert ranker._index.rows == 4
        assert ranker._index.bands == 50

    def test_sharded_index_matches_serial(self, module):
        funcs = _population(module)
        serial = MinHashLSHRanker()
        serial.preprocess(funcs)
        sharded = MinHashLSHRanker(shards=4)
        sharded.preprocess(funcs)
        assert sharded._index.shards == 4
        for func in funcs:
            a = serial.best_match(func)
            b = sharded.best_match(func)
            if a is None:
                assert b is None
            else:
                assert b is not None
                assert (a.function.name, a.similarity) == (
                    b.function.name,
                    b.similarity,
                )

    def test_preprocess_required(self, module):
        ranker = MinHashLSHRanker()
        with pytest.raises(AssertionError):
            ranker.best_match(build_diamond(module))


class TestExhaustiveRankerBookkeeping:
    def _many(self, n=80):
        from repro.workloads import build_workload

        return build_workload(n, "exh").defined_functions()

    def test_remove_frees_entries(self, module):
        funcs = _population(module)
        ranker = ExhaustiveRanker()
        ranker.preprocess(funcs)
        assert len(ranker._fingerprints) == len(funcs)
        ranker.remove(funcs[0])
        # No leaked fingerprint/index entries for removed functions.
        assert id(funcs[0]) not in ranker._fingerprints
        assert id(funcs[0]) not in ranker._index_of
        assert len(ranker._fingerprints) == len(funcs) - 1

    def test_compaction_when_mostly_dead(self):
        funcs = self._many()
        ranker = ExhaustiveRanker()
        ranker.preprocess(funcs)
        rows_before = len(ranker._functions)
        for func in funcs[: int(len(funcs) * 0.7)]:
            ranker.remove(func)
        # The matrix compacted: stored rows shrank, and dead rows never
        # outnumber live ones while the matrix is big enough to rebuild.
        assert len(ranker._functions) < rows_before
        assert ranker._live_count <= len(ranker._functions)
        assert len(ranker._functions) <= max(64, 2 * ranker._live_count)
        survivors = funcs[int(len(funcs) * 0.7) :]
        for func in survivors:
            match = ranker.best_match(func)
            if match is not None:
                assert match.function in survivors

    def test_results_unchanged_by_compaction(self):
        funcs = self._many()
        removed, kept = funcs[:60], funcs[60:]
        compacted = ExhaustiveRanker()
        compacted.preprocess(funcs)
        for func in removed:
            compacted.remove(func)
        fresh = ExhaustiveRanker()
        fresh.preprocess(kept)
        for func in kept:
            a, b = compacted.best_match(func), fresh.best_match(func)
            if a is None or b is None:
                assert a is None and b is None
            else:
                assert a.function is b.function
                assert a.similarity == b.similarity


class TestBatchedRanker:
    def _funcs(self, n=60):
        from repro.workloads import build_workload

        return build_workload(n, "batched").defined_functions()

    def test_batched_matches_per_function_ranking(self):
        funcs = self._funcs()
        batched = MinHashLSHRanker(batched=True)
        batched.preprocess(funcs)
        loop = MinHashLSHRanker(batched=False)
        loop.preprocess(funcs)
        for func in funcs:
            a, b = batched.best_match(func), loop.best_match(func)
            if a is None or b is None:
                assert a is None and b is None
            else:
                assert a.function is b.function
                assert a.similarity == b.similarity

    def test_preprocess_breakdown_reported(self):
        funcs = self._funcs(20)
        ranker = MinHashLSHRanker()
        ranker.preprocess(funcs)
        breakdown = ranker.preprocess_breakdown
        assert set(breakdown) == {"fingerprint", "index"}
        assert all(v >= 0 for v in breakdown.values())
        # The per-function path has no split to report.
        loop = MinHashLSHRanker(batched=False)
        loop.preprocess(funcs)
        assert loop.preprocess_breakdown == {}

    def test_batched_insert_uses_cache(self):
        from repro.fingerprint import FingerprintCache

        funcs = self._funcs(20)
        cache = FingerprintCache()
        ranker = MinHashLSHRanker(cache=cache)
        ranker.preprocess(funcs)
        assert cache.stats.misses > 0
        # insert() of a function with a known body hits the cache.
        extra = MinHashLSHRanker(cache=cache)
        extra.preprocess(funcs[:1])
        assert cache.stats.hits > 0
