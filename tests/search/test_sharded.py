"""Property tests: the band-sharded index is serial-identical.

The contract under test is exactness, not speed: for any corpus, any
interleaving of inserts/removes/compactions, and any shard count 1-8,
``ShardedLSHIndex`` must return the *same* candidate lists (order
included), the same ``best_match``, and the same maintenance counters as
the serial ``LSHIndex``.  Frozen store mode adds the batched
``best_match_all`` kernel, which must agree with the serial per-key loop
for every row.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fingerprint import FingerprintStore, MinHashConfig, MinHashFingerprint
from repro.fingerprint.batch import minhash_encoded_batch
from repro.search import LSHIndex, LSHQueryStats, ShardedLSHIndex, shard_ranges

CFG = MinHashConfig(k=16)
ROWS, BANDS = 2, 8


def fp(seq):
    return MinHashFingerprint.from_encoded(seq, CFG)


class TestShardRanges:
    def test_cover_and_order(self):
        for bands in (1, 7, 8, 100):
            for shards in (1, 2, 3, 8, 200):
                ranges = shard_ranges(bands, shards)
                # Contiguous, ordered, covering [0, bands).
                assert ranges[0][0] == 0
                assert ranges[-1][1] == bands
                for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                    assert hi == lo
                assert len(ranges) == min(max(1, shards), bands)


@st.composite
def corpus_and_ops(draw):
    """A family-structured corpus plus a remove/compact interleaving."""
    n = draw(st.integers(min_value=4, max_value=24))
    families = draw(st.integers(min_value=1, max_value=4))
    seqs = []
    for _ in range(n):
        fam = draw(st.integers(0, families - 1))
        seq = [fam * 100 + j for j in range(6)]
        if draw(st.booleans()):
            seq[draw(st.integers(0, 5))] = draw(st.integers(0, 500))
        seqs.append(seq)
    batch_split = draw(st.integers(0, n))
    removals = draw(
        st.lists(st.integers(0, n - 1), unique=True, max_size=n - 1)
    )
    compact_after = draw(st.integers(0, max(0, len(removals))))
    return seqs, batch_split, removals, compact_after


def _apply_ops(index, fps, batch_split, removals, compact_after):
    keys = list(range(len(fps)))
    if batch_split:
        index.insert_batch(keys[:batch_split], fps[:batch_split])
    for key in keys[batch_split:]:
        index.insert(key, fps[key])
    for i, key in enumerate(removals):
        index.remove(key)
        if i + 1 == compact_after:
            index.compact()
    return set(keys) - set(removals)


class TestSerialIdentity:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=corpus_and_ops(), shards=st.integers(min_value=1, max_value=8))
    def test_queries_match_serial(self, data, shards):
        seqs, batch_split, removals, compact_after = data
        fps = [fp(s) for s in seqs]
        serial = LSHIndex(rows=ROWS, bands=BANDS, bucket_cap=3)
        sharded = ShardedLSHIndex(rows=ROWS, bands=BANDS, bucket_cap=3, shards=shards)
        live = _apply_ops(serial, fps, batch_split, removals, compact_after)
        live2 = _apply_ops(sharded, fps, batch_split, removals, compact_after)
        assert live == live2
        assert serial.compactions == sharded.compactions
        assert serial.removals == sharded.removals
        for key in sorted(live):
            s_stats, p_stats = LSHQueryStats(), LSHQueryStats()
            assert serial.query(key, s_stats) == sharded.query(key, p_stats)
            assert (s_stats.buckets_probed, s_stats.capped_buckets) == (
                p_stats.buckets_probed,
                p_stats.capped_buckets,
            )
            assert serial.best_match(key) == sharded.best_match(key)


def _store_with(tmp_path, streams, config=CFG):
    lens = np.array([len(s) for s in streams], dtype=np.int64)
    flat = np.array(
        [v for s in streams for v in s], dtype=np.uint64
    )
    store = FingerprintStore.create(str(tmp_path / "store"), config)
    store.append_encoded(flat, lens)
    return store, flat, lens


def _serial_reference(flat, lens, bucket_cap=3):
    values, counts = minhash_encoded_batch(flat, lens, CFG)
    fps = [
        MinHashFingerprint(values[i], CFG, int(counts[i]))
        for i in range(len(lens))
    ]
    serial = LSHIndex(rows=ROWS, bands=BANDS, bucket_cap=bucket_cap)
    serial.insert_batch(list(range(len(fps))), fps)
    return serial


def _streams(n, seed=7):
    rng = np.random.RandomState(seed)
    out = []
    for i in range(n):
        fam = i % 5
        seq = [int(fam * 50 + j) for j in range(6)]
        if rng.rand() < 0.5:
            seq[int(rng.randint(0, 6))] = int(rng.randint(0, 400))
        out.append(seq)
    return out


class TestFrozenStoreMode:
    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_best_match_all_matches_serial(self, tmp_path, shards):
        store, flat, lens = _store_with(tmp_path, _streams(60))
        serial = _serial_reference(flat, lens)
        index = ShardedLSHIndex.from_store(
            store, rows=ROWS, bands=BANDS, bucket_cap=3, shards=shards
        )
        best, sims = index.best_match_all(batch_rows=17)
        for key in range(60):
            expected = serial.best_match(key)
            got = index.best_match(key)
            assert got == expected
            if expected is None:
                assert best[key] == -1
            else:
                assert (best[key], sims[key]) == expected

    def test_worker_pool_matches_inline(self, tmp_path):
        store, flat, lens = _store_with(tmp_path, _streams(40))
        index = ShardedLSHIndex.from_store(
            store, rows=ROWS, bands=BANDS, bucket_cap=3, shards=2, workers=2
        )
        inline = ShardedLSHIndex.from_store(
            store,
            rows=ROWS,
            bands=BANDS,
            bucket_cap=3,
            shards=2,
            shard_dir=str(tmp_path / "alt-shards"),
        )
        b1, s1 = index.best_match_all(workers=2)
        b2, s2 = inline.best_match_all()
        assert np.array_equal(b1, b2)
        assert np.array_equal(s1, s2)

    def test_frozen_remove_tombstones_and_guards(self, tmp_path):
        store, flat, lens = _store_with(tmp_path, _streams(20))
        serial = _serial_reference(flat, lens)
        index = ShardedLSHIndex.from_store(
            store, rows=ROWS, bands=BANDS, bucket_cap=3, shards=2
        )
        victims = [0, 5, 11]
        for key in victims:
            serial.remove(key)
            index.remove(key)
        assert index.removals == len(victims)
        assert index.index_stats()["tombstones"] == len(victims)
        for key in range(20):
            if key in victims:
                continue
            assert index.best_match(key) == serial.best_match(key)
        best, _ = index.best_match_all()
        for key in victims:
            assert best[key] not in victims or best[key] == -1
        with pytest.raises(RuntimeError):
            index.insert(99, fp([1, 2, 3]))
        with pytest.raises(RuntimeError):
            index.compact()

    def test_fingerprint_reconstruction(self, tmp_path):
        store, flat, lens = _store_with(tmp_path, _streams(10))
        index = ShardedLSHIndex.from_store(
            store, rows=ROWS, bands=BANDS, bucket_cap=3
        )
        values, counts = minhash_encoded_batch(flat, lens, CFG)
        for key in range(10):
            rebuilt = index.fingerprint(key)
            assert np.array_equal(rebuilt.values, values[key])
            assert rebuilt.num_shingles == int(counts[key])

    def test_best_match_all_requires_frozen(self):
        index = ShardedLSHIndex(rows=ROWS, bands=BANDS, shards=2)
        with pytest.raises(RuntimeError):
            index.best_match_all()
