"""Content-addressed fingerprint cache: keying, LRU, counters, disk layer."""

import numpy as np

from repro.fingerprint import FingerprintCache, MinHashConfig
from repro.fingerprint.cache import content_keys


def _pack(streams):
    lens = np.array([len(s) for s in streams], dtype=np.int64)
    flat = np.array([v for s in streams for v in s], dtype=np.uint64)
    return flat, lens


class TestContentKeys:
    def test_identical_streams_share_keys(self):
        flat, lens = _pack([[1, 2, 3], [4, 5], [1, 2, 3]])
        keys = content_keys(flat, lens)
        assert keys[0] == keys[2]
        assert keys[0] != keys[1]

    def test_length_disambiguates(self):
        # Same prefix, different lengths: distinct keys.
        flat, lens = _pack([[7, 7], [7, 7, 7]])
        a, b = content_keys(flat, lens)
        assert a != b

    def test_empty_stream_keyed(self):
        flat, lens = _pack([[], [1]])
        keys = content_keys(flat, lens)
        assert len(keys) == 2
        assert keys[0] != keys[1]

    def test_config_distinguishes_cache_keys(self):
        cache = FingerprintCache()
        flat, lens = _pack([[1, 2, 3]])
        k1 = cache.keys_for(flat, lens, MinHashConfig(k=16))
        k2 = cache.keys_for(flat, lens, MinHashConfig(k=32))
        assert k1 != k2


class TestLruAndCounters:
    def _key(self, cache, stream, config):
        flat, lens = _pack([stream])
        return cache.keys_for(flat, lens, config)[0]

    def test_miss_then_hit(self):
        cache = FingerprintCache()
        config = MinHashConfig(k=8)
        key = self._key(cache, [1, 2, 3], config)
        assert cache.get(key) is None
        cache.put(key, np.arange(8, dtype=np.uint32), 2)
        values, count = cache.get(key)
        assert count == 2
        assert np.array_equal(values, np.arange(8, dtype=np.uint32))
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_get_returns_a_copy(self):
        cache = FingerprintCache()
        config = MinHashConfig(k=4)
        key = self._key(cache, [9], config)
        cache.put(key, np.ones(4, dtype=np.uint32), 1)
        values, _ = cache.get(key)
        values[:] = 0
        fresh, _ = cache.get(key)
        assert np.array_equal(fresh, np.ones(4, dtype=np.uint32))

    def test_eviction_is_lru(self):
        cache = FingerprintCache(maxsize=2)
        config = MinHashConfig(k=4)
        keys = [self._key(cache, [i, i + 1], config) for i in range(3)]
        v = np.zeros(4, dtype=np.uint32)
        cache.put(keys[0], v, 1)
        cache.put(keys[1], v, 1)
        cache.get(keys[0])  # key 0 is now most recent
        cache.put(keys[2], v, 1)  # evicts key 1
        assert cache.stats.evictions == 1
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None

    def test_put_is_idempotent(self):
        cache = FingerprintCache()
        config = MinHashConfig(k=4)
        key = self._key(cache, [5, 6], config)
        cache.put(key, np.zeros(4, dtype=np.uint32), 1)
        cache.put(key, np.ones(4, dtype=np.uint32), 9)
        values, count = cache.get(key)
        # First write wins; fingerprints are content-addressed, so a second
        # put for the same key is by definition the same fingerprint.
        assert count == 1
        assert np.array_equal(values, np.zeros(4, dtype=np.uint32))


class TestDiskLayer:
    def test_round_trip(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = FingerprintCache()
        config = MinHashConfig(k=8)
        flat, lens = _pack([[1, 2, 3], [4, 5, 6]])
        keys = cache.keys_for(flat, lens, config)
        cache.put(keys[0], np.arange(8, dtype=np.uint32), 2)
        cache.put(keys[1], np.arange(8, 16, dtype=np.uint32), 3)
        paths = cache.save(directory)
        assert paths and all(p.endswith(".npz") for p in paths)

        fresh = FingerprintCache(directory=directory)
        assert fresh.stats.disk_entries_loaded == 2
        values, count = fresh.get(keys[0])
        assert count == 2
        assert np.array_equal(values, np.arange(8, dtype=np.uint32))

    def test_load_missing_directory_is_noop(self, tmp_path):
        cache = FingerprintCache()
        assert cache.load(str(tmp_path / "nope")) == 0

    def test_save_multiple_configs(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = FingerprintCache()
        flat, lens = _pack([[1, 2, 3]])
        for config in (MinHashConfig(k=8), MinHashConfig(k=16, independent_hashes=True)):
            key = cache.keys_for(flat, lens, config)[0]
            cache.put(key, np.zeros(config.k, dtype=np.uint32), 1)
        paths = cache.save(directory)
        assert len(paths) == 2
        fresh = FingerprintCache()
        assert fresh.load(directory) == 2
