"""MinHash tests, including the Jaccard-estimation property (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.fingerprint import (
    MinHashConfig,
    MinHashFingerprint,
    exact_jaccard,
    shingle_hashes,
    shingle_set,
    shingles,
)


class TestShingles:
    def test_window_count(self):
        assert len(shingles([1, 2, 3, 4], k=2)) == 3
        assert shingles([1, 2, 3], k=2) == [(1, 2), (2, 3)]

    def test_short_sequences(self):
        assert shingles([7], k=2) == [(7,)]
        assert shingles([], k=2) == []

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            shingles([1], k=0)

    def test_hashes_match_set_cardinality_upper_bound(self):
        seq = [1, 2, 3, 2, 1]
        hashes = shingle_hashes(seq, 2)
        assert hashes.shape == (4,)

    def test_shingle_set(self):
        assert shingle_set([1, 2, 1, 2], 2) == {(1, 2), (2, 1)}


class TestFingerprint:
    def test_identical_sequences_identical_fingerprints(self):
        cfg = MinHashConfig(k=64)
        a = MinHashFingerprint.from_encoded([1, 2, 3, 4, 5], cfg)
        b = MinHashFingerprint.from_encoded([1, 2, 3, 4, 5], cfg)
        assert a.similarity(b) == 1.0

    def test_disjoint_sequences_low_similarity(self):
        cfg = MinHashConfig(k=128)
        a = MinHashFingerprint.from_encoded(list(range(100, 150)), cfg)
        b = MinHashFingerprint.from_encoded(list(range(900, 950)), cfg)
        assert a.similarity(b) < 0.1

    def test_empty_fingerprint_only_matches_itself(self):
        cfg = MinHashConfig(k=32)
        empty = MinHashFingerprint.from_encoded([], cfg)
        other = MinHashFingerprint.from_encoded([1, 2, 3], cfg)
        assert empty.similarity(empty) == 1.0
        assert empty.similarity(other) < 0.5

    def test_incompatible_sizes_rejected(self):
        a = MinHashFingerprint.from_encoded([1, 2], MinHashConfig(k=32))
        b = MinHashFingerprint.from_encoded([1, 2], MinHashConfig(k=64))
        with pytest.raises(ValueError):
            a.similarity(b)

    def test_distance_is_one_minus_similarity(self):
        cfg = MinHashConfig(k=64)
        a = MinHashFingerprint.from_encoded([1, 2, 3, 4], cfg)
        b = MinHashFingerprint.from_encoded([1, 2, 3, 9], cfg)
        assert a.distance(b) == pytest.approx(1.0 - a.similarity(b))

    def test_band_hashes_shape(self):
        cfg = MinHashConfig(k=200)
        fp = MinHashFingerprint.from_encoded(list(range(30)), cfg)
        assert fp.band_hashes(rows=2).shape == (100,)
        assert fp.band_hashes(rows=4).shape == (50,)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MinHashConfig(k=0)
        with pytest.raises(ValueError):
            MinHashConfig(shingle_size=0)


class TestEstimationQuality:
    """MinHash similarity must estimate the exact Jaccard index within
    O(1/sqrt(k)) — the property the whole ranking strategy rests on."""

    @settings(max_examples=30, deadline=None, derandomize=True)
    @given(
        base=st.lists(st.integers(0, 500), min_size=8, max_size=120),
        edits=st.integers(0, 25),
        seed=st.integers(0, 2**16),
    )
    def test_estimate_within_bound(self, base, edits, seed):
        rng = np.random.default_rng(seed)
        variant = list(base)
        for _ in range(edits):
            pos = int(rng.integers(0, len(variant)))
            variant[pos] = int(rng.integers(0, 500))
        # The O(1/sqrt(k)) concentration bound assumes the xor-salted
        # samples are close to independent, which needs a non-degenerate
        # shingle population; near-constant sequences (a handful of
        # distinct shingles) correlate the salts and genuinely exceed it.
        assume(len(shingle_set(base, 2)) >= 8)
        assume(len(shingle_set(variant, 2)) >= 8)
        k = 256
        cfg = MinHashConfig(k=k)
        fa = MinHashFingerprint.from_encoded(base, cfg)
        fb = MinHashFingerprint.from_encoded(variant, cfg)
        estimated = fa.similarity(fb)
        exact = exact_jaccard(base, variant)
        # 4 standard errors of the k-sample estimator.
        assert abs(estimated - exact) <= 4.0 / np.sqrt(k) + 1e-9

    def test_estimate_improves_with_k(self):
        rng = np.random.default_rng(42)
        base = list(rng.integers(0, 300, size=80))
        variant = list(base)
        for pos in rng.integers(0, 80, size=12):
            variant[int(pos)] = int(rng.integers(0, 300))
        exact = exact_jaccard(base, variant)
        errors = {}
        for k in (16, 64, 256):
            cfg = MinHashConfig(k=k)
            fa = MinHashFingerprint.from_encoded(base, cfg)
            fb = MinHashFingerprint.from_encoded(variant, cfg)
            errors[k] = abs(fa.similarity(fb) - exact)
        # Not strictly monotone per-sample, but k=256 should beat k=16.
        assert errors[256] <= errors[16] + 0.05

    def test_xor_trick_close_to_independent_hashes(self):
        """The paper's single-hash-xor-salts trick must behave like truly
        independent hash functions for estimation purposes."""
        rng = np.random.default_rng(7)
        base = list(rng.integers(0, 400, size=100))
        variant = list(base)
        for pos in rng.integers(0, 100, size=20):
            variant[int(pos)] = int(rng.integers(0, 400))
        exact = exact_jaccard(base, variant)
        for independent in (False, True):
            cfg = MinHashConfig(k=256, independent_hashes=independent)
            fa = MinHashFingerprint.from_encoded(base, cfg)
            fb = MinHashFingerprint.from_encoded(variant, cfg)
            assert abs(fa.similarity(fb) - exact) <= 0.3


class TestExactJaccard:
    def test_identical(self):
        assert exact_jaccard([1, 2, 3], [1, 2, 3]) == 1.0

    def test_disjoint(self):
        assert exact_jaccard([1, 2, 3], [7, 8, 9]) == 0.0

    def test_empty_both(self):
        assert exact_jaccard([], []) == 1.0
