"""Tests for the 32-bit instruction encoding (paper Section III-B)."""

from repro.fingerprint import EncodingOptions, encode_function, encode_instruction
from repro.ir import (
    Argument,
    BinaryOp,
    ConstantInt,
    DOUBLE,
    I32,
    I64,
    ICmp,
    ICmpPred,
    Opcode,
)
from tests.conftest import build_diamond, build_straightline


def add(type_=I32, a_name="a", b_name="b"):
    return BinaryOp(Opcode.ADD, Argument(type_, a_name, 0), Argument(type_, b_name, 1))


class TestEncoding:
    def test_operand_identity_ignored(self):
        # Same opcode/types but different operand *values* must encode equal:
        # this is what makes MinHash similarity track mergeability.
        i1 = add(a_name="x", b_name="y")
        i2 = BinaryOp(Opcode.ADD, Argument(I32, "p", 0), ConstantInt(I32, 42))
        assert encode_instruction(i1) == encode_instruction(i2)

    def test_opcode_distinguished(self):
        i1 = add()
        i2 = BinaryOp(Opcode.SUB, Argument(I32, "a", 0), Argument(I32, "b", 1))
        assert encode_instruction(i1) != encode_instruction(i2)

    def test_operand_type_distinguished(self):
        assert encode_instruction(add(I32)) != encode_instruction(add(I64))

    def test_result_type_distinguished(self):
        from repro.ir import Cast

        z1 = Cast(Opcode.ZEXT, Argument(I32, "a", 0), I64)
        from repro.ir import IntType

        z2 = Cast(Opcode.ZEXT, Argument(I32, "a", 0), IntType(48))
        assert encode_instruction(z1) != encode_instruction(z2)

    def test_fits_32_bits(self, module):
        func = build_diamond(module)
        for encoded in encode_function(func):
            assert 0 <= encoded <= 0xFFFFFFFF

    def test_function_encoding_length(self, module):
        func = build_straightline(module)
        assert len(encode_function(func)) == func.num_instructions

    def test_deterministic(self, module):
        func = build_diamond(module)
        assert encode_function(func) == encode_function(func)


class TestPredicateOption:
    def test_default_ignores_predicates(self):
        c1 = ICmp(ICmpPred.SLT, Argument(I32, "a", 0), Argument(I32, "b", 1))
        c2 = ICmp(ICmpPred.SGT, Argument(I32, "a", 0), Argument(I32, "b", 1))
        assert encode_instruction(c1) == encode_instruction(c2)

    def test_option_distinguishes_predicates(self):
        options = EncodingOptions(include_predicates=True)
        c1 = ICmp(ICmpPred.SLT, Argument(I32, "a", 0), Argument(I32, "b", 1))
        c2 = ICmp(ICmpPred.SGT, Argument(I32, "a", 0), Argument(I32, "b", 1))
        assert encode_instruction(c1, options) != encode_instruction(c2, options)
