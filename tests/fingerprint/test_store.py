"""Tests for the memmap columnar FingerprintStore and its cache interop."""

import json
import os

import numpy as np
import pytest

from repro.fingerprint import (
    FingerprintCache,
    FingerprintStore,
    MinHashConfig,
    StoreFormatError,
)
from repro.fingerprint.batch import minhash_encoded_batch
from repro.fingerprint.cache import content_keys

CFG = MinHashConfig(k=16)


def _pack(streams):
    lens = np.array([len(s) for s in streams], dtype=np.int64)
    flat = np.array([v for s in streams for v in s], dtype=np.uint64)
    return flat, lens


def _streams(n, seed=3):
    rng = np.random.RandomState(seed)
    return [
        [int(v) for v in rng.randint(0, 1000, size=rng.randint(2, 9))]
        for _ in range(n)
    ]


class TestRoundTrip:
    def test_append_encoded_bit_identical(self, tmp_path):
        streams = _streams(25)
        flat, lens = _pack(streams)
        store = FingerprintStore.create(str(tmp_path / "s"), CFG)
        store.append_encoded(flat, lens)
        expected_values, expected_counts = minhash_encoded_batch(flat, lens, CFG)
        assert len(store) == 25
        assert np.array_equal(np.asarray(store.values), expected_values)
        assert np.array_equal(np.asarray(store.num_shingles), expected_counts)
        assert np.array_equal(np.asarray(store.lengths), lens)

    def test_chunked_appends_equal_one_shot(self, tmp_path):
        streams = _streams(30)
        flat, lens = _pack(streams)
        whole = FingerprintStore.create(str(tmp_path / "whole"), CFG)
        whole.append_encoded(flat, lens)
        chunked = FingerprintStore.create(str(tmp_path / "chunked"), CFG)
        for lo in range(0, 30, 7):
            hi = min(lo + 7, 30)
            cf, cl = _pack(streams[lo:hi])
            chunked.append_encoded(cf, cl)
        assert np.array_equal(np.asarray(whole.values), np.asarray(chunked.values))
        assert np.array_equal(np.asarray(whole.meta), np.asarray(chunked.meta))
        assert np.array_equal(np.asarray(whole.encoded), np.asarray(chunked.encoded))

    def test_encoded_slice_mid_range(self, tmp_path):
        streams = _streams(12)
        flat, lens = _pack(streams)
        store = FingerprintStore.create(str(tmp_path / "s"), CFG)
        store.append_encoded(flat, lens)
        got_flat, got_lens = store.encoded_slice(4, 9)
        want_flat, want_lens = _pack(streams[4:9])
        assert np.array_equal(got_flat, want_flat)
        assert np.array_equal(got_lens, want_lens)
        full_flat, full_lens = store.encoded_slice(0, 12)
        assert np.array_equal(full_flat, flat)
        assert np.array_equal(full_lens, lens)

    def test_reopen_matches(self, tmp_path):
        flat, lens = _pack(_streams(10))
        store = FingerprintStore.create(str(tmp_path / "s"), CFG)
        store.append_encoded(flat, lens)
        reopened = FingerprintStore.open(str(tmp_path / "s"))
        assert reopened.config == CFG
        assert len(reopened) == 10
        assert np.array_equal(np.asarray(reopened.values), np.asarray(store.values))

    def test_iter_chunks_covers_store(self, tmp_path):
        flat, lens = _pack(_streams(11))
        store = FingerprintStore.create(str(tmp_path / "s"), CFG)
        store.append_encoded(flat, lens)
        seen = []
        for start, stop, view in store.iter_chunks(4):
            assert view.shape == (stop - start, CFG.k)
            seen.append((start, stop))
        assert seen == [(0, 4), (4, 8), (8, 11)]


class TestValidation:
    def test_create_refuses_existing(self, tmp_path):
        FingerprintStore.create(str(tmp_path / "s"), CFG)
        with pytest.raises(StoreFormatError, match="already exists"):
            FingerprintStore.create(str(tmp_path / "s"), CFG)

    def test_open_rejects_bad_magic(self, tmp_path):
        store = FingerprintStore.create(str(tmp_path / "s"), CFG)
        header_path = os.path.join(store.directory, "header.json")
        with open(header_path) as fh:
            header = json.load(fh)
        header["magic"] = "not-a-store"
        with open(header_path, "w") as fh:
            json.dump(header, fh)
        with pytest.raises(StoreFormatError, match="bad magic"):
            FingerprintStore.open(store.directory)

    def test_open_rejects_future_version(self, tmp_path):
        store = FingerprintStore.create(str(tmp_path / "s"), CFG)
        header_path = os.path.join(store.directory, "header.json")
        with open(header_path) as fh:
            header = json.load(fh)
        header["format_version"] = 99
        with open(header_path, "w") as fh:
            json.dump(header, fh)
        with pytest.raises(StoreFormatError, match="format_version"):
            FingerprintStore.open(store.directory)

    def test_open_rejects_truncated_column(self, tmp_path):
        flat, lens = _pack(_streams(8))
        store = FingerprintStore.create(str(tmp_path / "s"), CFG)
        store.append_encoded(flat, lens)
        values_path = os.path.join(store.directory, "values.u32")
        with open(values_path, "r+b") as fh:
            fh.truncate(os.path.getsize(values_path) // 2)
        with pytest.raises(StoreFormatError, match="truncated"):
            FingerprintStore.open(store.directory)

    def test_append_fingerprints_needs_bare_store(self, tmp_path):
        store = FingerprintStore.create(str(tmp_path / "s"), CFG)
        with pytest.raises(StoreFormatError, match="store_encoded"):
            store.append_fingerprints(
                np.zeros((1, CFG.k), dtype=np.uint32),
                np.array([3]),
                np.array([1]),
                np.array([2]),
                np.array([2]),
            )

    def test_wrong_k_rejected(self, tmp_path):
        store = FingerprintStore.create(
            str(tmp_path / "s"), CFG, store_encoded=False
        )
        with pytest.raises(ValueError, match="k="):
            store.append_fingerprints(
                np.zeros((1, CFG.k + 1), dtype=np.uint32),
                np.array([3]),
                np.array([1]),
                np.array([2]),
                np.array([2]),
            )


class TestCacheInterop:
    def _warm_cache(self, streams):
        cache = FingerprintCache()
        flat, lens = _pack(streams)
        values, counts = minhash_encoded_batch(flat, lens, CFG)
        for key, i in zip(cache.keys_for(flat, lens, CFG), range(len(streams))):
            cache.put(key, values[i], int(counts[i]))
        return cache, values, counts

    def test_spill_and_reload(self, tmp_path):
        streams = _streams(9)
        cache, values, counts = self._warm_cache(streams)
        store = FingerprintStore.create(
            str(tmp_path / "s"), CFG, store_encoded=False
        )
        assert cache.spill_to_store(store) == 9
        # Idempotent: everything is already present by content key.
        assert cache.spill_to_store(store) == 0
        fresh = FingerprintCache()
        assert fresh.load_from_store(store) == 9
        flat, lens = _pack(streams)
        for key, i in zip(fresh.keys_for(flat, lens, CFG), range(9)):
            entry = fresh.get(key)
            assert entry is not None
            assert np.array_equal(entry[0], values[i])
            assert entry[1] == int(counts[i])

    def test_spill_skips_other_configs(self, tmp_path):
        cache, _, _ = self._warm_cache(_streams(5))
        other = FingerprintStore.create(
            str(tmp_path / "s"), MinHashConfig(k=8), store_encoded=False
        )
        assert cache.spill_to_store(other) == 0

    def test_content_keys_match_store_meta(self, tmp_path):
        streams = _streams(7)
        flat, lens = _pack(streams)
        store = FingerprintStore.create(str(tmp_path / "s"), CFG)
        store.append_encoded(flat, lens)
        assert store.content_key_set() == set(content_keys(flat, lens))


class TestCacheFormatValidation:
    def _saved_dir(self, tmp_path, streams):
        cache, _, _ = TestCacheInterop()._warm_cache(streams)
        cache.save(str(tmp_path))
        return [
            os.path.join(str(tmp_path), name)
            for name in sorted(os.listdir(str(tmp_path)))
            if name.endswith(".npz")
        ]

    def test_round_trip_loads(self, tmp_path):
        self._saved_dir(tmp_path, _streams(6))
        fresh = FingerprintCache()
        assert fresh.load(str(tmp_path)) == 6
        assert fresh.stats.disk_files_skipped == 0

    def test_wrong_version_skipped_cold(self, tmp_path):
        paths = self._saved_dir(tmp_path, _streams(6))
        with np.load(paths[0]) as payload:
            arrays = dict(payload)
        arrays["format_version"] = np.array([999], dtype=np.int64)
        np.savez_compressed(paths[0], **arrays)
        fresh = FingerprintCache()
        assert fresh.load(str(tmp_path)) == 0
        assert fresh.stats.disk_files_skipped == 1

    def test_legacy_file_without_version_skipped(self, tmp_path):
        paths = self._saved_dir(tmp_path, _streams(4))
        with np.load(paths[0]) as payload:
            arrays = {k: v for k, v in payload.items() if k != "format_version"}
        np.savez_compressed(paths[0], **arrays)
        fresh = FingerprintCache()
        assert fresh.load(str(tmp_path)) == 0
        assert fresh.stats.disk_files_skipped == 1

    def test_truncated_zip_skipped(self, tmp_path):
        paths = self._saved_dir(tmp_path, _streams(4))
        with open(paths[0], "r+b") as fh:
            fh.truncate(os.path.getsize(paths[0]) // 3)
        fresh = FingerprintCache()
        assert fresh.load(str(tmp_path)) == 0
        assert fresh.stats.disk_files_skipped == 1

    def test_shape_mismatch_skipped(self, tmp_path):
        paths = self._saved_dir(tmp_path, _streams(4))
        with np.load(paths[0]) as payload:
            arrays = dict(payload)
        arrays["values"] = arrays["values"][:, :-1]  # k mismatch vs config
        np.savez_compressed(paths[0], **arrays)
        fresh = FingerprintCache()
        assert fresh.load(str(tmp_path)) == 0
        assert fresh.stats.disk_files_skipped == 1
