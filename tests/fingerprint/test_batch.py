"""Bit-identity of the batched fingerprint engine vs the reference path.

The batched engine's whole contract is "same bits, fewer array calls":
every test here compares it against the per-function reference path —
property-tested across random streams and MinHash configurations,
plus the IR-level entry points over generated workloads.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.fingerprint import (
    EncodingOptions,
    FingerprintCache,
    MinHashConfig,
    MinHashFingerprint,
    encode_function,
    encode_module,
    exact_jaccard,
    minhash_encoded_batch,
    minhash_function,
    minhash_module,
    minhash_single,
)
from repro.workloads import build_workload


def _functions(n=40, tag="batch"):
    return build_workload(n, tag).defined_functions()


def _assert_rows_match(values, counts, streams, config):
    for i, stream in enumerate(streams):
        ref = MinHashFingerprint.from_encoded(stream, config)
        assert np.array_equal(values[i], ref.values), f"row {i} differs"
        assert int(counts[i]) == ref.num_shingles


def _pack(streams):
    lens = np.array([len(s) for s in streams], dtype=np.int64)
    flat = np.array([v for s in streams for v in s], dtype=np.uint64)
    return flat, lens


configs = st.builds(
    MinHashConfig,
    k=st.integers(min_value=1, max_value=64),
    shingle_size=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**20),
    independent_hashes=st.booleans(),
)
streams = st.lists(
    st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=24),
    max_size=12,
)


class TestEncodedBatchProperty:
    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(streams=streams, config=configs)
    def test_bit_identical_to_reference(self, streams, config):
        """minhash_encoded_batch == from_encoded per stream, for any config
        — including empty streams and streams shorter than the shingle."""
        flat, lens = _pack(streams)
        values, counts = minhash_encoded_batch(flat, lens, config)
        assert values.shape == (len(streams), config.k)
        _assert_rows_match(values, counts, streams, config)

    @settings(max_examples=30, deadline=None, derandomize=True)
    @given(
        common=st.lists(st.integers(min_value=0, max_value=1000), min_size=12, max_size=60),
        extra_a=st.lists(st.integers(min_value=2000, max_value=3000), max_size=20),
        extra_b=st.lists(st.integers(min_value=4000, max_value=5000), max_size=20),
    )
    def test_similarity_estimates_jaccard(self, common, extra_a, extra_b):
        """Batched MinHash similarity lands within 3/sqrt(k) of the exact
        Jaccard index (the paper's estimator-error envelope).  The bound
        assumes near-independent samples, which needs a non-degenerate
        shingle population (see the matching guard in test_minhash.py)."""
        from repro.fingerprint import shingle_set

        config = MinHashConfig(k=200)
        a, b = common + extra_a, common + extra_b
        assume(len(shingle_set(a, config.shingle_size)) >= 10)
        assume(len(shingle_set(b, config.shingle_size)) >= 10)
        flat, lens = _pack([a, b])
        values, counts = minhash_encoded_batch(flat, lens, config)
        fa = MinHashFingerprint(values[0], config, int(counts[0]))
        fb = MinHashFingerprint(values[1], config, int(counts[1]))
        truth = exact_jaccard(a, b, config.shingle_size)
        assert abs(fa.similarity(fb) - truth) <= 3.0 / np.sqrt(config.k)


class TestEncodeModule:
    def test_matches_encode_function(self):
        funcs = _functions()
        flat, lens = encode_module(funcs)
        offsets = np.cumsum(lens) - lens
        for i, func in enumerate(funcs):
            ref = encode_function(func)
            got = flat[offsets[i] : offsets[i] + lens[i]].tolist()
            assert got == ref, func.name

    def test_predicate_ablation_falls_back_identically(self):
        funcs = _functions(20, "pred")
        options = EncodingOptions(include_predicates=True)
        flat, lens = encode_module(funcs, options)
        offsets = np.cumsum(lens) - lens
        for i, func in enumerate(funcs):
            ref = encode_function(func, options)
            assert flat[offsets[i] : offsets[i] + lens[i]].tolist() == ref

    def test_empty_input(self):
        flat, lens = encode_module([])
        assert flat.size == 0 and lens.size == 0


class TestMinhashModule:
    @pytest.mark.parametrize(
        "config",
        [
            MinHashConfig(),
            MinHashConfig(k=16, shingle_size=1),
            MinHashConfig(k=64, shingle_size=3),
            MinHashConfig(k=32, independent_hashes=True),
        ],
    )
    def test_matches_minhash_function(self, config):
        funcs = _functions()
        batched = minhash_module(funcs, config)
        for func, fp in zip(funcs, batched):
            ref = minhash_function(func, config)
            assert np.array_equal(fp.values, ref.values), func.name
            assert fp.num_shingles == ref.num_shingles

    def test_cache_returns_identical_fingerprints(self):
        funcs = _functions()
        config = MinHashConfig(k=48)
        cache = FingerprintCache()
        cached = minhash_module(funcs, config, cache=cache)
        plain = minhash_module(funcs, config)
        for a, b in zip(cached, plain):
            assert np.array_equal(a.values, b.values)
            assert a.num_shingles == b.num_shingles
        # Re-running over the same module hits for every unique body.
        before = cache.stats.hits
        minhash_module(funcs, config, cache=cache)
        assert cache.stats.hits > before
        assert cache.stats.hit_rate > 0

    def test_pool_path_identical(self):
        funcs = _functions(30, "pool")
        config = MinHashConfig(k=24)
        parallel = minhash_module(funcs, config, workers=2, min_parallel=1)
        serial = minhash_module(funcs, config)
        for a, b in zip(parallel, serial):
            assert np.array_equal(a.values, b.values)
            assert a.num_shingles == b.num_shingles

    def test_minhash_single_matches_and_caches(self):
        funcs = _functions(10, "single")
        config = MinHashConfig(k=40)
        cache = FingerprintCache()
        for func in funcs:
            got = minhash_single(func, config, cache=cache)
            ref = minhash_function(func, config)
            assert np.array_equal(got.values, ref.values)
        # Identical bodies (or repeat calls) now hit.
        minhash_single(funcs[0], config, cache=cache)
        assert cache.stats.hits >= 1
