"""Tests for FNV-1a hashing, including the vectorized variant."""

import numpy as np

from repro.fingerprint import fnv1a_32, fnv1a_32_ints, fnv1a_32_pair, salts
from repro.fingerprint.fnv import fnv1a_32_array


class TestScalar:
    def test_reference_vectors(self):
        # Published FNV-1a 32-bit test vectors.
        assert fnv1a_32(b"") == 0x811C9DC5
        assert fnv1a_32(b"a") == 0xE40C292C
        assert fnv1a_32(b"foobar") == 0xBF9CF968

    def test_ints_equals_bytes(self):
        # Hashing the int 0x04030201 byte-by-byte little-endian equals
        # hashing the same bytes directly.
        assert fnv1a_32_ints([0x04030201]) == fnv1a_32(bytes([1, 2, 3, 4]))

    def test_pair_equals_general(self):
        a, b = 0xDEADBEEF, 0x12345678
        assert fnv1a_32_pair(a, b) == fnv1a_32_ints([a, b])

    def test_order_sensitivity(self):
        assert fnv1a_32_ints([1, 2]) != fnv1a_32_ints([2, 1])


class TestVectorized:
    def test_matches_scalar_1d(self):
        values = np.array([0, 1, 0xDEADBEEF, 0xFFFFFFFF], dtype=np.uint32)
        out = fnv1a_32_array(values)
        for v, h in zip(values.tolist(), out.tolist()):
            assert h == fnv1a_32_ints([v])

    def test_matches_scalar_2d(self):
        rows = np.array([[1, 2], [3, 4], [0xDEADBEEF, 0]], dtype=np.uint32)
        out = fnv1a_32_array(rows)
        for row, h in zip(rows.tolist(), out.tolist()):
            assert h == fnv1a_32_ints(row)

    def test_empty(self):
        assert fnv1a_32_array(np.empty(0, dtype=np.uint32)).size == 0


class TestSalts:
    def test_deterministic(self):
        assert np.array_equal(salts(16, seed=1), salts(16, seed=1))

    def test_seed_sensitivity(self):
        assert not np.array_equal(salts(16, seed=1), salts(16, seed=2))

    def test_distinct_values(self):
        s = salts(200)
        assert len(np.unique(s)) == 200
