"""Tests for the HyFM opcode-frequency fingerprint."""

import pytest

from repro.fingerprint import fingerprint_block, fingerprint_function
from repro.workloads import make_variant
from tests.conftest import build_diamond, build_straightline
import random


class TestOpcodeFingerprint:
    def test_identical_functions_zero_distance(self, module):
        f1 = build_diamond(module, "f1")
        f2 = build_diamond(module, "f2")
        fp1, fp2 = fingerprint_function(f1), fingerprint_function(f2)
        assert fp1.distance(fp2) == 0
        assert fp1.similarity(fp2) == 1.0

    def test_distance_counts_opcode_changes(self, module):
        f1 = build_diamond(module, "f1", mul_by=2)
        f2 = build_diamond(module, "f2", mul_by=3)
        # Same opcodes, different constants: fingerprints identical — the
        # paper's core criticism of this metric.
        assert fingerprint_function(f1).distance(fingerprint_function(f2)) == 0

    def test_different_shapes_nonzero_distance(self, module):
        f1 = build_diamond(module, "f1")
        f2 = build_straightline(module, "f2")
        fp1, fp2 = fingerprint_function(f1), fingerprint_function(f2)
        assert fp1.distance(fp2) > 0
        assert 0.0 <= fp1.similarity(fp2) < 1.0

    def test_similarity_symmetric(self, module):
        f1 = build_diamond(module, "f1")
        f2 = build_straightline(module, "f2")
        fp1, fp2 = fingerprint_function(f1), fingerprint_function(f2)
        assert fp1.similarity(fp2) == pytest.approx(fp2.similarity(fp1))

    def test_magnitude(self, module):
        func = build_straightline(module)
        assert fingerprint_function(func).magnitude == func.num_instructions

    def test_block_fingerprint(self, module):
        func = build_diamond(module)
        entry_fp = fingerprint_block(func.entry)
        assert entry_fp.magnitude == len(func.entry)

    def test_variant_similarity_decreases_with_mutations(self, module):
        base = build_diamond(module, "base")
        rng = random.Random(3)
        light = make_variant(base, "light", rng, 1, module)
        heavy = make_variant(base, "heavy", rng, 30, module)
        fp = fingerprint_function(base)
        sim_light = fp.similarity(fingerprint_function(light))
        sim_heavy = fp.similarity(fingerprint_function(heavy))
        assert sim_light >= sim_heavy
