"""Tests for the checker registry and the built-in checkers."""

import pytest

from repro.diagnostics import Severity
from repro.ir import (
    BasicBlock,
    Branch,
    ConstantInt,
    I32,
    I64,
    parse_module,
    verify_function,
)
from repro.staticcheck import (
    all_checkers,
    get_checker,
    run_function_checks,
    run_module_checks,
)
from repro.staticcheck.checkers import dominance_diagnostics


def get(text, name="f"):
    module = parse_module(text)
    return module, module.get_function(name)


def by_checker(diags, name):
    return [d for d in diags if d.checker == name]


class TestRegistry:
    def test_at_least_five_checkers_registered(self):
        names = [c.name for c in all_checkers()]
        assert len(names) >= 5
        assert "ssa-dominance" in names
        assert "maybe-uninit" in names
        assert "unreachable-block" in names
        assert "dead-store" in names
        assert "type-consistency" in names
        assert "callgraph" in names

    def test_unknown_checker_rejected(self):
        with pytest.raises(KeyError):
            get_checker("does-not-exist")

    def test_selection_runs_only_named_checkers(self, module):
        from tests.conftest import build_straightline

        func = build_straightline(module)
        dead = BasicBlock("dead", func)
        dead.append(Branch(dead))
        diags = run_function_checks(func, ["ssa-dominance"])
        assert diags == []  # the unreachable-block finding is filtered out
        assert run_function_checks(func, ["unreachable-block"])


class TestDominanceChecker:
    def test_clean_function(self, module):
        from tests.conftest import build_diamond

        func = build_diamond(module)
        assert dominance_diagnostics(func) == []

    def test_cross_arm_use_flagged(self, module):
        from tests.conftest import build_diamond

        func = build_diamond(module)
        entry, big, small, join = func.blocks
        small.instructions[0].set_operand(0, big.instructions[0])
        diags = dominance_diagnostics(func)
        assert len(diags) == 1
        diag = diags[0]
        assert diag.checker == "ssa-dominance"
        assert diag.severity is Severity.ERROR
        assert diag.function == func.name
        assert diag.block == small.name
        assert "not dominated" in diag.message

    def test_agrees_with_verifier(self, module):
        """The verifier delegates to this checker: whenever it reports a
        dominance error, verify_function raises with the same finding."""
        from repro.ir import VerificationError
        from tests.conftest import build_diamond

        func = build_diamond(module)
        entry, big, small, join = func.blocks
        small.instructions[0].set_operand(0, big.instructions[0])
        with pytest.raises(VerificationError) as exc:
            verify_function(func)
        assert [str(d) for d in exc.value.diagnostics] == [
            str(d) for d in dominance_diagnostics(func)
        ]


class TestMaybeUninit:
    def test_zero_reaching_load_is_warning(self):
        _m, func = get(
            """
define i32 @f(i32 %x) {
entry:
  %s = alloca i32
  %v = load i32, i32* %s
  store i32 %x, i32* %s
  ret i32 %v
}
"""
        )
        diags = by_checker(run_function_checks(func), "maybe-uninit")
        assert len(diags) == 1
        assert diags[0].severity is Severity.WARNING
        assert "no store" in diags[0].message

    def test_initialized_slot_is_clean(self):
        _m, func = get(
            """
define i32 @f(i32 %x) {
entry:
  %s = alloca i32
  store i32 %x, i32* %s
  %v = load i32, i32* %s
  ret i32 %v
}
"""
        )
        assert by_checker(run_function_checks(func), "maybe-uninit") == []


class TestUnreachableAndDeadStore:
    def test_unreachable_block_warned(self, module):
        from tests.conftest import build_straightline

        func = build_straightline(module)
        dead = BasicBlock("island", func)
        dead.append(Branch(dead))  # self-loop, never entered
        diags = by_checker(run_function_checks(func), "unreachable-block")
        assert [d.block for d in diags] == ["island"]
        assert all(d.severity is Severity.WARNING for d in diags)

    def test_dead_store_warned(self):
        _m, func = get(
            """
define i32 @f(i32 %x) {
entry:
  %s = alloca i32
  store i32 %x, i32* %s
  %v = load i32, i32* %s
  store i32 99, i32* %s
  ret i32 %v
}
"""
        )
        diags = by_checker(run_function_checks(func), "dead-store")
        assert len(diags) == 1
        assert "never read" in diags[0].message


class TestTypeConsistency:
    def test_clean_module_has_no_findings(self, module):
        from tests.conftest import build_diamond, build_loop

        build_diamond(module)
        build_loop(module)
        assert by_checker(run_module_checks(module), "type-consistency") == []

    def test_phi_incoming_type_mismatch(self, module):
        from tests.conftest import build_diamond

        func = build_diamond(module)
        phi = func.blocks[-1].phis()[0]
        # Constructors forbid this; mutation sneaks it past them.
        phi.set_operand(0, ConstantInt(I64, 1))
        diags = by_checker(run_function_checks(func), "type-consistency")
        assert len(diags) == 1
        assert "phi incoming" in diags[0].message
        assert diags[0].severity is Severity.ERROR

    def test_call_argument_type_mismatch(self):
        module, func = get(
            """
define i32 @callee(i32 %x) {
entry:
  ret i32 %x
}
define i32 @f(i32 %x) {
entry:
  %r = call i32 @callee(i32 %x)
  ret i32 %r
}
"""
        )
        call = func.entry.instructions[0]
        call.set_operand(1, ConstantInt(I64, 3))
        diags = by_checker(run_function_checks(func), "type-consistency")
        assert len(diags) == 1
        assert "argument 0" in diags[0].message

    def test_ret_type_mismatch(self, module):
        from tests.conftest import build_straightline

        func = build_straightline(module)
        ret = func.entry.terminator
        ret.set_operand(0, ConstantInt(I64, 0))
        diags = by_checker(run_function_checks(func), "type-consistency")
        assert any("ret type" in d.message for d in diags)


class TestCallGraphChecker:
    def test_recursion_cycle_reported_as_info(self):
        module, _f = get(
            """
define i32 @f(i32 %x) {
entry:
  %r = call i32 @g(i32 %x)
  ret i32 %r
}
define i32 @g(i32 %x) {
entry:
  %r = call i32 @f(i32 %x)
  ret i32 %r
}
"""
        )
        diags = by_checker(run_module_checks(module), "callgraph")
        assert len(diags) == 1
        assert diags[0].severity is Severity.INFO
        assert "recursion cycle" in diags[0].message

    def test_direct_recursion_reported(self):
        module, _f = get(
            """
define i32 @f(i32 %x) {
entry:
  %r = call i32 @f(i32 %x)
  ret i32 %r
}
"""
        )
        diags = by_checker(run_module_checks(module), "callgraph")
        assert len(diags) == 1
        assert "directly recursive" in diags[0].message

    def test_acyclic_module_is_quiet(self):
        module, _f = get(
            """
define i32 @leaf(i32 %x) {
entry:
  ret i32 %x
}
define i32 @f(i32 %x) {
entry:
  %r = call i32 @leaf(i32 %x)
  ret i32 %r
}
"""
        )
        assert by_checker(run_module_checks(module), "callgraph") == []

    def test_arity_mismatch_after_mutation_is_error(self):
        module, func = get(
            """
define i32 @one(i32 %x) {
entry:
  ret i32 %x
}
define i32 @two(i32 %x, i32 %y) {
entry:
  ret i32 %x
}
define i32 @f(i32 %x) {
entry:
  %r = call i32 @one(i32 %x)
  ret i32 %r
}
"""
        )
        call = func.entry.instructions[0]
        call.set_operand(0, module.get_function("two"))  # now under-applied
        diags = by_checker(run_module_checks(module), "callgraph")
        errors = [d for d in diags if d.severity is Severity.ERROR]
        assert len(errors) == 1
        assert "passes 1" in errors[0].message
