"""Merge-safety linter tests: the static §III-E acceptance criteria.

The linter must flag BOTH Section III-E placement bugs on IR fixtures
without executing anything, and must stay silent on every merge the fixed
pipeline produces (zero false positives) — mirroring the dynamic oracle's
acceptance suite at zero interpretation cost.
"""

import pytest

from repro.alignment import align_functions
from repro.diagnostics import Severity, errors_only
from repro.ir import parse_module, print_module, verify_module
from repro.merge import (
    FunctionMergingPass,
    MergeOptions,
    PassConfig,
    merge_functions,
)
from repro.merge.ssa_repair import _demote_to_stack
from repro.search import ExhaustiveRanker
from repro.staticcheck import lint_commit, lint_merge, lint_merged_function
from repro.workloads import build_workload
from tests.merge.test_ssa_repair import _INVOKE_FUNC, _PHI_FUNC, get
from tests.oracle.test_differential import _bug_effect_suite


class _FakeResult:
    """Just enough MergeResult surface for lint_merged_function."""

    def __init__(self, func):
        self.merged = func


def _merge_safety_errors(func):
    return [
        d
        for d in lint_merged_function(_FakeResult(func))
        if d.checker == "merge-safety" and d.severity is Severity.ERROR
    ]


class TestSectionIIIEFixtures:
    """The two bug patterns, statically, on the ssa_repair fixtures."""

    def test_bug1_phi_store_placement_flagged(self):
        _m, func = get(_PHI_FUNC)
        p = func.blocks[3].phis()[0]
        _demote_to_stack(func, p, legacy_bugs=True)
        errors = _merge_safety_errors(func)
        assert errors, "legacy phi store placement must be flagged statically"
        assert any("store placed after the use" in d.message for d in errors)
        # The diagnostic is located: function, block and instruction names.
        assert errors[0].function == "f"
        assert errors[0].block == "join"
        assert errors[0].instruction

    def test_bug1_fixed_placement_is_clean(self):
        _m, func = get(_PHI_FUNC)
        p = func.blocks[3].phis()[0]
        _demote_to_stack(func, p, legacy_bugs=False)
        assert _merge_safety_errors(func) == []

    def test_bug2_invoke_phi_load_flagged(self):
        _m, func = get(_INVOKE_FUNC)
        invoke = func.entry.terminator
        _demote_to_stack(func, invoke, legacy_bugs=True)
        errors = _merge_safety_errors(func)
        assert errors, "legacy invoke/phi load placement must be flagged statically"
        assert any("feeds a phi" in d.message for d in errors)

    def test_bug2_fixed_placement_is_clean(self):
        _m, func = get(_INVOKE_FUNC)
        invoke = func.entry.terminator
        _demote_to_stack(func, invoke, legacy_bugs=False)
        assert _merge_safety_errors(func) == []


class TestLegacyCodegenDetection:
    """End-to-end: the linter judges real merger output statically."""

    def test_legacy_merge_flagged(self):
        module = _bug_effect_suite()
        fa, fb = module.get_function("fa"), module.get_function("fb")
        result = merge_functions(
            align_functions(fa, fb), module, options=MergeOptions(legacy_bugs=True)
        )
        diags = errors_only(lint_merge(result, module))
        assert diags
        assert all(d.checker == "merge-safety" for d in diags)

    def test_fixed_merge_clean(self):
        module = _bug_effect_suite()
        fa, fb = module.get_function("fa"), module.get_function("fb")
        result = merge_functions(
            align_functions(fa, fb), module, options=MergeOptions(legacy_bugs=False)
        )
        assert errors_only(lint_merge(result, module)) == []


class TestStaticGateInPass:
    """--static-check behaves like the oracle gate, without execution."""

    def test_legacy_bugs_vetoed_with_static_fail(self):
        module = _bug_effect_suite()
        before = print_module(module)
        config = PassConfig(legacy_bugs=True, verify=False, static_check=True)
        report = FunctionMergingPass(ExhaustiveRanker(), config).run(module)
        counts = report.outcome_counts()
        assert counts["static_fail"] >= 1
        assert report.merges == 0
        # Every vetoed attempt was rolled back: the module is untouched.
        assert print_module(module) == before
        verify_module(module)
        vetoed = [a for a in report.attempts if a.outcome == "static_fail"]
        assert all(a.error and a.error.startswith("static:") for a in vetoed)
        assert all(a.static_time > 0 for a in vetoed)

    def test_fixed_codegen_commits_with_zero_vetoes(self):
        module = _bug_effect_suite()
        config = PassConfig(legacy_bugs=False, static_check=True)
        report = FunctionMergingPass(ExhaustiveRanker(), config).run(module)
        counts = report.outcome_counts()
        assert counts["static_fail"] == 0
        assert report.merges >= 1
        verify_module(module)

    def test_workload_scale_no_false_positives(self):
        # The fixed pipeline over a generated workload: the static gate
        # must never veto a correct merge.
        module = build_workload(80, "staticgate")
        config = PassConfig(static_check=True)
        report = FunctionMergingPass(ExhaustiveRanker(), config).run(module)
        verify_module(module)
        assert report.outcome_counts()["static_fail"] == 0
        assert report.merges > 0
        # The stage breakdown accounts the gate's cost.
        assert report.stage_breakdown()["staticcheck"] > 0

    def test_stage_breakdown_has_staticcheck_bucket(self):
        module = _bug_effect_suite()
        config = PassConfig(static_check=True)
        report = FunctionMergingPass(ExhaustiveRanker(), config).run(module)
        assert "staticcheck" in report.stage_breakdown()


class TestLintCommit:
    def test_committed_merge_is_structurally_clean(self):
        module = _bug_effect_suite()
        config = PassConfig(static_check=True)
        pass_ = FunctionMergingPass(ExhaustiveRanker(), config)
        report = pass_.run(module)
        assert report.merges >= 1
        verify_module(module)

    def test_corrupted_thunk_detected(self):
        from repro.merge import commit_merge

        module = _bug_effect_suite()
        fa, fb = module.get_function("fa"), module.get_function("fb")
        fa.internal = False  # visible outside the module: kept as a thunk
        result = merge_functions(align_functions(fa, fb), module)
        commit_merge(result)
        diags = lint_commit(result, module)
        assert diags == []  # honest commit: clean
        # Corrupt the surviving thunk: flip its function-id constant.
        from repro.ir import ConstantInt, I1

        thunk = module.get_function("fa")
        assert thunk is fa and not thunk.is_declaration
        call = thunk.entry.instructions[0]
        call.set_operand(1, ConstantInt(I1, 1))  # operand 0 is the callee
        diags = lint_commit(result, module)
        assert any("function-id" in d.message for d in diags)
