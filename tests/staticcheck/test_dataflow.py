"""Direct unit tests for the generic dataflow engine and its instances."""

from repro.ir import Load, Store, parse_module
from repro.staticcheck import (
    DataflowProblem,
    Liveness,
    ReachingStores,
    SlotLiveness,
    reset_solver_stats,
    solve,
    solver_stats,
    tracked_slots,
)


def get(text, name="f"):
    module = parse_module(text)
    return module.get_function(name)


_DIAMOND_SLOTS = """
define i32 @f(i32 %x, i1 %c) {
entry:
  %s = alloca i32
  store i32 %x, i32* %s
  br i1 %c, label %a, label %b
a:
  store i32 7, i32* %s
  br label %join
b:
  br label %join
join:
  %v = load i32, i32* %s
  ret i32 %v
}
"""


def _insts(func, block_index):
    return func.blocks[block_index].instructions


def _loads(func):
    return [i for b in func.blocks for i in b.instructions if isinstance(i, Load)]


def _stores(func):
    return [i for b in func.blocks for i in b.instructions if isinstance(i, Store)]


class TestReachingStores:
    def test_both_stores_reach_the_join_load(self):
        func = get(_DIAMOND_SLOTS)
        problem = ReachingStores(func)
        result = solve(problem, func)
        (load,) = _loads(func)
        reaching = problem.reaching_stores(result, load)
        assert reaching is not None
        assert set(map(id, reaching)) == set(map(id, _stores(func)))

    def test_same_slot_store_kills_previous(self):
        func = get(
            """
define i32 @f(i32 %x) {
entry:
  %s = alloca i32
  store i32 %x, i32* %s
  store i32 9, i32* %s
  %v = load i32, i32* %s
  ret i32 %v
}
"""
        )
        problem = ReachingStores(func)
        result = solve(problem, func)
        (load,) = _loads(func)
        reaching = problem.reaching_stores(result, load)
        assert len(reaching) == 1
        # Only the second (killing) store survives.
        assert reaching[0] is _stores(func)[1]

    def test_load_with_no_reaching_store(self):
        func = get(
            """
define i32 @f(i32 %x) {
entry:
  %s = alloca i32
  %v = load i32, i32* %s
  store i32 %x, i32* %s
  ret i32 %v
}
"""
        )
        problem = ReachingStores(func)
        result = solve(problem, func)
        (load,) = _loads(func)
        assert problem.reaching_stores(result, load) == []

    def test_store_reaches_loop_body_through_back_edge(self):
        func = get(
            """
define i32 @f(i32 %n) {
entry:
  %s = alloca i32
  store i32 %n, i32* %s
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %v = load i32, i32* %s
  %next = add i32 %i, 1
  br label %head
exit:
  %r = load i32, i32* %s
  ret i32 %r
}
"""
        )
        problem = ReachingStores(func)
        result = solve(problem, func)
        for load in _loads(func):
            assert len(problem.reaching_stores(result, load)) == 1

    def test_escaped_slot_is_untracked(self):
        func = get(
            """
define i32 @f(i32 %x) {
entry:
  %arr = alloca [4 x i32]
  %p = gep [4 x i32]* %arr, i32 0, i32 0
  %v = load i32, i32* %p
  ret i32 %v
}
"""
        )
        problem = ReachingStores(func)
        assert problem.slots == {}
        result = solve(problem, func)
        (load,) = _loads(func)
        # Untracked slot: the query answers None, never "uninitialized".
        assert problem.reaching_stores(result, load) is None

    def test_tracked_slots_selects_scalar_slots_only(self):
        func = get(_DIAMOND_SLOTS)
        slots = tracked_slots(func)
        assert len(slots) == 1
        (slot,) = slots.values()
        assert slot.name == "s"


class TestLiveness:
    def test_straightline_intervals(self):
        func = get(
            """
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = mul i32 %a, 2
  %c = add i32 %b, 3
  ret i32 %c
}
"""
        )
        result = solve(Liveness(), func)
        a, b, c, ret = _insts(func, 0)
        # %a is live before its use in %b, dead afterwards.
        assert id(a) in result.state_before(b)
        assert id(a) not in result.state_after(b)
        # %c is live until the return consumes it.
        assert id(c) in result.state_before(ret)
        # The argument dies at its single use.
        (arg,) = func.args
        assert id(arg) in result.state_before(a)
        assert id(arg) not in result.state_after(a)

    def test_phi_use_is_live_on_incoming_edge_only(self):
        func = get(
            """
define i32 @f(i32 %x, i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %va = add i32 %x, 1
  br label %join
b:
  br label %join
join:
  %p = phi i32 [ %va, %a ], [ 5, %b ]
  ret i32 %p
}
"""
        )
        result = solve(Liveness(), func)
        entry, a_block, b_block, join = func.blocks
        va = a_block.instructions[0]
        # %va is live at the end of its own arm...
        assert id(va) in result.state_out(a_block)
        # ...but not inside the join block or on the other arm.
        assert id(va) not in result.state_in(join)
        assert id(va) not in result.state_out(b_block)

    def test_loop_carried_value_live_around_back_edge(self):
        func = get(
            """
define i32 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %next = add i32 %i, 1
  br label %head
exit:
  ret i32 %i
}
"""
        )
        result = solve(Liveness(), func)
        entry, head, body, exit_block = func.blocks
        phi = head.phis()[0]
        # The phi value flows out of the loop to the exit use.
        assert id(phi) in result.state_in(exit_block)
        # %n is live around the whole loop (re-read every iteration).
        (n,) = func.args
        assert id(n) in result.state_out(body)


class TestSlotLiveness:
    def test_dead_final_store(self):
        func = get(
            """
define i32 @f(i32 %x) {
entry:
  %s = alloca i32
  store i32 %x, i32* %s
  %v = load i32, i32* %s
  store i32 99, i32* %s
  ret i32 %v
}
"""
        )
        problem = SlotLiveness(func)
        result = solve(problem, func)
        first, dead = _stores(func)
        (slot,) = problem.slots.values()
        assert id(slot) in result.state_after(first)  # read downstream
        assert id(slot) not in result.state_after(dead)  # never read again


class TestEngineGenerality:
    def test_custom_forward_problem(self):
        """The engine accepts any lattice: here, 'blocks on some path from
        the entry' (forward may-reachability over block names)."""

        class PathBlocks(DataflowProblem):
            direction = "forward"

            def transfer(self, inst, state):
                return state

            def edge(self, pred, succ, state):
                return state | {pred.name}

        func = get(_DIAMOND_SLOTS)
        result = solve(PathBlocks(), func)
        entry, a, b, join = func.blocks
        assert result.state_in(join) == {"entry", "a", "b"}
        assert result.state_in(a) == {"entry"}

    def test_unreachable_blocks_keep_bottom_state(self):
        func = get(_DIAMOND_SLOTS)
        from repro.ir import BasicBlock, Branch

        dangling = BasicBlock("dangling", func)
        dangling.append(Branch(func.blocks[3]))
        problem = ReachingStores(func)
        result = solve(problem, func)
        assert result.state_in(dangling) == frozenset()
        assert result.state_out(dangling) == frozenset()

    def test_fixpoint_terminates_on_irreducible_cfg(self):
        func = get(
            """
define i32 @f(i32 %x, i1 %c) {
entry:
  %s = alloca i32
  store i32 %x, i32* %s
  br i1 %c, label %a, label %b
a:
  %va = load i32, i32* %s
  br i1 %c, label %b, label %exit
b:
  %vb = load i32, i32* %s
  br i1 %c, label %a, label %exit
exit:
  ret i32 %x
}
"""
        )
        problem = ReachingStores(func)
        result = solve(problem, func)
        for load in _loads(func):
            assert len(problem.reaching_stores(result, load)) == 1
        assert result.iterations >= len(func.blocks)


class TestSolverStats:
    """The worklist engine's cost counters (rendered by ``repro report``)."""

    def setup_method(self):
        reset_solver_stats()

    def teardown_method(self):
        reset_solver_stats()

    def test_solve_records_per_problem_counters(self):
        func = get(_DIAMOND_SLOTS)
        solve(ReachingStores(func), func)
        solve(ReachingStores(func), func)
        solve(Liveness(), func)
        stats = solver_stats()
        assert stats["ReachingStores.solves"] == 2
        assert stats["Liveness.solves"] == 1
        assert stats["ReachingStores.iterations"] >= 2 * len(func.blocks)
        assert (
            stats["ReachingStores.max_iterations"]
            <= stats["ReachingStores.iterations"]
        )

    def test_iterations_per_block_near_one_on_acyclic_cfg(self):
        func = get(_DIAMOND_SLOTS)
        solve(ReachingStores(func), func)
        ratio = solver_stats()["ReachingStores.iterations_per_block"]
        # A diamond converges in one RPO sweep: each block visited once.
        assert 1.0 <= ratio <= 2.0

    def test_reset_clears_everything(self):
        func = get(_DIAMOND_SLOTS)
        solve(ReachingStores(func), func)
        assert solver_stats()
        reset_solver_stats()
        assert solver_stats() == {}

    def test_stats_flow_into_the_metrics_registry(self):
        from repro.obs.metrics import Registry

        func = get(_DIAMOND_SLOTS)
        solve(ReachingStores(func), func)
        registry = Registry()
        registry.register_source("staticcheck.dataflow", solver_stats)
        snap = registry.snapshot()
        source = snap["sources"]["staticcheck.dataflow"]
        assert source["ReachingStores.solves"] == 1
