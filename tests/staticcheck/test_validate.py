"""Translation-validation tests: the product-CFG walker end to end.

Three layers are pinned here:

* :func:`repro.staticcheck.validate.validate_merge` on real merges —
  straight-line, branching and looping pairs must *prove*; the §III-E
  corpus reproducers on the legacy repair path must *refute*; caps
  exhaustion must degrade to *unknown*, never to a false ``proved``.
* the ``validate`` checker on committed modules (specialized self-check).
* budget/verdict plumbing: ordering, report serialization, diagnostics.
"""

from pathlib import Path

import pytest

from repro.alignment import align_functions
from repro.ir.parser import parse_module
from repro.ir.verifier import verify_module
from repro.merge.merger import MergeOptions, merge_functions
from repro.staticcheck import (
    PROVED,
    REFUTED,
    UNKNOWN,
    Caps,
    ValidationReport,
    run_module_checks,
    specialized_demote_diagnostics,
    validate_merge,
)

CORPUS = Path(__file__).resolve().parents[2] / "corpus"

# Same entries as tests/fuzz/test_corpus.py — the validator must refute
# exactly the merges whose committed form the campaign flags.
CORPUS_ENTRIES = [
    ("sec3e_stale_reload.ir", ["d1", "d2"]),
    ("sec3e_phi_reload.ir", ["v1", "v2"]),
]


def _merge_pair(text, a, b, legacy_bugs=False):
    module = parse_module(text)
    verify_module(module)
    alignment = align_functions(module.get_function(a), module.get_function(b))
    return merge_functions(
        alignment, module, options=MergeOptions(legacy_bugs=legacy_bugs)
    )


STRAIGHT = """
define i32 @f1(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = mul i32 %a, 3
  ret i32 %b
}
define i32 @f2(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = mul i32 %a, 7
  ret i32 %b
}
"""

LOOP = """
define i32 @s1(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %acc = phi i32 [ 0, %entry ], [ %nacc, %body ]
  %cmp = icmp slt i32 %i, %n
  br i1 %cmp, label %body, label %exit
body:
  %nacc = add i32 %acc, %i
  %inc = add i32 %i, 1
  br label %head
exit:
  ret i32 %acc
}
define i32 @s2(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %acc = phi i32 [ 0, %entry ], [ %nacc, %body ]
  %cmp = icmp slt i32 %i, %n
  br i1 %cmp, label %body, label %exit
body:
  %nacc = add i32 %acc, %i
  %inc = add i32 %i, 2
  br label %head
exit:
  ret i32 %acc
}
"""


class TestProves:
    def test_straight_line_pair_proves(self):
        report = validate_merge(_merge_pair(STRAIGHT, "f1", "f2"))
        assert report.verdict == PROVED
        assert set(report.sides) == {0, 1}
        assert all(s.verdict == PROVED for s in report.sides.values())
        assert report.diagnostics == []

    def test_loop_pair_proves(self):
        # Back-edges become product-task boundaries; the walk must
        # terminate via memoization, not step budget.
        report = validate_merge(_merge_pair(LOOP, "s1", "s2"))
        assert report.verdict == PROVED
        assert report.tasks > 2  # at least one loop crossing per side
        assert report.steps > 0

    def test_fixed_corpus_merges_prove(self):
        for name, (a, b) in CORPUS_ENTRIES:
            result = _merge_pair((CORPUS / name).read_text(), a, b, legacy_bugs=False)
            report = validate_merge(result)
            assert report.verdict == PROVED, f"{name}: {report.to_dict()}"


class TestRefutes:
    @pytest.mark.parametrize("name,pair", CORPUS_ENTRIES)
    def test_legacy_corpus_merges_refute(self, name, pair):
        # Both §III-E reproducers are definitive miscompiles on the
        # legacy repair path: the validator must *refute* them
        # statically, naming the product-node pair.
        result = _merge_pair((CORPUS / name).read_text(), *pair, legacy_bugs=True)
        report = validate_merge(result)
        assert report.verdict == REFUTED
        assert report.diagnostics, "a refutation must carry diagnostics"
        diag = report.diagnostics[0]
        assert diag.checker == "validate"
        assert diag.code and diag.code.startswith("validate/")
        assert "<->" in diag.message or "demote" in diag.message

    def test_refuted_side_short_circuits(self):
        name, pair = CORPUS_ENTRIES[0]
        result = _merge_pair((CORPUS / name).read_text(), *pair, legacy_bugs=True)
        report = validate_merge(result)
        refuted = [fid for fid, s in report.sides.items() if s.verdict == REFUTED]
        assert refuted
        # Walking stops at the first refuted specialization.
        assert min(refuted) == max(fid for fid in report.sides)


class TestUnknown:
    def test_step_budget_degrades_to_unknown(self):
        result = _merge_pair(LOOP, "s1", "s2")
        report = validate_merge(result, caps=Caps(max_steps=1))
        assert report.verdict == UNKNOWN
        assert report.diagnostics
        assert any(d.code == "validate/budget" for d in report.diagnostics)

    def test_task_budget_degrades_to_unknown(self):
        result = _merge_pair(LOOP, "s1", "s2")
        report = validate_merge(result, caps=Caps(max_tasks=1))
        assert report.verdict in (UNKNOWN, PROVED)
        assert report.verdict != REFUTED

    def test_unknown_outranks_proved(self):
        report = ValidationReport()
        report.verdict = PROVED
        # worst-of ordering is proved < unknown < refuted
        from repro.staticcheck.validate import _RANK

        assert _RANK[PROVED] < _RANK[UNKNOWN] < _RANK[REFUTED]


class TestReport:
    def test_to_dict_round_trips_to_json(self):
        import json

        report = validate_merge(_merge_pair(STRAIGHT, "f1", "f2"))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["verdict"] == PROVED
        assert set(payload["sides"]) == {"0", "1"}
        for side in payload["sides"].values():
            assert {"verdict", "tasks", "steps", "memo_hits"} <= set(side)


class TestCommittedChecker:
    def test_validate_checker_flags_committed_legacy_merge(self):
        name, pair = CORPUS_ENTRIES[0]
        module = parse_module((CORPUS / name).read_text())
        alignment = align_functions(
            module.get_function(pair[0]), module.get_function(pair[1])
        )
        result = merge_functions(
            alignment, module, options=MergeOptions(legacy_bugs=True)
        )
        from repro.merge.thunks import commit_merge

        commit_merge(result)
        diags = [
            d for d in run_module_checks(module, ["validate"]) if d.checker == "validate"
        ]
        assert diags
        assert all(d.code == "validate/demote-reload" for d in diags)
        assert all("funcId=" in d.message for d in diags)

    def test_specialized_check_skips_other_specializations_spills(self):
        # A demote reload parked behind one funcId's branch with a store on
        # that same specialized path must not fire (the whole-CFG linter
        # scan would still see both paths; the specialized one must not).
        text = """
define i32 @merged.a.b(i1 %fid, i32 %x) {
entry:
  %demote.r = alloca i32
  br i1 %fid, label %left, label %right
left:
  store i32 %x, i32* %demote.r
  %lv = load i32, i32* %demote.r
  ret i32 %lv
right:
  ret i32 %x
}
"""
        module = parse_module(text)
        func = module.get_function("merged.a.b")
        assert specialized_demote_diagnostics(func) == []
