"""CLI tests for ``repro lint`` (text, JSON, exit codes)."""

import json

import pytest

from repro.cli import lint_main, main


@pytest.fixture
def clean_module(tmp_path):
    path = tmp_path / "clean.ll"
    assert main(["generate", "-n", "40", "-o", str(path)]) == 0
    return path


# A dominance violation the parser accepts (forward value reference) but
# the verifier/linter must reject: %b uses %later defined after its use.
BROKEN = """
define i32 @f(i32 %x, i1 %c) {
entry:
  br i1 %c, label %a, label %join
a:
  %va = add i32 %x, 1
  br label %join
join:
  %u = add i32 %va, 1
  ret i32 %u
}
"""


@pytest.fixture
def broken_module(tmp_path):
    path = tmp_path / "broken.ll"
    path.write_text(BROKEN)
    return path


class TestExitCodes:
    def test_clean_generated_workload_is_lint_clean(self, clean_module, capsys):
        # Verifier-clean generated modules must produce zero errors.
        assert main(["lint", str(clean_module), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 0
        assert [d for d in payload["diagnostics"] if d["severity"] == "error"] == []

    def test_error_diagnostic_sets_exit_code(self, broken_module):
        assert main(["lint", str(broken_module)]) == 1

    def test_warning_only_module_exits_zero(self, tmp_path):
        path = tmp_path / "warn.ll"
        path.write_text(
            """
define i32 @f(i32 %x) {
entry:
  %s = alloca i32
  %v = load i32, i32* %s
  store i32 %x, i32* %s
  ret i32 %v
}
"""
        )
        assert main(["lint", str(path)]) == 0


class TestJsonOutput:
    def test_diagnostics_carry_id_severity_location(self, broken_module, capsys):
        assert main(["lint", str(broken_module), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        errors = [d for d in payload["diagnostics"] if d["severity"] == "error"]
        assert errors
        diag = errors[0]
        assert diag["checker"] == "ssa-dominance"
        assert diag["function"] == "f"
        assert diag["block"] == "join"
        assert diag["instruction"] == "u"
        assert "not dominated" in diag["message"]

    def test_checker_selection(self, broken_module, capsys):
        assert (
            main(["lint", str(broken_module), "--json", "--checkers", "callgraph"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["checkers"] == ["callgraph"]
        assert payload["diagnostics"] == []

    def test_unknown_checker_is_a_hard_error(self, broken_module, capsys):
        # A typo'd checker list must not silently run nothing and "pass".
        assert (
            main(["lint", str(broken_module), "--checkers", "dead-stor"]) == 2
        )
        err = capsys.readouterr().err
        assert "unknown checker 'dead-stor'" in err
        assert "did you mean 'dead-store'?" in err

    def test_unknown_checker_without_close_match(self, broken_module, capsys):
        assert (
            main(["lint", str(broken_module), "--checkers", "zzzzzz"]) == 2
        )
        err = capsys.readouterr().err
        assert "unknown checker 'zzzzzz'" in err
        assert "did you mean" not in err
        assert "known checkers:" in err

    def test_diagnostics_carry_stable_codes(self, broken_module, capsys):
        # Every diagnostic in --json carries a machine-stable code of the
        # form "<checker>/<kind>" (triage keys on it across releases).
        assert main(["lint", str(broken_module), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"]
        for diag in payload["diagnostics"]:
            assert diag["code"], diag
            assert diag["code"].startswith(diag["checker"] + "/")

    def test_min_severity_filter(self, broken_module, capsys):
        assert (
            main(["lint", str(broken_module), "--json", "--min-severity", "error"])
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert all(d["severity"] == "error" for d in payload["diagnostics"])


class TestTextOutput:
    def test_text_lines_are_human_readable(self, broken_module, capsys):
        assert main(["lint", str(broken_module)]) == 1
        captured = capsys.readouterr()
        assert "error[ssa-dominance]" in captured.out
        assert "@f" in captured.out
        assert "errors" in captured.err  # the summary line

    def test_list_checkers(self, capsys):
        assert main(["lint", "--list-checkers"]) == 0
        out = capsys.readouterr().out
        for name in (
            "ssa-dominance",
            "maybe-uninit",
            "unreachable-block",
            "dead-store",
            "type-consistency",
            "callgraph",
            "validate",
        ):
            assert name in out

    def test_missing_module_argument(self, capsys):
        assert main(["lint"]) == 2


class TestEntryPoint:
    def test_lint_main_wrapper(self, clean_module, capsys):
        # The repro-lint console script prepends the subcommand itself.
        assert lint_main([str(clean_module), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 0
