"""Tests for deterministic argument synthesis."""

from repro.ir import ArrayType, Function, FunctionType, I32, Interpreter, parse_module
from repro.oracle import BufferSpec, synthesize_inputs
from repro.oracle.inputs import materialize
from tests.conftest import build_straightline


class TestSynthesize:
    def test_same_function_same_inputs(self, module):
        func = build_straightline(module, "f")
        a = synthesize_inputs(func, 5)
        b = synthesize_inputs(func, 5)
        assert a == b
        assert len(a) == 5
        assert all(len(vec) == 1 for vec in a)

    def test_seed_changes_inputs(self, module):
        func = build_straightline(module, "f")
        assert synthesize_inputs(func, 5, seed=1) != synthesize_inputs(func, 5, seed=2)

    def test_scalar_specs_are_concrete(self, module):
        func = build_straightline(module, "f")
        for vec in synthesize_inputs(func, 8):
            assert all(isinstance(spec, int) for spec in vec)

    def test_pointer_param_gets_buffer_spec(self):
        module = parse_module(
            "define void @g(i32* %p) {\nentry:\n"
            "  store i32 7, i32* %p\n  ret void\n}"
        )
        vectors = synthesize_inputs(module.get_function("g"), 3)
        assert vectors is not None
        for vec in vectors:
            assert isinstance(vec[0], BufferSpec)
            assert vec[0].size >= 4

    def test_unsupported_param_type_returns_none(self):
        # An aggregate parameter is outside the oracle's vocabulary;
        # synthesis must report "inconclusive", not guess.
        weird = Function(FunctionType(I32, [ArrayType(I32, 4)]), "weird")
        assert synthesize_inputs(weird, 3) is None


class TestMaterialize:
    def test_buffer_fill_lands_in_memory(self):
        spec = BufferSpec(size=8, fill=(1, 2, 3))
        interp = Interpreter()
        base = spec.materialize(interp)
        assert [interp.memory[base + i] for i in range(3)] == [1, 2, 3]
        # The rest of the allocation is zeroed.
        assert all(interp.memory[base + i] == 0 for i in range(3, 8))

    def test_scalars_pass_through(self):
        interp = Interpreter()
        assert materialize([5, 2.5], interp) == [5, 2.5]

    def test_buffers_are_run_local(self):
        spec = BufferSpec(size=4)
        a = spec.materialize(Interpreter())
        interp = Interpreter()
        interp.alloc(64)  # perturb the allocator
        b = spec.materialize(interp)
        # Addresses are an artifact of the run, not part of the spec.
        assert isinstance(a, int) and isinstance(b, int)
