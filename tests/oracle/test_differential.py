"""Tests for the differential-execution oracle.

The tier-2 suite at the bottom is the §III-E acceptance check: the
oracle must veto merges produced by the legacy (buggy) codegen and wave
through the same merges produced by the fixed codegen.
"""

import pytest

from repro.alignment import align_functions
from repro.ir import ConstantInt, I32, Opcode, parse_module, print_module, verify_module
from repro.merge import FunctionMergingPass, MergeOptions, PassConfig, merge_functions
from repro.oracle import DifferentialOracle, OracleConfig
from repro.search import ExhaustiveRanker


def _merge_text(text, name_a="f1", name_b="f2", **options):
    module = parse_module(text)
    fa, fb = module.get_function(name_a), module.get_function(name_b)
    return merge_functions(
        align_functions(fa, fb), module, options=MergeOptions(**options)
    )


SIMPLE_PAIR = """
define i32 @f1(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = mul i32 %a, 3
  ret i32 %b
}
define i32 @f2(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = mul i32 %a, 7
  ret i32 %b
}
"""


def _bug_effect_suite():
    """A module whose one profitable merge demotes a phi with a same-block
    use — the exact §III-E bug-1 scenario.  @fa's diamond is private to it
    (no counterpart in @fb), so after merging the phi %p lands in a
    fid-guarded block while its transitive use sits in the long shared
    tail; SSA repair must demote %p, and the legacy store placement makes
    the same-block use %u read a stale slot.
    """

    def tail(var, n=30):
        ops, prev = [], var
        for i in range(n):
            name = f"%s{i}"
            op = ("add", "mul", "xor", "sub")[i % 4]
            ops.append(f"  {name} = {op} i32 {prev}, {i + 3}")
            prev = name
        ops.append(f"  ret i32 {prev}")
        return "\n".join(ops)

    text = f"""
define i32 @fa(i32 %x, i1 %c) {{
entry:
  br i1 %c, label %a, label %b
a:
  %va = add i32 %x, 1
  br label %join
b:
  %vb = add i32 %x, 2
  br label %join
join:
  %p = phi i32 [ %va, %a ], [ %vb, %b ]
  %q = phi i32 [ 1, %a ], [ 2, %b ]
  %u = mul i32 %p, %q
  br label %exit
exit:
  %t = add i32 %p, %u
{tail("%t")}
}}

define i32 @fb(i32 %x, i1 %c) {{
entry:
  %h = add i32 %x, 7
  br label %exit
exit:
  %t = add i32 %h, 1
{tail("%t")}
}}

define i32 @caller(i32 %x) {{
entry:
  %r1 = call i32 @fa(i32 %x, i1 1)
  %r2 = call i32 @fb(i32 %x, i1 0)
  %r = add i32 %r1, %r2
  ret i32 %r
}}
"""
    return parse_module(text)


class TestVerdicts:
    def test_correct_merge_is_equivalent(self):
        result = _merge_text(SIMPLE_PAIR)
        verdict = DifferentialOracle().check(result)
        assert verdict.equivalent
        # Five inputs per side, both sides supported.
        assert verdict.checked == 10
        assert verdict.skipped == 0

    def test_tampered_merge_is_vetoed(self):
        # Corrupt the merged function after a correct merge: the oracle must
        # notice without any knowledge of *how* codegen went wrong.
        result = _merge_text(SIMPLE_PAIR)
        for block in result.merged.blocks:
            for inst in block.instructions:
                if inst.opcode == Opcode.ADD:
                    inst.set_operand(1, ConstantInt(I32, 99))
                    break
        verdict = DifferentialOracle().check(result)
        assert not verdict.equivalent
        div = verdict.divergences[0]
        assert div.kind == "value"
        assert "divergence" in str(div)

    def test_memory_divergence_detected(self):
        text = """
define void @f1(i32* %p, i32 %x) {
entry:
  %v = add i32 %x, 3
  store i32 %v, i32* %p
  ret void
}
define void @f2(i32* %p, i32 %x) {
entry:
  %v = add i32 %x, 5
  store i32 %v, i32* %p
  ret void
}
"""
        result = _merge_text(text)
        assert DifferentialOracle().check(result).equivalent
        # Corrupt the stored value: only memory can reveal it (void return).
        for block in result.merged.blocks:
            for inst in block.instructions:
                if inst.opcode == Opcode.ADD:
                    inst.set_operand(1, ConstantInt(I32, 1000))
                    break
        verdict = DifferentialOracle().check(result)
        assert not verdict.equivalent
        assert verdict.divergences[0].kind == "memory"

    def test_unresolved_external_skips_not_vetoes(self):
        text = """
declare i32 @ext(i32)
define i32 @f1(i32 %x) {
entry:
  %a = call i32 @ext(i32 %x)
  %b = mul i32 %a, 3
  ret i32 %b
}
define i32 @f2(i32 %x) {
entry:
  %a = call i32 @ext(i32 %x)
  %b = mul i32 %a, 7
  ret i32 %b
}
"""
        result = _merge_text(text)
        verdict = DifferentialOracle().check(result)
        # The oracle could not observe either side; it must stay silent.
        assert verdict.checked == 0
        assert verdict.skipped == 10
        assert verdict.equivalent

    def test_verdict_is_deterministic(self):
        result = _merge_text(SIMPLE_PAIR)
        oracle = DifferentialOracle()
        a, b = oracle.check(result), oracle.check(result)
        assert (a.checked, a.skipped, len(a.divergences)) == (
            b.checked,
            b.skipped,
            len(b.divergences),
        )

    def test_config_controls_input_count(self):
        result = _merge_text(SIMPLE_PAIR)
        verdict = DifferentialOracle(OracleConfig(inputs_per_function=2)).check(result)
        assert verdict.checked == 4


class TestLegacyBugDetection:
    def test_legacy_phi_placement_diverges(self):
        module = _bug_effect_suite()
        fa, fb = module.get_function("fa"), module.get_function("fb")
        result = merge_functions(
            align_functions(fa, fb), module, options=MergeOptions(legacy_bugs=True)
        )
        verdict = DifferentialOracle().check(result)
        assert not verdict.equivalent
        assert verdict.divergences[0].function == "fa"
        assert verdict.divergences[0].kind == "value"

    def test_fixed_phi_placement_is_equivalent(self):
        module = _bug_effect_suite()
        fa, fb = module.get_function("fa"), module.get_function("fb")
        result = merge_functions(
            align_functions(fa, fb), module, options=MergeOptions(legacy_bugs=False)
        )
        assert DifferentialOracle().check(result).equivalent


@pytest.mark.tier2
class TestOracleGateAcceptance:
    """§III-E acceptance: the oracle gate inside the pass."""

    def test_legacy_bugs_vetoed_with_oracle_fail(self):
        module = _bug_effect_suite()
        before = print_module(module)
        config = PassConfig(legacy_bugs=True, oracle=True)
        report = FunctionMergingPass(ExhaustiveRanker(), config).run(module)
        counts = report.outcome_counts()
        assert counts["oracle_fail"] >= 1
        assert report.merges == 0
        # Every vetoed attempt was rolled back: the module is untouched.
        assert print_module(module) == before
        verify_module(module)
        vetoed = [a for a in report.attempts if a.outcome == "oracle_fail"]
        assert all(a.error and a.error.startswith("oracle:") for a in vetoed)

    def test_fixed_codegen_commits_with_zero_vetoes(self):
        module = _bug_effect_suite()
        config = PassConfig(legacy_bugs=False, oracle=True)
        report = FunctionMergingPass(ExhaustiveRanker(), config).run(module)
        counts = report.outcome_counts()
        assert counts["oracle_fail"] == 0
        assert report.merges >= 1
        verify_module(module)

    def test_workload_scale_fixed_codegen_no_vetoes(self):
        # The fixed pipeline over a real generated workload: the oracle
        # must never veto a correct merge (no false positives at scale).
        from repro.workloads import build_workload

        module = build_workload(120, "oraclecheck")
        config = PassConfig(oracle=True)
        report = FunctionMergingPass(ExhaustiveRanker(), config).run(module)
        verify_module(module)
        assert report.outcome_counts()["oracle_fail"] == 0
        assert report.merges > 0


class TestOracleTimeout:
    """The step-budget guard: a merged function that loops forever must
    surface as a structured timeout, never hang the oracle."""

    @staticmethod
    def _loop_the_merged(result):
        # Replace the first ret's block terminator with a self-branch: the
        # merged side now spins while both originals terminate.
        from repro.ir import Branch, Ret

        for block in result.merged.blocks:
            term = block.instructions[-1]
            if isinstance(term, Ret):
                block.remove(term)
                block.append(Branch(block))
                return
        raise AssertionError("merged function has no ret")

    def test_fuel_exhausted_is_a_structured_trap(self):
        from repro.ir import FuelExhausted, Interpreter, Trap

        module = parse_module(
            """
define i32 @spin(i32 %x) {
entry:
  br label %loop
loop:
  %v = phi i32 [ %x, %entry ], [ %n, %loop ]
  %n = add i32 %v, 1
  br label %loop
}
"""
        )
        with pytest.raises(FuelExhausted):
            Interpreter(fuel=500).run(module.get_function("spin"), [1])
        assert issubclass(FuelExhausted, Trap)

    def test_oracle_reports_timeout_kind(self):
        result = _merge_text(SIMPLE_PAIR)
        self._loop_the_merged(result)
        verdict = DifferentialOracle(OracleConfig(fuel=2_000)).check(result)
        assert not verdict.equivalent
        assert verdict.timed_out
        assert all(d.kind == "timeout" for d in verdict.divergences)

    def test_timed_out_is_false_on_value_divergence(self):
        result = _merge_text(SIMPLE_PAIR)
        for block in result.merged.blocks:
            for inst in block.instructions:
                if inst.opcode == Opcode.ADD:
                    inst.set_operand(1, ConstantInt(I32, 99))
                    break
        verdict = DifferentialOracle().check(result)
        assert not verdict.equivalent
        assert not verdict.timed_out

    def test_pass_surfaces_oracle_timeout_outcome(self):
        module = parse_module(SIMPLE_PAIR)
        pass_ = FunctionMergingPass(
            ExhaustiveRanker(),
            PassConfig(oracle=True, min_instructions=0),
            oracle=_LoopingOracle(),
        )
        report = pass_.run(module)
        outcomes = {str(a.outcome) for a in report.attempts}
        assert "oracle_timeout" in outcomes
        # The veto rolled the module back: both originals intact.
        assert module.get_function("f1").num_instructions == 3
        assert module.get_function("f2").num_instructions == 3


class _LoopingOracle:
    """Wraps the real oracle but sabotages the merged side into a loop
    first — exercising the pass's ORACLE_TIMEOUT path end to end."""

    def check(self, result):
        TestOracleTimeout._loop_the_merged(result)
        return DifferentialOracle(OracleConfig(fuel=2_000)).check(result)
