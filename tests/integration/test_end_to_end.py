"""Whole-pipeline integration tests: semantics, determinism, bug effects."""

import pytest

from repro.analysis import module_size
from repro.ir import Interpreter, verify_module
from repro.merge import FunctionMergingPass, PassConfig
from repro.search import ExhaustiveRanker, MinHashLSHRanker
from repro.workloads import build_workload


def driver_results(module, inputs):
    driver = module.get_function("driver")
    return {x: Interpreter().run(driver, [x]).value for x in inputs}


INPUTS = (0, 1, 7, 23)


class TestDifferentialSemantics:
    @pytest.mark.parametrize(
        "strategy",
        ["hyfm", "f3m", "f3m-adaptive"],
    )
    def test_merging_preserves_driver_output(self, strategy):
        baseline = build_workload(120, "e2e")
        ref = driver_results(baseline, INPUTS)

        module = build_workload(120, "e2e")
        if strategy == "hyfm":
            ranker = ExhaustiveRanker()
        else:
            ranker = MinHashLSHRanker(adaptive=(strategy == "f3m-adaptive"))
        report = FunctionMergingPass(ranker, PassConfig(verify=True)).run(module)
        verify_module(module)
        assert report.merges > 0
        assert driver_results(module, INPUTS) == ref

    def test_nw_alignment_preserves_semantics(self):
        baseline = build_workload(80, "e2e-nw")
        ref = driver_results(baseline, INPUTS)
        module = build_workload(80, "e2e-nw")
        config = PassConfig(alignment="nw", verify=True)
        FunctionMergingPass(ExhaustiveRanker(), config).run(module)
        verify_module(module)
        assert driver_results(module, INPUTS) == ref


class TestSizeReduction:
    def test_both_strategies_reduce_size_comparably(self):
        m1 = build_workload(150, "size")
        m2 = build_workload(150, "size")
        r_hyfm = FunctionMergingPass(ExhaustiveRanker()).run(m1)
        r_f3m = FunctionMergingPass(MinHashLSHRanker()).run(m2)
        assert r_hyfm.size_reduction > 0.03
        assert r_f3m.size_reduction > 0.03
        # Paper Fig. 11: F3M achieves comparable (slightly better on
        # average) reduction despite examining far fewer pairs.
        assert r_f3m.size_reduction >= r_hyfm.size_reduction - 0.05

    def test_f3m_needs_fewer_comparisons(self):
        m1 = build_workload(150, "size")
        m2 = build_workload(150, "size")
        r_hyfm = FunctionMergingPass(ExhaustiveRanker()).run(m1)
        r_f3m = FunctionMergingPass(MinHashLSHRanker()).run(m2)
        assert r_f3m.comparisons < r_hyfm.comparisons / 2


class TestLegacyBugEffect:
    def test_legacy_bugs_do_not_crash_and_report_not_lower(self):
        """Section III-E: the buggy HyFM erroneously reported *higher* code
        size reduction because miscompiled blocks were optimized away; in
        our pipeline the buggy placement produces different (possibly
        wrong) code but the pass still runs to completion."""
        module = build_workload(100, "legacy")
        config = PassConfig(legacy_bugs=True, verify=False)
        report = FunctionMergingPass(ExhaustiveRanker(), config).run(module)
        assert report.merges > 0

    def test_fixed_path_is_default(self):
        assert PassConfig().legacy_bugs is False


class TestIdempotence:
    def test_second_pass_finds_little(self):
        module = build_workload(100, "idem")
        first = FunctionMergingPass(ExhaustiveRanker()).run(module)
        second = FunctionMergingPass(ExhaustiveRanker()).run(module)
        assert second.merges <= max(2, first.merges // 4)
        verify_module(module)
