"""End-to-end: MiniC source → SSA → merging → differential equivalence."""

import pytest

from repro.frontend import compile_source
from repro.ir import Interpreter, verify_module
from repro.merge import FunctionMergingPass, PassConfig
from repro.search import ExhaustiveRanker, MinHashLSHRanker
from repro.transforms import optimize_module, promote_module

SOURCE = """
int poly_a(int x, int y) {
    int acc = x * x + y;
    if (acc > 100) { acc = acc - 100; }
    return acc * 3;
}

int poly_b(int x, int y) {
    int acc = x * x + y;
    if (acc > 50) { acc = acc - 50; }
    return acc * 7;
}

int reduce_a(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + i * i; }
    return acc;
}

int reduce_b(int n) {
    int acc = 1;
    for (int i = 0; i < n; i = i + 1) { acc = acc + i * 3; }
    return acc;
}

double scale_a(double x, int k) { return x * k + 0.25; }
double scale_b(double x, int k) { return x * k - 1.75; }

int entry_point(int x) {
    int a = poly_a(x, 2) + poly_b(x, 3);
    int b = reduce_a(x % 8) + reduce_b(x % 8);
    double d = scale_a(1.5, x % 5) + scale_b(2.5, x % 5);
    int c = d;
    return a + b + c;
}
"""

INPUTS = (0, 1, 5, 9, 12, 37)


def _entry_results(module):
    func = module.get_function("entry_point")
    return [Interpreter().run(func, [x]).value for x in INPUTS]


@pytest.fixture
def pipeline_module():
    module = compile_source(SOURCE)
    module.get_function("entry_point").internal = False
    verify_module(module)
    return module


class TestMiniCPipeline:
    def test_mem2reg_preserves_entry(self, pipeline_module):
        reference = _entry_results(pipeline_module)
        promote_module(pipeline_module)
        verify_module(pipeline_module)
        assert _entry_results(pipeline_module) == reference

    @pytest.mark.parametrize("ranker_cls", [ExhaustiveRanker, MinHashLSHRanker])
    def test_full_pipeline_equivalent(self, pipeline_module, ranker_cls):
        reference = _entry_results(pipeline_module)
        promote_module(pipeline_module)
        report = FunctionMergingPass(ranker_cls(), PassConfig(verify=True)).run(
            pipeline_module
        )
        optimize_module(pipeline_module, drop_dead_functions=False)
        verify_module(pipeline_module)
        assert report.merges >= 1  # the scale_* or poly_* family must merge
        assert _entry_results(pipeline_module) == reference

    def test_merge_without_mem2reg_also_works(self, pipeline_module):
        """Alloca-heavy (un-promoted) code must merge correctly too."""
        reference = _entry_results(pipeline_module)
        report = FunctionMergingPass(
            ExhaustiveRanker(), PassConfig(verify=True)
        ).run(pipeline_module)
        verify_module(pipeline_module)
        assert _entry_results(pipeline_module) == reference

    def test_mem2reg_improves_merge_quality(self):
        """SSA form exposes more mergeable structure than memory traffic."""
        raw = compile_source(SOURCE)
        ssa = compile_source(SOURCE)
        promote_module(ssa)
        raw_report = FunctionMergingPass(MinHashLSHRanker(), PassConfig()).run(raw)
        ssa_report = FunctionMergingPass(MinHashLSHRanker(), PassConfig()).run(ssa)
        # SSA modules are smaller to start with and merge at least as well.
        assert ssa_report.size_before < raw_report.size_before
        assert ssa_report.merges >= 1
