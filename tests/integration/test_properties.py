"""Property-based tests over randomly generated IR.

These are the heavyweight guarantees:

* print → parse → print is a fixpoint for any generated function;
* merging any two same-return-type generated functions yields a verifier-
  clean merged function that reproduces *both* originals on random inputs.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.alignment import align_functions
from repro.fingerprint import MinHashConfig, exact_jaccard, minhash_function
from repro.ir import (
    Interpreter,
    Module,
    Trap,
    parse_module,
    print_module,
    verify_function,
    verify_module,
)
from repro.merge import MergeError, merge_functions
from repro.workloads import FunctionGenerator, make_variant

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _generate(seed, count=2):
    module = Module(f"prop{seed}")
    gen = FunctionGenerator(module, random.Random(seed))
    funcs = [gen.generate(f"p{i}") for i in range(count)]
    return module, funcs


def _args_for(func, rng):
    args = []
    for p in func.ftype.params:
        if p.is_float:
            args.append(round(rng.uniform(-4, 4), 3))
        elif p.is_int and p.bits == 1:
            args.append(rng.randint(0, 1))
        else:
            args.append(rng.randint(0, 100))
    return args


def _run(func, args):
    try:
        return ("ok", Interpreter(fuel=500_000).run(func, args).value)
    except Trap as trap:
        return ("trap", str(trap))


class TestRoundTripProperty:
    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 10_000))
    def test_print_parse_fixpoint(self, seed):
        module, _funcs = _generate(seed, count=3)
        module.get_function  # touch
        for func in module.functions:
            func.uniquify_names()
        text = print_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert print_module(reparsed) == text


class TestMergeEquivalenceProperty:
    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 10_000))
    def test_merge_random_pair(self, seed):
        module, funcs = _generate(seed, count=2)
        f1, f2 = funcs
        if f1.return_type is not f2.return_type:
            return  # pair rejected by design
        rng = random.Random(seed ^ 0xABCDEF)
        try:
            result = merge_functions(align_functions(f1, f2), module)
        except MergeError:
            return  # rejection is allowed; miscompilation is not
        verify_function(result.merged)
        merged = result.merged
        for trial in range(3):
            for func, pmap, fid in (
                (f1, result.param_map_a, 0),
                (f2, result.param_map_b, 1),
            ):
                args = _args_for(func, rng)
                margs = [0] * len(merged.args)
                for arg_meta, slot in zip(merged.args, range(len(merged.args))):
                    if arg_meta.type.is_float:
                        margs[slot] = 0.0
                margs[0] = fid
                for value, slot in zip(args, pmap):
                    margs[slot] = value
                assert _run(merged, margs) == _run(func, args)

    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 10_000), n_mut=st.integers(0, 10))
    def test_merge_base_with_variant(self, seed, n_mut):
        """Family pairs (the common case) must always merge cleanly."""
        module, funcs = _generate(seed, count=1)
        base = funcs[0]
        rng = random.Random(seed * 31 + n_mut)
        variant = make_variant(base, "variant", rng, n_mut, module)
        result = merge_functions(align_functions(base, variant), module)
        verify_function(result.merged)
        merged = result.merged
        for trial in range(3):
            args = _args_for(base, rng)
            for func, pmap, fid in (
                (base, result.param_map_a, 0),
                (variant, result.param_map_b, 1),
            ):
                margs = [0] * len(merged.args)
                for i, arg_meta in enumerate(merged.args):
                    if arg_meta.type.is_float:
                        margs[i] = 0.0
                margs[0] = fid
                for value, slot in zip(args, pmap):
                    margs[slot] = value
                assert _run(merged, margs) == _run(func, args)


class TestMinHashOnRealFunctionsProperty:
    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 10_000))
    def test_estimate_tracks_exact_jaccard(self, seed):
        from repro.fingerprint import encode_function

        module, funcs = _generate(seed, count=1)
        base = funcs[0]
        rng = random.Random(seed + 1)
        variant = make_variant(base, "v", rng, rng.randint(0, 8), module)
        cfg = MinHashConfig(k=256)
        sim = minhash_function(base, cfg).similarity(minhash_function(variant, cfg))
        exact = exact_jaccard(encode_function(base), encode_function(variant))
        assert abs(sim - exact) <= 4.0 / (256**0.5) + 0.02
