"""Property tests: every mutator preserves the campaign's two invariants.

The fuzz generator leans on ``workloads/mutate.py`` to synthesize
thousands of candidate modules, so each individual mutator — plain and
§III-E danger pool alike — must, for *arbitrary* seeded inputs:

1. leave the module verifier-valid, and
2. leave it printable/re-parsable with a stable fixpoint
   (print → parse → print is the identity).

Hypothesis drives the seeds; every counterexample it finds is a module
the campaign could have generated.
"""

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.ir.module import Module
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.workloads.generator import FunctionGenerator, GeneratorConfig
from repro.workloads.mutate import (
    DANGER_MUTATIONS,
    _MUTATIONS,
    make_danger_variant,
    make_variant,
    mutate_function,
    mutate_function_danger,
)

ALL_MUTATORS = [fn for fn, _w in _MUTATIONS] + [fn for fn, _w in DANGER_MUTATIONS]


def _base_module(seed: int) -> Module:
    rng = random.Random(seed)
    module = Module(f"prop.{seed}")
    generator = FunctionGenerator(
        module, rng, GeneratorConfig(max_ops=14, max_depth=2)
    )
    for i in range(2):
        generator.generate(f"f{i}")
    return module


def _assert_valid_and_round_trips(module: Module) -> None:
    for func in module.defined_functions():
        func.uniquify_names()
    verify_module(module)
    text = print_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    assert print_module(reparsed) == text


@pytest.mark.parametrize("mutator", ALL_MUTATORS, ids=lambda m: m.__name__)
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_each_mutator_preserves_validity(mutator, seed):
    module = _base_module(seed)
    rng = random.Random(seed ^ 0xA5A5)
    for func in list(module.defined_functions()):
        for _ in range(3):
            mutator(func, rng)
    _assert_valid_and_round_trips(module)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_mixed_mutation_streams_preserve_validity(seed):
    module = _base_module(seed)
    rng = random.Random(seed)
    for func in list(module.defined_functions()):
        mutate_function(func, rng, 4)
        mutate_function_danger(func, rng, 4, danger_bias=0.8)
    _assert_valid_and_round_trips(module)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_variant_helpers_preserve_validity(seed):
    module = _base_module(seed)
    rng = random.Random(seed)
    bases = list(module.defined_functions())
    for i, base in enumerate(bases):
        make_variant(base, f"{base.name}.v", rng, 3, module=module)
        make_danger_variant(
            base, f"{base.name}.d", rng, 3, module=module, danger_bias=1.0
        )
    assert len(module.defined_functions()) >= 3 * len(bases)
    _assert_valid_and_round_trips(module)
