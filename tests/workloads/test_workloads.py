"""Tests for the workload generator, mutation engine and suites."""

import random

import pytest

from repro.fingerprint import fingerprint_function
from repro.ir import Interpreter, Module, print_function, verify_function, verify_module
from repro.workloads import (
    BENCHMARKS,
    FunctionGenerator,
    GeneratorConfig,
    WorkloadConfig,
    benchmark_by_name,
    build_benchmark,
    build_workload,
    make_variant,
    mutate_function,
    size_class,
)
from tests.conftest import build_diamond


class TestGenerator:
    def test_functions_verify(self):
        module = Module("gen")
        gen = FunctionGenerator(module, random.Random(0))
        for i in range(25):
            func = gen.generate(f"g{i}")
            verify_function(func)

    def test_deterministic(self):
        m1, m2 = Module("a"), Module("b")
        g1 = FunctionGenerator(m1, random.Random(99))
        g2 = FunctionGenerator(m2, random.Random(99))
        for i in range(10):
            f1 = g1.generate(f"g{i}")
            f2 = g2.generate(f"g{i}")
            assert print_function(f1) == print_function(f2)

    def test_functions_are_interpretable(self):
        module = Module("gen")
        gen = FunctionGenerator(module, random.Random(3))
        for i in range(15):
            func = gen.generate(f"g{i}")
            args = []
            for p in func.ftype.params:
                if p.is_float:
                    args.append(1.5)
                else:
                    args.append(2)
            result = Interpreter(fuel=200_000).run(func, args)
            assert result.instructions_executed > 0

    def test_config_bounds_respected(self):
        module = Module("gen")
        cfg = GeneratorConfig(min_ops=3, max_ops=5, max_params=2)
        gen = FunctionGenerator(module, random.Random(1), cfg)
        for i in range(10):
            func = gen.generate(f"g{i}")
            assert 1 <= len(func.args) <= 2


class TestMutation:
    def test_variants_verify(self, module):
        base = build_diamond(module, "base")
        rng = random.Random(7)
        for i in range(10):
            variant = make_variant(base, f"v{i}", rng, i, module)
            verify_function(variant)

    def test_zero_mutations_identical(self, module):
        base = build_diamond(module, "base")
        variant = make_variant(base, "v0", random.Random(1), 0, module)
        assert print_function(variant) == print_function(base).replace("@base", "@v0")

    def test_mutations_change_code(self, module):
        base = build_diamond(module, "base")
        variant = make_variant(base, "v", random.Random(1), 8, module)
        assert print_function(variant) != print_function(base).replace("@base", "@v")

    def test_mutation_count_reported(self, module):
        base = build_diamond(module, "base")
        applied = mutate_function(base, random.Random(1), 5)
        assert 0 <= applied <= 5
        verify_function(base)

    def test_heavier_mutation_lowers_similarity(self, module):
        base = build_diamond(module, "base")
        rng = random.Random(11)
        light = make_variant(base, "light", rng, 1, module)
        heavy = make_variant(base, "heavy", rng, 40, module)
        fp = fingerprint_function(base)
        assert fp.similarity(fingerprint_function(light)) >= fp.similarity(
            fingerprint_function(heavy)
        )

    def test_mutants_stay_interpretable(self, module):
        from tests.conftest import build_loop

        base = build_loop(module, "base")
        rng = random.Random(5)
        for i in range(8):
            variant = make_variant(base, f"v{i}", rng, 10, module)
            Interpreter(fuel=100_000).run(variant, [3])


class TestSuites:
    def test_benchmark_table_shape(self):
        names = [b.name for b in BENCHMARKS]
        assert "400.perlbench" in names
        assert "linux" in names and "chrome" in names
        assert benchmark_by_name("400.perlbench").functions == 1837
        assert benchmark_by_name("linux").functions == 45000
        assert benchmark_by_name("chrome").functions == 1_200_000

    def test_sorted_for_figures(self):
        # Benchmarks appear on figure x-axes ordered by function count.
        counts = [b.functions for b in BENCHMARKS]
        assert counts == sorted(counts)

    def test_size_classes(self):
        assert size_class(500) == "small"
        assert size_class(5000) == "medium"
        assert size_class(50_000) == "large"

    def test_build_workload_counts(self):
        module = build_workload(40, "wl")
        defined = [f for f in module.defined_functions() if f.name != "driver"]
        assert len(defined) == 40
        assert module.get_function("driver") is not None
        verify_module(module)

    def test_build_workload_deterministic(self):
        from repro.ir import print_module

        m1 = build_workload(30, "same")
        m2 = build_workload(30, "same")
        assert print_module(m1) == print_module(m2)

    def test_families_exist(self):
        module = build_workload(60, "fam")
        family_members = [f for f in module.functions if f.name.startswith("fam")]
        assert len(family_members) > 5

    def test_build_benchmark_scaling(self):
        module = build_benchmark("462.libquantum", scale=0.5)
        n = len(module.defined_functions()) - 1  # minus driver
        assert abs(n - 115 * 0.5) <= 1

    def test_build_benchmark_cap(self):
        module = build_benchmark("linux", scale=1.0, max_functions=50)
        assert len(module.defined_functions()) - 1 == 50

    def test_driver_runs(self):
        module = build_workload(30, "drv")
        result = Interpreter().run(module.get_function("driver"), [5])
        assert result.instructions_executed > 10
