"""Tests for the transactional merge-attempt bracket."""

import pytest

from repro.alignment import align_functions
from repro.ir import Interpreter, parse_module, print_module, verify_module
from repro.merge import MergeTransaction, commit_merge, merge_functions


def _module_with_callers():
    text = """
define i32 @f1(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = mul i32 %a, 3
  ret i32 %b
}
define i32 @f2(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = mul i32 %a, 7
  ret i32 %b
}
define i32 @main(i32 %x) {
entry:
  %r1 = call i32 @f1(i32 %x, i32 2)
  %r2 = call i32 @f2(i32 %x, i32 3)
  %s = add i32 %r1, %r2
  ret i32 %s
}
"""
    return parse_module(text)


def _merge_pair(module):
    f1, f2 = module.get_function("f1"), module.get_function("f2")
    return merge_functions(align_functions(f1, f2), module)


class TestRollback:
    def test_rollback_after_codegen_restores_module_text(self):
        module = _module_with_callers()
        before = print_module(module)
        txn = MergeTransaction(module)
        _merge_pair(module)  # adds @merged.f1.f2 to the module
        assert print_module(module) != before
        txn.rollback()
        assert print_module(module) == before
        verify_module(module)

    def test_rollback_after_commit_restores_module_text(self):
        module = _module_with_callers()
        before = print_module(module)
        f1, f2 = module.get_function("f1"), module.get_function("f2")
        txn = MergeTransaction(module)
        result = _merge_pair(module)
        txn.capture_commit_set(result.function_a, result.function_b)
        commit_merge(result)
        # Originals gone, merged function live, caller rewritten.
        assert module.get_function("f1") is None
        txn.rollback()
        assert print_module(module) == before
        verify_module(module)
        # Identity is preserved: the restored functions are the same objects.
        assert module.get_function("f1") is f1
        assert module.get_function("f2") is f2

    def test_rollback_preserves_semantics(self):
        module = _module_with_callers()
        main = module.get_function("main")
        ref = {x: Interpreter().run(main, [x]).value for x in (0, 4, 9)}
        txn = MergeTransaction(module)
        result = _merge_pair(module)
        txn.capture_commit_set(result.function_a, result.function_b)
        commit_merge(result)
        txn.rollback()
        for x, expected in ref.items():
            assert Interpreter().run(module.get_function("main"), [x]).value == expected

    def test_rollback_is_idempotent(self):
        module = _module_with_callers()
        before = print_module(module)
        txn = MergeTransaction(module)
        txn.capture(module.get_function("f1"))
        txn.rollback()
        txn.rollback()  # second call must be a silent no-op
        assert print_module(module) == before

    def test_rollback_after_commit_is_noop(self):
        module = _module_with_callers()
        txn = MergeTransaction(module)
        result = _merge_pair(module)
        txn.capture_commit_set(result.function_a, result.function_b)
        commit_merge(result)
        txn.commit()
        after = print_module(module)
        txn.rollback()  # must not undo a committed merge
        assert print_module(module) == after
        assert module.get_function("merged.f1.f2") is not None


class TestCapture:
    def test_captured_flag(self):
        module = _module_with_callers()
        txn = MergeTransaction(module)
        assert not txn.captured
        txn.capture(module.get_function("f1"))
        assert txn.captured

    def test_capture_after_close_raises(self):
        module = _module_with_callers()
        txn = MergeTransaction(module)
        txn.commit()
        with pytest.raises(RuntimeError):
            txn.capture(module.get_function("f1"))

    def test_commit_set_includes_callers(self):
        module = _module_with_callers()
        f1, f2 = module.get_function("f1"), module.get_function("f2")
        txn = MergeTransaction(module)
        txn.capture_commit_set(f1, f2)
        captured = {b.function.name for b in txn._backups.values()}
        assert captured == {"f1", "f2", "main"}

    def test_backups_do_not_inflate_use_counts(self):
        # The snapshot must be invisible to use-count queries: a clone with
        # registered uses would double @f1's caller count and trip the
        # dangling-use check during a later commit.
        module = _module_with_callers()
        f1 = module.get_function("f1")
        callers_before = len(f1.callers())
        uses_before = f1.num_uses
        txn = MergeTransaction(module)
        txn.capture_commit_set(f1, module.get_function("f2"))
        assert len(f1.callers()) == callers_before
        assert f1.num_uses == uses_before
        txn.rollback()
        assert len(f1.callers()) == callers_before
        assert f1.num_uses == uses_before

    def test_empty_rollback_is_free(self):
        # Attempts that fail before codegen captured nothing; rollback must
        # still leave the module untouched.
        module = _module_with_callers()
        before = print_module(module)
        txn = MergeTransaction(module)
        txn.rollback()
        assert print_module(module) == before
