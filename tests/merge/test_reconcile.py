"""Tests for optimistic cross-partition merging (phase-2 reconciliation).

The crafted modules pick function names whose FNV-1a hashes land them in
specific partitions (the same assignment :func:`partition_functions`
uses), so each scenario controls exactly which pairs phase 1 can see and
which pairs only the global re-ranking can surface.
"""

import pytest

from repro.analysis.size import module_size
from repro.faults import FaultInjector
from repro.fingerprint.fnv import fnv1a_32
from repro.ir import Interpreter, parse_module, print_module, verify_module
from repro.merge import PassConfig, optimistic_sweep, partition_sweep
from repro.merge.reconcile import (
    ReconcileReport,
    _OptimisticDriver,
    _replay_phase,
)
from repro.search.pairing import MinHashLSHRanker
from repro.workloads import build_workload

CONFIG = PassConfig(verify=True)


def _replay_only(n_or_text, partitions, tag="reconref"):
    """The phase-1-only reference: sweep + replay, no reconciliation.

    Returns ``(module, sweep_results)`` — the partition-local result the
    reconcile phase is measured against (and must fall back to under an
    injected fault)."""
    if isinstance(n_or_text, int):
        module = build_workload(n_or_text, f"{tag}{n_or_text}")
    else:
        module = parse_module(n_or_text)
    sweep = partition_sweep(module, partitions, MinHashLSHRanker, CONFIG)
    driver = _OptimisticDriver(module, CONFIG, None)
    _replay_phase(driver, sweep.results, ReconcileReport(partitions=partitions))
    return module


def _pick_name(base: str, partition: int, partitions: int) -> str:
    """A name starting with *base* that hashes into *partition*."""
    for i in range(500):
        name = base if i == 0 else f"{base}_{i}"
        if fnv1a_32(name.encode("utf-8")) % partitions == partition:
            return name
    raise AssertionError(f"no name found for {base} -> partition {partition}")


def _family_fn(name: str, k: int, diffs=()) -> str:
    """A 24-instruction chain; family members share the opcode skeleton
    and differ in the constant at position 1 (*k*) plus every position in
    *diffs* — more diffs means more select operands in a merge, shrinking
    its modelled saving toward barely-profitable."""
    lines = []
    prev = "%x"
    for i in range(24):
        op = ["add", "mul", "xor", "sub"][i % 4]
        c = k if i == 1 else (100 + i if i in diffs else 7 + i)
        lines.append(f"  %v{i} = {op} i32 {prev}, {c}")
        prev = f"%v{i}"
    body = "\n".join(lines)
    return (
        f"define i32 @{name}(i32 %x, i32 %y) {{\n"
        f"entry:\n{body}\n  ret i32 {prev}\n}}\n"
    )


def _conflict_module_text(diff_count: int) -> str:
    """Two partitions, each holding one big-family function and one
    partner sharing its opcode skeleton with *diff_count* differing
    constants.  Phase 1 merges within each partition; the cross-partition
    big-family pair (identical bar one constant) is only visible to the
    global re-ranking and conflicts with BOTH optimistic merges."""
    a0 = _pick_name("alpha_a", 0, 2)
    b0 = _pick_name("alpha_b", 0, 2)
    a1 = _pick_name("beta_a", 1, 2)
    b1 = _pick_name("beta_b", 1, 2)
    diffs = tuple(range(2, 2 + diff_count))
    return (
        _family_fn(a0, 3)
        + _family_fn(b0, 3, diffs)
        + _family_fn(a1, 4)
        + _family_fn(b1, 4, diffs)
    )


class TestRecovery:
    def test_recovers_pairs_partition_local_sweep_forgoes(self):
        # The generated workload scatters similarity families across
        # partitions by name hash, so partition-local merging provably
        # forgoes cross-partition pairs (see
        # test_partitioned.py::test_summary_counts_cross_partition_losses).
        baseline = _replay_only(48, 4, tag="reconbl")
        module = build_workload(48, "reconbl48")
        report = optimistic_sweep(module, 4, MinHashLSHRanker, CONFIG)
        rc = report.reconcile
        assert rc.recovered_pairs > 0
        assert rc.size_phase1 == module_size(baseline)
        assert rc.size_after < rc.size_phase1
        assert module_size(module) == rc.size_after
        assert rc.recovered_size_delta > 0
        verify_module(module)

    def test_replay_reproduces_partition_decisions(self):
        module = build_workload(48, "reconrep48")
        report = optimistic_sweep(module, 4, MinHashLSHRanker, CONFIG)
        rc = report.reconcile
        assert rc.replay_diverged == 0
        assert rc.replay_merges == report.merges

    def test_semantics_preserved(self):
        module = build_workload(60, "reconsem")
        driver = module.get_function("driver")
        ref = {x: Interpreter().run(driver, [x]).value for x in (0, 3, 11)}
        optimistic_sweep(module, 4, MinHashLSHRanker, CONFIG)
        verify_module(module)
        for x, expected in ref.items():
            got = Interpreter().run(module.get_function("driver"), [x]).value
            assert got == expected

    def test_all_gates_green(self):
        # The reconcile attempts run through the same gated pipeline:
        # with linter, translation validator, and differential oracle all
        # gating, recovery still happens and nothing leaks a failure.
        config = PassConfig(
            verify=True, static_check=True, validate="gate", oracle=True
        )
        module = build_workload(32, "recongate")
        report = optimistic_sweep(module, 4, MinHashLSHRanker, config)
        rc = report.reconcile
        assert rc.replay_diverged == 0
        assert rc.recovered_pairs > 0
        verify_module(module)


class TestDeterminism:
    def test_digest_identical_across_runs_and_worker_counts(self):
        digests = set()
        for workers in (1, 4, 1):
            module = build_workload(48, "recondet")
            report = optimistic_sweep(
                module, 4, MinHashLSHRanker, CONFIG, workers=workers
            )
            digests.add(report.digest())
        assert len(digests) == 1

    def test_module_bytes_identical_across_worker_counts(self):
        texts = set()
        for workers in (1, 4):
            module = build_workload(48, "reconbytes")
            optimistic_sweep(module, 4, MinHashLSHRanker, CONFIG, workers=workers)
            texts.add(print_module(module))
        assert len(texts) == 1

    def test_serial_exhaustive_reference_still_valid(self):
        # workers=1 runs the sweep worker inline (no process pool); the
        # serial path must remain a valid reference for the parallel one
        # even with the reconcile phase appended.
        m1 = build_workload(40, "reconserial")
        r1 = optimistic_sweep(m1, 3, MinHashLSHRanker, CONFIG, workers=1)
        m2 = build_workload(40, "reconserial")
        r2 = optimistic_sweep(m2, 3, MinHashLSHRanker, CONFIG, workers=3)
        assert r1.digest() == r2.digest()
        assert print_module(m1) == print_module(m2)

    def test_digest_includes_reconcile_decisions(self):
        module = build_workload(48, "recondig")
        report = optimistic_sweep(module, 4, MinHashLSHRanker, CONFIG)
        assert report.reconcile is not None
        assert '"reconcile"' in report.digest()
        plain = build_workload(48, "recondig")
        sweep = partition_sweep(plain, 4, MinHashLSHRanker, CONFIG)
        assert '"reconcile"' not in sweep.digest()


class TestConflictResolution:
    def test_double_rollback_better_cross_pair_wins(self):
        # Both members of the cross-partition pair already won optimistic
        # merges (barely profitable: 20 differing constants); reconciling
        # must roll BOTH back and commit the far-better global pair.
        text = _conflict_module_text(diff_count=20)
        module = parse_module(text)
        report = optimistic_sweep(module, 2, MinHashLSHRanker, CONFIG)
        rc = report.reconcile
        assert rc.replay_merges == 2
        assert rc.conflicts_considered >= 1
        assert rc.conflicts_resolved == 1
        assert rc.rollbacks == 2  # both optimistic merges undone
        won = [d for d in rc.decisions if d[4] == "conflict_won"]
        assert len(won) == 1
        assert rc.size_after < rc.size_phase1
        verify_module(module)
        # The winner is a merge of the two big-family functions.
        merged = [
            f.name
            for f in module.defined_functions()
            if f.name.startswith("merged.")
        ]
        assert len(merged) == 1
        assert "alpha_a" in merged[0] and "beta_a" in merged[0]

    def test_lower_benefit_cross_pair_loses_and_phase1_is_restored(self):
        # With only 6 differing constants the optimistic merges are worth
        # more together than any single cross merge: every conflict must
        # re-apply phase 1's decisions (bit-identical re-commit).
        text = _conflict_module_text(diff_count=6)
        module = parse_module(text)
        report = optimistic_sweep(module, 2, MinHashLSHRanker, CONFIG)
        rc = report.reconcile
        assert rc.conflicts_considered >= 1
        assert rc.conflicts_resolved == 0
        kept = [d for d in rc.decisions if d[4] == "conflict_kept"]
        assert kept, rc.decisions
        assert rc.reapply_failures == 0
        assert rc.reapplied >= 2
        verify_module(module)

    def test_conflict_kept_semantics_preserved(self):
        text = _conflict_module_text(diff_count=6)
        ref_module = parse_module(text)
        refs = {}
        for func in ref_module.defined_functions():
            refs[func.name] = Interpreter().run(func, [5, 9]).value
        module = parse_module(text)
        optimistic_sweep(module, 2, MinHashLSHRanker, CONFIG)
        verify_module(module)
        for name, expected in refs.items():
            live = module.get_function(name)
            if live is None or not live.blocks:
                continue  # erased or declared away by a merge
            assert Interpreter().run(live, [5, 9]).value == expected


class TestFaultContainment:
    def test_reconcile_fault_leaves_phase1_result_byte_identical(self):
        reference = _replay_only(48, 4, tag="reconflt")
        ref_text = print_module(reference)
        module = build_workload(48, "reconflt48")
        faults = FaultInjector("reconcile")
        report = optimistic_sweep(
            module, 4, MinHashLSHRanker, CONFIG, faults=faults
        )
        rc = report.reconcile
        assert faults.fired > 0
        assert rc.recovered_pairs == 0
        assert rc.size_after == rc.size_phase1
        assert print_module(module) == ref_text

    def test_single_fault_is_contained_per_pair(self):
        # Fault only the first phase-2 attempt: later attempts still
        # recover pairs and the module stays verifiable.
        clean = build_workload(48, "reconflt1")
        clean_rc = optimistic_sweep(
            clean, 4, MinHashLSHRanker, CONFIG
        ).reconcile
        module = build_workload(48, "reconflt1")
        faults = FaultInjector("reconcile", at=1)
        rc = optimistic_sweep(
            module, 4, MinHashLSHRanker, CONFIG, faults=faults
        ).reconcile
        assert faults.fired == 1
        assert rc.recovered_pairs >= clean_rc.recovered_pairs - 1
        assert rc.recovered_pairs > 0
        verify_module(module)

    def test_unknown_stage_still_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector("reconcile-nonsense")


class TestReportShape:
    def test_sweep_report_carries_reconcile(self):
        module = build_workload(40, "reconshape")
        report = optimistic_sweep(module, 4, MinHashLSHRanker, CONFIG)
        rc = report.reconcile
        assert rc.partitions == 4
        assert rc.size_phase1 >= rc.size_after
        assert rc.recovered_size_delta == rc.size_phase1 - rc.size_after
        assert rc.attempted >= rc.recovered_pairs
        assert rc.elapsed > 0.0
        for decision in rc.decisions:
            assert len(decision) == 6

    def test_plain_partition_sweep_has_no_reconcile(self):
        module = build_workload(40, "reconshape2")
        sweep = partition_sweep(module, 4, MinHashLSHRanker, CONFIG)
        assert sweep.reconcile is None
        # partition_sweep still never mutates the parent module.
        fresh = build_workload(40, "reconshape2")
        assert print_module(module) == print_module(fresh)
