"""Tests for the merged-function code generator."""

import pytest

from repro.alignment import align_functions
from repro.ir import (
    I1,
    I32,
    Interpreter,
    Module,
    parse_module,
    verify_function,
)
from repro.merge import MergeError, MergeOptions, merge_functions
from repro.merge.merger import _merge_parameters
from tests.conftest import build_diamond, build_loop, build_straightline


def merge_pair(module, f1, f2, **opts):
    alignment = align_functions(f1, f2)
    return merge_functions(alignment, module, options=MergeOptions(**opts))


def check_equivalent(module, f1_name, f2_name, result, inputs):
    """The merged function must reproduce both originals on all inputs."""
    interp = Interpreter()
    merged = result.merged
    f1, f2 = result.function_a, result.function_b

    def call_merged(fid, original, args):
        margs = [None] * len(merged.args)
        margs[0] = fid
        pmap = result.param_map_a if fid == 0 else result.param_map_b
        for value, slot in zip(args, pmap):
            margs[slot] = value
        margs = [0 if a is None else a for a in margs]
        return Interpreter().run(merged, margs).value

    for args in inputs:
        assert call_merged(0, f1, args) == Interpreter().run(f1, args).value
        assert call_merged(1, f2, args) == Interpreter().run(f2, args).value


class TestParameterMerging:
    def test_identical_signatures_share_slots(self, module):
        f1 = build_diamond(module, "f1")
        f2 = build_diamond(module, "f2")
        types, map_a, map_b = _merge_parameters(f1, f2)
        assert types[0] is I1
        assert map_a == [1, 2]
        assert map_b == [1, 2]
        assert len(types) == 3

    def test_disjoint_types_append(self, module):
        from repro.ir import DOUBLE, Function, FunctionType

        f1 = Function(FunctionType(I32, [I32]), "f1", parent=module)
        f2 = Function(FunctionType(I32, [DOUBLE]), "f2", parent=module)
        types, map_a, map_b = _merge_parameters(f1, f2)
        assert map_a == [1]
        assert map_b == [2]
        assert len(types) == 3

    def test_partial_overlap(self, module):
        from repro.ir import DOUBLE, Function, FunctionType

        f1 = Function(FunctionType(I32, [I32, DOUBLE]), "f1", parent=module)
        f2 = Function(FunctionType(I32, [DOUBLE, DOUBLE]), "f2", parent=module)
        types, map_a, map_b = _merge_parameters(f1, f2)
        # f2's doubles reuse f1's double slot once, then append.
        assert map_b[0] == 2
        assert map_b[1] == 3


class TestMergeCorrectness:
    def test_identical_functions(self, module):
        f1 = build_diamond(module, "f1")
        f2 = build_diamond(module, "f2")
        result = merge_pair(module, f1, f2)
        verify_function(result.merged)
        # Fully shared: no select needed beyond zero, no private code.
        assert result.num_private == 0
        check_equivalent(module, "f1", "f2", result, [[3, 4], [20, 30]])

    def test_constant_divergence_uses_selects(self, module):
        f1 = build_diamond(module, "f1", mul_by=2)
        f2 = build_diamond(module, "f2", mul_by=9)
        result = merge_pair(module, f1, f2)
        verify_function(result.merged)
        assert result.num_selects >= 1
        check_equivalent(module, "f1", "f2", result, [[3, 4], [20, 30], [0, 0]])

    def test_structurally_different_functions(self, module):
        f1 = build_diamond(module, "f1")
        f2 = build_loop(module, "f2")
        alignment = align_functions(f1, f2)
        # Widen the signature gap: diamond takes 2 args, loop takes 1.
        result = merge_functions(alignment, module)
        verify_function(result.merged)
        merged = result.merged
        interp = Interpreter()
        for x, y in ([3, 4], [50, 60]):
            args = [0] * len(merged.args)
            args[0] = 0
            for val, slot in zip([x, y], result.param_map_a):
                args[slot] = val
            assert interp.run(merged, args).value == interp.run(f1, [x, y]).value
        for (x,) in ([3], [11]):
            args = [0] * len(merged.args)
            args[0] = 1
            for val, slot in zip([x], result.param_map_b):
                args[slot] = val
            assert interp.run(merged, args).value == interp.run(f2, [x]).value

    def test_merged_added_to_module(self, module):
        f1 = build_straightline(module, "f1")
        f2 = build_straightline(module, "f2", k=9)
        result = merge_pair(module, f1, f2)
        assert module.get_function(result.merged.name) is result.merged

    def test_return_type_mismatch_rejected(self, module):
        from repro.ir import DOUBLE, Function, FunctionType, IRBuilder, BasicBlock

        f1 = build_straightline(module, "f1")
        f2 = Function(FunctionType(DOUBLE, [I32]), "f2", parent=module)
        b = IRBuilder(BasicBlock("entry", f2))
        b.ret(b.const_float(DOUBLE, 1.0))
        with pytest.raises(MergeError):
            merge_pair(module, f1, f2)

    def test_declaration_rejected(self, module):
        from repro.ir import Function, FunctionType

        f1 = build_straightline(module, "f1")
        f2 = Function(FunctionType(I32, [I32]), "f2", parent=module)
        with pytest.raises(MergeError):
            merge_pair(module, f1, f2)

    def test_module_unchanged_on_failure(self, module):
        from repro.ir import DOUBLE, Function, FunctionType, IRBuilder, BasicBlock

        f1 = build_straightline(module, "f1")
        f2 = Function(FunctionType(DOUBLE, [I32]), "f2", parent=module)
        b = IRBuilder(BasicBlock("entry", f2))
        b.ret(b.const_float(DOUBLE, 1.0))
        before = len(module)
        with pytest.raises(MergeError):
            merge_pair(module, f1, f2)
        assert len(module) == before


class TestGuardedControlFlow:
    def test_divergent_middle_guarded(self):
        text = """
define i32 @f1(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = mul i32 %a, 2
  %c = add i32 %b, 3
  ret i32 %c
}
define i32 @f2(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = sdiv i32 %a, 2
  %c = add i32 %b, 3
  ret i32 %c
}
"""
        module = parse_module(text)
        f1, f2 = module.get_function("f1"), module.get_function("f2")
        result = merge_pair(module, f1, f2)
        verify_function(result.merged)
        assert result.num_private == 2  # one guarded op per side
        interp = Interpreter()
        for x in (0, 5, 100):
            assert (
                interp.run(result.merged, [0, x]).value
                == interp.run(f1, [x]).value
            )
            assert (
                interp.run(result.merged, [1, x]).value
                == interp.run(f2, [x]).value
            )

    def test_loop_vs_loop(self, module):
        f1 = build_loop(module, "f1", trip=5)
        f2 = build_loop(module, "f2", trip=9)
        result = merge_pair(module, f1, f2)
        verify_function(result.merged)
        interp = Interpreter()
        for x in (0, 7):
            assert interp.run(result.merged, [0, x]).value == interp.run(f1, [x]).value
            assert interp.run(result.merged, [1, x]).value == interp.run(f2, [x]).value

    def test_shared_terminators_single_branch(self, module):
        f1 = build_diamond(module, "f1")
        f2 = build_diamond(module, "f2")
        result = merge_pair(module, f1, f2)
        # Identical CFGs: terminators shared, so the merged function has
        # exactly dispatch + 4 pair blocks.
        assert len(result.merged.blocks) == 5
