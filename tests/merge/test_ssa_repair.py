"""Tests for SSA repair by stack demotion, incl. the Section III-E bugs.

The paper documents two placement bugs in HyFM's demotion logic:

1. a phi definition followed by other phis had its store placed at the end
   of the block while same-block uses loaded *before* that store;
2. an invoke result used by a phi in its successor has no legal store/load
   placement — and needs none, but HyFM inserted a bogus load anyway.

Both are reproduced behind ``legacy_bugs=True`` and shown to miscompile via
the interpreter, while the fixed behaviour preserves semantics.
"""

import pytest

from repro.ir import (
    Interpreter,
    Load,
    Phi,
    Store,
    parse_module,
    verify_function,
)
from repro.merge import MergeError, find_dominance_violations, repair_ssa
from repro.merge.ssa_repair import _demote_to_stack


def get(module_text, name="f"):
    module = parse_module(module_text)
    return module, module.get_function(name)


_PHI_FUNC = """
define i32 @f(i32 %x, i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %va = add i32 %x, 1
  br label %join
b:
  %vb = add i32 %x, 2
  br label %join
join:
  %p = phi i32 [ %va, %a ], [ %vb, %b ]
  %q = phi i32 [ 1, %a ], [ 2, %b ]
  %u = mul i32 %p, %q
  ret i32 %u
}
"""

_INVOKE_FUNC = """
define i32 @callee(i32 %x) {
entry:
  ret i32 %x
}

define i32 @f(i32 %x) {
entry:
  %r = invoke i32 @callee(i32 %x) to label %join unwind label %bad
join:
  %p = phi i32 [ %r, %entry ]
  ret i32 %p
bad:
  unreachable
}
"""


class TestViolationDetection:
    def test_clean_function_has_none(self):
        _m, func = get(_PHI_FUNC)
        assert find_dominance_violations(func) == {}

    def test_cross_arm_use_detected(self):
        module, func = get(_PHI_FUNC)
        a_block = func.blocks[1]
        b_block = func.blocks[2]
        va = a_block.instructions[0]
        vb = b_block.instructions[0]
        vb.set_operand(0, va)  # 'b' uses a value defined only in 'a'
        violations = find_dominance_violations(func)
        assert len(violations) == 1
        (value, uses) = next(iter(violations.values()))
        assert value is va
        assert uses == [(vb, 0)]


class TestRepair:
    def test_repair_fixes_cross_arm_use(self):
        module, func = get(_PHI_FUNC)
        a_block, b_block = func.blocks[1], func.blocks[2]
        va = a_block.instructions[0]
        b_block.instructions[0].set_operand(0, va)
        demoted = repair_ssa(func)
        assert demoted == 1
        verify_function(func)
        # Path 'a' is untouched: p = va = 11, q = 1, u = 11.
        assert Interpreter().run(func, [10, 1]).value == 11
        # Path 'b': the load reads the zero-initialized slot, so
        # vb = 0 + 2 = 2, p = 2, q = 2, u = 4 — well-defined, just stale.
        assert Interpreter().run(func, [10, 0]).value == 4

    def test_repair_idempotent(self):
        module, func = get(_PHI_FUNC)
        assert repair_ssa(func) == 0

    def test_nonconvergence_raises(self):
        module, func = get(_PHI_FUNC)
        a_block, b_block = func.blocks[1], func.blocks[2]
        va = a_block.instructions[0]
        b_block.instructions[0].set_operand(0, va)
        with pytest.raises(MergeError):
            repair_ssa(func, max_rounds=0)


class TestBug1PhiStorePlacement:
    """Section III-E bug 1: phi definition followed by other phis."""

    def _demote_p(self, legacy):
        module, func = get(_PHI_FUNC)
        join = func.blocks[3]
        p = join.phis()[0]
        assert p.name == "p"
        _demote_to_stack(func, p, legacy_bugs=legacy)
        return module, func, join

    def test_fixed_stores_right_after_phi_group(self):
        _m, func, join = self._demote_p(legacy=False)
        # Layout: p, q, store(p), load, mul, ret
        kinds = [type(i).__name__ for i in join.instructions]
        assert kinds[:3] == ["Phi", "Phi", "Store"]
        verify_function(func)
        # Semantics preserved: (x+1)*1 on the 'a' path, (x+2)*2 on 'b'.
        assert Interpreter().run(func, [10, 1]).value == 11
        assert Interpreter().run(func, [10, 0]).value == 24

    def test_legacy_stores_at_end_of_block(self):
        _m, func, join = self._demote_p(legacy=True)
        # The store lands right before the terminator — after the load.
        kinds = [type(i).__name__ for i in join.instructions]
        store_pos = kinds.index("Store")
        load_pos = kinds.index("Load")
        assert store_pos > load_pos
        # Miscompile: the same-block use reads the uninitialized slot.
        assert Interpreter().run(func, [10, 1]).value == 0
        assert Interpreter().run(func, [10, 0]).value == 0


class TestBug2InvokePhiUse:
    """Section III-E bug 2: invoke result used by a phi in the successor."""

    def _demote_r(self, legacy):
        module, func = get(_INVOKE_FUNC)
        invoke = func.entry.terminator
        assert invoke.opcode.name == "INVOKE"
        _demote_to_stack(func, invoke, legacy_bugs=legacy)
        return module, func

    def test_fixed_leaves_direct_use(self):
        _m, func = self._demote_r(legacy=False)
        # The phi still references the invoke result directly.
        phi = func.blocks[1].phis()[0]
        assert any(v.opcode.name == "INVOKE" for v, _b in phi.incoming if hasattr(v, "opcode"))
        verify_function(func)
        assert Interpreter().run(func, [42]).value == 42

    def test_legacy_inserts_bogus_load(self):
        _m, func = self._demote_r(legacy=True)
        # A load was inserted before the invoke; the phi reads stale memory.
        entry_kinds = [type(i).__name__ for i in func.entry.instructions]
        assert "Load" in entry_kinds
        assert entry_kinds.index("Load") < entry_kinds.index("Invoke")
        assert Interpreter().run(func, [42]).value == 0

    def test_invoke_with_multi_pred_dest_splits_edge(self):
        text = """
define i32 @callee(i32 %x) {
entry:
  ret i32 %x
}

define i32 @f(i32 %x, i1 %c) {
entry:
  br i1 %c, label %inv, label %other
inv:
  %r = invoke i32 @callee(i32 %x) to label %join unwind label %bad
other:
  br label %join
join:
  %p = phi i32 [ %r, %inv ], [ 7, %other ]
  ret i32 %p
bad:
  unreachable
}
"""
        module, func = get(text)
        invoke = func.blocks[1].terminator
        _demote_to_stack(func, invoke, legacy_bugs=False)
        verify_function(func)
        assert Interpreter().run(func, [42, 1]).value == 42
        assert Interpreter().run(func, [42, 0]).value == 7


class TestEndToEndRepairs:
    def test_merged_functions_sometimes_need_repair(self):
        """Merging similar-but-divergent CFGs must exercise the repair
        path and still produce verifier-clean, equivalent code."""
        text = """
define i32 @f1(i32 %x) {
entry:
  %a = add i32 %x, 1
  %c = icmp sgt i32 %a, 10
  br i1 %c, label %big, label %small
big:
  %b1 = mul i32 %a, 3
  br label %join
small:
  %s1 = sub i32 %a, 4
  br label %join
join:
  %p = phi i32 [ %b1, %big ], [ %s1, %small ]
  %z = xor i32 %p, %a
  ret i32 %z
}
define i32 @f2(i32 %x) {
entry:
  %a = add i32 %x, 1
  %c = icmp sgt i32 %a, 10
  br i1 %c, label %big, label %small
big:
  %b1 = mul i32 %a, 3
  %b2 = add i32 %b1, 100
  br label %join
small:
  %s1 = sub i32 %a, 4
  br label %join
join:
  %p = phi i32 [ %b2, %big ], [ %s1, %small ]
  %z = xor i32 %p, %a
  ret i32 %z
}
"""
        from repro.alignment import align_functions
        from repro.merge import merge_functions

        module = parse_module(text)
        f1, f2 = module.get_function("f1"), module.get_function("f2")
        result = merge_functions(align_functions(f1, f2), module)
        verify_function(result.merged)
        interp = Interpreter()
        for x in (0, 9, 10, 50):
            assert interp.run(result.merged, [0, x]).value == interp.run(f1, [x]).value
            assert interp.run(result.merged, [1, x]).value == interp.run(f2, [x]).value
