"""Tests for identical-function merging and profile-guided merging."""

import pytest

from repro.ir import Interpreter, Module, verify_module
from repro.merge import (
    HotnessFilter,
    PassConfig,
    ProfileGuidedPass,
    merge_identical_functions,
    profile_module,
    structural_hash,
)
from repro.search import ExhaustiveRanker, MinHashLSHRanker
from repro.workloads import build_workload
from tests.conftest import build_diamond, build_straightline


class TestStructuralHash:
    def test_identical_functions_hash_equal(self, module):
        a = build_diamond(module, "a")
        b = build_diamond(module, "b")
        assert structural_hash(a) == structural_hash(b)

    def test_constant_change_hashes_differently(self, module):
        a = build_diamond(module, "a", mul_by=2)
        b = build_diamond(module, "b", mul_by=3)
        assert structural_hash(a) != structural_hash(b)

    def test_hash_ignores_symbol_name_only(self, module):
        a = build_straightline(module, "totally_different_name")
        b = build_straightline(module, "b")
        assert structural_hash(a) == structural_hash(b)

    def test_hashing_does_not_mutate(self, module):
        from repro.ir import print_function

        a = build_diamond(module, "a")
        before = print_function(a)
        structural_hash(a)
        assert print_function(a) == before
        assert len(module) == 1


class TestIdenticalMerging:
    def test_duplicates_folded(self, module):
        build_diamond(module, "a")
        build_diamond(module, "b")
        build_diamond(module, "c")
        build_diamond(module, "different", mul_by=7)
        report = merge_identical_functions(module)
        assert report.groups == 1
        assert report.functions_removed == 2
        assert module.get_function("a") is not None
        assert module.get_function("different") is not None
        verify_module(module)

    def test_call_sites_redirected(self):
        from repro.ir import (
            BasicBlock,
            Function,
            FunctionType,
            I32,
            IRBuilder,
        )

        module = Module("m")
        a = build_straightline(module, "a")
        b = build_straightline(module, "b")
        caller = Function(FunctionType(I32, [I32]), "caller", parent=module)
        builder = IRBuilder(BasicBlock("entry", caller))
        r1 = builder.call(a, [caller.args[0]])
        r2 = builder.call(b, [caller.args[0]])
        builder.ret(builder.add(r1, r2))
        ref = Interpreter().run(caller, [5]).value
        report = merge_identical_functions(module)
        assert report.call_sites_rewritten >= 1
        verify_module(module)
        assert Interpreter().run(module.get_function("caller"), [5]).value == ref

    def test_external_duplicate_becomes_forwarder(self, module):
        a = build_diamond(module, "a")
        b = build_diamond(module, "b")
        b.internal = False
        merge_identical_functions(module)
        fwd = module.get_function("b")
        assert fwd is not None
        assert len(fwd.blocks) == 1
        verify_module(module)
        assert Interpreter().run(fwd, [7, 8]).value == 30

    def test_workload_semantics_preserved(self):
        module = build_workload(80, "ident")
        driver = module.get_function("driver")
        ref = {x: Interpreter().run(driver, [x]).value for x in (0, 4, 9)}
        merge_identical_functions(module)
        verify_module(module)
        for x, expected in ref.items():
            assert Interpreter().run(module.get_function("driver"), [x]).value == expected

    def test_no_duplicates_no_changes(self, module):
        build_diamond(module, "a", mul_by=2)
        build_diamond(module, "b", mul_by=3)
        report = merge_identical_functions(module)
        assert report.groups == 0
        assert len(module) == 2


class TestProfiling:
    def test_profile_counts_calls(self):
        module = build_workload(60, "prof")
        profile = profile_module(module)
        assert profile  # something was called
        assert all(count >= 1 for count in profile.values())

    def test_missing_entry_rejected(self, module):
        with pytest.raises(ValueError):
            profile_module(module, entry="nope")

    def test_hotness_filter_partition(self):
        module = build_workload(60, "prof")
        profile = profile_module(module)
        hotness = HotnessFilter(profile, hot_fraction=0.25)
        funcs = module.defined_functions()
        hot = [f for f in funcs if hotness.is_hot(f)]
        cold = hotness.cold_functions(module)
        assert len(hot) + len(cold) == len(funcs)
        assert hot, "some functions must be classified hot"
        # Never-called functions are always cold.
        for func in funcs:
            if profile.get(func.name, 0) == 0:
                assert not hotness.is_hot(func)

    def test_zero_fraction_means_all_cold(self):
        module = build_workload(40, "prof0")
        profile = profile_module(module)
        hotness = HotnessFilter(profile, hot_fraction=0.0)
        assert len(hotness.cold_functions(module)) == len(module.defined_functions())


class TestProfileGuidedPass:
    def _run(self, n, hot_fraction):
        module = build_workload(n, "pgorun")
        profile = profile_module(module)
        driver = module.get_function("driver")
        base = sum(
            Interpreter().run(driver, [x]).instructions_executed for x in (1, 5)
        )
        hotness = HotnessFilter(profile, hot_fraction=hot_fraction)
        pass_ = ProfileGuidedPass(MinHashLSHRanker(), hotness, PassConfig(verify=False))
        report = pass_.run(module)
        verify_module(module)
        after = sum(
            Interpreter()
            .run(module.get_function("driver"), [x])
            .instructions_executed
            for x in (1, 5)
        )
        return report, after / base

    def test_strategy_tag(self):
        report, _ = self._run(60, 0.2)
        assert report.strategy.endswith("+pgo")

    def test_semantics_preserved(self):
        module = build_workload(80, "pgosem")
        driver = module.get_function("driver")
        ref = {x: Interpreter().run(driver, [x]).value for x in (0, 3, 8)}
        profile = profile_module(module)
        hotness = HotnessFilter(profile, hot_fraction=0.3)
        ProfileGuidedPass(ExhaustiveRanker(), hotness, PassConfig()).run(module)
        verify_module(module)
        for x, expected in ref.items():
            assert Interpreter().run(module.get_function("driver"), [x]).value == expected

    def test_pgo_reduces_runtime_overhead(self):
        """The paper's Section IV-F expectation: keeping hot functions out
        of merging removes most of the dynamic overhead."""
        # Unrestricted merging on the same workload:
        module = build_workload(120, "pgocmp")
        driver = module.get_function("driver")
        base = sum(
            Interpreter().run(driver, [x]).instructions_executed for x in (1, 5)
        )
        from repro.merge import FunctionMergingPass

        FunctionMergingPass(MinHashLSHRanker(), PassConfig(verify=False)).run(module)
        after_all = sum(
            Interpreter()
            .run(module.get_function("driver"), [x])
            .instructions_executed
            for x in (1, 5)
        )
        overhead_all = after_all / base

        _report, overhead_pgo = TestProfileGuidedPass._run(self, 120, 0.35)
        assert overhead_pgo <= overhead_all + 1e-9
        # And it should remove a majority of the introduced overhead.
        assert (overhead_pgo - 1.0) <= 0.6 * max(overhead_all - 1.0, 1e-9)

    def test_pgo_keeps_meaningful_size_reduction(self):
        report, _ = self._run(120, 0.2)
        assert report.size_reduction > 0.02
