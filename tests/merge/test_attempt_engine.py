"""End-to-end tests for the attempt-stage engine.

Covers the pre-alignment profitability bound (its accounting, its
soundness, and the work it saves), and the parallel partition sweep's
serial/parallel decision identity.
"""

import pytest

from repro.harness.profile import _merged_pairs
from repro.ir.printer import print_module
from repro.merge.partitioned import partition_sweep
from repro.merge.pass_ import FunctionMergingPass, PassConfig
from repro.merge.report import Outcome
from repro.search.pairing import ExhaustiveRanker, MinHashLSHRanker
from repro.workloads import build_workload


def _run(num_functions: int, **config_kwargs):
    module = build_workload(num_functions, "attempt")
    config = PassConfig(verify=False, **config_kwargs)
    report = FunctionMergingPass(ExhaustiveRanker(), config).run(module)
    return module, report


class TestProfitabilityBound:
    def test_rejected_bound_accounted(self):
        _, report = self._bounded()
        counts = report.outcome_counts()
        assert counts[str(Outcome.REJECTED_BOUND)] > 0
        # The bound stage is timed and surfaced in the stage breakdown.
        assert sum(a.bound_time for a in report.attempts) > 0
        assert report.stage_breakdown()["bound"] > 0
        # Engine cache stats travel on the report, plan cache included.
        assert report.align_cache_stats is not None
        assert "plan" in report.align_cache_stats

    def test_bound_rejections_never_merge_unbounded(self):
        """Soundness: no pair the bound rejects merges without the bound."""
        module_b, bounded = self._bounded()
        module_u, unbounded = self._unbounded()

        rejected = {
            (a.function, a.candidate)
            for a in bounded.attempts
            if a.outcome == Outcome.REJECTED_BOUND
        }
        assert rejected, "bound never fired; workload too easy to be a test"
        assert rejected & _merged_pairs(unbounded) == set()
        # And the final modules are bit-identical.
        assert print_module(module_b) == print_module(module_u)
        assert _merged_pairs(bounded) == _merged_pairs(unbounded)

    def test_bound_strictly_reduces_attempted_alignments(self):
        _, bounded = self._bounded()
        _, unbounded = self._unbounded()
        aligned_bounded = sum(1 for a in bounded.attempts if a.align_time > 0)
        aligned_unbounded = sum(1 for a in unbounded.attempts if a.align_time > 0)
        assert aligned_bounded < aligned_unbounded
        assert bounded.merges == unbounded.merges

    @staticmethod
    def _bounded():
        return _run(120, prealign_bound=True)

    @staticmethod
    def _unbounded():
        return _run(120, prealign_bound=False)


class TestPartitionSweep:
    @pytest.mark.parametrize("ranker_factory", [ExhaustiveRanker, MinHashLSHRanker])
    def test_serial_equals_parallel(self, ranker_factory):
        module = build_workload(80, "sweep")
        before = print_module(module)
        serial = partition_sweep(module, 4, ranker_factory=ranker_factory, workers=1)
        parallel = partition_sweep(module, 4, ranker_factory=ranker_factory, workers=2)
        assert serial.digest() == parallel.digest()
        assert serial.workers == 1 and parallel.workers == 2
        # Sweeps work on snapshots; the parent module is never mutated.
        assert print_module(module) == before

    def test_results_ordered_by_partition(self):
        module = build_workload(60, "sweep-order")
        report = partition_sweep(module, 3, workers=2)
        assert [r.partition for r in report.results] == [0, 1, 2]
        assert sum(r.num_functions for r in report.results) >= 60

    def test_rejects_nonpositive_partitions(self):
        module = build_workload(10, "sweep-bad")
        with pytest.raises(ValueError):
            partition_sweep(module, 0)
