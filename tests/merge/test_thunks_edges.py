"""Edge cases for call-site rewriting during commit.

Covers the call-graph shapes the basic commit tests miss: invoke sites,
address-taken originals reached indirectly, calls to an original from
inside the merged body, and originals with no callers at all.
"""

from repro.alignment import align_functions
from repro.ir import (
    BasicBlock,
    Function,
    FunctionType,
    I32,
    IRBuilder,
    Interpreter,
    Opcode,
    PointerType,
    parse_module,
    verify_module,
)
from repro.merge import commit_merge, merge_functions, rewrite_call_sites

PAIR = """
define i32 @f1(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = mul i32 %a, 3
  ret i32 %b
}
define i32 @f2(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = mul i32 %a, 7
  ret i32 %b
}
"""


def _direct_call_sites(module):
    sites = []
    for func in module.defined_functions():
        for block in func.blocks:
            for inst in block.instructions:
                if inst.opcode in (Opcode.CALL, Opcode.INVOKE):
                    sites.append(inst)
    return sites


class TestInvokeSites:
    def test_invoke_call_sites_rewritten(self):
        text = PAIR + """
define i32 @main(i32 %x) {
entry:
  %r1 = invoke i32 @f1(i32 %x, i32 2) to label %next unwind label %bad
next:
  %r2 = invoke i32 @f2(i32 %x, i32 3) to label %done unwind label %bad
done:
  %s = add i32 %r1, %r2
  ret i32 %s
bad:
  unreachable
}
"""
        module = parse_module(text)
        main = module.get_function("main")
        ref = {x: Interpreter().run(main, [x]).value for x in (0, 6)}
        f1, f2 = module.get_function("f1"), module.get_function("f2")
        result = merge_functions(align_functions(f1, f2), module)
        commit_merge(result)
        verify_module(module)
        # Invokes were retargeted in place, keeping their unwind edges.
        invokes = [
            s for s in _direct_call_sites(module) if s.opcode == Opcode.INVOKE
        ]
        assert len(invokes) == 2
        assert all(s.callee is result.merged for s in invokes)
        for x, expected in ref.items():
            assert Interpreter().run(module.get_function("main"), [x]).value == expected


class TestAddressTaken:
    def _module_with_indirect_use(self):
        module = parse_module(PAIR)
        f1 = module.get_function("f1")
        fnptr = PointerType(FunctionType(I32, [I32, I32]))
        # i32 @apply(fnptr %f, i32 %x): calls through the pointer.
        apply_fn = Function(FunctionType(I32, [fnptr, I32]), "apply", parent=module)
        b = IRBuilder(BasicBlock("entry", apply_fn))
        r = b.call(apply_fn.args[0], [apply_fn.args[1], b.const_int(I32, 2)])
        b.ret(r)
        # i32 @main(i32 %x): passes @f1 as a value — address taken.
        main = Function(FunctionType(I32, [I32]), "main", parent=module)
        b = IRBuilder(BasicBlock("entry", main))
        r = b.call(apply_fn, [f1, main.args[0]])
        b.ret(r)
        return module

    def test_address_taken_original_kept_as_thunk(self):
        module = self._module_with_indirect_use()
        f1, f2 = module.get_function("f1"), module.get_function("f2")
        assert f1.address_taken
        ref = Interpreter().run(module.get_function("main"), [5]).value
        result = merge_functions(align_functions(f1, f2), module)
        commit_merge(result)
        verify_module(module)
        # @f1 survives as a one-block thunk; @f2 had no other uses and dies.
        thunk = module.get_function("f1")
        assert thunk is f1 and len(thunk.blocks) == 1
        assert module.get_function("f2") is None
        # The indirect call still reaches the original behaviour.
        assert Interpreter().run(module.get_function("main"), [5]).value == ref


RECURSIVE_TEMPLATE = """
define i32 @g1(i32 %x) {{
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %rec, label %done
rec:
  %d = sub i32 %x, 1
  %v = call i32 @g1(i32 %d)
  %s = add i32 %v, 2
  br label %done
done:
  %p = phi i32 [ %s, %rec ], [ 0, %entry ]
  ret i32 %p
}}
define i32 @g2(i32 %x) {{
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %rec, label %done
rec:
  %d = sub i32 %x, 1
  %v = call i32 @{callee}(i32 %d)
  %s = add i32 %v, 5
  br label %done
done:
  %p = phi i32 [ %s, %rec ], [ 0, %entry ]
  ret i32 %p
}}
"""


class TestMergedBodyCalls:
    def test_call_inside_merged_body_rewritten(self):
        # Both functions call @g1, so the merged body itself contains a
        # call site of an original; rewrite must retarget it like any
        # other caller and both originals must die.
        module = parse_module(RECURSIVE_TEMPLATE.format(callee="g1"))
        g1, g2 = module.get_function("g1"), module.get_function("g2")
        ref1 = Interpreter().run(g1, [4]).value
        ref2 = Interpreter().run(g2, [4]).value
        result = merge_functions(align_functions(g1, g2), module)
        commit_merge(result)
        verify_module(module)
        sites = _direct_call_sites(module)
        assert sites, "the merged body keeps its recursive call"
        assert all(s.callee is result.merged for s in sites)
        assert module.get_function("g1") is None
        assert module.get_function("g2") is None
        assert Interpreter().run(result.merged, [0, 4]).value == ref1
        assert Interpreter().run(result.merged, [1, 4]).value == ref2

    def test_differing_callees_dispatch_through_thunks(self):
        # g1 calls g1, g2 calls g2: the merged body selects the callee by
        # fid, which takes both originals' addresses — they must survive
        # as thunks and recursion must still terminate correctly.
        module = parse_module(RECURSIVE_TEMPLATE.format(callee="g2"))
        g1, g2 = module.get_function("g1"), module.get_function("g2")
        ref1 = Interpreter().run(g1, [4]).value
        ref2 = Interpreter().run(g2, [4]).value
        result = merge_functions(align_functions(g1, g2), module)
        commit_merge(result)
        verify_module(module)
        assert module.get_function("g1") is g1 and len(g1.blocks) == 1
        assert module.get_function("g2") is g2 and len(g2.blocks) == 1
        assert Interpreter().run(g1, [4]).value == ref1
        assert Interpreter().run(g2, [4]).value == ref2


class TestZeroCallers:
    def test_rewrite_returns_zero_without_callers(self):
        module = parse_module(PAIR)
        f1, f2 = module.get_function("f1"), module.get_function("f2")
        result = merge_functions(align_functions(f1, f2), module)
        assert rewrite_call_sites(f1, result.merged, result.param_map_a, 0) == 0

    def test_commit_deletes_uncalled_originals(self):
        module = parse_module(PAIR)
        f1, f2 = module.get_function("f1"), module.get_function("f2")
        ref1 = Interpreter().run(f1, [2, 3]).value
        ref2 = Interpreter().run(f2, [2, 3]).value
        result = merge_functions(align_functions(f1, f2), module)
        commit_merge(result)
        verify_module(module)
        assert module.get_function("f1") is None
        assert module.get_function("f2") is None
        merged = result.merged
        assert Interpreter().run(merged, [0, 2, 3]).value == ref1
        assert Interpreter().run(merged, [1, 2, 3]).value == ref2
