"""Tests for re-merging: merged functions re-entering the candidate pool."""

import pytest

from repro.ir import Interpreter, Module, verify_module
from repro.merge import FunctionMergingPass, PassConfig
from repro.search import ExhaustiveRanker, MinHashLSHRanker
from tests.conftest import build_diamond


def _family_module(k=4):
    module = Module("fam")
    for i in range(k):
        build_diamond(module, f"d{i}", mul_by=3 + i)
    return module


class TestRemerge:
    def test_family_collapses_to_one(self):
        module = _family_module(4)
        report = FunctionMergingPass(ExhaustiveRanker(), PassConfig()).run(module)
        verify_module(module)
        # 4 near-identical functions need 3 merges to become one.
        assert report.merges == 3
        defined = module.defined_functions()
        assert len(defined) == 1
        assert defined[0].name.startswith("merged.")

    def test_remerge_disabled_pairs_only(self):
        module = _family_module(4)
        config = PassConfig(remerge=False)
        report = FunctionMergingPass(ExhaustiveRanker(), config).run(module)
        verify_module(module)
        assert report.merges == 2  # two disjoint pairs, no second level
        assert len(module.defined_functions()) == 2

    def test_remerge_beats_pairwise_on_size(self):
        m1, m2 = _family_module(6), _family_module(6)
        with_remerge = FunctionMergingPass(ExhaustiveRanker(), PassConfig()).run(m1)
        without = FunctionMergingPass(
            ExhaustiveRanker(), PassConfig(remerge=False)
        ).run(m2)
        assert with_remerge.size_after <= without.size_after

    def test_doubly_merged_function_is_correct(self):
        module = _family_module(4)
        originals = {
            f.name: [Interpreter().run(f, [x, y]).value for x, y in ((3, 4), (60, 70))]
            for f in module.defined_functions()
        }
        FunctionMergingPass(ExhaustiveRanker(), PassConfig()).run(module)
        verify_module(module)
        merged = module.defined_functions()[0]
        # Rebuild each original's behaviour through the merged function by
        # tracing the merge tree is complex; instead check with thunk-free
        # direct invocation through the recorded attempts is unnecessary —
        # the originals were internal with no callers, so equivalence was
        # checked by the pass itself. Here we at least run the merged
        # function on every function-id path and expect the union of
        # original results.
        produced = set()
        for fid0 in (0, 1):
            for fid1 in (0, 1):
                args = [0] * len(merged.args)
                args[0] = fid0
                # Nested fids occupy later parameter slots; try both.
                for i, arg in enumerate(merged.args[1:], start=1):
                    if arg.type.bits == 1 if arg.type.is_int else False:
                        args[i] = fid1
                for i, arg in enumerate(merged.args):
                    if arg.type.is_float:
                        args[i] = 0.0
                # Use the (3, 4) input on the i32 slots.
                i32_slots = [
                    i
                    for i, a in enumerate(merged.args)
                    if a.type.is_int and a.type.bits == 32
                ]
                for slot, val in zip(i32_slots, (3, 4)):
                    args[slot] = val
                produced.add(Interpreter().run(merged, args).value)
        expected = {vals[0] for vals in originals.values()}
        assert expected <= produced

    def test_lsh_ranker_supports_remerge(self):
        module = _family_module(5)
        report = FunctionMergingPass(MinHashLSHRanker(), PassConfig()).run(module)
        verify_module(module)
        assert report.merges >= 3
        assert len(module.defined_functions()) <= 2

    def test_workload_semantics_with_remerge(self):
        from repro.workloads import build_workload

        module = build_workload(100, "remerge-sem")
        driver = module.get_function("driver")
        ref = {x: Interpreter().run(driver, [x]).value for x in (0, 6, 13)}
        FunctionMergingPass(MinHashLSHRanker(), PassConfig(verify=True)).run(module)
        verify_module(module)
        for x, expected in ref.items():
            assert Interpreter().run(module.get_function("driver"), [x]).value == expected


class TestRankerInsert:
    def test_exhaustive_insert_after_preprocess(self, module):
        f1 = build_diamond(module, "f1")
        ranker = ExhaustiveRanker()
        ranker.preprocess([f1])
        f2 = build_diamond(module, "f2")
        ranker.insert(f2)
        match = ranker.best_match(f1)
        assert match is not None and match.function is f2

    def test_lsh_insert_after_preprocess(self, module):
        f1 = build_diamond(module, "f1")
        ranker = MinHashLSHRanker()
        ranker.preprocess([f1])
        f2 = build_diamond(module, "f2")
        ranker.insert(f2)
        match = ranker.best_match(f1)
        assert match is not None and match.function is f2
        assert match.similarity == 1.0

    def test_capacity_growth(self, module):
        # Push past the initial 256-row capacity of both backends.
        ranker = ExhaustiveRanker()
        funcs = [build_diamond(module, f"g{i}", mul_by=i + 2) for i in range(40)]
        ranker.preprocess(funcs)
        for i in range(260):
            ranker.insert(build_diamond(module, f"x{i}", mul_by=2))
        match = ranker.best_match(funcs[0])
        assert match is not None
