"""Tests for call-site redirection, thunks, and the profitability model."""

import pytest

from repro.alignment import align_functions
from repro.ir import (
    BasicBlock,
    Call,
    ConstantInt,
    Function,
    FunctionType,
    I32,
    IRBuilder,
    Interpreter,
    parse_module,
    verify_module,
)
from repro.merge import (
    ProfitabilityModel,
    commit_merge,
    make_thunk,
    merge_functions,
    rewrite_call_sites,
)
from tests.conftest import build_diamond


def _module_with_callers():
    text = """
define i32 @f1(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = mul i32 %a, 3
  ret i32 %b
}
define i32 @f2(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = mul i32 %a, 7
  ret i32 %b
}
define i32 @main(i32 %x) {
entry:
  %r1 = call i32 @f1(i32 %x, i32 2)
  %r2 = call i32 @f2(i32 %x, i32 3)
  %s = add i32 %r1, %r2
  ret i32 %s
}
"""
    return parse_module(text)


class TestCommitMerge:
    def test_call_sites_redirected_and_originals_deleted(self):
        module = _module_with_callers()
        f1, f2 = module.get_function("f1"), module.get_function("f2")
        ref = {x: Interpreter().run(module.get_function("main"), [x]).value for x in (0, 5)}
        result = merge_functions(align_functions(f1, f2), module)
        commit_merge(result)
        verify_module(module)
        assert module.get_function("f1") is None
        assert module.get_function("f2") is None
        for x, expected in ref.items():
            assert Interpreter().run(module.get_function("main"), [x]).value == expected

    def test_external_function_kept_as_thunk(self):
        module = _module_with_callers()
        f1, f2 = module.get_function("f1"), module.get_function("f2")
        f1.internal = False  # visible outside the module
        ref = Interpreter().run(module.get_function("main"), [4]).value
        result = merge_functions(align_functions(f1, f2), module)
        commit_merge(result)
        verify_module(module)
        thunk = module.get_function("f1")
        assert thunk is not None and not thunk.is_declaration
        assert len(thunk.blocks) == 1
        # Calling the thunk directly behaves like the original.
        assert Interpreter().run(thunk, [1, 2]).value == (1 + 2) * 3
        assert Interpreter().run(module.get_function("main"), [4]).value == ref

    def test_rewrite_counts_sites(self):
        module = _module_with_callers()
        f1, f2 = module.get_function("f1"), module.get_function("f2")
        result = merge_functions(align_functions(f1, f2), module)
        n = rewrite_call_sites(f1, result.merged, result.param_map_a, 0)
        assert n == 1
        assert len(f1.callers()) == 0

    def test_make_thunk_standalone(self, module):
        f1 = build_diamond(module, "f1")
        f2 = build_diamond(module, "f2")
        result = merge_functions(align_functions(f1, f2), module)
        make_thunk(f1, result.merged, result.param_map_a, 0)
        assert len(f1.blocks) == 1
        assert Interpreter().run(f1, [7, 8]).value == 30

    def test_recursive_calls_rewritten(self):
        text = """
define i32 @r1(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %rec, label %done
rec:
  %d = sub i32 %x, 1
  %v = call i32 @r1(i32 %d)
  %s = add i32 %v, 2
  br label %done
done:
  %p = phi i32 [ %s, %rec ], [ 0, %entry ]
  ret i32 %p
}
define i32 @r2(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %rec, label %done
rec:
  %d = sub i32 %x, 1
  %v = call i32 @r2(i32 %d)
  %s = add i32 %v, 5
  br label %done
done:
  %p = phi i32 [ %s, %rec ], [ 0, %entry ]
  ret i32 %p
}
"""
        module = parse_module(text)
        r1, r2 = module.get_function("r1"), module.get_function("r2")
        ref1 = Interpreter().run(r1, [4]).value
        ref2 = Interpreter().run(r2, [4]).value
        result = merge_functions(align_functions(r1, r2), module)
        commit_merge(result)
        verify_module(module)
        merged = result.merged
        assert Interpreter().run(merged, [0, 4]).value == ref1 == 8
        assert Interpreter().run(merged, [1, 4]).value == ref2 == 20


class TestProfitability:
    def test_identical_merge_is_profitable(self, module):
        f1 = build_diamond(module, "f1")
        f2 = build_diamond(module, "f2")
        result = merge_functions(align_functions(f1, f2), module)
        benefit = ProfitabilityModel().evaluate(result)
        assert benefit.profitable
        assert benefit.saving > 0

    def test_thunk_cost_charged_for_external(self, module):
        f1 = build_diamond(module, "f1")
        f2 = build_diamond(module, "f2")
        result = merge_functions(align_functions(f1, f2), module)
        internal = ProfitabilityModel().evaluate(result)
        f1.internal = False
        external = ProfitabilityModel().evaluate(result)
        assert external.overhead > internal.overhead
        assert external.saving < internal.saving

    def test_callsite_cost_counted(self):
        module = _module_with_callers()
        f1, f2 = module.get_function("f1"), module.get_function("f2")
        result = merge_functions(align_functions(f1, f2), module)
        benefit = ProfitabilityModel().evaluate(result)
        assert benefit.overhead >= 2  # one rewritten call site each
