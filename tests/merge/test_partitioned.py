"""Tests for ThinLTO-style partitioned merging."""

import pytest

from repro.ir import Interpreter, verify_module
from repro.merge import partition_functions, partitioned_merging
from repro.workloads import build_workload


class TestPartitioning:
    def test_partition_covers_all_functions(self):
        module = build_workload(60, "part")
        groups = partition_functions(module, 4)
        assert len(groups) == 4
        total = sum(len(g) for g in groups)
        assert total == len(module.defined_functions())

    def test_partitioning_deterministic(self):
        m1 = build_workload(60, "part")
        m2 = build_workload(60, "part")
        names1 = [[f.name for f in g] for g in partition_functions(m1, 3)]
        names2 = [[f.name for f in g] for g in partition_functions(m2, 3)]
        assert names1 == names2

    def test_invalid_partition_count(self):
        module = build_workload(10, "part")
        with pytest.raises(ValueError):
            partition_functions(module, 0)


class TestPartitionedMerging:
    def test_single_partition_equals_monolithic(self):
        from repro.merge import FunctionMergingPass, PassConfig
        from repro.search import MinHashLSHRanker

        m1 = build_workload(100, "mono")
        mono = FunctionMergingPass(MinHashLSHRanker(), PassConfig(verify=False)).run(m1)
        m2 = build_workload(100, "mono")
        part = partitioned_merging(m2, 1)
        assert part.merges == mono.merges
        assert part.size_after == mono.size_after

    def test_more_partitions_less_reduction(self):
        reductions = {}
        for k in (1, 2, 8):
            module = build_workload(150, "thinred")
            report = partitioned_merging(module, k)
            verify_module(module)
            reductions[k] = report.size_reduction
        assert reductions[1] >= reductions[2] >= reductions[8]
        assert reductions[1] > reductions[8]  # real degradation

    def test_semantics_preserved(self):
        module = build_workload(120, "thinsem")
        driver = module.get_function("driver")
        ref = {x: Interpreter().run(driver, [x]).value for x in (0, 4, 9)}
        partitioned_merging(module, 4)
        verify_module(module)
        for x, expected in ref.items():
            assert Interpreter().run(module.get_function("driver"), [x]).value == expected

    def test_summary_counts_cross_partition_losses(self):
        module = build_workload(150, "thinlost")
        report = partitioned_merging(module, 4)
        # With families scattered by name hash, some best partners must
        # land in other partitions.
        assert report.cross_partition_candidates > 0

    def test_lost_pairs_disabled(self):
        module = build_workload(80, "thinoff")
        report = partitioned_merging(module, 4, count_lost_pairs=False)
        assert report.cross_partition_candidates == 0

    def test_report_aggregation(self):
        module = build_workload(80, "thinagg")
        report = partitioned_merging(module, 3)
        assert len(report.reports) == 3
        assert report.merges == sum(r.merges for r in report.reports)
        assert report.total_time > 0


class TestPrewarmedCache:
    def test_prewarm_preserves_results_and_hits(self):
        from repro.fingerprint import FingerprintCache

        baseline = partitioned_merging(build_workload(120, "warm"), 4)
        cache = FingerprintCache()
        warmed = partitioned_merging(
            build_workload(120, "warm"), 4, cache=cache, prewarm=True
        )
        # Same merge outcome, with the module fingerprinted once up front.
        assert warmed.merges == baseline.merges
        assert warmed.size_reduction == baseline.size_reduction
        assert warmed.prewarm_time > 0
        assert warmed.cache_stats is not None
        assert warmed.cache_stats["hits"] > 0

    def test_prewarm_without_explicit_cache(self):
        report = partitioned_merging(build_workload(60, "warm2"), 3, prewarm=True)
        assert report.cache_stats is not None
        assert report.cache_stats["hits"] > 0

    def test_adaptive_factory_skips_prewarm(self):
        from repro.search import MinHashLSHRanker

        report = partitioned_merging(
            build_workload(60, "warm3"),
            3,
            ranker_factory=lambda: MinHashLSHRanker(adaptive=True),
            prewarm=True,
        )
        # No static config to prewarm with: prewarm is skipped, merging runs.
        assert report.prewarm_time == 0.0
        assert report.reports
