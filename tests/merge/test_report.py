"""Tests for the pass report accounting (drives Figures 3 and 13)."""

import pytest

from repro.harness import format_outcome_table
from repro.merge import MergeReport, Outcome
from repro.merge.report import OUTCOMES, AttemptRecord


def _attempt(outcome, **times):
    record = AttemptRecord("f", "g", 0.5, outcome)
    for key, value in times.items():
        setattr(record, key, value)
    return record


class TestStageBreakdown:
    def test_success_and_fail_buckets(self):
        report = MergeReport(strategy="x", preprocess_time=1.0)
        report.attempts = [
            _attempt("merged", ranking_time=0.1, align_time=0.2, codegen_time=0.3, update_time=0.05),
            _attempt("unprofitable", ranking_time=0.4, align_time=0.5, codegen_time=0.6),
            _attempt("align_fail", ranking_time=0.7, align_time=0.8),
        ]
        b = report.stage_breakdown()
        assert b["preprocess"] == 1.0
        assert abs(b["ranking_success"] - 0.1) < 1e-12
        assert abs(b["ranking_fail"] - 1.1) < 1e-12
        assert abs(b["align_success"] - 0.2) < 1e-12
        assert abs(b["align_fail"] - 1.3) < 1e-12
        assert abs(b["codegen_success"] - 0.3) < 1e-12
        assert abs(b["codegen_fail"] - 0.6) < 1e-12
        assert abs(b["update"] - 0.05) < 1e-12

    def test_outcome_counts(self):
        report = MergeReport()
        report.attempts = [
            _attempt("merged"),
            _attempt("merged"),
            _attempt("no_candidate"),
        ]
        counts = report.outcome_counts()
        assert counts["merged"] == 2
        assert counts["no_candidate"] == 1
        assert sum(counts.values()) == 3

    def test_size_reduction_bounds(self):
        report = MergeReport(size_before=100, size_after=80)
        assert abs(report.size_reduction - 0.2) < 1e-12
        assert MergeReport(size_before=0, size_after=0).size_reduction == 0.0

    def test_successful_attempts_filter(self):
        report = MergeReport()
        report.attempts = [_attempt("merged"), _attempt("align_fail")]
        assert len(report.successful_attempts()) == 1

    def test_summary_contains_key_facts(self):
        report = MergeReport(
            strategy="f3m", num_functions=10, size_before=100, size_after=90, merges=2
        )
        report.attempts = [_attempt("merged"), _attempt("merged")]
        text = report.summary()
        assert "f3m" in text and "10 functions" in text and "2 merges" in text


class TestOutcomeEnum:
    def test_outcomes_are_closed(self):
        # Free-form outcome strings silently fork the aggregation keys;
        # records must be coerced into the closed enum at construction.
        with pytest.raises(ValueError):
            AttemptRecord("f", "g", 0.5, "mergd")

    def test_strings_coerce_and_compare(self):
        record = AttemptRecord("f", "g", 0.5, "merged")
        assert record.outcome is Outcome.MERGED
        assert record.outcome == "merged"
        assert str(record.outcome) == "merged"

    def test_every_outcome_is_countable(self):
        report = MergeReport()
        report.attempts = [_attempt(o) for o in OUTCOMES]
        counts = report.outcome_counts()
        assert set(counts) == set(OUTCOMES)
        assert all(v == 1 for v in counts.values())

    def test_contained_failures_filter(self):
        report = MergeReport()
        report.attempts = [
            _attempt("merged"),
            _attempt("internal_error"),
            _attempt("rolled_back"),
            _attempt("oracle_fail"),
        ]
        contained = report.contained_failures()
        assert [str(a.outcome) for a in contained] == ["internal_error", "rolled_back"]


class TestOutcomeTable:
    def test_zero_counts_hidden_by_default(self):
        report = MergeReport()
        report.attempts = [_attempt("merged"), _attempt("oracle_fail")]
        text = format_outcome_table(report.outcome_counts())
        assert "merged" in text and "oracle_fail" in text
        assert "internal_error" not in text

    def test_include_zero_lists_everything(self):
        report = MergeReport()
        report.attempts = [_attempt("merged")]
        text = format_outcome_table(report.outcome_counts(), include_zero=True)
        for outcome in OUTCOMES:
            assert outcome in text
