"""Graceful-degradation tests: injected faults at every pipeline stage.

The containment property under test: a failure anywhere in a merge
attempt — including half-way through call-site rewriting — leaves the
module bit-identical to its pre-attempt state, records a structured
outcome, and (under the default ``on_error="skip"``) lets the pass
continue with the remaining candidates.
"""

import pytest

from repro.faults import (
    FAULT_STAGES,
    WORKER_FAULT_STAGES,
    FaultInjector,
    InjectedFault,
)
from repro.ir import parse_module, print_module, verify_module
from repro.merge import FunctionMergingPass, PassConfig
from repro.search import ExhaustiveRanker, MinHashLSHRanker
from repro.workloads import build_workload


def _ranker_for(stage):
    """The ``lsh`` stage only exists inside the banded-LSH ranker; every
    other stage is exercised through the exhaustive one."""
    return MinHashLSHRanker() if stage == "lsh" else ExhaustiveRanker()


def _mergeable_module():
    """Two profitably-mergeable functions plus a caller of both."""
    text = """
define i32 @f1(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = mul i32 %a, 3
  %c = xor i32 %b, 21
  %d = sub i32 %c, %y
  ret i32 %d
}
define i32 @f2(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = mul i32 %a, 7
  %c = xor i32 %b, 21
  %d = sub i32 %c, %y
  ret i32 %d
}
define i32 @main(i32 %x) {
entry:
  %r1 = call i32 @f1(i32 %x, i32 2)
  %r2 = call i32 @f2(i32 %x, i32 3)
  %s = add i32 %r1, %r2
  ret i32 %s
}
"""
    return parse_module(text)


class TestStageContainment:
    @pytest.mark.parametrize("stage", FAULT_STAGES)
    def test_fault_contained_and_module_restored(self, stage):
        module = _mergeable_module()
        before = print_module(module)
        faults = FaultInjector(stage)  # fire on every hit
        # Enable every gate so every fault stage is exercised.
        config = PassConfig(oracle=True, static_check=True, validate="observe")
        report = FunctionMergingPass(
            _ranker_for(stage), config, faults=faults
        ).run(module)

        assert faults.fired >= 1
        assert report.merges == 0
        # The module is exactly what it was before the pass ran.
        assert print_module(module) == before
        verify_module(module)
        # Every fault became a structured record, not a crash.
        expected = "rolled_back" if stage == "commit" else "internal_error"
        failed = [a for a in report.attempts if a.outcome == expected]
        assert failed, f"no {expected} outcome for stage {stage}"
        assert all(a.error == f"{stage}:InjectedFault" for a in failed)

    @pytest.mark.parametrize("stage", FAULT_STAGES)
    def test_on_error_raise_propagates(self, stage):
        module = _mergeable_module()
        before = print_module(module)
        faults = FaultInjector(stage)
        config = PassConfig(
            oracle=True, static_check=True, validate="observe", on_error="raise"
        )
        with pytest.raises(InjectedFault):
            FunctionMergingPass(_ranker_for(stage), config, faults=faults).run(module)
        # The rollback runs before the re-raise.
        assert print_module(module) == before
        verify_module(module)

    def test_contained_failures_listed(self):
        module = _mergeable_module()
        faults = FaultInjector("codegen")
        report = FunctionMergingPass(
            ExhaustiveRanker(), PassConfig(), faults=faults
        ).run(module)
        contained = report.contained_failures()
        assert contained
        assert all(a.outcome == "internal_error" for a in contained)


class TestSkipAndContinue:
    def test_single_fault_does_not_stop_the_pass(self):
        # Fault only the first codegen attempt of a real workload: that pair
        # is skipped with a structured outcome and later merges still land.
        module = build_workload(60, "faultcheck")
        faults = FaultInjector("codegen", at=1)
        report = FunctionMergingPass(
            ExhaustiveRanker(), PassConfig(), faults=faults
        ).run(module)
        verify_module(module)
        assert faults.fired == 1
        errors = [a for a in report.attempts if a.outcome == "internal_error"]
        assert len(errors) == 1
        assert errors[0].error == "codegen:InjectedFault"
        assert report.merges > 0

    def test_outcome_counts_include_contained_failures(self):
        module = _mergeable_module()
        faults = FaultInjector("align")
        report = FunctionMergingPass(
            ExhaustiveRanker(), PassConfig(), faults=faults
        ).run(module)
        counts = report.outcome_counts()
        assert counts["internal_error"] >= 1
        assert sum(counts.values()) == len(report.attempts)


class TestFaultInjector:
    def test_parse_spec(self):
        fi = FaultInjector.parse("verify:3")
        assert fi.stage == "verify" and fi.at == 3
        fi = FaultInjector.parse("rank")
        assert fi.stage == "rank" and fi.at is None

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector("linker")

    def test_ordinal_is_one_based(self):
        with pytest.raises(ValueError):
            FaultInjector("rank", at=0)

    def test_fires_only_at_ordinal(self):
        fi = FaultInjector("codegen", at=2)
        fi.hit("codegen")
        with pytest.raises(InjectedFault):
            fi.hit("codegen")
        fi.hit("codegen")  # past the ordinal: silent
        assert fi.fired == 1
        assert fi.hits["codegen"] == 3

    def test_other_stages_counted_not_fired(self):
        fi = FaultInjector("commit")
        fi.hit("rank")
        fi.hit("align")
        assert fi.fired == 0
        assert fi.hits["rank"] == 1

    def test_worker_stages_accepted(self):
        # Campaign-level stages parse and fire but stay out of the
        # pipeline-stage tuple (the pass cannot contain them).
        assert "worker_crash" not in FAULT_STAGES
        fi = FaultInjector.parse("worker_crash:2")
        fi.hit("worker_crash")
        with pytest.raises(InjectedFault):
            fi.hit("worker_crash")
        assert fi.fired == 1
        fi = FaultInjector("worker_hang")
        with pytest.raises(InjectedFault):
            fi.hit("worker_hang")
        assert WORKER_FAULT_STAGES == ("worker_crash", "worker_hang")

    def test_injected_fault_records_stage(self):
        fi = FaultInjector("lsh")
        with pytest.raises(InjectedFault) as excinfo:
            fi.hit("lsh")
        assert excinfo.value.fault_stage == "lsh"
