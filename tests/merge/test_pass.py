"""Tests for the end-to-end merging pass."""

import random

import pytest

from repro.analysis import module_size
from repro.ir import Interpreter, Module, print_module, verify_module
from repro.merge import FunctionMergingPass, PassConfig
from repro.search import ExhaustiveRanker, MinHashLSHRanker
from repro.workloads import build_workload, make_variant
from tests.conftest import build_diamond, build_loop, build_straightline


def small_module():
    module = Module("small")
    base = build_diamond(module, "base")
    rng = random.Random(1)
    make_variant(base, "near1", rng, 1, module)
    make_variant(base, "near2", rng, 2, module)
    build_loop(module, "loop")
    build_straightline(module, "line")
    return module


class TestPassBasics:
    def test_merges_reduce_size(self):
        module = small_module()
        before = module_size(module)
        report = FunctionMergingPass(ExhaustiveRanker()).run(module)
        verify_module(module)
        assert report.merges >= 1
        assert report.size_after < before
        assert report.size_before == before
        assert report.size_reduction > 0

    def test_f3m_pass(self):
        module = small_module()
        report = FunctionMergingPass(MinHashLSHRanker()).run(module)
        verify_module(module)
        assert report.merges >= 1
        assert report.strategy == "f3m"

    def test_outcome_accounting(self):
        module = small_module()
        report = FunctionMergingPass(ExhaustiveRanker()).run(module)
        counts = report.outcome_counts()
        assert sum(counts.values()) == len(report.attempts)
        assert counts["merged"] == report.merges

    def test_stage_breakdown_sums_to_positive(self):
        module = small_module()
        report = FunctionMergingPass(ExhaustiveRanker()).run(module)
        breakdown = report.stage_breakdown()
        assert all(v >= 0 for v in breakdown.values())
        assert sum(breakdown.values()) > 0

    def test_threshold_rejects_pairs(self):
        module = small_module()
        config = PassConfig(threshold=0.9999)
        report = FunctionMergingPass(MinHashLSHRanker(), config).run(module)
        # near1 was lightly mutated; with an extreme threshold nothing
        # below 0.9999 similarity is attempted.
        for att in report.attempts:
            if att.outcome == "merged":
                assert att.similarity >= 0.9999

    def test_min_instructions_filter(self):
        module = small_module()
        config = PassConfig(min_instructions=10**6)
        report = FunctionMergingPass(ExhaustiveRanker(), config).run(module)
        assert report.num_functions == 0
        assert report.merges == 0

    def test_summary_is_printable(self):
        module = small_module()
        report = FunctionMergingPass(ExhaustiveRanker()).run(module)
        text = report.summary()
        assert "hyfm" in text and "merges" in text


class TestSemanticPreservation:
    @pytest.mark.parametrize("ranker_cls", [ExhaustiveRanker, MinHashLSHRanker])
    def test_workload_driver_equivalent(self, ranker_cls):
        module = build_workload(60, "passcheck")
        driver = module.get_function("driver")
        ref = {x: Interpreter().run(driver, [x]).value for x in (0, 3, 9)}
        FunctionMergingPass(ranker_cls()).run(module)
        verify_module(module)
        new_driver = module.get_function("driver")
        for x, expected in ref.items():
            assert Interpreter().run(new_driver, [x]).value == expected

    def test_nw_alignment_config(self):
        module = build_workload(40, "nwcheck")
        driver = module.get_function("driver")
        ref = Interpreter().run(driver, [5]).value
        config = PassConfig(alignment="nw")
        report = FunctionMergingPass(ExhaustiveRanker(), config).run(module)
        verify_module(module)
        assert Interpreter().run(module.get_function("driver"), [5]).value == ref


class TestDeterminism:
    def test_same_seed_same_report(self):
        m1 = build_workload(80, "det")
        m2 = build_workload(80, "det")
        r1 = FunctionMergingPass(MinHashLSHRanker()).run(m1)
        r2 = FunctionMergingPass(MinHashLSHRanker()).run(m2)
        assert r1.merges == r2.merges
        assert r1.size_after == r2.size_after
        assert [a.outcome for a in r1.attempts] == [a.outcome for a in r2.attempts]

    def test_same_seed_same_module_text(self):
        # Bit-level regression: beyond matching outcome sequences, two
        # same-seed runs must print byte-identical modules.
        m1 = build_workload(80, "dettext")
        m2 = build_workload(80, "dettext")
        r1 = FunctionMergingPass(MinHashLSHRanker()).run(m1)
        r2 = FunctionMergingPass(MinHashLSHRanker()).run(m2)
        assert [(a.function, a.candidate, str(a.outcome)) for a in r1.attempts] == [
            (a.function, a.candidate, str(a.outcome)) for a in r2.attempts
        ]
        assert print_module(m1) == print_module(m2)

    def test_oracle_gate_is_deterministic(self):
        # The oracle synthesizes inputs from function identity, so enabling
        # it must not introduce run-to-run variation.
        config = PassConfig(oracle=True)
        m1 = build_workload(60, "detoracle")
        m2 = build_workload(60, "detoracle")
        r1 = FunctionMergingPass(ExhaustiveRanker(), config).run(m1)
        r2 = FunctionMergingPass(ExhaustiveRanker(), config).run(m2)
        assert [a.outcome for a in r1.attempts] == [a.outcome for a in r2.attempts]
        assert print_module(m1) == print_module(m2)


class TestAdaptiveVariant:
    def test_adaptive_small_module_matches_static_params(self):
        module = build_workload(50, "adapt")
        ranker = MinHashLSHRanker(adaptive=True)
        report = FunctionMergingPass(ranker).run(module)
        assert ranker.parameters is not None
        assert ranker.parameters.bands == 100
        assert report.strategy == "f3m-adaptive"

    def test_comparisons_not_worse_than_exhaustive(self):
        m1 = build_workload(150, "cmp")
        m2 = build_workload(150, "cmp")
        r_ex = FunctionMergingPass(ExhaustiveRanker()).run(m1)
        r_lsh = FunctionMergingPass(MinHashLSHRanker()).run(m2)
        assert r_lsh.comparisons < r_ex.comparisons
