"""Tests for the MiniC frontend (lexer, parser, codegen)."""

import pytest

from repro.frontend import (
    CodegenError,
    LexError,
    ParseError,
    compile_source,
    parse_program,
    tokenize,
)
from repro.ir import Interpreter, Trap, verify_module


def run(src, name, args, **kw):
    module = compile_source(src)
    return Interpreter(**kw).run(module.get_function(name), args).value


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("int f(int x) { return x + 42; }")
        kinds = [t.kind for t in tokens]
        assert kinds[-1] == "eof"
        assert "keyword" in kinds and "ident" in kinds and "int" in kinds

    def test_comments_skipped(self):
        tokens = tokenize("// line\nint /* block\ncomment */ x")
        texts = [t.text for t in tokens if t.kind != "eof"]
        assert texts == ["int", "x"]

    def test_two_char_operators(self):
        texts = [t.text for t in tokenize("a <= b && c == d || e >= f")]
        assert "<=" in texts and "&&" in texts and "==" in texts and "||" in texts

    def test_float_literals(self):
        tokens = tokenize("1.5 2.0e3 .25")
        assert [t.kind for t in tokens[:-1]] == ["float", "float", "float"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_lex_error(self):
        with pytest.raises(LexError):
            tokenize("int x = $;")


class TestParser:
    def test_function_shape(self):
        program = parse_program("int add(int a, int b) { return a + b; }")
        assert len(program.functions) == 1
        func = program.functions[0]
        assert func.name == "add"
        assert [p.type_name for p in func.params] == ["int", "int"]

    def test_precedence(self):
        from repro.frontend.ast import Binary

        program = parse_program("int f() { return 1 + 2 * 3; }")
        expr = program.functions[0].body.statements[0].value
        assert isinstance(expr, Binary) and expr.op == "+"
        assert isinstance(expr.rhs, Binary) and expr.rhs.op == "*"

    def test_parse_errors(self):
        for bad in (
            "int f( { }",
            "int f() { return 1 }",
            "int f() { if x { } }",
            "void f(void v) { }",
            "int f() {",
        ):
            with pytest.raises(ParseError):
                parse_program(bad)


class TestCodegen:
    def test_arithmetic(self):
        assert run("int f(int x) { return x * 3 + 1; }", "f", [5]) == 16

    def test_division_semantics(self):
        assert run("int f(int a, int b) { return a / b; }", "f", [7, 2]) == 3

    def test_bool_logic_short_circuit(self):
        src = """
        int div_ok(int a, int b) {
            if (b != 0 && a / b > 1) { return 1; }
            return 0;
        }
        """
        assert run(src, "div_ok", [10, 2]) == 1
        assert run(src, "div_ok", [10, 0]) == 0  # no division-by-zero trap

    def test_else_branch(self):
        src = "int f(int x) { if (x > 0) { return 1; } else { return 2; } }"
        assert run(src, "f", [5]) == 1
        assert run(src, "f", [-5 & 0xFFFFFFFF]) == 2

    def test_while_loop(self):
        src = """
        int sum_to(int n) {
            int acc = 0;
            int i = 1;
            while (i <= n) { acc = acc + i; i = i + 1; }
            return acc;
        }
        """
        assert run(src, "sum_to", [10]) == 55

    def test_for_loop(self):
        src = """
        int fact(int n) {
            int acc = 1;
            for (int i = 2; i <= n; i = i + 1) { acc = acc * i; }
            return acc;
        }
        """
        assert run(src, "fact", [5]) == 120

    def test_recursion(self):
        src = "int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }"
        assert run(src, "fib", [12]) == 144

    def test_mutual_recursion_forward_reference(self):
        src = """
        int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
        """
        assert run(src, "is_even", [10]) == 1
        assert run(src, "is_odd", [10]) == 0

    def test_double_arithmetic_and_promotion(self):
        src = "double f(int n, double x) { return n * x + 0.5; }"
        assert run(src, "f", [4, 2.5]) == 10.5

    def test_long_widening(self):
        src = "long f(int x) { long y = x; return y * 1000000; }"
        assert run(src, "f", [3000]) == 3_000_000_000

    def test_bool_return(self):
        src = "bool f(int x, int lo, int hi) { return x >= lo && x <= hi; }"
        assert run(src, "f", [5, 1, 10]) == 1
        assert run(src, "f", [50, 1, 10]) == 0

    def test_unary_operators(self):
        assert run("int f(int x) { return -x; }", "f", [7]) == (-7) & 0xFFFFFFFF
        assert run("int f(bool b) { return !b; }", "f", [1]) == 0
        assert run("int f(int x) { return ~x; }", "f", [0]) == 0xFFFFFFFF

    def test_shadowing_scopes(self):
        src = """
        int f(int x) {
            int y = 1;
            { int y = 10; x = x + y; }
            return x + y;
        }
        """
        assert run(src, "f", [0]) == 11

    def test_void_function(self):
        src = "void nop(int x) { } int f(int x) { nop(x); return x; }"
        assert run(src, "f", [9]) == 9

    def test_missing_return_defaults_to_zero(self):
        assert run("int f(int x) { if (x > 0) { return x; } }", "f", [0]) == 0

    def test_dead_code_after_return(self):
        src = "int f(int x) { return x; x = 99; return 1; }"
        assert run(src, "f", [5]) == 5

    def test_module_verifies(self):
        module = compile_source(
            "int a(int x) { return x; } int b(int x) { return a(x) + 1; }"
        )
        verify_module(module)

    def test_codegen_errors(self):
        for bad in (
            "int f() { return y; }",  # undeclared
            "int f() { int x = 1; int x = 2; return x; }",  # redeclaration
            "int f() { return g(); }",  # unknown function
            "int f(int x) { return h; }",  # undeclared ref
            "void f() { return 1; }",  # void returning value
            "int f() { return; }",  # non-void missing value
        ):
            with pytest.raises(CodegenError):
                compile_source(bad)

    def test_call_arity_checked(self):
        with pytest.raises(CodegenError):
            compile_source(
                "int g(int a, int b) { return a; } int f() { return g(1); }"
            )
