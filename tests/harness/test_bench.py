"""Tests for the BENCH_*.json emission helpers and the gate-cost table."""

from repro.harness import (
    format_gate_cost_table,
    gate_cost_row,
    load_bench_json,
    write_bench_json,
)
from repro.merge import FunctionMergingPass, PassConfig
from repro.search import ExhaustiveRanker
from repro.workloads import build_workload


def _report(n=40, **config):
    module = build_workload(n, f"bench{n}")
    return FunctionMergingPass(
        ExhaustiveRanker(), PassConfig(verify=False, **config)
    ).run(module)


class TestGateCostRow:
    def test_row_schema(self):
        report = _report(static_check=True)
        row = gate_cost_row("bench40", report)
        assert row["module"] == "bench40"
        assert row["functions"] == report.num_functions
        assert row["attempts"] == len(report.attempts)
        assert row["merges"] == report.merges
        assert row["static_fails"] == 0
        assert row["static_time"] > 0
        assert row["oracle_time"] == 0.0  # oracle gate was off

    def test_static_time_sums_attempts(self):
        report = _report(static_check=True)
        row = gate_cost_row("m", report)
        assert row["static_time"] == sum(a.static_time for a in report.attempts)


class TestBenchJson:
    def test_round_trip(self, tmp_path):
        report = _report(static_check=True)
        rows = [gate_cost_row("m", report)]
        path = tmp_path / "BENCH_test.json"
        write_bench_json(str(path), "test", rows, metadata={"sizes": [40]})
        payload = load_bench_json(str(path))
        assert payload["bench"] == "test"
        assert payload["metadata"] == {"sizes": [40]}
        assert payload["rows"][0]["module"] == "m"
        assert payload["rows"][0]["static_time"] > 0


class TestGateCostTable:
    def test_formats_all_columns(self):
        report = _report(static_check=True)
        table = format_gate_cost_table([gate_cost_row("m", report)])
        assert "staticcheck" in table
        assert "oracle" in table
        assert "m" in table.splitlines()[2]
