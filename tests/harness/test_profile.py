"""Pipeline profiler + perf-bench plumbing tests (fast, tiny workloads)."""

from repro.harness.profile import (
    PERF_STAGES,
    fingerprint_microbench,
    profile_pass,
    run_perf_bench,
)
from repro.workloads import build_workload


class TestProfilePass:
    def test_stage_breakdown_shape(self):
        module = build_workload(40, "prof")
        profile, report = profile_pass(module, "f3m")
        assert profile.strategy == "f3m"
        assert profile.functions == report.num_functions
        assert set(profile.stages) == set(PERF_STAGES)
        assert profile.total_time > 0
        assert all(v >= 0 for v in profile.stages.values())
        # Named stages never account for more than the wall clock.
        assert profile.accounted <= profile.total_time
        # The batched ranker reports a real fingerprint/index split.
        assert profile.stages["fingerprint"] > 0

    def test_per_function_path_folds_preprocess_into_fingerprint(self):
        module = build_workload(30, "prof2")
        profile, report = profile_pass(module, "f3m", batched=False)
        assert profile.stages["fingerprint"] == report.preprocess_time
        assert profile.stages["index"] == 0.0

    def test_to_row_is_flat(self):
        module = build_workload(20, "prof3")
        profile, _ = profile_pass(module, "hyfm")
        row = profile.to_row()
        assert row["strategy"] == "hyfm"
        for stage in PERF_STAGES:
            assert f"stage_{stage}" in row


class TestMicrobench:
    def test_reports_identity_and_speedups(self):
        funcs = build_workload(30, "micro").defined_functions()
        result = fingerprint_microbench(funcs, repeats=1)
        assert result["bit_identical"] is True
        assert result["functions"] == len(funcs)
        assert result["fingerprint_batched_s"] > 0
        assert result["preprocess_per_function_s"] > 0
        assert result["speedup_fingerprint"] > 0
        assert result["speedup_preprocess"] > 0


class TestRunPerfBench:
    def test_rows_and_metadata(self):
        rows, metadata = run_perf_bench(sizes=(25,), repeats=1)
        assert len(rows) == 1
        row = rows[0]
        assert row["size"] == 25
        assert row["decisions_identical"] is True
        assert row["micro"]["bit_identical"] is True
        for label in ("hyfm", "f3m-per-function", "f3m-batched", "f3m-adaptive"):
            assert row[label]["total_time"] > 0
        assert row["cache_remerge"]["hit_rate"] > 0
        assert metadata["headline"]["size"] == 25
        assert "fingerprint_speedup_definition" in metadata
