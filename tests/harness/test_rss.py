"""Tests for the RSS measurement helpers behind the scaling sweep."""

import numpy as np
import pytest

from repro.harness.rss import (
    IsolatedRun,
    RssSampler,
    current_rss_kb,
    peak_rss_kb,
    run_isolated,
)


def _allocate_mb(mb):
    # Touch every page so the kernel actually backs the allocation.
    block = np.ones(mb * 1024 * 1024 // 8, dtype=np.float64)
    return float(block.sum() / block.shape[0])


def _boom():
    raise ValueError("intentional")


class TestReaders:
    def test_current_and_peak_positive(self):
        current = current_rss_kb()
        peak = peak_rss_kb()
        assert current > 0
        assert peak >= current * 0.5  # HWM can lag briefly, never be tiny


class TestSampler:
    def test_tracks_growth(self):
        with RssSampler(interval=0.001) as sampler:
            _allocate_mb(16)
        assert sampler.baseline_kb > 0
        assert sampler.peak_kb >= sampler.baseline_kb
        assert sampler.delta_kb >= 0


class TestIsolated:
    def test_result_round_trip(self):
        run = run_isolated(_allocate_mb, 1)
        assert isinstance(run, IsolatedRun)
        assert run.result == 1.0
        assert run.seconds >= 0.0
        assert run.baseline_kb > 0

    def test_measures_child_allocation(self):
        small = run_isolated(_allocate_mb, 1)
        big = run_isolated(_allocate_mb, 64)
        # The 64 MB child must report clearly more growth than the 1 MB
        # child; the exact figure depends on allocator slack.
        assert big.delta_kb - small.delta_kb > 32 * 1024

    def test_child_exception_propagates(self):
        with pytest.raises(RuntimeError, match="intentional"):
            run_isolated(_boom)
