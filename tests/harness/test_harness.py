"""Tests for the experiment harness helpers."""

import pytest

from repro.harness import (
    CompileTimeModel,
    binned_sums,
    correlation_experiment,
    format_table,
    histogram2d,
    make_ranker,
    mean_ci95,
    pearson,
    run_merging,
    runtime_impact_experiment,
    selected_pairs_experiment,
)
from repro.workloads import build_workload


class TestStats:
    def test_pearson_perfect(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_pearson_degenerate(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0
        assert pearson([1], [2]) == 0.0

    def test_histogram2d_cells(self):
        counts, xe, ye = histogram2d([0.005, 0.995], [0.005, 0.995], cell=0.01)
        assert counts.shape == (100, 100)
        assert counts.sum() == 2
        assert counts[0, 0] == 1
        assert counts[99, 99] == 1

    def test_binned_sums(self):
        bins = binned_sums([0.05, 0.15, 0.95, 0.95], [1, 2, 3, 4], bins=10)
        assert len(bins) == 10
        assert bins[0] == (0.0, 1.0)
        assert bins[1][1] == 2.0
        assert bins[9][1] == 7.0

    def test_binned_sums_clamps(self):
        bins = binned_sums([-0.5, 1.5], [1, 1], bins=10)
        assert bins[0][1] == 1.0
        assert bins[9][1] == 1.0

    def test_mean_ci95(self):
        mean, half = mean_ci95([1.0, 1.0, 1.0])
        assert mean == 1.0 and half == 0.0
        mean, half = mean_ci95([1.0, 3.0])
        assert mean == 2.0 and half > 0
        assert mean_ci95([]) == (0.0, 0.0)


class TestTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [("a", 1), ("longer", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[:2])
        assert "longer" in lines[3]


class TestExperimentDrivers:
    def test_make_ranker(self):
        assert make_ranker("hyfm").name == "hyfm"
        assert make_ranker("f3m").name == "f3m"
        assert make_ranker("f3m-adaptive").name == "f3m-adaptive"
        with pytest.raises(ValueError):
            make_ranker("quantum")

    def test_run_merging(self):
        module = build_workload(50, "harness")
        report = run_merging(module, "f3m")
        assert report.merges >= 0
        assert report.size_after <= report.size_before

    def test_compile_time_model(self):
        module = build_workload(30, "harness-ct")
        model = CompileTimeModel(seconds_per_instruction=1e-6)
        backend = model.backend_time(module)
        assert backend == pytest.approx(module.num_instructions * 1e-6)
        report = run_merging(module, "f3m")
        assert model.total_time(report, module) >= report.merge_time

    def test_correlation_experiment_minhash_beats_opcode(self):
        module = build_workload(120, "harness-corr")
        opcode = correlation_experiment(module, "opcode", max_pairs=4000)
        minhash = correlation_experiment(module, "minhash", max_pairs=4000)
        assert len(opcode.pairs) == len(minhash.pairs)
        assert -1.0 <= opcode.correlation <= 1.0
        assert minhash.correlation > opcode.correlation - 0.1

    def test_correlation_unknown_kind(self):
        module = build_workload(20, "harness-k")
        with pytest.raises(ValueError):
            correlation_experiment(module, "quantum")

    def test_correlation_sampling_cap(self):
        module = build_workload(80, "harness-cap")
        result = correlation_experiment(module, "minhash", max_pairs=500)
        assert len(result.pairs) == 500

    def test_selected_pairs(self):
        module = build_workload(60, "harness-sel")
        rows = selected_pairs_experiment(module, "hyfm")
        assert rows
        for sim, profitable, saving, pair_time in rows:
            assert 0.0 <= sim <= 1.0
            assert isinstance(profitable, bool)
            assert pair_time >= 0.0
            if profitable:
                assert saving > 0

    def test_runtime_impact(self):
        impacts = runtime_impact_experiment(40, strategies=("f3m",), inputs=(1, 3))
        assert set(impacts) == {"f3m"}
        assert impacts["f3m"] >= 0.99
