"""Serve-stage fault containment: mid-commit crashes and client vanishing."""

from __future__ import annotations

import io

import pytest

from repro.faults import (
    FAULT_STAGES,
    SERVE_FAULT_STAGES,
    WORKER_FAULT_STAGES,
    FaultInjector,
    InjectedFault,
)
from repro.harness.serve_bench import build_delta_text
from repro.serve import (
    FingerprintDatabase,
    ServeClient,
    ServeConfig,
    ServeDaemon,
    ServeError,
    decode_message,
    encode_message,
    serve_stdio,
)


class TestStageRegistry:
    def test_serve_stages_are_separate_from_pipeline_stages(self):
        assert SERVE_FAULT_STAGES == ("serve_commit", "serve_disconnect")
        assert not set(SERVE_FAULT_STAGES) & set(FAULT_STAGES)
        assert not set(SERVE_FAULT_STAGES) & set(WORKER_FAULT_STAGES)

    def test_injector_accepts_serve_stages(self):
        injector = FaultInjector.parse("serve_commit:2")
        assert injector.stage == "serve_commit"
        assert injector.at == 2
        injector.hit("serve_commit")  # first hit: no fire
        with pytest.raises(InjectedFault):
            injector.hit("serve_commit")


class TestServeCommit:
    def test_mid_commit_fault_rolls_back_to_pre_request_snapshot(self, corpus_text):
        """The fault fires after the corpus module was mutated and part of
        the index update applied; everything must roll back."""
        faults = FaultInjector("serve_commit", at=2)
        db = FingerprintDatabase(faults=faults)
        db.apply_delta(module_text=corpus_text)

        pre_version = db.version
        pre_text = db.dump()
        pre_snapshot = db.snapshot
        pre_answer = db.query(name="fam0.base", limit=5)

        delta_text, changed = build_delta_text(db.module, 0.15, seed=31)
        with pytest.raises(InjectedFault):
            db.apply_delta(module_text=delta_text)

        assert db.rollbacks == 1
        assert db.version == pre_version
        assert db.snapshot is pre_snapshot  # nothing was published
        assert db.dump() == pre_text  # module rolled back byte-identically
        assert db.query(name="fam0.base", limit=5) == pre_answer

        # The daemon keeps serving: the same delta now commits (the
        # injector only fires on hit 2).
        result = db.apply_delta(module_text=delta_text)
        assert result["version"] == pre_version + 1
        assert result["changed"] == sorted(changed)

    def test_daemon_reports_fault_and_keeps_serving(self, corpus_text):
        faults = FaultInjector("serve_commit", at=2)
        daemon = ServeDaemon(ServeConfig(), faults=faults)
        client = ServeClient(daemon=daemon)
        client.submit(module=corpus_text)
        delta_text, _ = build_delta_text(daemon.db.module, 0.1, seed=13)
        with pytest.raises(ServeError) as excinfo:
            client.submit(module=delta_text)
        assert excinfo.value.kind == "InjectedFault"
        # Subsequent requests succeed against the pre-fault state.
        assert client.ping()["version"] == 1
        assert client.submit(module=delta_text)["version"] == 2


class TestServeDisconnect:
    def test_disconnect_drops_response_but_keeps_commit(self, corpus_text):
        """The client vanishes after a submit committed: its response is
        lost, the commit is not, and later requests are served normally."""
        faults = FaultInjector("serve_disconnect", at=2)
        daemon = ServeDaemon(ServeConfig(), faults=faults)
        requests = [
            {"id": 1, "op": "ping"},
            {"id": 2, "op": "submit", "module": corpus_text},  # response lost
            {"id": 3, "op": "ping"},
            {"id": 4, "op": "shutdown"},
        ]
        stdin = io.BytesIO(b"".join(encode_message(r) for r in requests))
        stdout = io.BytesIO()
        serve_stdio(daemon, stdin=stdin, stdout=stdout)
        responses = [
            decode_message(line)
            for line in stdout.getvalue().splitlines()
            if line.strip()
        ]
        assert [r["id"] for r in responses] == [1, 3, 4]
        # The dropped request's commit was already published.
        assert responses[1]["result"]["version"] == 1
        assert responses[1]["result"]["functions"] > 0
