"""FingerprintDatabase: incremental submits, snapshot reads, hot merges."""

from __future__ import annotations

import random

import pytest

from repro.fingerprint.store import FingerprintStore
from repro.harness.serve_bench import build_delta_text, declare_external_callees
from repro.ir.clone import clone_function
from repro.ir.module import Module
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.merge.pass_ import FunctionMergingPass, PassConfig
from repro.harness.experiments import make_ranker
from repro.serve import DeltaError, FingerprintDatabase, ServeConfig
from repro.workloads.mutate import make_variant
from repro.workloads.suites import build_workload


@pytest.fixture
def db(corpus_text) -> FingerprintDatabase:
    database = FingerprintDatabase()
    database.apply_delta(module_text=corpus_text)
    return database


def _probe_text(db: FingerprintDatabase, name: str) -> str:
    probe = Module("probe")
    clone_function(db.module.get_function(name), name, probe)
    declare_external_callees(probe)
    return print_module(probe)


class TestSubmit:
    def test_initial_submit_populates_corpus(self, db, corpus_text):
        snap = db.snapshot
        assert snap.version == 1
        parsed = parse_module(corpus_text)
        assert set(snap.entries) == {f.name for f in parsed.defined_functions()}
        assert len(snap.index) == len(snap.entries)

    def test_empty_delta_is_a_noop_commit(self, db):
        before = len(db.snapshot.entries)
        result = db.apply_delta()
        assert result["version"] == 2
        assert result["added"] == result["changed"] == result["removed"] == []
        assert len(db.snapshot.entries) == before

    def test_changed_function_keeps_identity(self, db):
        target = db.module.get_function("fam0.base")
        delta = Module("delta")
        make_variant(target, "fam0.base", random.Random(3), 2, delta)
        declare_external_callees(delta)
        result = db.apply_delta(module_text=print_module(delta))
        assert result["changed"] == ["fam0.base"]
        # Same Function object — call sites elsewhere in the corpus still
        # point at it; only the body was replaced.
        assert db.module.get_function("fam0.base") is target
        assert db.snapshot.entries["fam0.base"].version == 2

    def test_remove_unreferenced_function_erases_it(self, db):
        # driver functions call others but nothing calls a driver
        victims = [
            name for name in db.snapshot.entries
            if not db.module.get_function(name).callers()
        ]
        victim = victims[0]
        db.apply_delta(removed=[victim])
        assert db.module.get_function(victim) is None
        assert victim not in db.snapshot.entries
        with pytest.raises(DeltaError):
            db.query(name=victim)

    def test_remove_referenced_function_demotes_to_declaration(self, db):
        referenced = [
            name for name in db.snapshot.entries
            if db.module.get_function(name).callers()
        ]
        victim = referenced[0]
        db.apply_delta(removed=[victim])
        func = db.module.get_function(victim)
        assert func is not None and func.is_declaration
        assert victim not in db.snapshot.entries

    @pytest.mark.parametrize(
        "removed", [["no.such.fn"], ["fam0.base", "fam0.base"]]
    )
    def test_bad_removals_rejected_before_mutation(self, db, removed):
        version = db.version
        text = db.dump()
        with pytest.raises(DeltaError):
            db.apply_delta(removed=removed)
        assert db.version == version
        assert db.dump() == text

    def test_defined_and_removed_conflict(self, db):
        delta = Module("delta")
        make_variant(
            db.module.get_function("fam0.base"), "fam0.base",
            random.Random(1), 1, delta,
        )
        declare_external_callees(delta)
        with pytest.raises(DeltaError):
            db.apply_delta(module_text=print_module(delta), removed=["fam0.base"])

    def test_rollback_on_mid_commit_failure_restores_corpus(self, db):
        text = db.dump()
        version = db.version
        # Unknown removal after a defined delta function would still fail
        # validation up front; force a mid-commit failure instead via a
        # delta whose module text does not verify.
        with pytest.raises(Exception):
            db.apply_delta(module_text="def @broken(i32 %a) -> i32 {\n")
        assert db.version == version
        assert db.dump() == text
        assert db.rollbacks == 0  # parse failures never reach the transaction


class TestQuery:
    def test_query_by_name_ranks_family(self, db):
        result = db.query(name="fam0.base", limit=5)
        names = [m["name"] for m in result["matches"]]
        assert any(n.startswith("fam0.") for n in names)
        sims = [m["similarity"] for m in result["matches"]]
        assert sims == sorted(sims, reverse=True)

    def test_query_by_text_probe_finds_resident_twin(self, db):
        result = db.query(text=_probe_text(db, "fam0.base"), limit=3)
        top = result["matches"][0]
        assert top["name"].startswith("fam0.")
        assert top["similarity"] == 1.0

    def test_query_needs_exactly_one_selector(self, db):
        with pytest.raises(DeltaError):
            db.query()
        with pytest.raises(DeltaError):
            db.query(name="fam0.base", text="def @x() -> i32 { ret 0 }")

    def test_probe_text_must_define_one_function(self, db, corpus_text):
        with pytest.raises(DeltaError):
            db.query(text=corpus_text)


class TestMerge:
    def test_merge_decisions_identical_to_one_shot(self, db, corpus_text):
        served = db.merge_text(corpus_text)
        module = parse_module(corpus_text)
        report = FunctionMergingPass(make_ranker("f3m"), PassConfig()).run(module)
        assert served["module"] == print_module(module)
        assert served["merges"] == report.merges

    def test_result_cache_round_trip(self, db, corpus_text):
        first = db.merge_text(corpus_text)
        assert first["cached"] is False
        second = db.merge_text(corpus_text)
        assert second["cached"] is True
        assert second["module"] == first["module"]
        assert db.result_hits == 1

    def test_no_result_cache_bypasses_lru(self, db, corpus_text):
        db.merge_text(corpus_text)
        again = db.merge_text(corpus_text, use_result_cache=False)
        assert again["cached"] is False
        assert db.result_hits == 0

    def test_merge_corpus_does_not_mutate_corpus(self, db):
        before = db.dump()
        result = db.merge_corpus()
        assert result["merges"] > 0
        assert db.dump() == before

    def test_result_cache_evicts_at_capacity(self, corpus_text):
        database = FingerprintDatabase(ServeConfig(result_cache_size=1))
        database.apply_delta(module_text=corpus_text)
        database.merge_text(corpus_text)
        # A different request text has a different digest and displaces the
        # sole cached entry.
        database.merge_text(_probe_text(database, "fam0.base"))
        assert database.result_evictions >= 1


class TestMaintenance:
    def test_lru_eviction_caps_corpus(self, corpus_text):
        database = FingerprintDatabase(ServeConfig(max_functions=10))
        result = database.apply_delta(module_text=corpus_text)
        assert len(database.snapshot.entries) == 10
        assert result["evicted"]
        assert len(database.snapshot.index) == 10

    def test_compact_preserves_queries_and_version(self, db):
        target = db.module.get_function("fam0.base")
        delta = Module("delta")
        make_variant(target, "fam0.base", random.Random(5), 1, delta)
        declare_external_callees(delta)
        db.apply_delta(module_text=print_module(delta))
        before = db.query(name="fam0.base", limit=5)
        stats = db.compact()
        assert stats["tombstones"] == 0
        assert db.version == before["version"]
        after = db.query(name="fam0.base", limit=5)
        assert after["matches"] == before["matches"]

    def test_flush_and_warm_start_round_trip(self, db, tmp_path, corpus_text):
        store_dir = str(tmp_path / "store")
        result = db.flush(directory=store_dir)
        assert result["spilled"] > 0
        store = FingerprintStore.open(store_dir)
        assert len(store) == result["spilled"]
        warm = FingerprintDatabase(ServeConfig(store_dir=store_dir))
        assert warm.fingerprints.stats.disk_entries_loaded == result["spilled"]
        # Warm start: fingerprinting the same corpus is all cache hits.
        warm.apply_delta(module_text=corpus_text)
        assert warm.fingerprints.stats.misses == 0

    def test_flush_without_directory_rejected(self, db):
        with pytest.raises(DeltaError):
            db.flush()

    def test_stats_shape(self, db, corpus_text):
        db.merge_text(corpus_text)
        stats = db.stats()
        assert stats["version"] == 1
        assert stats["functions"] == len(db.snapshot.entries)
        assert stats["commits"] == 1
        assert stats["index"]["live"] == stats["functions"]
        caches = stats["caches"]
        for key in (
            "fingerprint_hits",
            "fingerprint_misses",
            "alignment_misses",
            "plan_misses",
            "result_misses",
            "fingerprint_disk_skipped_version",
            "fingerprint_disk_skipped_invalid",
        ):
            assert key in caches

    def test_cross_request_cache_warmth(self, db, corpus_text):
        """Submitting then merging the same corpus reuses fingerprints."""
        before = db.fingerprints.stats.hits
        db.merge_text(corpus_text, use_result_cache=False)
        assert db.fingerprints.stats.hits > before


class TestDeltaBench:
    def test_build_delta_text_parses_and_applies(self, db):
        delta_text, changed = build_delta_text(db.module, 0.1, seed=11)
        assert changed
        result = db.apply_delta(module_text=delta_text)
        assert result["changed"] == sorted(changed)

    def test_incremental_matches_serial_replay(self, corpus_text):
        """The incrementally maintained index gives every function the same
        best match as a serial replay of the identical op sequence."""
        from repro.fingerprint.batch import minhash_module
        from repro.fingerprint.encoding import EncodingOptions
        from repro.fingerprint.minhash import MinHashConfig
        from repro.search.lsh import LSHIndex

        database = FingerprintDatabase()
        database.apply_delta(module_text=corpus_text)
        corpus = parse_module(corpus_text)
        delta_text, _ = build_delta_text(corpus, 0.15, seed=23)
        database.apply_delta(module_text=delta_text)

        config = MinHashConfig()
        encoding = EncodingOptions()
        serial = LSHIndex(
            rows=2, bands=config.k // 2, bucket_cap=100,
            compact_ratio=database.config.compact_ratio,
        )
        defined = corpus.defined_functions()
        serial.insert_batch(
            [f.name for f in defined], minhash_module(defined, config, encoding)
        )
        delta = parse_module(delta_text)
        ddef = delta.defined_functions()
        for name in sorted(f.name for f in ddef):
            serial.remove(name)
        serial.insert_batch(
            [f.name for f in ddef], minhash_module(ddef, config, encoding)
        )
        snap = database.snapshot
        for name in snap.entries:
            assert snap.index.best_match(name) == serial.best_match(name), name
