"""Snapshot-isolation property test.

Readers query concurrently while a writer commits deltas.  Every query
result must equal the serial answer computed against either the
pre-commit or the post-commit snapshot — never a mixture — and the
result's reported corpus version must match the snapshot whose answer it
equals.  The writer alternates between two corpus states so the expected
answer genuinely flips on every commit; with 100+ commits and
free-running reader threads the schedule is a different interleaving
every time.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.harness.serve_bench import declare_external_callees
from repro.ir.module import Module
from repro.ir.printer import print_module
from repro.serve import FingerprintDatabase
from repro.workloads.mutate import make_variant
from repro.workloads.suites import build_workload

_COMMITS = 110
_READERS = 2
_PROBES = ("fam0.base", "fam1.base")


def _serial_answer(snapshot, name: str, limit: int = 5):
    """Replicate FingerprintDatabase.query against a pinned snapshot."""
    matches = snapshot.index.query(name)
    matches.sort(key=lambda kv: (-kv[1], kv[0]))
    return [
        {"name": key, "similarity": sim} for key, sim in matches[:limit]
    ]


def _variant_delta(corpus: Module, names, seed: int) -> str:
    rng = random.Random(seed)
    delta = Module("delta")
    for name in names:
        make_variant(corpus.get_function(name), name, rng, 2, delta)
    declare_external_callees(delta)
    return print_module(delta)


@pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
def test_queries_see_pre_or_post_commit_state_only():
    db = FingerprintDatabase()
    corpus = build_workload(24, name="iso")
    db.apply_delta(module_text=print_module(corpus))

    # Two alternating deltas over the same family members: even commits
    # publish state A, odd commits state B.
    changed = [n for n in ("fam0.v0", "fam0.v1", "fam1.v0") if n in db.snapshot.entries]
    assert changed, "workload too small for the isolation test"
    delta_a = _variant_delta(db.module, changed, seed=101)
    delta_b = _variant_delta(db.module, changed, seed=202)

    # version -> expected answer per probe, filled in as commits publish.
    expected = {}
    expected_lock = threading.Lock()

    def record_expected(snapshot):
        answers = {name: _serial_answer(snapshot, name) for name in _PROBES}
        with expected_lock:
            expected[snapshot.version] = answers

    record_expected(db.snapshot)

    violations = []
    observed_versions = set()
    stop = threading.Event()

    def reader(probe: str) -> None:
        while not stop.is_set():
            result = db.query(name=probe, limit=5)
            version = result["version"]
            observed_versions.add(version)
            with expected_lock:
                answer = expected.get(version)
            if answer is None:
                # The writer publishes the snapshot before recording the
                # expected answer; recompute from the live snapshot only
                # if it is still the one we read.
                snap = db.snapshot
                if snap.version != version:
                    continue  # raced past; another iteration will check
                answer = {probe: _serial_answer(snap, probe)}
            if result["matches"] != answer[probe]:
                violations.append((version, probe, result["matches"], answer[probe]))
                return

    threads = [
        threading.Thread(target=reader, args=(_PROBES[i % len(_PROBES)],))
        for i in range(_READERS)
    ]
    for thread in threads:
        thread.start()

    try:
        for commit in range(_COMMITS):
            delta = delta_a if commit % 2 == 0 else delta_b
            db.apply_delta(module_text=delta)
            record_expected(db.snapshot)
            if violations:
                break
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

    assert not violations, violations[:3]
    assert db.version == _COMMITS + 1
    # The readers genuinely overlapped the commit stream.
    assert len(observed_versions) > 10, sorted(observed_versions)


def test_inflight_reader_keeps_its_snapshot():
    """A snapshot reference pinned before a commit answers identically
    after the commit — copy-on-write isolation, not just atomicity."""
    db = FingerprintDatabase()
    corpus = build_workload(24, name="pin")
    db.apply_delta(module_text=print_module(corpus))
    pinned = db.snapshot
    before = _serial_answer(pinned, "fam0.base")

    changed = [n for n in ("fam0.v0", "fam0.v1") if n in db.snapshot.entries]
    db.apply_delta(module_text=_variant_delta(db.module, changed, seed=7))
    db.compact()  # exercise the shared-buffer un-sharing path too

    assert _serial_answer(pinned, "fam0.base") == before
    assert db.snapshot.version == pinned.version + 1
