"""ServeDaemon protocol dispatch, transports and manifest reproducibility."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.serve import (
    ProtocolError,
    ServeClient,
    ServeConfig,
    ServeDaemon,
    ServeError,
    decode_message,
    encode_message,
    serve_stdio,
)


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"id": 7, "op": "ping", "limit": 3}
        assert decode_message(encode_message(message)) == message

    def test_encoding_is_canonical_bytes(self):
        a = encode_message({"b": 1, "a": 2})
        b = encode_message({"a": 2, "b": 1})
        assert a == b

    @pytest.mark.parametrize("line", ["", "not json", "[1,2]", "42"])
    def test_malformed_lines_rejected(self, line):
        with pytest.raises(ProtocolError):
            decode_message(line)


class TestSmoke:
    """The tier-1 round trip: submit, query, merge, shutdown in-process."""

    def test_full_round_trip(self, corpus_text):
        daemon = ServeDaemon(ServeConfig())
        client = ServeClient(daemon=daemon)

        ping = client.ping()
        assert ping == {"version": 0, "functions": 0}

        submitted = client.submit(module=corpus_text)
        assert submitted["version"] == 1
        assert submitted["functions"] == len(submitted["added"])

        queried = client.query(name=submitted["added"][0], limit=5)
        assert queried["version"] == 1

        merged = client.merge(module=corpus_text)
        assert merged["merges"] > 0
        assert "result_misses" in client.last_cache

        again = client.merge(module=corpus_text)
        assert again["cached"] is True
        assert client.last_cache == {"result_hits": 1}

        stats = client.stats()
        assert stats["requests"] == 6
        assert stats["errors"] == 0

        assert client.shutdown() == {"stopping": True}
        assert daemon.stopping

    def test_errors_are_responses_not_crashes(self, corpus_text):
        daemon = ServeDaemon(ServeConfig())
        client = ServeClient(daemon=daemon)
        with pytest.raises(ServeError) as excinfo:
            client.query(name="nope")
        assert excinfo.value.kind == "DeltaError"
        with pytest.raises(ServeError) as excinfo:
            client.request("frobnicate")
        assert excinfo.value.kind == "ProtocolError"
        with pytest.raises(ServeError):
            client.merge()  # neither module nor corpus
        # Daemon still healthy afterwards.
        assert client.submit(module=corpus_text)["version"] == 1
        assert daemon.errors == 3

    def test_per_request_cache_deltas_are_deltas(self, corpus_text):
        daemon = ServeDaemon(ServeConfig())
        client = ServeClient(daemon=daemon)
        client.submit(module=corpus_text)
        first = dict()
        client.merge(module=corpus_text, no_result_cache=True)
        first = client.last_cache
        assert first.get("fingerprint_hits", 0) > 0  # warmed by submit
        client.merge(module=corpus_text, no_result_cache=True)
        second = client.last_cache
        # Deltas, not totals: the second request reports only its own work,
        # and the merge plans now come straight from the shared plan cache
        # (which short-circuits alignment entirely).
        assert second.get("plan_hits", 0) > 0
        assert second.get("alignment_misses", 0) == 0


class TestStdioTransport:
    def _run(self, daemon, requests):
        stdin = io.BytesIO(b"".join(encode_message(r) for r in requests))
        stdout = io.BytesIO()
        serve_stdio(daemon, stdin=stdin, stdout=stdout)
        return [
            decode_message(line)
            for line in stdout.getvalue().splitlines()
            if line.strip()
        ]

    def test_line_loop_and_shutdown(self, corpus_text):
        daemon = ServeDaemon(ServeConfig())
        responses = self._run(
            daemon,
            [
                {"id": 1, "op": "ping"},
                {"id": 2, "op": "submit", "module": corpus_text},
                {"id": 3, "op": "shutdown"},
                {"id": 4, "op": "ping"},  # after shutdown: never served
            ],
        )
        assert [r["id"] for r in responses] == [1, 2, 3]
        assert all(r["ok"] for r in responses)
        assert responses[1]["result"]["version"] == 1

    def test_bad_json_line_gets_error_response(self):
        daemon = ServeDaemon(ServeConfig())
        stdin = io.BytesIO(b"this is not json\n" + encode_message({"id": 1, "op": "ping"}))
        stdout = io.BytesIO()
        serve_stdio(daemon, stdin=stdin, stdout=stdout)
        lines = stdout.getvalue().splitlines()
        error = decode_message(lines[0])
        assert error["ok"] is False
        assert error["error"]["type"] == "ProtocolError"
        assert decode_message(lines[1])["ok"] is True


class TestManifests:
    def _drive(self, manifest_dir, corpus_text):
        daemon = ServeDaemon(ServeConfig(manifest_dir=manifest_dir))
        client = ServeClient(daemon=daemon)
        client.ping()
        client.submit(module=corpus_text)
        client.merge(module=corpus_text)
        client.merge(module=corpus_text)
        with pytest.raises(ServeError):
            client.query(name="missing")
        return sorted(os.listdir(manifest_dir))

    def test_manifests_are_byte_reproducible(self, tmp_path, corpus_text):
        """Identical request sequences produce identical manifest bytes —
        serve manifests carry no wall-clock data at all."""
        dir_a = str(tmp_path / "a")
        dir_b = str(tmp_path / "b")
        names_a = self._drive(dir_a, corpus_text)
        names_b = self._drive(dir_b, corpus_text)
        assert names_a == names_b
        assert len(names_a) == 5
        for name in names_a:
            with open(os.path.join(dir_a, name), "rb") as handle:
                bytes_a = handle.read()
            with open(os.path.join(dir_b, name), "rb") as handle:
                bytes_b = handle.read()
            assert bytes_a == bytes_b, name

    def test_manifest_kind_and_metrics(self, tmp_path, corpus_text):
        manifest_dir = str(tmp_path / "m")
        self._drive(manifest_dir, corpus_text)
        with open(
            os.path.join(manifest_dir, sorted(os.listdir(manifest_dir))[2]),
            "r",
            encoding="utf-8",
        ) as handle:
            payload = json.load(handle)
        assert payload["kind"] == "serve"
        assert payload["strategy"] == "merge"
        assert payload["created_unix"] == 0.0
        assert payload["metrics"]["ok"] is True
        assert payload["metrics"]["request_seq"] == 3


class TestSpawn:
    def test_subprocess_stdio_daemon(self, corpus_text):
        """End-to-end over real pipes: `repro serve --stdio` subprocess."""
        with ServeClient.spawn() as client:
            assert client.ping()["version"] == 0
            assert client.submit(module=corpus_text)["version"] == 1
            assert client.merge(corpus=True)["merges"] > 0
