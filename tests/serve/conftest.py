"""Shared fixtures for the serve-daemon suite."""

from __future__ import annotations

import pytest

from repro.harness.serve_bench import build_delta_text, declare_external_callees
from repro.ir.printer import print_module
from repro.workloads.suites import build_workload

__all__ = ["build_delta_text", "declare_external_callees"]


@pytest.fixture(scope="module")
def corpus_text() -> str:
    """A 30-function workload as IR text (families + singletons)."""
    return print_module(build_workload(30, name="servetest"))
