"""Docs-consistency checks (tier 1, no network).

Documentation that drifts from the code is worse than none, so these
assert the structural invariants: every package is in the architecture
doc, every relative link in README/docs resolves to a real file, and the
generated checker catalogue matches the registry byte-for-byte.
"""

import importlib.util
import os
import re

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DOCS = os.path.join(REPO_ROOT, "docs")

# [text](target) — excluding images and in-page anchors.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)#\s]+)[^)]*\)")


def _read(*parts: str) -> str:
    with open(os.path.join(REPO_ROOT, *parts), "r", encoding="utf-8") as fh:
        return fh.read()


def _packages() -> list:
    src = os.path.join(REPO_ROOT, "src", "repro")
    return sorted(
        entry
        for entry in os.listdir(src)
        if os.path.isfile(os.path.join(src, entry, "__init__.py"))
    )


class TestArchitectureDoc:
    def test_every_package_documented(self):
        text = _read("docs", "architecture.md")
        missing = [pkg for pkg in _packages() if f"`{pkg}/`" not in text]
        assert not missing, (
            f"packages absent from docs/architecture.md: {missing} "
            "(each needs a '### `<pkg>/`' contract section)"
        )

    def test_top_level_modules_documented(self):
        text = _read("docs", "architecture.md")
        for mod in ("cli.py", "diagnostics.py", "faults.py"):
            assert mod in text


def _doc_pages() -> list:
    return sorted(
        f"docs/{name}" for name in os.listdir(DOCS) if name.endswith(".md")
    )


@pytest.mark.parametrize("doc", ["README.md", "DESIGN.md"] + _doc_pages())
class TestLinksResolve:
    def test_relative_links_point_at_real_files(self, doc):
        base = os.path.dirname(os.path.join(REPO_ROOT, doc))
        text = _read(*doc.split("/"))
        broken = []
        for target in _LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue  # no network in tier 1
            if not os.path.exists(os.path.normpath(os.path.join(base, target))):
                broken.append(target)
        assert not broken, f"broken links in {doc}: {broken}"


class TestDocsCoverage:
    def test_every_subpackage_mentioned_by_some_docs_page(self):
        corpus = "\n".join(_read(*page.split("/")) for page in _doc_pages())
        missing = [pkg for pkg in _packages() if f"`{pkg}/`" not in corpus]
        assert not missing, (
            f"src/repro subpackages no docs page mentions: {missing}"
        )

    def test_every_bench_json_has_a_benchmarks_md_section(self):
        bench_files = sorted(
            name
            for name in os.listdir(REPO_ROOT)
            if name.startswith("BENCH_") and name.endswith(".json")
        )
        assert bench_files, "no BENCH_*.json files at the repository root?"
        text = _read("docs", "benchmarks.md")
        missing = [
            name for name in bench_files if f"## `{name}`" not in text
        ]
        assert not missing, (
            f"BENCH files without a '## `<file>`' section in "
            f"docs/benchmarks.md: {missing}"
        )

    def test_index_lists_every_docs_page(self):
        text = _read("docs", "index.md")
        missing = [
            page
            for page in _doc_pages()
            if page != "docs/index.md"
            and f"({os.path.basename(page)})" not in text
        ]
        assert not missing, f"docs pages absent from docs/index.md: {missing}"


class TestGeneratedCheckerDocs:
    def test_checkers_md_in_sync_with_registry(self):
        spec = importlib.util.spec_from_file_location(
            "gen_checker_docs",
            os.path.join(REPO_ROOT, "tools", "gen_checker_docs.py"),
        )
        gen = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(gen)
        expected = gen.render()
        current = _read("docs", "checkers.md")
        assert current == expected, (
            "docs/checkers.md is stale; regenerate with "
            "PYTHONPATH=src python tools/gen_checker_docs.py"
        )

    def test_every_registered_checker_listed(self):
        from repro.staticcheck import all_checkers

        text = _read("docs", "checkers.md")
        for info in all_checkers():
            assert f"`{info.name}`" in text


class TestMarkdownLint:
    def _load(self):
        spec = importlib.util.spec_from_file_location(
            "lint_docs", os.path.join(REPO_ROOT, "tools", "lint_docs.py")
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def test_repository_markdown_is_clean(self):
        problems = self._load().run_checks()
        assert not problems, "tools/lint_docs.py found:\n" + "\n".join(problems)

    def test_lint_catches_changes_format_drift(self, tmp_path, monkeypatch):
        lint = self._load()
        (tmp_path / "CHANGES.md").write_text("- PR 1: bulleted drift\n")
        (tmp_path / "ROADMAP.md").write_text("## Open items\n\n## Recent\n")
        monkeypatch.setattr(lint, "REPO_ROOT", str(tmp_path))
        problems = lint.run_checks()
        assert any("PR <n>" in p for p in problems)

    def test_lint_catches_dead_links(self, tmp_path, monkeypatch):
        lint = self._load()
        (tmp_path / "CHANGES.md").write_text("PR 1: fine\n")
        (tmp_path / "ROADMAP.md").write_text("## Open items\n\n## Recent\n")
        (tmp_path / "page.md").write_text("see [gone](missing.md)\n")
        monkeypatch.setattr(lint, "REPO_ROOT", str(tmp_path))
        problems = lint.run_checks()
        assert any("dead relative link" in p for p in problems)


class TestReadmePointers:
    def test_readme_links_all_docs(self):
        text = _read("README.md")
        for doc in (
            "docs/index.md",
            "docs/architecture.md",
            "docs/merging.md",
            "docs/observability.md",
            "docs/benchmarks.md",
            "docs/checkers.md",
        ):
            assert doc in text, f"README.md must link {doc}"

    def test_bench_field_detail_lives_in_docs_not_readme(self):
        # The per-field JSON walkthroughs were moved to docs/benchmarks.md;
        # the README keeps pointers only.
        readme = _read("README.md")
        assert "Reading the JSON:" not in readme
        bench_doc = _read("docs", "benchmarks.md")
        for field in ("speedup_vs_hyfm", "cache_remerge", "bound_unsound_rejections"):
            assert field in bench_doc
