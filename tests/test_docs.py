"""Docs-consistency checks (tier 1, no network).

Documentation that drifts from the code is worse than none, so these
assert the structural invariants: every package is in the architecture
doc, every relative link in README/docs resolves to a real file, and the
generated checker catalogue matches the registry byte-for-byte.
"""

import importlib.util
import os
import re

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DOCS = os.path.join(REPO_ROOT, "docs")

# [text](target) — excluding images and in-page anchors.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)#\s]+)[^)]*\)")


def _read(*parts: str) -> str:
    with open(os.path.join(REPO_ROOT, *parts), "r", encoding="utf-8") as fh:
        return fh.read()


def _packages() -> list:
    src = os.path.join(REPO_ROOT, "src", "repro")
    return sorted(
        entry
        for entry in os.listdir(src)
        if os.path.isfile(os.path.join(src, entry, "__init__.py"))
    )


class TestArchitectureDoc:
    def test_every_package_documented(self):
        text = _read("docs", "architecture.md")
        missing = [pkg for pkg in _packages() if f"`{pkg}/`" not in text]
        assert not missing, (
            f"packages absent from docs/architecture.md: {missing} "
            "(each needs a '### `<pkg>/`' contract section)"
        )

    def test_top_level_modules_documented(self):
        text = _read("docs", "architecture.md")
        for mod in ("cli.py", "diagnostics.py", "faults.py"):
            assert mod in text


@pytest.mark.parametrize(
    "doc",
    [
        "README.md",
        "docs/architecture.md",
        "docs/observability.md",
        "docs/benchmarks.md",
        "docs/checkers.md",
        "docs/scaling.md",
    ],
)
class TestLinksResolve:
    def test_relative_links_point_at_real_files(self, doc):
        base = os.path.dirname(os.path.join(REPO_ROOT, doc))
        text = _read(*doc.split("/"))
        broken = []
        for target in _LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue  # no network in tier 1
            if not os.path.exists(os.path.normpath(os.path.join(base, target))):
                broken.append(target)
        assert not broken, f"broken links in {doc}: {broken}"


class TestGeneratedCheckerDocs:
    def test_checkers_md_in_sync_with_registry(self):
        spec = importlib.util.spec_from_file_location(
            "gen_checker_docs",
            os.path.join(REPO_ROOT, "tools", "gen_checker_docs.py"),
        )
        gen = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(gen)
        expected = gen.render()
        current = _read("docs", "checkers.md")
        assert current == expected, (
            "docs/checkers.md is stale; regenerate with "
            "PYTHONPATH=src python tools/gen_checker_docs.py"
        )

    def test_every_registered_checker_listed(self):
        from repro.staticcheck import all_checkers

        text = _read("docs", "checkers.md")
        for info in all_checkers():
            assert f"`{info.name}`" in text


class TestReadmePointers:
    def test_readme_links_all_docs(self):
        text = _read("README.md")
        for doc in (
            "docs/architecture.md",
            "docs/observability.md",
            "docs/benchmarks.md",
            "docs/checkers.md",
        ):
            assert doc in text, f"README.md must link {doc}"

    def test_bench_field_detail_lives_in_docs_not_readme(self):
        # The per-field JSON walkthroughs were moved to docs/benchmarks.md;
        # the README keeps pointers only.
        readme = _read("README.md")
        assert "Reading the JSON:" not in readme
        bench_doc = _read("docs", "benchmarks.md")
        for field in ("speedup_vs_hyfm", "cache_remerge", "bound_unsound_rejections"):
            assert field in bench_doc
