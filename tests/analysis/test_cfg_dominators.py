"""Tests for CFG traversals and the dominator tree."""

from repro.analysis import (
    DominatorTree,
    postorder,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_postorder,
)
from repro.ir import (
    BasicBlock,
    Branch,
    ConstantInt,
    I32,
    IRBuilder,
    Ret,
    verify_function,
)
from tests.conftest import build_diamond, build_loop, build_straightline


class TestTraversal:
    def test_rpo_starts_at_entry(self, module):
        func = build_diamond(module)
        rpo = reverse_postorder(func)
        assert rpo[0] is func.entry
        assert len(rpo) == 4

    def test_rpo_respects_dominance(self, module):
        func = build_diamond(module)
        rpo = reverse_postorder(func)
        index = {id(b): i for i, b in enumerate(rpo)}
        # join comes after both arms
        entry, big, small, join = func.blocks
        assert index[id(join)] > index[id(big)]
        assert index[id(join)] > index[id(small)]

    def test_postorder_is_reverse(self, module):
        func = build_loop(module)
        assert list(reversed(postorder(func))) == reverse_postorder(func)

    def test_declaration_is_empty(self, module):
        from repro.ir import Function, FunctionType

        func = Function(FunctionType(I32, []), "d", parent=module)
        assert reverse_postorder(func) == []


class TestUnreachable:
    def test_reachable_blocks(self, module):
        func = build_diamond(module)
        dead = BasicBlock("dead", func)
        dead.append(Ret(ConstantInt(I32, 0)))
        live = reachable_blocks(func)
        assert id(dead) not in live
        assert len(live) == 4

    def test_remove_unreachable(self, module):
        func = build_diamond(module)
        dead = BasicBlock("dead", func)
        dead.append(Ret(ConstantInt(I32, 0)))
        removed = remove_unreachable_blocks(func)
        assert removed == 1
        assert len(func.blocks) == 4
        verify_function(func)

    def test_remove_unreachable_fixes_phis(self, module):
        func = build_diamond(module)
        join = func.blocks[-1]
        dead = BasicBlock("dead", func)
        b = IRBuilder(dead)
        b.br(join)
        phi = join.phis()[0]
        phi.add_incoming(ConstantInt(I32, 77), dead)
        removed = remove_unreachable_blocks(func)
        assert removed == 1
        assert phi.incoming_for(dead) is None
        verify_function(func)


class TestDominators:
    def test_diamond_idoms(self, module):
        func = build_diamond(module)
        entry, big, small, join = func.blocks
        dt = DominatorTree(func)
        assert dt.idom(entry) is None
        assert dt.idom(big) is entry
        assert dt.idom(small) is entry
        assert dt.idom(join) is entry

    def test_dominates_block(self, module):
        func = build_diamond(module)
        entry, big, small, join = func.blocks
        dt = DominatorTree(func)
        assert dt.dominates_block(entry, join)
        assert dt.dominates_block(entry, entry)
        assert not dt.dominates_block(big, join)
        assert not dt.strictly_dominates_block(entry, entry)

    def test_loop_header_dominates_body(self, module):
        func = build_loop(module)
        entry, header, body, exit_bb = func.blocks
        dt = DominatorTree(func)
        assert dt.dominates_block(header, body)
        assert dt.dominates_block(header, exit_bb)
        assert not dt.dominates_block(body, exit_bb)

    def test_instruction_dominance_same_block(self, module):
        func = build_straightline(module)
        dt = DominatorTree(func)
        insts = func.entry.instructions
        assert dt.dominates(insts[0], insts[1], 0)
        assert not dt.dominates(insts[1], insts[0], 0)

    def test_phi_use_checks_incoming_block(self, module):
        func = build_loop(module)
        entry, header, body, exit_bb = func.blocks
        dt = DominatorTree(func)
        iv_phi = header.phis()[0]
        # Back-edge incoming value (iv.next in body) must dominate the
        # *body* exit, not the phi itself.
        iv_next = body.instructions[-2]
        incoming_idx = [
            i for i, op in enumerate(iv_phi.operands) if op is iv_next
        ][0]
        assert dt.dominates(iv_next, iv_phi, incoming_idx)

    def test_children(self, module):
        func = build_diamond(module)
        entry = func.entry
        dt = DominatorTree(func)
        assert set(id(c) for c in dt.children(entry)) == set(
            id(b) for b in func.blocks[1:]
        )

    def test_unreachable_block_not_in_tree(self, module):
        func = build_diamond(module)
        dead = BasicBlock("dead", func)
        dead.append(Ret(ConstantInt(I32, 0)))
        dt = DominatorTree(func)
        assert not dt.is_reachable(dead)
        assert not dt.dominates_block(dead, func.entry)


def _irreducible(module):
    """entry branches into BOTH members of the {a, b} cycle — the classic
    irreducible region with no single loop header."""
    from repro.ir import parse_module

    return parse_module(
        """
define i32 @irr(i32 %x, i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %va = add i32 %x, 1
  br i1 %c, label %b, label %exit
b:
  %vb = add i32 %x, 2
  br i1 %c, label %a, label %exit
exit:
  ret i32 %x
}
"""
    ).get_function("irr")


def _unreachable_loop(module):
    """A straightline function plus a two-block cycle nothing reaches."""
    func = build_straightline(module, "with_island")
    isl1 = BasicBlock("isl1", func)
    isl2 = BasicBlock("isl2", func)
    isl1.append(Branch(isl2))
    isl2.append(Branch(isl1))
    return func


class TestIrreducibleCfg:
    def test_only_entry_dominates_cycle_members(self, module):
        func = _irreducible(module)
        entry, a, b, exit_bb = func.blocks
        dt = DominatorTree(func)
        # Neither cycle member dominates the other: each is reachable from
        # the entry without passing through its peer.
        assert not dt.dominates_block(a, b)
        assert not dt.dominates_block(b, a)
        assert dt.idom(a) is entry
        assert dt.idom(b) is entry
        # The exit is joined from both arms: only the entry dominates it.
        assert dt.idom(exit_bb) is entry

    def test_verifier_accepts_irreducible_function(self, module):
        verify_function(_irreducible(module))

    def test_cross_cycle_use_rejected(self, module):
        func = _irreducible(module)
        _entry, a, b, _exit = func.blocks
        # %vb uses %va: along entry->b that path never executed 'a'.
        b.instructions[0].set_operand(0, a.instructions[0])
        from repro.staticcheck.checkers import dominance_diagnostics

        diags = dominance_diagnostics(func)
        assert len(diags) == 1
        assert diags[0].block == "b"


class TestUnreachableLoop:
    def test_island_cycle_not_reachable(self, module):
        func = _unreachable_loop(module)
        dt = DominatorTree(func)
        isl1, isl2 = func.blocks[-2:]
        assert not dt.is_reachable(isl1)
        assert not dt.is_reachable(isl2)
        assert reachable_blocks(func) == {id(func.entry)}

    def test_dominance_checker_exempts_island(self, module):
        # Dominance rules apply to reachable code only: the island cycle
        # produces no findings, and the verifier accepts the function.
        func = _unreachable_loop(module)
        from repro.staticcheck.checkers import dominance_diagnostics

        assert dominance_diagnostics(func) == []
        verify_function(func)

    def test_remove_unreachable_deletes_island(self, module):
        func = _unreachable_loop(module)
        assert remove_unreachable_blocks(func) == 2
        assert len(func.blocks) == 1


class TestDominatorDataflowAgreement:
    """The dominator tree and the dataflow engine must agree: block A
    strictly dominates B iff A is 'must-available' on every path to B —
    an all-paths (intersection) forward problem solved on the engine."""

    @staticmethod
    def _must_available(func):
        from repro.staticcheck import DataflowProblem, solve

        universe = frozenset(id(b) for b in func.blocks)

        class MustPassThrough(DataflowProblem):
            direction = "forward"

            def bottom(self, f):
                return universe  # top of the must-lattice

            def boundary(self, f):
                return frozenset()

            def join(self, x, y):
                return x & y

            def transfer(self, inst, state):
                return state

            def edge(self, pred, succ, state):
                return state | {id(pred)}

        return solve(MustPassThrough(), func)

    def _assert_agreement(self, func):
        dt = DominatorTree(func)
        result = self._must_available(func)
        reachable = [b for b in func.blocks if dt.is_reachable(b)]
        for a in reachable:
            for b in reachable:
                via_dataflow = id(a) in result.state_in(b)
                assert via_dataflow == dt.strictly_dominates_block(a, b), (
                    f"disagreement for {a.name} -> {b.name}"
                )

    def test_diamond(self, module):
        self._assert_agreement(build_diamond(module))

    def test_loop(self, module):
        self._assert_agreement(build_loop(module))

    def test_irreducible(self, module):
        self._assert_agreement(_irreducible(module))

    def test_with_unreachable_island(self, module):
        self._assert_agreement(_unreachable_loop(module))
