"""Tests for CFG traversals and the dominator tree."""

from repro.analysis import (
    DominatorTree,
    postorder,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_postorder,
)
from repro.ir import (
    BasicBlock,
    Branch,
    ConstantInt,
    I32,
    IRBuilder,
    Ret,
    verify_function,
)
from tests.conftest import build_diamond, build_loop, build_straightline


class TestTraversal:
    def test_rpo_starts_at_entry(self, module):
        func = build_diamond(module)
        rpo = reverse_postorder(func)
        assert rpo[0] is func.entry
        assert len(rpo) == 4

    def test_rpo_respects_dominance(self, module):
        func = build_diamond(module)
        rpo = reverse_postorder(func)
        index = {id(b): i for i, b in enumerate(rpo)}
        # join comes after both arms
        entry, big, small, join = func.blocks
        assert index[id(join)] > index[id(big)]
        assert index[id(join)] > index[id(small)]

    def test_postorder_is_reverse(self, module):
        func = build_loop(module)
        assert list(reversed(postorder(func))) == reverse_postorder(func)

    def test_declaration_is_empty(self, module):
        from repro.ir import Function, FunctionType

        func = Function(FunctionType(I32, []), "d", parent=module)
        assert reverse_postorder(func) == []


class TestUnreachable:
    def test_reachable_blocks(self, module):
        func = build_diamond(module)
        dead = BasicBlock("dead", func)
        dead.append(Ret(ConstantInt(I32, 0)))
        live = reachable_blocks(func)
        assert id(dead) not in live
        assert len(live) == 4

    def test_remove_unreachable(self, module):
        func = build_diamond(module)
        dead = BasicBlock("dead", func)
        dead.append(Ret(ConstantInt(I32, 0)))
        removed = remove_unreachable_blocks(func)
        assert removed == 1
        assert len(func.blocks) == 4
        verify_function(func)

    def test_remove_unreachable_fixes_phis(self, module):
        func = build_diamond(module)
        join = func.blocks[-1]
        dead = BasicBlock("dead", func)
        b = IRBuilder(dead)
        b.br(join)
        phi = join.phis()[0]
        phi.add_incoming(ConstantInt(I32, 77), dead)
        removed = remove_unreachable_blocks(func)
        assert removed == 1
        assert phi.incoming_for(dead) is None
        verify_function(func)


class TestDominators:
    def test_diamond_idoms(self, module):
        func = build_diamond(module)
        entry, big, small, join = func.blocks
        dt = DominatorTree(func)
        assert dt.idom(entry) is None
        assert dt.idom(big) is entry
        assert dt.idom(small) is entry
        assert dt.idom(join) is entry

    def test_dominates_block(self, module):
        func = build_diamond(module)
        entry, big, small, join = func.blocks
        dt = DominatorTree(func)
        assert dt.dominates_block(entry, join)
        assert dt.dominates_block(entry, entry)
        assert not dt.dominates_block(big, join)
        assert not dt.strictly_dominates_block(entry, entry)

    def test_loop_header_dominates_body(self, module):
        func = build_loop(module)
        entry, header, body, exit_bb = func.blocks
        dt = DominatorTree(func)
        assert dt.dominates_block(header, body)
        assert dt.dominates_block(header, exit_bb)
        assert not dt.dominates_block(body, exit_bb)

    def test_instruction_dominance_same_block(self, module):
        func = build_straightline(module)
        dt = DominatorTree(func)
        insts = func.entry.instructions
        assert dt.dominates(insts[0], insts[1], 0)
        assert not dt.dominates(insts[1], insts[0], 0)

    def test_phi_use_checks_incoming_block(self, module):
        func = build_loop(module)
        entry, header, body, exit_bb = func.blocks
        dt = DominatorTree(func)
        iv_phi = header.phis()[0]
        # Back-edge incoming value (iv.next in body) must dominate the
        # *body* exit, not the phi itself.
        iv_next = body.instructions[-2]
        incoming_idx = [
            i for i, op in enumerate(iv_phi.operands) if op is iv_next
        ][0]
        assert dt.dominates(iv_next, iv_phi, incoming_idx)

    def test_children(self, module):
        func = build_diamond(module)
        entry = func.entry
        dt = DominatorTree(func)
        assert set(id(c) for c in dt.children(entry)) == set(
            id(b) for b in func.blocks[1:]
        )

    def test_unreachable_block_not_in_tree(self, module):
        func = build_diamond(module)
        dead = BasicBlock("dead", func)
        dead.append(Ret(ConstantInt(I32, 0)))
        dt = DominatorTree(func)
        assert not dt.is_reachable(dead)
        assert not dt.dominates_block(dead, func.entry)
