"""Tests for the size model and linearization."""

from repro.analysis import (
    function_size,
    instruction_size,
    linearize,
    linearize_blocks,
    module_size,
    size_breakdown,
)
from repro.ir import BasicBlock, ConstantInt, Function, FunctionType, I32, Ret
from tests.conftest import build_diamond, build_loop, build_straightline


class TestSizeModel:
    def test_phi_is_free(self, module):
        func = build_diamond(module)
        phi = func.blocks[-1].phis()[0]
        assert instruction_size(phi) == 0

    def test_declaration_is_free(self, module):
        func = Function(FunctionType(I32, []), "d", parent=module)
        assert function_size(func) == 0

    def test_function_size_monotone_in_instructions(self, module):
        small = build_straightline(module, "small")
        big = build_diamond(module, "big")
        assert function_size(big) > function_size(small) > 0

    def test_module_size_sums(self, module):
        build_straightline(module, "a")
        build_straightline(module, "b")
        assert module_size(module) == sum(size_breakdown(module).values())

    def test_breakdown_names(self, module):
        build_straightline(module, "a")
        assert set(size_breakdown(module)) == {"a"}


class TestLinearizer:
    def test_all_reachable_instructions_once(self, module):
        func = build_loop(module)
        seq = linearize(func)
        assert len(seq) == func.num_instructions
        assert len({id(i) for i in seq}) == len(seq)

    def test_unreachable_blocks_excluded(self, module):
        func = build_straightline(module)
        dead = BasicBlock("dead", func)
        dead.append(Ret(ConstantInt(I32, 0)))
        assert len(linearize(func)) == func.num_instructions - 1

    def test_block_order_deterministic(self, module):
        func = build_diamond(module)
        assert [b.name for b in linearize_blocks(func)] == [
            b.name for b in linearize_blocks(func)
        ]
