"""Tests for instruction constructors, typing rules and CFG queries."""

import pytest

from repro.ir import (
    Alloca,
    Argument,
    ArrayType,
    BasicBlock,
    BinaryOp,
    Branch,
    Call,
    Cast,
    ConstantInt,
    DOUBLE,
    FCmp,
    FCmpPred,
    FLOAT,
    Function,
    FunctionType,
    GetElementPtr,
    I1,
    I8,
    I16,
    I32,
    I64,
    ICmp,
    ICmpPred,
    Invoke,
    Load,
    Module,
    Opcode,
    Phi,
    PointerType,
    Ret,
    Select,
    Store,
    StructType,
    Switch,
    Unreachable,
    UndefValue,
)


def arg(type_, name="a", index=0):
    return Argument(type_, name, index)


class TestBinary:
    def test_add_result_type(self):
        inst = BinaryOp(Opcode.ADD, arg(I32), arg(I32, "b", 1))
        assert inst.type is I32
        assert inst.is_binary and not inst.is_terminator

    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            BinaryOp(Opcode.ADD, arg(I32), arg(I64))

    def test_float_opcode_needs_floats(self):
        with pytest.raises(TypeError):
            BinaryOp(Opcode.FADD, arg(I32), arg(I32))
        assert BinaryOp(Opcode.FADD, arg(DOUBLE), arg(DOUBLE)).type is DOUBLE

    def test_int_opcode_rejects_floats(self):
        with pytest.raises(TypeError):
            BinaryOp(Opcode.ADD, arg(DOUBLE), arg(DOUBLE))

    def test_non_binary_opcode_rejected(self):
        with pytest.raises(ValueError):
            BinaryOp(Opcode.RET, arg(I32), arg(I32))

    def test_commutativity_flags(self):
        assert BinaryOp(Opcode.ADD, arg(I32), arg(I32)).is_commutative
        assert not BinaryOp(Opcode.SUB, arg(I32), arg(I32)).is_commutative


class TestCompare:
    def test_icmp_yields_i1(self):
        assert ICmp(ICmpPred.SLT, arg(I32), arg(I32)).type is I1

    def test_icmp_rejects_floats(self):
        with pytest.raises(TypeError):
            ICmp(ICmpPred.EQ, arg(DOUBLE), arg(DOUBLE))

    def test_icmp_allows_pointers(self):
        p = PointerType(I32)
        assert ICmp(ICmpPred.EQ, arg(p), arg(p)).type is I1

    def test_fcmp(self):
        assert FCmp(FCmpPred.OLT, arg(DOUBLE), arg(DOUBLE)).type is I1
        with pytest.raises(TypeError):
            FCmp(FCmpPred.OLT, arg(I32), arg(I32))


class TestSelect:
    def test_select(self):
        s = Select(arg(I1, "c"), arg(I32, "t"), arg(I32, "f"))
        assert s.type is I32
        assert s.condition.name == "c"

    def test_cond_must_be_i1(self):
        with pytest.raises(TypeError):
            Select(arg(I32), arg(I32), arg(I32))

    def test_arm_mismatch(self):
        with pytest.raises(TypeError):
            Select(arg(I1), arg(I32), arg(I64))


class TestCasts:
    def test_valid_casts(self):
        assert Cast(Opcode.ZEXT, arg(I8), I32).type is I32
        assert Cast(Opcode.SEXT, arg(I16), I64).type is I64
        assert Cast(Opcode.TRUNC, arg(I64), I8).type is I8
        assert Cast(Opcode.SITOFP, arg(I32), DOUBLE).type is DOUBLE
        assert Cast(Opcode.FPTOSI, arg(DOUBLE), I32).type is I32
        assert Cast(Opcode.FPEXT, arg(FLOAT), DOUBLE).type is DOUBLE
        assert Cast(Opcode.BITCAST, arg(PointerType(I8)), PointerType(I32)).type is PointerType(I32)

    def test_invalid_casts(self):
        with pytest.raises(TypeError):
            Cast(Opcode.ZEXT, arg(I32), I8)  # narrowing zext
        with pytest.raises(TypeError):
            Cast(Opcode.TRUNC, arg(I8), I32)  # widening trunc
        with pytest.raises(TypeError):
            Cast(Opcode.BITCAST, arg(I32), I64)  # size-changing bitcast


class TestMemory:
    def test_alloca_yields_pointer(self):
        a = Alloca(I32)
        assert a.type is PointerType(I32)
        assert a.allocated_type is I32

    def test_load_store_round_types(self):
        ptr = Alloca(I32)
        load = Load(ptr)
        assert load.type is I32
        store = Store(arg(I32), ptr)
        assert store.type.is_void

    def test_store_type_mismatch(self):
        with pytest.raises(TypeError):
            Store(arg(I64), Alloca(I32))

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            Load(arg(I32))

    def test_gep_through_array(self):
        ptr = Alloca(ArrayType(I32, 4))
        gep = GetElementPtr(ptr, [ConstantInt(I64, 0), ConstantInt(I64, 2)])
        assert gep.type is PointerType(I32)

    def test_gep_through_struct(self):
        st = StructType([I32, DOUBLE])
        ptr = Alloca(st)
        gep = GetElementPtr(ptr, [ConstantInt(I64, 0), ConstantInt(I32, 1)])
        assert gep.type is PointerType(DOUBLE)

    def test_gep_struct_needs_constant(self):
        ptr = Alloca(StructType([I32, DOUBLE]))
        with pytest.raises(TypeError):
            GetElementPtr(ptr, [ConstantInt(I64, 0), arg(I32)])

    def test_gep_struct_index_range(self):
        ptr = Alloca(StructType([I32]))
        with pytest.raises(TypeError):
            GetElementPtr(ptr, [ConstantInt(I64, 0), ConstantInt(I32, 5)])


class TestCalls:
    def _callee(self, module):
        return Function(FunctionType(I32, [I32, DOUBLE]), "callee", parent=module)

    def test_call_types(self, module):
        callee = self._callee(module)
        call = Call(callee, [arg(I32), arg(DOUBLE)])
        assert call.type is I32
        assert call.callee is callee
        assert len(call.args) == 2

    def test_call_arity_checked(self, module):
        callee = self._callee(module)
        with pytest.raises(TypeError):
            Call(callee, [arg(I32)])

    def test_call_arg_type_checked(self, module):
        callee = self._callee(module)
        with pytest.raises(TypeError):
            Call(callee, [arg(I32), arg(I32, "b", 1)])

    def test_invoke_successors(self, module):
        callee = self._callee(module)
        func = Function(FunctionType(I32, []), "f", parent=module)
        normal = BasicBlock("normal", func)
        unwind = BasicBlock("unwind", func)
        inv = Invoke(callee, [arg(I32), arg(DOUBLE)], normal, unwind)
        assert inv.is_terminator
        assert inv.successors() == [normal, unwind]
        assert inv.normal_dest is normal
        assert inv.unwind_dest is unwind


class TestControlFlow:
    def test_unconditional_branch(self, module):
        func = Function(FunctionType(I32, []), "f", parent=module)
        target = BasicBlock("t", func)
        br = Branch(target)
        assert not br.is_conditional
        assert br.successors() == [target]

    def test_conditional_branch(self, module):
        func = Function(FunctionType(I32, []), "f", parent=module)
        t, f = BasicBlock("t", func), BasicBlock("f", func)
        br = Branch(arg(I1, "c"), t, f)
        assert br.is_conditional
        assert br.successors() == [t, f]
        with pytest.raises(TypeError):
            Branch(arg(I32), t, f)

    def test_switch(self, module):
        func = Function(FunctionType(I32, []), "f", parent=module)
        d, c1 = BasicBlock("d", func), BasicBlock("c1", func)
        sw = Switch(arg(I32, "v"), d)
        sw.add_case(ConstantInt(I32, 1), c1)
        assert sw.successors() == [d, c1]
        assert sw.cases[0][0].value == 1
        with pytest.raises(TypeError):
            sw.add_case(ConstantInt(I64, 2), c1)

    def test_ret(self):
        assert Ret(None).value is None
        assert Ret(arg(I32)).value is not None
        assert Ret(None).successors() == []

    def test_unreachable(self):
        assert Unreachable().is_terminator


class TestPhi:
    def test_incoming_management(self, module):
        func = Function(FunctionType(I32, []), "f", parent=module)
        b1, b2 = BasicBlock("b1", func), BasicBlock("b2", func)
        phi = Phi(I32)
        phi.add_incoming(ConstantInt(I32, 1), b1)
        phi.add_incoming(ConstantInt(I32, 2), b2)
        assert len(phi.incoming) == 2
        assert phi.incoming_for(b1).value == 1
        phi.remove_incoming(b1)
        assert phi.incoming_for(b1) is None
        assert len(phi.incoming) == 1

    def test_incoming_type_checked(self, module):
        func = Function(FunctionType(I32, []), "f", parent=module)
        b1 = BasicBlock("b1", func)
        phi = Phi(I32)
        with pytest.raises(TypeError):
            phi.add_incoming(ConstantInt(I64, 1), b1)

    def test_set_incoming_block(self, module):
        func = Function(FunctionType(I32, []), "f", parent=module)
        b1, b2 = BasicBlock("b1", func), BasicBlock("b2", func)
        phi = Phi(I32)
        phi.add_incoming(UndefValue(I32), b1)
        phi.set_incoming_block(b1, b2)
        assert phi.incoming_for(b2) is not None

    def test_remove_missing_incoming_raises(self, module):
        func = Function(FunctionType(I32, []), "f", parent=module)
        b1 = BasicBlock("b1", func)
        phi = Phi(I32)
        with pytest.raises(ValueError):
            phi.remove_incoming(b1)
