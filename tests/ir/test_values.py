"""Tests for values, constants and use-list bookkeeping."""

import pytest

from repro.ir import (
    Argument,
    BasicBlock,
    BinaryOp,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    DOUBLE,
    Function,
    FunctionType,
    I1,
    I8,
    I32,
    IRBuilder,
    Module,
    Opcode,
    PointerType,
    UndefValue,
)


class TestConstants:
    def test_int_wraps_to_width(self):
        c = ConstantInt(I8, 300)
        assert c.value == 300 & 0xFF

    def test_signed_value(self):
        assert ConstantInt(I8, 0xFF).signed_value == -1
        assert ConstantInt(I8, 127).signed_value == 127
        assert ConstantInt(I1, 1).signed_value == 1

    def test_int_requires_int_type(self):
        with pytest.raises(TypeError):
            ConstantInt(DOUBLE, 3)

    def test_float_requires_float_type(self):
        with pytest.raises(TypeError):
            ConstantFloat(I32, 1.0)

    def test_null_requires_pointer(self):
        with pytest.raises(TypeError):
            ConstantNull(I32)
        assert ConstantNull(PointerType(I32)).ref() == "null"

    def test_undef_ref(self):
        assert UndefValue(I32).ref() == "undef"

    def test_refs(self):
        assert ConstantInt(I32, -7).ref() == "-7"
        assert ConstantFloat(DOUBLE, 1.5).ref() == "1.5"


class TestUseLists:
    def _setup(self):
        a = Argument(I32, "a", 0)
        b = Argument(I32, "b", 1)
        inst = BinaryOp(Opcode.ADD, a, b)
        return a, b, inst

    def test_uses_tracked(self):
        a, b, inst = self._setup()
        assert a.num_uses == 1
        assert inst in a.users
        assert list(a.uses()) == [(inst, 0)]
        assert list(b.uses()) == [(inst, 1)]

    def test_same_value_twice(self):
        a = Argument(I32, "a", 0)
        inst = BinaryOp(Opcode.ADD, a, a)
        assert a.num_uses == 2
        assert sorted(idx for _u, idx in a.uses()) == [0, 1]

    def test_set_operand_moves_use(self):
        a, b, inst = self._setup()
        c = Argument(I32, "c", 2)
        inst.set_operand(0, c)
        assert a.num_uses == 0
        assert c.num_uses == 1
        assert inst.operand(0) is c

    def test_replace_all_uses_with(self):
        a, b, inst = self._setup()
        inst2 = BinaryOp(Opcode.MUL, a, a)
        c = Argument(I32, "c", 2)
        a.replace_all_uses_with(c)
        assert a.num_uses == 0
        assert c.num_uses == 3
        assert inst.operand(0) is c
        assert inst2.operand(0) is c and inst2.operand(1) is c

    def test_rauw_self_is_noop(self):
        a, b, inst = self._setup()
        a.replace_all_uses_with(a)
        assert a.num_uses == 1

    def test_drop_all_references(self):
        a, b, inst = self._setup()
        inst.drop_all_references()
        assert a.num_uses == 0
        assert b.num_uses == 0
        assert inst.num_operands == 0


class TestEraseInstruction:
    def test_erase_from_parent_cleans_up(self, module):
        func = Function(FunctionType(I32, [I32]), "f", parent=module)
        block = BasicBlock("entry", func)
        b = IRBuilder(block)
        v = b.add(func.args[0], b.const_int(I32, 1))
        w = b.mul(v, b.const_int(I32, 2))
        b.ret(w)
        assert func.args[0].num_uses == 1
        w.replace_all_uses_with(v)
        w.erase_from_parent()
        assert len(block) == 2
        assert v.num_uses == 1  # the ret
