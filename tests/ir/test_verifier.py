"""Tests for the IR verifier's error classes."""

import pytest

from repro.ir import (
    BasicBlock,
    BinaryOp,
    Branch,
    ConstantInt,
    Function,
    FunctionType,
    I32,
    IRBuilder,
    Module,
    Opcode,
    Phi,
    Ret,
    VerificationError,
    verify_function,
    verify_module,
)
from tests.conftest import build_diamond, build_loop, build_straightline


def expect_error(func, fragment):
    with pytest.raises(VerificationError) as exc:
        verify_function(func)
    assert fragment in str(exc.value)


class TestStructural:
    def test_clean_functions_pass(self, module):
        build_straightline(module)
        build_diamond(module)
        build_loop(module)
        verify_module(module)

    def test_declarations_pass(self, module):
        Function(FunctionType(I32, []), "d", parent=module)
        verify_module(module)

    def test_empty_block(self, module):
        func = build_straightline(module)
        BasicBlock("dangling", func)
        expect_error(func, "is empty")

    def test_missing_terminator(self, module):
        func = Function(FunctionType(I32, [I32]), "f", parent=module)
        block = BasicBlock("entry", func)
        block.append(BinaryOp(Opcode.ADD, func.args[0], ConstantInt(I32, 1)))
        expect_error(func, "does not end in a terminator")

    def test_phi_after_non_phi(self, module):
        func = build_straightline(module)
        entry = func.entry
        phi = Phi(I32)
        entry.insert(2, phi)  # after two binary ops
        expect_error(func, "phi after non-phi")

    def test_ret_type_mismatch(self, module):
        func = Function(FunctionType(I32, [I32]), "f", parent=module)
        block = BasicBlock("entry", func)
        block.append(Ret(None))
        expect_error(func, "ret void in non-void function")


class TestPhiConsistency:
    def test_phi_missing_pred(self, module):
        func = build_diamond(module)
        join = func.blocks[-1]
        phi = join.phis()[0]
        phi.remove_incoming(func.blocks[1])  # drop the 'big' edge
        expect_error(func, "incoming blocks do not match")

    def test_phi_extra_pred(self, module):
        func = build_diamond(module)
        join = func.blocks[-1]
        phi = join.phis()[0]
        phi.add_incoming(ConstantInt(I32, 9), join)  # join is not a pred
        expect_error(func, "incoming blocks do not match")


class TestDominance:
    def test_use_before_def_across_blocks(self, module):
        func = build_diamond(module)
        entry, big, small, join = func.blocks
        # Make 'small' use the value defined in 'big'.
        big_val = big.instructions[0]
        small_sub = small.instructions[0]
        small_sub.set_operand(0, big_val)
        expect_error(func, "not dominated")

    def test_use_before_def_same_block(self, module):
        func = Function(FunctionType(I32, [I32]), "f", parent=module)
        block = BasicBlock("entry", func)
        b = IRBuilder(block)
        v1 = b.add(func.args[0], b.const_int(I32, 1))
        v2 = b.add(v1, b.const_int(I32, 2))
        b.ret(v2)
        # Make the earlier instruction depend on the later one.
        v1.set_operand(0, v2)
        expect_error(func, "not dominated")

    def test_loop_phi_back_edge_is_legal(self, module):
        func = build_loop(module)
        verify_function(func)

    def test_entry_with_predecessor(self, module):
        func = build_straightline(module)
        entry = func.entry
        other = BasicBlock("pre", func)
        other.append(Branch(entry))
        expect_error(func, "entry block has predecessors")


class TestCrossFunction:
    def test_foreign_value_rejected(self, module):
        f1 = build_straightline(module, "f1")
        f2 = build_straightline(module, "f2")
        foreign = f1.entry.instructions[0]
        f2.entry.instructions[1].set_operand(0, foreign)
        expect_error(f2, "defined outside the function")

    def test_cross_module_callee_rejected(self, module):
        """Function operands must live in the caller's own module — they
        used to be waved through unconditionally."""
        from repro.ir import Call, IRBuilder

        other = Module("other")
        foreign = Function(FunctionType(I32, [I32]), "foreign", parent=other)
        func = Function(FunctionType(I32, [I32]), "f", parent=module)
        block = BasicBlock("entry", func)
        b = IRBuilder(block)
        call = b.call(foreign, [func.args[0]])
        b.ret(call)
        expect_error(func, "from another module")

    def test_same_module_callee_accepted(self, module):
        from repro.ir import IRBuilder

        callee = Function(FunctionType(I32, [I32]), "callee", parent=module)
        func = Function(FunctionType(I32, [I32]), "f", parent=module)
        block = BasicBlock("entry", func)
        b = IRBuilder(block)
        call = b.call(callee, [func.args[0]])
        b.ret(call)
        verify_function(func)


class TestStructuredDiagnostics:
    def test_error_carries_diagnostics(self, module):
        from repro.diagnostics import Diagnostic, Severity

        func = build_straightline(module)
        BasicBlock("dangling", func)
        with pytest.raises(VerificationError) as exc:
            verify_function(func)
        diags = exc.value.diagnostics
        assert diags and all(isinstance(d, Diagnostic) for d in diags)
        assert diags[0].checker == "verifier"
        assert diags[0].severity is Severity.ERROR
        assert diags[0].function == func.name
        assert diags[0].block == "dangling"
        # Back-compat surfaces: .errors strings and the joined message.
        assert exc.value.errors == [str(d) for d in diags]
        assert str(exc.value) == "\n".join(str(d) for d in diags)

    def test_plain_string_errors_still_accepted(self):
        exc = VerificationError(["something is broken"])
        assert exc.errors == ["error[verifier]: something is broken"]
        assert exc.diagnostics[0].message == "something is broken"

    def test_dominance_diagnostics_come_from_checker(self, module):
        func = build_diamond(module)
        big, small = func.blocks[1], func.blocks[2]
        small.instructions[0].set_operand(0, big.instructions[0])
        with pytest.raises(VerificationError) as exc:
            verify_function(func)
        assert exc.value.diagnostics[0].checker == "ssa-dominance"

    def test_module_verify_aggregates(self, module):
        f1 = build_straightline(module, "f1")
        BasicBlock("bad", f1)
        f2 = build_straightline(module, "f2")
        BasicBlock("bad2", f2)
        with pytest.raises(VerificationError) as exc:
            verify_module(module)
        assert len(exc.value.errors) >= 2
