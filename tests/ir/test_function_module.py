"""Tests for functions, modules and LTO-style linking."""

import pytest

from repro.ir import (
    BasicBlock,
    Call,
    ConstantInt,
    Function,
    FunctionType,
    I32,
    IRBuilder,
    Module,
    Ret,
    link_modules,
)
from tests.conftest import build_diamond, build_straightline


class TestFunction:
    def test_arguments(self, module):
        func = Function(FunctionType(I32, [I32, I32]), "f", parent=module)
        assert len(func.args) == 2
        assert func.args[0].type is I32
        assert func.args[1].index == 1

    def test_declaration(self, module):
        func = Function(FunctionType(I32, [I32]), "d", parent=module)
        assert func.is_declaration
        with pytest.raises(ValueError):
            func.entry

    def test_num_instructions(self, module):
        func = build_diamond(module)
        assert func.num_instructions == sum(len(b) for b in func.blocks)

    def test_uniquify_names(self, module):
        func = Function(FunctionType(I32, [I32]), "f", parent=module)
        block = BasicBlock("entry", func)
        b = IRBuilder(block)
        v1 = b.add(func.args[0], b.const_int(I32, 1))
        v2 = b.add(v1, b.const_int(I32, 1))
        v1.name = "x"
        v2.name = "x"
        b.ret(v2)
        func.uniquify_names()
        assert v1.name != v2.name

    def test_callers_and_address_taken(self, module):
        callee = build_straightline(module, "callee")
        caller = Function(FunctionType(I32, [I32]), "caller", parent=module)
        b = IRBuilder(BasicBlock("entry", caller))
        r = b.call(callee, [caller.args[0]])
        b.ret(r)
        assert len(callee.callers()) == 1
        assert not callee.address_taken

    def test_drop_body(self, module):
        func = build_diamond(module)
        func.drop_body()
        assert func.is_declaration
        assert not func.blocks

    def test_erase_from_parent(self, module):
        func = build_straightline(module)
        func.erase_from_parent()
        assert module.get_function("line") is None


class TestModule:
    def test_add_and_lookup(self, module):
        func = build_straightline(module)
        assert module.get_function("line") is func
        assert "line" in module
        assert len(module) == 1

    def test_duplicate_names_rejected(self, module):
        build_straightline(module, "dup")
        with pytest.raises(ValueError):
            Function(FunctionType(I32, []), "dup", parent=module)

    def test_unique_name(self, module):
        build_straightline(module, "f")
        assert module.unique_name("f") == "f.1"
        assert module.unique_name("g") == "g"

    def test_declare_function_idempotent(self, module):
        ft = FunctionType(I32, [I32])
        d1 = module.declare_function(ft, "ext")
        d2 = module.declare_function(ft, "ext")
        assert d1 is d2
        with pytest.raises(ValueError):
            module.declare_function(FunctionType(I32, []), "ext")

    def test_defined_functions_excludes_declarations(self, module):
        build_straightline(module, "f")
        module.declare_function(FunctionType(I32, []), "ext")
        names = [f.name for f in module.defined_functions()]
        assert names == ["f"]


class TestLinking:
    def test_declaration_resolved_by_definition(self):
        m1 = Module("a")
        decl = m1.declare_function(FunctionType(I32, [I32]), "shared")
        caller = Function(FunctionType(I32, [I32]), "caller", parent=m1)
        b = IRBuilder(BasicBlock("entry", caller))
        b.ret(b.call(decl, [caller.args[0]]))

        m2 = Module("b")
        build_straightline(m2, "shared")

        linked = link_modules([m1, m2], "out")
        shared = linked.get_function("shared")
        assert shared is not None and not shared.is_declaration
        # The caller's call site must point at the definition now.
        call = next(
            i for i in linked.get_function("caller").instructions() if isinstance(i, Call)
        )
        assert call.callee is shared

    def test_duplicate_definitions_renamed(self):
        m1, m2 = Module("a"), Module("b")
        build_straightline(m1, "f")
        build_straightline(m2, "f")
        linked = link_modules([m1, m2])
        names = sorted(f.name for f in linked.functions)
        assert names == ["f", "f.1"]
