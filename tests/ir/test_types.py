"""Tests for the interned type system."""

import pytest

from repro.ir import (
    ArrayType,
    DOUBLE,
    FLOAT,
    FunctionType,
    I1,
    I8,
    I32,
    I64,
    IntType,
    LABEL,
    PointerType,
    StructType,
    VOID,
)


class TestInterning:
    def test_int_types_are_interned(self):
        assert IntType(32) is IntType(32)
        assert IntType(32) is I32
        assert IntType(17) is IntType(17)

    def test_distinct_widths_are_distinct(self):
        assert IntType(32) is not IntType(64)

    def test_pointer_interning(self):
        assert PointerType(I32) is PointerType(I32)
        assert PointerType(I32) is not PointerType(I64)

    def test_array_interning(self):
        from repro.ir import I16

        assert ArrayType(I8, 4) is ArrayType(I8, 4)
        assert ArrayType(I8, 4) is not ArrayType(I8, 5)
        assert ArrayType(I8, 4) is not ArrayType(I16, 4)

    def test_struct_interning(self):
        assert StructType([I32, DOUBLE]) is StructType([I32, DOUBLE])
        assert StructType([I32]) is not StructType([I64])

    def test_function_type_interning(self):
        assert FunctionType(I32, [I64]) is FunctionType(I32, [I64])
        assert FunctionType(I32, [I64]) is not FunctionType(I32, [I32])

    def test_nested_composite(self):
        t1 = PointerType(ArrayType(StructType([I8, I8]), 3))
        t2 = PointerType(ArrayType(StructType([I8, I8]), 3))
        assert t1 is t2


class TestTypeIds:
    def test_type_ids_are_nonzero(self):
        for t in (VOID, LABEL, I1, I32, DOUBLE, PointerType(I32)):
            assert t.type_id > 0

    def test_type_ids_distinct_for_common_types(self):
        ids = {t.type_id for t in (I1, I8, I32, I64, FLOAT, DOUBLE, VOID)}
        assert len(ids) == 7

    def test_type_id_is_stable(self):
        # Derived from the canonical spelling, so re-derivable.
        from repro.ir.types import _fnv1a_64

        expected = (_fnv1a_64(b"i32") & 0x7FFFFFFF) or 1
        assert I32.type_id == expected


class TestProperties:
    def test_classification(self):
        assert I32.is_int and not I32.is_float
        assert DOUBLE.is_float and not DOUBLE.is_int
        assert PointerType(I32).is_pointer
        assert VOID.is_void
        assert LABEL.is_label
        assert ArrayType(I32, 2).is_aggregate
        assert StructType([I32]).is_aggregate

    def test_first_class(self):
        assert I32.is_first_class
        assert not VOID.is_first_class
        assert not LABEL.is_first_class
        assert not FunctionType(VOID, []).is_first_class

    def test_int_bounds(self):
        assert I8.mask == 0xFF
        assert I8.signed_min == -128
        assert I8.signed_max == 127

    def test_spelling(self):
        assert str(I32) == "i32"
        assert str(PointerType(I32)) == "i32*"
        assert str(ArrayType(I8, 4)) == "[4 x i8]"
        assert str(StructType([I32, DOUBLE])) == "{i32, double}"
        assert str(FunctionType(I32, [I64, DOUBLE])) == "i32 (i64, double)"


class TestInvalidTypes:
    def test_bad_int_width(self):
        with pytest.raises(ValueError):
            IntType(0)

    def test_bad_float_width(self):
        from repro.ir import FloatType

        with pytest.raises(ValueError):
            FloatType(16)

    def test_pointer_to_void(self):
        with pytest.raises(ValueError):
            PointerType(VOID)

    def test_array_of_void(self):
        with pytest.raises(ValueError):
            ArrayType(VOID, 3)

    def test_negative_array(self):
        with pytest.raises(ValueError):
            ArrayType(I32, -1)

    def test_function_returning_label(self):
        with pytest.raises(ValueError):
            FunctionType(LABEL, [])
