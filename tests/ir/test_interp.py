"""Interpreter semantics tests."""

import pytest

from repro.ir import (
    Interpreter,
    InterpError,
    Trap,
    parse_module,
)
from tests.conftest import build_diamond, build_loop, build_straightline


def run_text(text, name, args, **kw):
    module = parse_module(text)
    return Interpreter(**kw).run(module.get_function(name), args).value


class TestArithmetic:
    def test_wrapping_add(self):
        text = "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 200\n  ret i8 %r\n}"
        assert run_text(text, "f", [100]) == (100 + 200) & 0xFF

    def test_signed_division_rounds_to_zero(self):
        text = "define i32 @f(i32 %x) {\nentry:\n  %r = sdiv i32 %x, 2\n  ret i32 %r\n}"
        assert run_text(text, "f", [7]) == 3
        assert run_text(text, "f", [-7 & 0xFFFFFFFF]) == -3 & 0xFFFFFFFF

    def test_srem_sign(self):
        text = "define i32 @f(i32 %x) {\nentry:\n  %r = srem i32 %x, 3\n  ret i32 %r\n}"
        assert run_text(text, "f", [-7 & 0xFFFFFFFF]) == -1 & 0xFFFFFFFF

    def test_division_by_zero_traps(self):
        text = "define i32 @f(i32 %x) {\nentry:\n  %r = sdiv i32 %x, 0\n  ret i32 %r\n}"
        with pytest.raises(Trap):
            run_text(text, "f", [1])

    def test_shifts(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n  %a = shl i32 %x, 4\n"
            "  %b = lshr i32 %a, 2\n  %c = ashr i32 %b, 1\n  ret i32 %c\n}"
        )
        assert run_text(text, "f", [3]) == ((3 << 4) >> 2) >> 1

    def test_ashr_sign_extends(self):
        text = "define i8 @f(i8 %x) {\nentry:\n  %r = ashr i8 %x, 2\n  ret i8 %r\n}"
        assert run_text(text, "f", [0x80]) == (-128 >> 2) & 0xFF

    def test_float_ops(self):
        text = (
            "define double @f(double %x) {\nentry:\n  %a = fmul double %x, 2.0\n"
            "  %b = fadd double %a, 0.5\n  ret double %b\n}"
        )
        assert run_text(text, "f", [1.25]) == 3.0

    def test_icmp_signed_vs_unsigned(self):
        text = (
            "define i32 @f(i8 %x) {\nentry:\n  %s = icmp slt i8 %x, 0\n"
            "  %u = icmp ult i8 %x, 10\n  %se = zext i1 %s to i32\n"
            "  %ue = zext i1 %u to i32\n  %r = add i32 %se, %ue\n  ret i32 %r\n}"
        )
        assert run_text(text, "f", [0xF0]) == 1  # negative signed, large unsigned


class TestCastsAndSelect:
    def test_sext_trunc(self):
        text = (
            "define i64 @f(i8 %x) {\nentry:\n  %w = sext i8 %x to i64\n  ret i64 %w\n}"
        )
        assert run_text(text, "f", [0xFF]) == -1 & 0xFFFFFFFFFFFFFFFF

    def test_sitofp_fptosi(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n  %d = sitofp i32 %x to double\n"
            "  %h = fmul double %d, 0.5\n  %r = fptosi double %h to i32\n  ret i32 %r\n}"
        )
        assert run_text(text, "f", [9]) == 4

    def test_select(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n  %c = icmp sgt i32 %x, 0\n"
            "  %r = select i1 %c, i32 1, i32 -1\n  ret i32 %r\n}"
        )
        assert run_text(text, "f", [5]) == 1
        assert run_text(text, "f", [-5 & 0xFFFFFFFF]) == -1 & 0xFFFFFFFF


class TestControlFlow:
    def test_diamond(self, module):
        func = build_diamond(module)
        assert Interpreter().run(func, [7, 8]).value == 30
        assert Interpreter().run(func, [1, 2]).value == 2

    def test_loop(self, module):
        func = build_loop(module, trip=5)
        # acc = x + 0+1+2+3+4
        assert Interpreter().run(func, [10]).value == 20

    def test_switch(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n"
            "  switch i32 %x, label %other [i32 1 label %one, i32 2 label %two]\n"
            "one:\n  ret i32 100\ntwo:\n  ret i32 200\nother:\n  ret i32 0\n}"
        )
        assert run_text(text, "f", [1]) == 100
        assert run_text(text, "f", [2]) == 200
        assert run_text(text, "f", [9]) == 0

    def test_unreachable_traps(self):
        text = "define i32 @f() {\nentry:\n  unreachable\n}"
        with pytest.raises(Trap):
            run_text(text, "f", [])

    def test_fuel_limit(self, module):
        func = build_loop(module, trip=1000)
        with pytest.raises(Trap):
            Interpreter(fuel=100).run(func, [0])

    def test_instruction_count(self, module):
        func = build_straightline(module)
        result = Interpreter().run(func, [1])
        assert result.instructions_executed == 4  # three ops + ret


class TestMemory:
    def test_alloca_store_load(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n  %p = alloca i32\n"
            "  store i32 %x, i32* %p\n  %v = load i32, i32* %p\n  ret i32 %v\n}"
        )
        assert run_text(text, "f", [42]) == 42

    def test_array_gep(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n  %a = alloca [4 x i32]\n"
            "  %p0 = gep [4 x i32]* %a, i64 0, i64 0\n"
            "  %p2 = gep [4 x i32]* %a, i64 0, i64 2\n"
            "  store i32 %x, i32* %p2\n  store i32 7, i32* %p0\n"
            "  %v = load i32, i32* %p2\n  ret i32 %v\n}"
        )
        assert run_text(text, "f", [13]) == 13

    def test_uninitialized_load_is_zero(self):
        text = (
            "define i32 @f() {\nentry:\n  %p = alloca i32\n"
            "  %v = load i32, i32* %p\n  ret i32 %v\n}"
        )
        assert run_text(text, "f", []) == 0

    def test_struct_gep_distinct_fields(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n  %s = alloca {i32, i32}\n"
            "  %p0 = gep {i32, i32}* %s, i64 0, i32 0\n"
            "  %p1 = gep {i32, i32}* %s, i64 0, i32 1\n"
            "  store i32 %x, i32* %p0\n  store i32 99, i32* %p1\n"
            "  %v = load i32, i32* %p0\n  ret i32 %v\n}"
        )
        assert run_text(text, "f", [5]) == 5


class TestCalls:
    def test_direct_call(self):
        text = (
            "define i32 @inc(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}\n"
            "define i32 @f(i32 %x) {\nentry:\n  %a = call i32 @inc(i32 %x)\n"
            "  %b = call i32 @inc(i32 %a)\n  ret i32 %b\n}"
        )
        assert run_text(text, "f", [1]) == 3

    def test_invoke_takes_normal_edge(self):
        text = (
            "define i32 @id(i32 %x) {\nentry:\n  ret i32 %x\n}\n"
            "define i32 @f(i32 %x) {\nentry:\n"
            "  %r = invoke i32 @id(i32 %x) to label %ok unwind label %bad\n"
            "ok:\n  ret i32 %r\nbad:\n  unreachable\n}"
        )
        assert run_text(text, "f", [11]) == 11

    def test_external_via_registry(self):
        text = (
            "declare i32 @ext(i32)\n"
            "define i32 @f(i32 %x) {\nentry:\n  %r = call i32 @ext(i32 %x)\n  ret i32 %r\n}"
        )
        module = parse_module(text)
        interp = Interpreter(externals={"ext": lambda x: x * 10})
        assert interp.run(module.get_function("f"), [4]).value == 40

    def test_unresolved_external(self):
        text = (
            "declare i32 @ext(i32)\n"
            "define i32 @f(i32 %x) {\nentry:\n  %r = call i32 @ext(i32 %x)\n  ret i32 %r\n}"
        )
        module = parse_module(text)
        with pytest.raises(InterpError):
            Interpreter().run(module.get_function("f"), [4])

    def test_recursion_depth_limit(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n  %r = call i32 @f(i32 %x)\n  ret i32 %r\n}"
        )
        module = parse_module(text)
        with pytest.raises(Trap):
            Interpreter(max_call_depth=10).run(module.get_function("f"), [1])
