"""Round-trip and error tests for the textual IR."""

import pytest

from repro.ir import (
    ParseError,
    parse_function,
    parse_module,
    print_function,
    print_module,
    verify_module,
)
from tests.conftest import build_diamond, build_loop, build_straightline


def roundtrip(module):
    text = print_module(module)
    reparsed = parse_module(text)
    assert print_module(reparsed) == text
    verify_module(reparsed)
    return reparsed


class TestRoundTrip:
    def test_straightline(self, module):
        build_straightline(module)
        roundtrip(module)

    def test_diamond(self, module):
        build_diamond(module)
        roundtrip(module)

    def test_loop_with_back_edge_phis(self, module):
        build_loop(module)
        roundtrip(module)

    def test_calls_between_functions(self, module):
        text = """
define i32 @callee(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}

define i32 @caller(i32 %x) {
entry:
  %r = call i32 @callee(i32 %x)
  ret i32 %r
}
"""
        m = parse_module(text)
        verify_module(m)
        roundtrip(m)

    def test_forward_function_reference(self):
        text = """
define i32 @caller(i32 %x) {
entry:
  %r = call i32 @callee(i32 %x)
  ret i32 %r
}

define i32 @callee(i32 %x) {
entry:
  ret i32 %x
}
"""
        m = parse_module(text)
        verify_module(m)

    def test_all_shapes(self):
        text = """
define void @ext(i32 %x) {
entry:
  ret void
}

define i32 @kitchen(i32 %x, double %d, i1 %flag) {
entry:
  %a = alloca [4 x i32]
  %p = gep [4 x i32]* %a, i64 0, i64 2
  store i32 %x, i32* %p
  %l = load i32, i32* %p
  %wide = sext i32 %l to i64
  %narrow = trunc i64 %wide to i16
  %back = zext i16 %narrow to i32
  %f = sitofp i32 %back to double
  %g = fadd double %f, %d
  %c = fcmp olt double %g, 4.5
  %s = select i1 %c, i32 %back, i32 %x
  call void @ext(i32 %s)
  switch i32 %s, label %other [i32 1 label %one, i32 2 label %two]
one:
  ret i32 1
two:
  ret i32 2
other:
  %cmp = icmp slt i32 %s, 0
  br i1 %cmp, label %one, label %two
}
"""
        m = parse_module(text)
        verify_module(m)
        roundtrip(m)

    def test_invoke(self):
        text = """
define i32 @callee(i32 %x) {
entry:
  ret i32 %x
}

define i32 @f(i32 %x) {
entry:
  %r = invoke i32 @callee(i32 %x) to label %ok unwind label %bad
ok:
  ret i32 %r
bad:
  unreachable
}
"""
        m = parse_module(text)
        verify_module(m)
        roundtrip(m)


class TestParseErrors:
    def test_unknown_instruction(self):
        with pytest.raises(ParseError):
            parse_module("define i32 @f() {\nentry:\n  %x = frob i32 1, 2\n  ret i32 %x\n}")

    def test_undefined_value(self):
        with pytest.raises(ParseError):
            parse_module("define i32 @f() {\nentry:\n  ret i32 %nope\n}")

    def test_undefined_label(self):
        with pytest.raises(ParseError):
            parse_module("define i32 @f() {\nentry:\n  br label %nowhere\n}")

    def test_redefinition(self):
        with pytest.raises(ParseError):
            parse_module(
                "define i32 @f(i32 %x) {\nentry:\n  %v = add i32 %x, 1\n  %v = add i32 %x, 2\n  ret i32 %v\n}"
            )

    def test_unknown_callee(self):
        with pytest.raises(ParseError):
            parse_module(
                "define i32 @f(i32 %x) {\nentry:\n  %r = call i32 @missing(i32 %x)\n  ret i32 %r\n}"
            )

    def test_type_gibberish(self):
        with pytest.raises(ParseError):
            parse_module("define wibble @f() {\nentry:\n  ret void\n}")


class TestParseFunction:
    def test_into_existing_module(self, module):
        func = parse_function(
            "define i32 @g(i32 %x) {\nentry:\n  ret i32 %x\n}", module
        )
        assert module.get_function("g") is func

    def test_requires_definition(self, module):
        with pytest.raises(ParseError):
            parse_function("declare i32 @g(i32)", module)


class TestPrinter:
    def test_declaration_printing(self, module):
        from repro.ir import FunctionType, I32, Function

        Function(FunctionType(I32, [I32]), "ext", parent=module, internal=False)
        text = print_module(module)
        assert "declare i32 @ext" in text

    def test_function_header(self, module):
        func = build_straightline(module)
        text = print_function(func)
        assert text.startswith("define i32 @line(i32 %arg0)")
