"""Edge-case coverage across the IR stack."""

import pytest

from repro.ir import (
    BasicBlock,
    ConstantInt,
    FCmpPred,
    Function,
    FunctionType,
    I1,
    I8,
    I32,
    IRBuilder,
    Interpreter,
    Module,
    Switch,
    parse_module,
    print_module,
    verify_module,
)


class TestSwitchEdges:
    def test_switch_with_no_cases(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n"
            "  switch i32 %x, label %d []\nd:\n  ret i32 7\n}"
        )
        module = parse_module(text)
        verify_module(module)
        assert Interpreter().run(module.get_function("f"), [3]).value == 7
        # Round-trips.
        assert "switch" in print_module(parse_module(print_module(module)))

    def test_switch_case_order_preserved(self):
        text = (
            "define i32 @f(i32 %x) {\nentry:\n"
            "  switch i32 %x, label %d [i32 5 label %a, i32 1 label %b]\n"
            "a:\n  ret i32 50\nb:\n  ret i32 10\nd:\n  ret i32 0\n}"
        )
        module = parse_module(text)
        func = module.get_function("f")
        sw = func.entry.terminator
        assert isinstance(sw, Switch)
        assert [c.value for c, _b in sw.cases] == [5, 1]


class TestFloatEdges:
    def test_nan_comparisons(self):
        text = (
            "define i32 @f(double %x) {\nentry:\n"
            "  %z = fdiv double 0.0, 0.0\n"
            "  %o = fcmp oeq double %z, %z\n"
            "  %u = fcmp une double %z, %z\n"
            "  %oe = zext i1 %o to i32\n  %ue = zext i1 %u to i32\n"
            "  %r = add i32 %oe, %ue\n  ret i32 %r\n}"
        )
        module = parse_module(text)
        # NaN: ordered-eq false, unordered-ne true → 0 + 1.
        assert Interpreter().run(module.get_function("f"), [0.0]).value == 1

    def test_fptrunc_rounds_to_f32(self):
        text = (
            "define float @f(double %x) {\nentry:\n"
            "  %t = fptrunc double %x to float\n  ret float %t\n}"
        )
        module = parse_module(text)
        import struct

        value = 1.1
        expected = struct.unpack("f", struct.pack("f", value))[0]
        assert Interpreter().run(module.get_function("f"), [value]).value == expected


class TestTinyWidths:
    def test_i1_arithmetic(self):
        text = (
            "define i1 @f(i1 %a, i1 %b) {\nentry:\n"
            "  %x = xor i1 %a, %b\n  ret i1 %x\n}"
        )
        module = parse_module(text)
        func = module.get_function("f")
        for a in (0, 1):
            for b in (0, 1):
                assert Interpreter().run(func, [a, b]).value == a ^ b

    def test_i8_overflow_chain(self):
        module = Module("m")
        func = Function(FunctionType(I8, [I8]), "f", parent=module)
        b = IRBuilder(BasicBlock("entry", func))
        v = func.args[0]
        for _ in range(4):
            v = b.mul(v, ConstantInt(I8, 3))
        b.ret(v)
        verify_module(module)
        assert Interpreter().run(func, [7]).value == (7 * 81) & 0xFF


class TestNamingEdges:
    def test_names_with_dots_round_trip(self):
        module = Module("m")
        func = Function(FunctionType(I32, [I32]), "has.dots.in-name", parent=module)
        b = IRBuilder(BasicBlock("entry.block", func))
        v = b.add(func.args[0], ConstantInt(I32, 1))
        v.name = "value.1"
        b.ret(v)
        text = print_module(module)
        reparsed = parse_module(text)
        assert print_module(reparsed) == text

    def test_anonymous_values_printable_after_uniquify(self):
        module = Module("m")
        func = Function(FunctionType(I32, [I32]), "f", parent=module)
        block = BasicBlock("", func)
        from repro.ir import BinaryOp, Opcode, Ret

        inst = BinaryOp(Opcode.ADD, func.args[0], ConstantInt(I32, 1))
        block.append(inst)
        block.append(Ret(inst))
        func.uniquify_names()
        assert block.name
        assert inst.name
        parse_module(print_module(module))


class TestInterpreterAccounting:
    def test_blocks_executed_counted(self, module):
        from tests.conftest import build_loop

        func = build_loop(module, trip=3)
        result = Interpreter().run(func, [0])
        # entry + (header+body)*3 + header + exit
        assert result.blocks_executed == 1 + 3 * 2 + 1 + 1

    def test_call_counts_profile(self, module):
        from tests.conftest import build_straightline

        callee = build_straightline(module, "callee")
        caller = Function(FunctionType(I32, [I32]), "caller", parent=module)
        b = IRBuilder(BasicBlock("entry", caller))
        r1 = b.call(callee, [caller.args[0]])
        r2 = b.call(callee, [r1])
        b.ret(r2)
        interp = Interpreter()
        interp.run(caller, [1])
        assert interp.call_counts["callee"] == 2
        assert interp.call_counts["caller"] == 1
