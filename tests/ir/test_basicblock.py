"""Tests for basic-block structure and CFG edges."""

import pytest

from repro.ir import (
    BasicBlock,
    Branch,
    ConstantInt,
    Function,
    FunctionType,
    I32,
    IRBuilder,
    Phi,
    Ret,
)
from tests.conftest import build_diamond


class TestStructure:
    def test_append_and_terminate(self, module):
        func = Function(FunctionType(I32, [I32]), "f", parent=module)
        block = BasicBlock("entry", func)
        b = IRBuilder(block)
        v = b.add(func.args[0], b.const_int(I32, 1))
        assert not block.is_terminated
        b.ret(v)
        assert block.is_terminated
        assert block.terminator is block.instructions[-1]

    def test_append_after_terminator_rejected(self, module):
        func = Function(FunctionType(I32, [I32]), "f", parent=module)
        block = BasicBlock("entry", func)
        block.append(Ret(ConstantInt(I32, 0)))
        with pytest.raises(ValueError):
            block.append(Ret(ConstantInt(I32, 0)))

    def test_double_ownership_rejected(self, module):
        func = Function(FunctionType(I32, [I32]), "f", parent=module)
        b1, b2 = BasicBlock("b1", func), BasicBlock("b2", func)
        r = Ret(ConstantInt(I32, 0))
        b1.append(r)
        with pytest.raises(ValueError):
            b2.append(r)

    def test_insert_before_after(self, module):
        func = Function(FunctionType(I32, [I32]), "f", parent=module)
        block = BasicBlock("entry", func)
        b = IRBuilder(block)
        v = b.add(func.args[0], b.const_int(I32, 1))
        r = b.ret(v)
        from repro.ir import BinaryOp, Opcode

        extra = BinaryOp(Opcode.MUL, func.args[0], ConstantInt(I32, 2))
        block.insert_before_terminator(extra)
        assert block.instructions == [v, extra, r]
        extra2 = BinaryOp(Opcode.XOR, func.args[0], ConstantInt(I32, 3))
        block.insert_before(v, extra2)
        assert block.instructions[0] is extra2

    def test_phi_helpers(self, module):
        func = Function(FunctionType(I32, [I32]), "f", parent=module)
        pred = BasicBlock("pred", func)
        block = BasicBlock("b", func)
        pred.append(Branch(block))
        phi = Phi(I32)
        phi.add_incoming(ConstantInt(I32, 1), pred)
        block.insert(0, phi)
        block.append(Ret(phi))
        assert block.phis() == [phi]
        assert block.first_non_phi_index() == 1
        assert block.non_phis()[0].is_terminator


class TestCFG:
    def test_successors_and_predecessors(self, module):
        func = build_diamond(module)
        entry, big, small, join = func.blocks
        assert entry.successors() == [big, small]
        assert big.successors() == [join]
        assert set(id(p) for p in join.predecessors()) == {id(big), id(small)}
        assert entry.predecessors() == []

    def test_erase_block(self, module):
        func = build_diamond(module)
        join = func.blocks[-1]
        nblocks = len(func.blocks)
        join.erase_from_parent()
        assert len(func.blocks) == nblocks - 1
        assert join.parent is None
