"""Tests for function cloning."""

from repro.ir import (
    Interpreter,
    clone_function,
    print_function,
    verify_function,
)
from tests.conftest import build_diamond, build_loop, build_straightline


class TestClone:
    def test_clone_is_verifiable_and_equivalent(self, module):
        for builder, args in (
            (build_straightline, [5]),
            (build_loop, [3]),
        ):
            base = builder(module, f"base_{builder.__name__}")
            copy = clone_function(base, f"copy_{builder.__name__}", module)
            verify_function(copy)
            assert (
                Interpreter().run(base, args).value
                == Interpreter().run(copy, args).value
            )

    def test_clone_diamond_two_args(self, module):
        base = build_diamond(module, "base")
        copy = clone_function(base, "copy", module)
        verify_function(copy)
        for args in ([7, 8], [1, 2], [50, 60]):
            assert (
                Interpreter().run(base, args).value
                == Interpreter().run(copy, args).value
            )

    def test_clone_preserves_structure(self, module):
        base = build_loop(module, "base")
        copy = clone_function(base, "copy", module)
        # Identical modulo the function name.
        assert print_function(copy) == print_function(base).replace("@base", "@copy")

    def test_clone_is_independent(self, module):
        base = build_straightline(module, "base")
        copy = clone_function(base, "copy", module)
        copy.entry.instructions[0].set_operand(1, copy.entry.instructions[0].operand(0))
        # Mutating the clone must not touch the original.
        assert Interpreter().run(base, [5]).value == 0x55 ^ ((5 + 3) * 3)

    def test_back_edge_phi_values_remapped(self, module):
        base = build_loop(module, "base")
        copy = clone_function(base, "copy", module)
        base_insts = {id(i) for i in base.instructions()}
        for inst in copy.instructions():
            for op in inst.operands:
                assert id(op) not in base_insts, "clone references original value"
