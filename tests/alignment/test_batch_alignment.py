"""Property tests for the batched alignment engine.

The engine's contract is *decision identity*: the vectorized kernels, the
content-addressed caches and the whole-plan replay must all produce exactly
the alignment the pure Python path produces — never "close enough".
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.alignment.batch as B
from repro.alignment.batch import (
    OP_GAP_A,
    OP_GAP_B,
    OP_MATCH,
    BatchAlignmentEngine,
    _nw_ops_py,
    _traceback,
    linear_ops_encoded,
    nw_ops_encoded,
)
from repro.alignment.cache import AlignmentCache, PlanCache, block_key
from repro.alignment.hyfm_blocks import align_functions as pure_align
from repro.harness.profile import _alignment_shape
from repro.ir.printer import print_module
from repro.merge.pass_ import FunctionMergingPass, PassConfig
from repro.search.pairing import ExhaustiveRanker
from repro.workloads import build_workload

# Small alphabet so random streams actually collide (matches = shared code).
codes = st.lists(st.integers(min_value=0, max_value=5), max_size=24)


def _pure_ops(a, b):
    """The reference path: pure DP + traceback, no vectorization."""
    score = _nw_ops_py(list(a), list(b), 2, -1, -1)
    return _traceback(score, list(a), list(b), 2, -1, -1)


def _check_ops_shape(ops, n, m):
    counts = np.bincount(ops, minlength=3)
    assert counts[OP_MATCH] + counts[OP_GAP_A] == n
    assert counts[OP_MATCH] + counts[OP_GAP_B] == m


class TestVectorizedNWEqualsPure:
    @given(codes, codes)
    @settings(max_examples=200, deadline=None)
    def test_vectorized_matches_reference(self, a, b):
        """Force the vectorized rows (no small-size fallback) and compare."""
        pure = _pure_ops(a, b)
        old = B._SMALL_NW_PRODUCT
        B._SMALL_NW_PRODUCT = -1
        try:
            vec = nw_ops_encoded(np.array(a, dtype=np.int64), np.array(b, dtype=np.int64))
        finally:
            B._SMALL_NW_PRODUCT = old
        assert vec.tolist() == pure.tolist()
        _check_ops_shape(vec, len(a), len(b))

    @given(codes, codes)
    @settings(max_examples=100, deadline=None)
    def test_full_band_equals_full_dp(self, a, b):
        full = nw_ops_encoded(np.array(a, dtype=np.int64), np.array(b, dtype=np.int64))
        band = max(len(a), len(b))
        banded = nw_ops_encoded(
            np.array(a, dtype=np.int64), np.array(b, dtype=np.int64), band=band
        )
        assert banded.tolist() == full.tolist()

    def test_empty_both(self):
        assert nw_ops_encoded(np.array([], dtype=np.int64), np.array([], dtype=np.int64)).tolist() == []

    def test_one_sided_a(self):
        ops = nw_ops_encoded(np.array([1, 2, 3], dtype=np.int64), np.array([], dtype=np.int64))
        assert ops.tolist() == [OP_GAP_A] * 3

    def test_one_sided_b(self):
        ops = nw_ops_encoded(np.array([], dtype=np.int64), np.array([7, 7], dtype=np.int64))
        assert ops.tolist() == [OP_GAP_B] * 2

    @given(codes, codes)
    @settings(max_examples=100, deadline=None)
    def test_linear_kernel_consumes_both_streams(self, a, b):
        ops = linear_ops_encoded(np.array(a, dtype=np.int64), np.array(b, dtype=np.int64))
        _check_ops_shape(ops, len(a), len(b))
        # Linear pairing matches the common prefix and suffix only; every
        # match must be an equal-code pair in order.
        ia = ib = 0
        for op in ops.tolist():
            if op == OP_MATCH:
                assert a[ia] == b[ib]
                ia += 1
                ib += 1
            elif op == OP_GAP_A:
                ia += 1
            else:
                ib += 1

    @given(codes)
    @settings(max_examples=50, deadline=None)
    def test_identical_streams_align_all_matches(self, a):
        arr = np.array(a, dtype=np.int64)
        assert nw_ops_encoded(arr, arr).tolist() == [OP_MATCH] * len(a)
        assert linear_ops_encoded(arr, arr).tolist() == [OP_MATCH] * len(a)


class TestEngineDecisionIdentity:
    """Engine alignments equal the pure path's on real workload functions."""

    @pytest.fixture(scope="class")
    def functions(self):
        return build_workload(40, "batchalign").defined_functions()

    @pytest.mark.parametrize("strategy", ["linear", "nw"])
    def test_engine_equals_pure(self, functions, strategy):
        engine = BatchAlignmentEngine(strategy=strategy)
        for i in range(len(functions) - 1):
            a, b = functions[i], functions[i + 1]
            assert _alignment_shape(engine.align_functions(a, b)) == _alignment_shape(
                pure_align(a, b, strategy=strategy)
            )

    @pytest.mark.parametrize("strategy", ["linear", "nw"])
    def test_plan_replay_identical(self, functions, strategy):
        """Second alignment of the same pair is a plan-cache hit and must
        reproduce the decision bit-for-bit."""
        engine = BatchAlignmentEngine(strategy=strategy)
        pairs = [(functions[i], functions[i + 1]) for i in range(10)]
        first = [_alignment_shape(engine.align_functions(a, b)) for a, b in pairs]
        hits_before = engine.plans.stats.hits
        second = [_alignment_shape(engine.align_functions(a, b)) for a, b in pairs]
        assert engine.plans.stats.hits > hits_before
        assert first == second

    def test_invalidate_function_drops_memos(self, functions):
        engine = BatchAlignmentEngine()
        engine.align_functions(functions[0], functions[1])
        assert engine._functions
        engine.invalidate_function(functions[0])
        assert id(functions[0]) not in engine._functions
        for block in functions[0].blocks:
            assert id(block) not in engine._blocks
        # Still answers (recomputes) after invalidation.
        assert _alignment_shape(
            engine.align_functions(functions[0], functions[1])
        ) == _alignment_shape(pure_align(functions[0], functions[1]))


class TestAlignmentCache:
    def test_block_key_separates_contents(self):
        k1 = block_key(np.array([1, 2, 3], dtype=np.int64))
        k2 = block_key(np.array([1, 2, 4], dtype=np.int64))
        k3 = block_key(np.array([1, 2, 3], dtype=np.int64))
        assert k1 != k2
        assert k1 == k3
        assert k1[0] == 3

    def test_lru_eviction_and_stats(self):
        cache = AlignmentCache(maxsize=2)
        ka = ("linear", (1, 1, 1), (2, 2, 2))
        kb = ("linear", (1, 1, 1), (3, 3, 3))
        kc = ("linear", (1, 1, 1), (4, 4, 4))
        cache.put(ka, np.array([0], dtype=np.int8))
        cache.put(kb, np.array([1], dtype=np.int8))
        cache.put(kc, np.array([2], dtype=np.int8))
        assert cache.stats.evictions == 1
        assert cache.get(ka) is None  # evicted (oldest)
        assert cache.get(kc).tolist() == [2]
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_get_returns_copy(self):
        cache = AlignmentCache()
        key = ("nw", (1, 0, 0), (1, 0, 0))
        cache.put(key, np.array([0, 1], dtype=np.int8))
        got = cache.get(key)
        got[0] = 2
        assert cache.get(key).tolist() == [0, 1]

    def test_plan_cache_lru(self):
        plans = PlanCache(maxsize=1)
        plans.put(("a",), ())
        plans.put(("b",), ())
        assert plans.get(("a",)) is None
        assert plans.get(("b",)) == ()
        assert plans.stats.evictions == 1


class TestCacheHitPathBitIdentical:
    """A pass through a prewarmed engine must merge bit-identically.

    This is the hit-path acceptance test: the second module is aligned
    entirely (plans) or mostly (blocks) out of the cache, and the merged
    module text must equal the cold run's exactly.
    """

    def test_warm_engine_module_identical(self):
        cold_module = build_workload(60, "cachehit")
        cold_engine = BatchAlignmentEngine()
        FunctionMergingPass(
            ExhaustiveRanker(), PassConfig(verify=False), alignment_engine=cold_engine
        ).run(cold_module)

        warm_module = build_workload(60, "cachehit")
        report = FunctionMergingPass(
            ExhaustiveRanker(), PassConfig(verify=False), alignment_engine=cold_engine
        ).run(warm_module)

        assert print_module(warm_module) == print_module(cold_module)
        stats = report.align_cache_stats
        assert stats["hits"] + stats["plan"]["hits"] > 0
