"""Tests for the alignment layer: mergeable predicate, NW, block pairing."""

import pytest

from repro.alignment import (
    SharedSegment,
    SplitSegment,
    align_blocks_linear,
    align_blocks_nw,
    align_functions,
    alignment_ratio_encoded,
    matched_count_encoded,
    mergeable,
    needleman_wunsch,
)
from repro.ir import (
    Argument,
    BinaryOp,
    Call,
    ConstantInt,
    DOUBLE,
    Function,
    FunctionType,
    I32,
    I64,
    ICmp,
    ICmpPred,
    Opcode,
    parse_module,
)
from tests.conftest import build_diamond, build_loop, build_straightline


def arg(t=I32, n="a", i=0):
    return Argument(t, n, i)


class TestMergeable:
    def test_same_shape_merges(self):
        a = BinaryOp(Opcode.ADD, arg(), arg(I32, "b", 1))
        b = BinaryOp(Opcode.ADD, arg(I32, "x"), ConstantInt(I32, 3))
        assert mergeable(a, b)

    def test_opcode_mismatch(self):
        a = BinaryOp(Opcode.ADD, arg(), arg(I32, "b", 1))
        b = BinaryOp(Opcode.SUB, arg(), arg(I32, "b", 1))
        assert not mergeable(a, b)

    def test_type_mismatch(self):
        a = BinaryOp(Opcode.ADD, arg(I32), arg(I32, "b", 1))
        b = BinaryOp(Opcode.ADD, arg(I64), arg(I64, "b", 1))
        assert not mergeable(a, b)

    def test_predicate_mismatch(self):
        a = ICmp(ICmpPred.SLT, arg(), arg(I32, "b", 1))
        b = ICmp(ICmpPred.SGT, arg(), arg(I32, "b", 1))
        assert not mergeable(a, b)

    def test_calls_with_same_signature_merge(self, module):
        callee1 = Function(FunctionType(I32, [I32]), "c1", parent=module)
        callee2 = Function(FunctionType(I32, [I32]), "c2", parent=module)
        a = Call(callee1, [arg()])
        b = Call(callee2, [arg()])
        assert mergeable(a, b)

    def test_calls_with_different_signatures_do_not(self, module):
        callee1 = Function(FunctionType(I32, [I32]), "c1", parent=module)
        callee2 = Function(FunctionType(I32, [DOUBLE]), "c2", parent=module)
        a = Call(callee1, [arg()])
        b = Call(callee2, [arg(DOUBLE)])
        assert not mergeable(a, b)

    def test_terminators_never_merge_via_predicate(self, module):
        from repro.ir import Ret

        assert not mergeable(Ret(ConstantInt(I32, 0)), Ret(ConstantInt(I32, 0)))


class TestNeedlemanWunsch:
    def test_identical_sequences(self):
        seq = [1, 2, 3, 4]
        entries = needleman_wunsch(seq, seq, lambda a, b: a == b)
        assert all(a is not None and b is not None for a, b in entries)

    def test_single_insertion(self):
        entries = needleman_wunsch([1, 2, 3], [1, 9, 2, 3], lambda a, b: a == b)
        matched = [(a, b) for a, b in entries if a is not None and b is not None]
        assert len(matched) == 3

    def test_disjoint(self):
        entries = needleman_wunsch([1, 2], [8, 9], lambda a, b: a == b)
        assert not any(a is not None and b is not None for a, b in entries)

    def test_preserves_all_elements(self):
        a, b = [1, 2, 3, 4, 5], [1, 3, 5, 7]
        entries = needleman_wunsch(a, b, lambda x, y: x == y)
        assert [x for x, _ in entries if x is not None] == a
        assert [y for _, y in entries if y is not None] == b


class TestEncodedRatio:
    def test_identical(self):
        assert alignment_ratio_encoded([1, 2, 3], [1, 2, 3]) == 1.0

    def test_disjoint(self):
        assert alignment_ratio_encoded([1, 2], [8, 9]) == 0.0

    def test_empty(self):
        assert alignment_ratio_encoded([], []) == 1.0

    def test_partial(self):
        ratio = alignment_ratio_encoded([1, 2, 3, 4], [1, 2, 9, 4])
        assert 0.5 < ratio < 1.0

    def test_matched_count(self):
        assert matched_count_encoded([5, 6, 7], [5, 6, 7]) == 3


class TestBlockAlignment:
    def _twin_blocks(self, module, mul1=2, mul2=5):
        f1 = build_diamond(module, "f1", mul_by=mul1)
        f2 = build_diamond(module, "f2", mul_by=mul2)
        return f1.entry, f2.entry

    def test_linear_full_match(self, module):
        b1, b2 = self._twin_blocks(module)
        alignment = align_blocks_linear(b1, b2)
        assert alignment.matched == 2  # add + icmp (terminator excluded)
        assert alignment.mismatched == 0

    def test_linear_prefix_suffix_split(self):
        text = """
define i32 @f1(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = mul i32 %a, 2
  %c = add i32 %b, 3
  ret i32 %c
}
define i32 @f2(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = sdiv i32 %a, 2
  %c = add i32 %b, 3
  ret i32 %c
}
"""
        m = parse_module(text)
        alignment = align_blocks_linear(
            m.get_function("f1").entry, m.get_function("f2").entry
        )
        kinds = [type(s).__name__ for s in alignment.segments]
        assert kinds == ["SharedSegment", "SplitSegment", "SharedSegment"]
        assert alignment.matched == 2
        assert alignment.mismatched == 2

    def test_nw_beats_linear_on_insertion(self):
        text = """
define i32 @f1(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = mul i32 %a, 2
  %c = xor i32 %b, 5
  ret i32 %c
}
define i32 @f2(i32 %x) {
entry:
  %a = add i32 %x, 1
  %e = sdiv i32 %a, 7
  %b = mul i32 %e, 2
  %c = xor i32 %b, 5
  ret i32 %c
}
"""
        m = parse_module(text)
        b1, b2 = m.get_function("f1").entry, m.get_function("f2").entry
        linear = align_blocks_linear(b1, b2)
        nw = align_blocks_nw(b1, b2)
        assert nw.matched >= linear.matched
        assert nw.matched == 3

    def test_profitable_flag(self, module):
        b1, b2 = self._twin_blocks(module)
        assert align_blocks_linear(b1, b2).profitable()


class TestFunctionAlignment:
    def test_identical_functions_align_fully(self, module):
        f1 = build_diamond(module, "f1")
        f2 = build_diamond(module, "f2")
        alignment = align_functions(f1, f2)
        assert len(alignment.block_pairs) == 4
        assert not alignment.unmatched_a and not alignment.unmatched_b
        assert alignment.alignment_ratio > 0.4

    def test_entry_blocks_pair_together(self, module):
        f1 = build_diamond(module, "f1")
        f2 = build_loop(module, "f2")
        alignment = align_functions(f1, f2)
        for pair in alignment.block_pairs:
            is_entry_a = pair.block_a is f1.entry
            is_entry_b = pair.block_b is f2.entry
            assert is_entry_a == is_entry_b

    def test_leftover_blocks_unmatched(self, module):
        f1 = build_diamond(module, "f1")  # 4 blocks
        f2 = build_straightline(module, "f2")  # 1 block
        alignment = align_functions(f1, f2)
        assert len(alignment.block_pairs) == 1
        assert len(alignment.unmatched_a) == 3
        assert alignment.unmatched_b == []

    def test_unknown_strategy_rejected(self, module):
        f1 = build_diamond(module, "f1")
        f2 = build_diamond(module, "f2")
        with pytest.raises(ValueError):
            align_functions(f1, f2, strategy="quantum")

    def test_ratio_bounds(self, module):
        f1 = build_diamond(module, "f1")
        f2 = build_loop(module, "f2")
        ratio = align_functions(f1, f2).alignment_ratio
        assert 0.0 <= ratio <= 1.0
