"""Tests for the span tracer: nesting, exception safety, bounds, the sink,
and the disabled fast path (which must allocate nothing)."""

import json
import tracemalloc

import pytest

from repro.obs import trace
from repro.obs.trace import NOOP_SPAN, Span, Tracer, load_trace, span_totals


@pytest.fixture(autouse=True)
def _no_active_tracer():
    """Every test starts and ends with tracing disabled."""
    trace.uninstall()
    yield
    trace.uninstall()


class TestSpanBasics:
    def test_records_name_attrs_duration(self):
        tracer = Tracer()
        with tracer.span("work", kind="unit") as sp:
            pass
        assert sp.name == "work"
        assert sp.attrs == {"kind": "unit"}
        assert sp.duration >= 0.0
        assert tracer.finished() == [sp]

    def test_set_adds_and_overwrites_attrs(self):
        tracer = Tracer()
        with tracer.span("work", a=1) as sp:
            sp.set(b=2)
            sp.set(a=3)
        assert sp.attrs == {"a": 3, "b": 2}

    def test_events_carry_offsets_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work") as sp:
            sp.event("mark", hit=True)
        (name, offset, attrs) = sp.events[0]
        assert name == "mark"
        assert offset >= 0.0
        assert attrs == {"hit": True}

    def test_tracer_event_attaches_to_innermost(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                tracer.event("mark")
        assert [e[0] for e in inner.events] == ["mark"]

    def test_event_without_open_span_is_dropped(self):
        tracer = Tracer()
        tracer.event("orphan")  # must not raise
        assert tracer.finished() == []


class TestNesting:
    def test_parent_ids_and_depths(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                with tracer.span("c") as c:
                    pass
            with tracer.span("d") as d:
                pass
        assert a.parent_id is None and a.depth == 0
        assert b.parent_id == a.span_id and b.depth == 1
        assert c.parent_id == b.span_id and c.depth == 2
        assert d.parent_id == a.span_id and d.depth == 1
        # Finished order is innermost-first.
        assert [s.name for s in tracer.finished()] == ["c", "b", "d", "a"]

    def test_siblings_after_exception_get_correct_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with pytest.raises(ValueError):
                with tracer.span("bad"):
                    raise ValueError("boom")
            with tracer.span("next") as nxt:
                pass
        assert nxt.parent_id == root.span_id


class TestExceptionSafety:
    def test_error_flagged_and_exception_propagates(self):
        tracer = Tracer()
        with pytest.raises(KeyError):
            with tracer.span("bad") as sp:
                raise KeyError("x")
        assert sp.error is True
        assert sp.error_type == "KeyError"
        assert sp.duration >= 0.0
        assert tracer.current() is None  # stack fully unwound

    def test_exception_closes_enclosing_stack_cleanly(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        totals = span_totals(tracer.finished())
        assert totals["inner"]["errors"] == 1
        assert totals["outer"]["errors"] == 1
        assert tracer.current() is None


class TestRingBound:
    def test_ring_drops_oldest_and_counts(self):
        tracer = Tracer(maxlen=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        finished = tracer.finished()
        assert len(finished) == 4
        assert [s.name for s in finished] == ["s6", "s7", "s8", "s9"]
        assert tracer.spans_started == 10
        assert tracer.spans_dropped == 6


class TestSink:
    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=str(path))
        with tracer.span("outer", fn="f"):
            with tracer.span("inner") as sp:
                sp.event("cache", hit=False)
        tracer.close()
        payloads = load_trace(str(path))
        assert [p["name"] for p in payloads] == ["inner", "outer"]
        inner = payloads[0]
        assert inner["events"] == [
            {"name": "cache", "offset": inner["events"][0]["offset"],
             "attrs": {"hit": False}}
        ]
        # Every line is standalone JSON.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_install_context_closes_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=str(path))
        with tracer.install():
            with trace.span("work"):
                pass
        assert tracer._sink_handle is None  # closed on exit
        assert [p["name"] for p in load_trace(str(path))] == ["work"]


class TestModuleDispatch:
    def test_install_swaps_and_restores(self):
        tracer = Tracer()
        assert not trace.enabled()
        with tracer.install():
            assert trace.active() is tracer
            with trace.span("work"):
                trace.event("mark", n=1)
        assert not trace.enabled()
        sp = tracer.finished()[0]
        assert sp.name == "work"
        assert sp.events[0][0] == "mark"

    def test_nested_install_restores_previous(self):
        outer, inner = Tracer(), Tracer()
        with outer.install():
            with inner.install():
                with trace.span("x"):
                    pass
            assert trace.active() is outer
        assert trace.active() is None
        assert [s.name for s in inner.finished()] == ["x"]
        assert outer.finished() == []


class TestDisabledFastPath:
    def test_returns_shared_noop_span(self):
        assert trace.span("anything") is NOOP_SPAN
        with trace.span("anything", a=1) as sp:
            sp.set(b=2)
            sp.event("mark")
        trace.event("orphan")  # no-op, no raise

    def test_disabled_path_retains_no_allocations(self):
        # The whole point of the one-branch guard: spinning the disabled
        # instrumentation must not retain memory.  Warm up first so any
        # one-time interning is off the books.
        for _ in range(100):
            with trace.span("warm"):
                pass
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            for _ in range(10_000):
                with trace.span("hot", key="value"):
                    trace.event("mark", hit=True)
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # Allow a small slack for interpreter-internal bookkeeping; 10k
        # retained spans/dicts would be hundreds of kilobytes.
        assert after - before < 2048, f"disabled path retained {after - before} bytes"


class TestSpanTotals:
    def test_aggregates_objects_and_payloads(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with pytest.raises(ValueError):
            with tracer.span("a"):
                raise ValueError()
        spans = tracer.finished()
        totals = span_totals(spans)
        assert totals["a"]["count"] == 2
        assert totals["a"]["errors"] == 1
        assert totals["a"]["total_s"] == pytest.approx(
            sum(s.duration for s in spans)
        )
        # Same answer from serialized payloads.
        from_payloads = span_totals([s.to_dict() for s in spans])
        assert from_payloads["a"]["count"] == totals["a"]["count"]
        assert from_payloads["a"]["errors"] == totals["a"]["errors"]
        assert from_payloads["a"]["total_s"] == pytest.approx(
            totals["a"]["total_s"]
        )

    def test_to_dict_omits_empty_fields(self):
        tracer = Tracer()
        with tracer.span("plain"):
            pass
        payload = tracer.finished()[0].to_dict()
        assert "attrs" not in payload
        assert "error" not in payload
        assert "events" not in payload
        assert isinstance(payload["id"], int)
