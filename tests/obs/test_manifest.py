"""Tests for run manifests: round-trip exactness, structural diffing,
rendering, and telemetry collection from a real pass."""

import pytest

from repro.harness.experiments import make_ranker
from repro.merge import FunctionMergingPass, PassConfig
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    build_merge_manifest,
    collect_pass_telemetry,
    diff_manifests,
    git_revision,
    load_manifest,
    module_digest,
    render_manifest,
    render_manifest_diff,
    save_manifest,
)
from repro.obs.metrics import Registry
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def merge_run():
    """One real (small) pass run plus its manifest inputs."""
    module = build_workload(40, "manifest")
    ranker = make_ranker("f3m")
    config = PassConfig(verify=False)
    pass_ = FunctionMergingPass(ranker, config)
    report = pass_.run(module)
    registry = Registry()
    collect_pass_telemetry(pass_, report, registry)
    manifest = build_merge_manifest(
        report,
        ranker=ranker,
        pass_config=config,
        module=module,
        registry=registry,
        module_name="manifest-suite",
        seed=42,
    )
    return pass_, report, registry, manifest


class TestIdentityHelpers:
    def test_git_revision_shape(self):
        rev = git_revision()
        assert rev is None or (len(rev) == 40 and int(rev, 16) >= 0)

    def test_git_revision_outside_repo(self, tmp_path):
        assert git_revision(cwd=str(tmp_path)) is None

    def test_module_digest_tracks_content(self):
        a = build_workload(5, "dig")
        b = build_workload(5, "dig")
        c = build_workload(6, "dig")
        assert module_digest(a) == module_digest(b)
        assert module_digest(a) != module_digest(c)
        assert len(module_digest(a)) == 64


class TestRoundTrip:
    def test_emit_save_load_diff_empty(self, merge_run, tmp_path):
        _, _, _, manifest = merge_run
        path = tmp_path / "run.json"
        save_manifest(manifest, str(path))
        loaded = load_manifest(str(path))
        assert diff_manifests(manifest, loaded) == {}
        assert loaded.schema == MANIFEST_SCHEMA
        assert loaded.size_reduction == pytest.approx(manifest.size_reduction)

    def test_from_dict_ignores_unknown_fields(self):
        m = RunManifest.from_dict({"kind": "merge", "strategy": "x", "bogus": 1})
        assert m.kind == "merge"
        assert not hasattr(m, "bogus")


class TestManifestContents:
    def test_stage_table_matches_profiler(self, merge_run):
        from repro.harness.profile import profile_from_report

        pass_, report, _, manifest = merge_run
        profile = profile_from_report(report, pass_.ranker)
        assert manifest.stages == profile.stages

    def test_outcome_table_canonical_order(self, merge_run):
        from repro.merge.report import OUTCOMES

        _, _, _, manifest = merge_run
        assert tuple(manifest.outcomes) == OUTCOMES

    def test_static_ranker_has_no_adaptive_block(self, merge_run):
        _, _, _, manifest = merge_run
        assert manifest.adaptive is None

    def test_adaptive_parameters_present(self):
        module = build_workload(20, "manifest-adaptive")
        ranker = make_ranker("f3m-adaptive")
        report = FunctionMergingPass(ranker, PassConfig(verify=False)).run(module)
        manifest = build_merge_manifest(report, ranker=ranker)
        assert manifest.adaptive is not None
        assert set(manifest.adaptive) == {
            "threshold", "rows", "bands", "fingerprint_size",
        }
        assert manifest.adaptive["fingerprint_size"] == (
            manifest.adaptive["rows"] * manifest.adaptive["bands"]
        )

    def test_config_is_the_pass_config(self, merge_run):
        _, _, _, manifest = merge_run
        assert manifest.config["verify"] is False
        assert "oracle" in manifest.config


class TestTelemetryCollection:
    def test_outcome_counters_match_report(self, merge_run):
        _, report, registry, _ = merge_run
        snap = registry.snapshot()
        for outcome, count in report.outcome_counts().items():
            assert snap["counters"][f"merge.outcome.{outcome}"] == count
        assert snap["counters"]["merge.attempts"] == len(report.attempts)
        assert snap["counters"]["merge.merges"] == report.merges

    def test_lsh_and_ranking_sources_registered(self, merge_run):
        _, _, registry, _ = merge_run
        sources = registry.snapshot()["sources"]
        assert "ranking" in sources
        assert sources["ranking"]["queries"] > 0
        assert "lsh_index" in sources
        assert sources["lsh_index"]["rows"] > 0
        # Maintenance counters surfaced through the same source.
        for key in ("removals", "queries", "capped_bucket_hits", "tombstones"):
            assert key in sources["lsh_index"]
        assert "lsh_buckets" in sources
        assert sources["lsh_buckets"]["total_buckets"] > 0


class TestDiff:
    def test_detects_leaf_changes_with_dotted_paths(self, merge_run):
        _, _, _, manifest = merge_run
        other = RunManifest.from_dict(manifest.to_dict())
        other.merges = manifest.merges + 1
        other.stages = dict(manifest.stages, rank=123.0)
        diff = diff_manifests(manifest, other)
        assert diff["merges"] == {"a": manifest.merges, "b": manifest.merges + 1}
        assert "stages.rank" in diff

    def test_rel_tol_forgives_timing_noise(self, merge_run):
        _, _, _, manifest = merge_run
        other = RunManifest.from_dict(manifest.to_dict())
        other.total_time = manifest.total_time * 1.04
        assert "total_time" in diff_manifests(manifest, other)
        assert diff_manifests(manifest, other, rel_tol=0.05) == {}

    def test_ignore_prefixes(self, merge_run):
        _, _, _, manifest = merge_run
        other = RunManifest.from_dict(manifest.to_dict())
        other.created_unix = manifest.created_unix + 100
        other.stages = dict(manifest.stages, rank=123.0)
        diff = diff_manifests(manifest, other, ignore=("created_unix", "stages"))
        assert diff == {}

    def test_bool_not_conflated_with_int(self):
        a = RunManifest(kind="merge", config={"flag": True})
        b = RunManifest(kind="merge", config={"flag": 1})
        # bool vs int compare equal in Python but must still round-trip;
        # the diff treats them as equal leaves (JSON has no bool/int pun).
        assert diff_manifests(a, b) == {}

    def test_missing_key_reported(self):
        a = RunManifest(kind="merge", config={"x": 1})
        b = RunManifest(kind="merge", config={})
        assert diff_manifests(a, b)["config.x"] == {"a": 1, "b": None}


class TestRendering:
    def test_render_manifest_shows_tables(self, merge_run):
        _, report, _, manifest = merge_run
        text = render_manifest(manifest)
        assert "strategy" in text
        assert "fingerprint" in text  # stage table
        assert "merged" in text  # outcome table
        assert "ranking.queries" in text  # sources metrics table
        assert str(report.merges) in text

    def test_render_diff(self, merge_run):
        _, _, _, manifest = merge_run
        assert render_manifest_diff({}) == "manifests identical"
        out = render_manifest_diff({"merges": {"a": 1, "b": 2}})
        assert "merges" in out and "1" in out and "2" in out
