"""Tests for the metrics registry: instruments, log2 bucket edges,
percentile bounds, and snapshot-time sources."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, Registry


class TestCounter:
    def test_increments(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        c = Counter("n")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("v")
        g.set(10.0)
        g.add(-3.0)
        assert g.value == 7.0


class TestHistogramBuckets:
    # bucket e holds [2**e, 2**(e+1))
    @pytest.mark.parametrize(
        "value,expected",
        [
            (1.0, 0),
            (1.5, 0),
            (1.9999999, 0),
            (2.0, 1),
            (0.5, -1),
            (0.9999999, -1),
            (0.25, -2),
            (1024.0, 10),
            (3.0, 1),
            (4.0, 2),
        ],
    )
    def test_bucket_edges(self, value, expected):
        assert Histogram.bucket_of(value) == expected

    def test_bucket_exact_at_powers_of_two(self):
        # The frexp formulation must not suffer float-log rounding: 2**e
        # belongs to bucket e, never e-1.
        for e in range(-30, 20):
            assert Histogram.bucket_of(2.0 ** e) == e

    def test_clamping(self):
        assert Histogram.bucket_of(1e-300) == Histogram.MIN_EXP
        assert Histogram.bucket_of(1e300) == Histogram.MAX_EXP

    def test_zeros_and_negatives_counted_separately(self):
        h = Histogram("t")
        h.observe(0.0)
        h.observe(-1.0)
        h.observe(1.0)
        assert h.count == 3
        assert h.zeros == 2
        assert sum(h._buckets.values()) == 1


class TestHistogramPercentiles:
    def test_percentile_is_bucket_upper_bound(self):
        h = Histogram("t")
        for v in [1.0, 1.0, 1.0, 1.0, 8.0]:  # four in bucket 0, one in bucket 3
            h.observe(v)
        assert h.percentile(0.5) == 2.0  # upper edge of bucket 0
        assert h.percentile(1.0) == 16.0  # upper edge of bucket 3

    def test_percentile_with_zeros(self):
        h = Histogram("t")
        for _ in range(9):
            h.observe(0.0)
        h.observe(4.0)
        assert h.percentile(0.5) == 0.0
        assert h.percentile(1.0) == 8.0

    def test_percentile_validation_and_empty(self):
        h = Histogram("t")
        assert h.percentile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.percentile(0.0)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_to_dict(self):
        h = Histogram("t")
        assert h.to_dict() == {"count": 0}
        h.observe(1.0)
        h.observe(3.0)
        d = h.to_dict()
        assert d["count"] == 2
        assert d["sum"] == 4.0
        assert d["mean"] == 2.0
        assert d["min"] == 1.0
        assert d["max"] == 3.0
        assert d["buckets"] == {"0": 1, "1": 1}  # JSON-safe string keys


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = Registry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")

    def test_absorb_counts(self):
        r = Registry()
        r.absorb_counts("merge.outcome", {"merged": 3, "align_fail": 1})
        snap = r.snapshot()
        assert snap["counters"]["merge.outcome.merged"] == 3
        assert snap["counters"]["merge.outcome.align_fail"] == 1

    def test_snapshot_shape(self):
        r = Registry()
        r.counter("c").inc(2)
        r.gauge("g").set(1.5)
        r.histogram("h").observe(1.0)
        r.register_source("owner", lambda: {"hits": 7})
        snap = r.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["sources"] == {"owner": {"hits": 7}}

    def test_broken_source_degrades_not_raises(self):
        r = Registry()

        def bad():
            raise RuntimeError("gone")

        r.register_source("bad", bad)
        r.register_source("good", lambda: {"ok": 1})
        snap = r.snapshot()
        assert snap["sources"]["good"] == {"ok": 1}
        assert snap["sources"]["bad"] == {"error": "RuntimeError: gone"}

    def test_source_sampled_at_snapshot_time(self):
        r = Registry()
        state = {"n": 0}
        r.register_source("live", lambda: dict(state))
        state["n"] = 5
        assert r.snapshot()["sources"]["live"] == {"n": 5}
