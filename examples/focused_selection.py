#!/usr/bin/env python3
"""Why fingerprints mislead: the paper's Figure 5 scenario, reconstructed.

HyFM matched Linux's ``perf_trace_destroy`` with ``fat_put_super`` because
their opcode-frequency fingerprints differed by only one — yet the two
functions could not merge profitably.  The ideal candidate,
``perf_kprobe_destroy``, had a *less* similar fingerprint (distance two)
but aligned almost perfectly.

This example builds an equivalent triple in our IR and shows that the
opcode metric prefers the wrong partner while MinHash picks the right one.

Run:  python examples/focused_selection.py
"""

from repro.alignment import align_functions
from repro.fingerprint import fingerprint_function, minhash_function
from repro.harness import format_table
from repro.ir import parse_module, verify_module

SOURCE = """
; The function we want to merge: straight-line arithmetic, one branch.
define i32 @perf_trace_destroy(i32 %ev) {
entry:
  %a = add i32 %ev, 8
  %b = mul i32 %a, 3
  %c = xor i32 %b, 85
  %d = icmp sgt i32 %c, 64
  br i1 %d, label %free, label %out
free:
  %e = sub i32 %c, 64
  br label %out
out:
  %r = phi i32 [ %e, %free ], [ %c, %entry ]
  ret i32 %r
}

; Near-identical sibling (two extra instructions): the IDEAL candidate.
define i32 @perf_kprobe_destroy(i32 %ev) {
entry:
  %a = add i32 %ev, 8
  %b = mul i32 %a, 3
  %b2 = add i32 %b, 1
  %c = xor i32 %b2, 85
  %c2 = add i32 %c, 2
  %d = icmp sgt i32 %c2, 64
  br i1 %d, label %free, label %out
free:
  %e = sub i32 %c2, 64
  br label %out
out:
  %r = phi i32 [ %e, %free ], [ %c2, %entry ]
  ret i32 %r
}

; Same opcode *multiset*, totally different structure: the TRAP candidate.
define i32 @fat_put_super(i32 %sb) {
entry:
  %d = icmp sgt i32 %sb, 0
  br i1 %d, label %free, label %out
free:
  %a = add i32 %sb, 8
  %e = sub i32 %a, 64
  %b = mul i32 %e, 3
  br label %out
out:
  %p = phi i32 [ %b, %free ], [ %sb, %entry ]
  %c = xor i32 %p, 85
  %r = add i32 %c, 0
  ret i32 %r
}
"""


def main() -> None:
    module = parse_module(SOURCE)
    verify_module(module)
    target = module.get_function("perf_trace_destroy")
    ideal = module.get_function("perf_kprobe_destroy")
    trap = module.get_function("fat_put_super")

    fp_target = fingerprint_function(target)
    mh_target = minhash_function(target)

    rows = []
    for cand in (ideal, trap):
        opcode_dist = fp_target.distance(fingerprint_function(cand))
        opcode_sim = fp_target.similarity(fingerprint_function(cand))
        mh_sim = mh_target.similarity(minhash_function(cand))
        ratio = align_functions(target, cand).alignment_ratio
        rows.append(
            (
                cand.name,
                opcode_dist,
                f"{opcode_sim:.3f}",
                f"{mh_sim:.3f}",
                f"{ratio:.2f}",
            )
        )
    print("candidates for merging with @perf_trace_destroy:\n")
    print(
        format_table(
            [
                "candidate",
                "opcode distance",
                "opcode similarity",
                "MinHash similarity",
                "alignment ratio",
            ],
            rows,
        )
    )

    opcode_choice = min(
        (ideal, trap), key=lambda f: fp_target.distance(fingerprint_function(f))
    )
    minhash_choice = max(
        (ideal, trap), key=lambda f: mh_target.similarity(minhash_function(f))
    )
    print(f"\nopcode-frequency metric picks:  @{opcode_choice.name}")
    print(f"MinHash metric picks:           @{minhash_choice.name}")

    assert minhash_choice is ideal, "MinHash should prefer the structural twin"
    print(
        "\nThe opcode metric cannot see structure, so the shuffled function "
        "looks (almost) as good as the true sibling; MinHash over encoded "
        "instruction shingles puts the sibling far ahead (paper Figure 5)."
    )


if __name__ == "__main__":
    main()
