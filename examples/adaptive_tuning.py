#!/usr/bin/env python3
"""The adaptive policy (paper Section III-D) across program scales.

Prints the threshold t, band count b and fingerprint size k the adaptive
variant derives for program sizes from hundreds of functions to
Chrome-scale, together with Equation 2's discovery probabilities, then
demonstrates the policy live on a generated workload.

Run:  python examples/adaptive_tuning.py
"""

from repro.harness import format_table
from repro.merge import FunctionMergingPass, PassConfig
from repro.search import (
    MinHashLSHRanker,
    adaptive_parameters,
    lsh_match_probability,
)
from repro.workloads import build_workload


def main() -> None:
    print("== adaptive parameters by program size (Eqs. 3 and 4) ==\n")
    rows = []
    for n in (500, 1837, 5000, 10_000, 45_000, 100_000, 1_200_000, 10_000_000):
        params = adaptive_parameters(n)
        p_at_t = lsh_match_probability(params.threshold + 0.1, params.rows, params.bands)
        rows.append(
            (
                f"{n:,}",
                f"{params.threshold:.2f}",
                params.rows,
                params.bands,
                params.fingerprint_size,
                f"{p_at_t:.1%}",
            )
        )
    print(
        format_table(
            ["functions", "threshold t", "rows r", "bands b", "k = r*b", "P(discover t+0.1)"],
            rows,
        )
    )
    print(
        "\nPaper reference points: b=57 at 10k functions, 25 at 100k, 14 at "
        "1m; t=0.31 and b=13 for Chrome (1.2m)."
    )

    print("\n== live run: static vs adaptive on one workload ==\n")
    n = 1000
    results = []
    for adaptive in (False, True):
        module = build_workload(n, "adaptive-demo")
        ranker = MinHashLSHRanker(adaptive=adaptive)
        report = FunctionMergingPass(ranker, PassConfig(verify=False)).run(module)
        label = "adaptive" if adaptive else "static"
        results.append(
            (
                label,
                f"t={ranker.threshold:.2f}",
                f"b={ranker._index.bands}",
                f"{report.size_reduction:.2%}",
                f"{report.comparisons:,}",
                f"{report.merge_time:.2f}s",
            )
        )
    print(
        format_table(
            ["variant", "threshold", "bands", "size reduction", "comparisons", "pass time"],
            results,
        )
    )
    print(
        "\nAt this (small) scale the adaptive policy keeps the paper's "
        "defaults; rerun the large_app_lto.py example with 10k+ functions "
        "to watch it shrink the fingerprint and raise the threshold."
    )


if __name__ == "__main__":
    main()
