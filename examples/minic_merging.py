#!/usr/bin/env python3
"""Compile MiniC source and merge its similar functions.

The repository ships a small C-like frontend, so the merging pipeline can
be exercised on code that looks like what programmers write — here a family
of hand-rolled "clamp and scale" helpers that a codebase might accumulate —
rather than on generated IR.  The pipeline is the real one: compile →
mem2reg (SSA construction) → F3M merging → cleanup → differential check.

Run:  python examples/minic_merging.py
"""

from repro.analysis import module_size
from repro.frontend import compile_source
from repro.harness import format_table
from repro.ir import Interpreter, print_function, verify_module
from repro.merge import FunctionMergingPass, PassConfig
from repro.search import MinHashLSHRanker
from repro.transforms import optimize_module, promote_module

SOURCE = """
int clamp_scale_audio(int sample, int gain) {
    int v = sample * gain;
    if (v > 32767) { v = 32767; }
    if (v < -32768) { v = -32768; }
    return v;
}

int clamp_scale_video(int pixel, int gain) {
    int v = pixel * gain;
    if (v > 255) { v = 255; }
    if (v < 0) { v = 0; }
    return v;
}

int clamp_scale_sensor(int reading, int gain) {
    int v = reading * gain;
    if (v > 4095) { v = 4095; }
    if (v < 0) { v = 0; }
    return v;
}

long checksum_a(int n) {
    long acc = 7;
    for (int i = 0; i < n; i = i + 1) {
        acc = acc * 31 + i;
    }
    return acc;
}

long checksum_b(int n) {
    long acc = 17;
    for (int i = 0; i < n; i = i + 1) {
        acc = acc * 37 + i;
    }
    return acc;
}

int main_entry(int x) {
    int a = clamp_scale_audio(x, 100);
    int b = clamp_scale_video(x, 3);
    int c = clamp_scale_sensor(x, 9);
    long s = checksum_a(x) + checksum_b(x);
    return a + b + c + (s % 1000);
}
"""

INPUTS = (0, 7, 150, 1000)


def main() -> None:
    module = compile_source(SOURCE)
    module.get_function("main_entry").internal = False
    verify_module(module)
    size0 = module_size(module)
    reference = {
        x: Interpreter().run(module.get_function("main_entry"), [x]).value
        for x in INPUTS
    }

    promoted = promote_module(module)
    size_ssa = module_size(module)
    print(f"mem2reg promoted {promoted} stack slots "
          f"({size0} -> {size_ssa} modelled bytes)\n")

    report = FunctionMergingPass(
        MinHashLSHRanker(), PassConfig(verify=True)
    ).run(module)
    optimize_module(module, drop_dead_functions=False)
    verify_module(module)
    size_final = module_size(module)

    rows = []
    for att in report.attempts:
        if att.success:
            rows.append((att.function, att.candidate, f"{att.similarity:.2f}", att.saving))
    print(format_table(["function", "merged with", "similarity", "saved bytes"], rows))
    print(
        f"\nmodule size: {size0} -> {size_final} modelled bytes "
        f"({1 - size_final / size0:.1%} total reduction)"
    )

    for x, expected in reference.items():
        got = Interpreter().run(module.get_function("main_entry"), [x]).value
        assert got == expected, (x, got, expected)
    print(f"semantics preserved on inputs {INPUTS} ✔")

    merged = [f for f in module.functions if f.name.startswith("merged.")]
    if merged:
        print(f"\none merged function, for inspection:\n")
        print(print_function(merged[0]))


if __name__ == "__main__":
    main()
