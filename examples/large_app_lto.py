#!/usr/bin/env python3
"""Large-application LTO scenario: HyFM vs F3M vs F3M-adaptive.

Builds a Linux-like workload (thousands of functions with similarity
families), links it into one module LTO-style, and runs all three merging
configurations, printing the paper's headline comparison: code size
reduction, fingerprint comparisons, and per-stage time breakdown.

Run:  python examples/large_app_lto.py [num_functions]
"""

import sys
import time

from repro.harness import format_table, make_ranker
from repro.merge import FunctionMergingPass, PassConfig
from repro.workloads import build_workload, size_class


def run_strategy(n: int, strategy: str):
    module = build_workload(n, "bigapp")
    ranker = make_ranker(strategy)
    start = time.perf_counter()
    report = FunctionMergingPass(ranker, PassConfig(verify=False)).run(module)
    elapsed = time.perf_counter() - start
    return report, elapsed


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    print(f"workload: {n} functions ({size_class(n)} program)\n")

    rows = []
    breakdowns = {}
    for strategy in ("hyfm", "f3m", "f3m-adaptive"):
        report, elapsed = run_strategy(n, strategy)
        breakdowns[strategy] = report.stage_breakdown()
        rows.append(
            (
                strategy,
                f"{report.size_reduction:.2%}",
                report.merges,
                f"{report.comparisons:,}",
                f"{elapsed:.2f}s",
            )
        )
        print(f"[{strategy}] {report.summary()}")

    print("\n== headline comparison ==")
    print(
        format_table(
            ["strategy", "size reduction", "merges", "fp comparisons", "pass time"],
            rows,
        )
    )

    print("\n== stage breakdown (seconds) ==")
    stage_rows = []
    for strategy, b in breakdowns.items():
        stage_rows.append(
            (
                strategy,
                f"{b['preprocess']:.2f}",
                f"{b['ranking_success'] + b['ranking_fail']:.2f}",
                f"{b['align_success'] + b['align_fail']:.2f}",
                f"{b['codegen_success'] + b['codegen_fail']:.2f}",
                f"{b['update']:.2f}",
            )
        )
    print(
        format_table(
            ["strategy", "preprocess", "ranking", "align", "codegen", "update"],
            stage_rows,
        )
    )
    print(
        "\nNote how the exhaustive ranker's 'ranking' column grows "
        "quadratically with the workload size, while the LSH-based rankers "
        "stay near-linear — rerun with a larger argument to watch the gap "
        "widen (paper Figures 3, 12 and 13)."
    )


if __name__ == "__main__":
    main()
