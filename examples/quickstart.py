#!/usr/bin/env python3
"""Quickstart: merge two similar functions and watch what F3M does.

Walks the full pipeline on a pair of hand-written IR functions:

1. parse textual IR;
2. fingerprint both functions (opcode-frequency and MinHash);
3. align them block by block;
4. generate the merged function;
5. redirect call sites and delete the originals;
6. prove semantic equivalence with the reference interpreter.

Run:  python examples/quickstart.py
"""

from repro.alignment import align_functions
from repro.analysis import module_size
from repro.fingerprint import (
    encode_function,
    fingerprint_function,
    minhash_function,
)
from repro.ir import Interpreter, parse_module, print_function, verify_module
from repro.merge import ProfitabilityModel, commit_merge, merge_functions

SOURCE = """
define i32 @checksum_v1(i32 %x, i32 %y) {
entry:
  %sum = add i32 %x, %y
  %scaled = mul i32 %sum, 3
  %big = icmp sgt i32 %scaled, 100
  br i1 %big, label %clamp, label %pad
clamp:
  %c = sub i32 %scaled, 100
  br label %done
pad:
  %p = add i32 %scaled, 7
  br label %done
done:
  %r = phi i32 [ %c, %clamp ], [ %p, %pad ]
  ret i32 %r
}

define i32 @checksum_v2(i32 %x, i32 %y) {
entry:
  %sum = add i32 %x, %y
  %scaled = mul i32 %sum, 5
  %big = icmp sgt i32 %scaled, 100
  br i1 %big, label %clamp, label %pad
clamp:
  %c = sub i32 %scaled, 50
  br label %done
pad:
  %p = add i32 %scaled, 9
  br label %done
done:
  %r = phi i32 [ %c, %clamp ], [ %p, %pad ]
  ret i32 %r
}

define i32 @main(i32 %x) {
entry:
  %a = call i32 @checksum_v1(i32 %x, i32 2)
  %b = call i32 @checksum_v2(i32 %x, i32 3)
  %out = add i32 %a, %b
  ret i32 %out
}
"""


def main() -> None:
    module = parse_module(SOURCE)
    verify_module(module)
    f1 = module.get_function("checksum_v1")
    f2 = module.get_function("checksum_v2")

    print("== fingerprints ==")
    opcode_sim = fingerprint_function(f1).similarity(fingerprint_function(f2))
    minhash_sim = minhash_function(f1).similarity(minhash_function(f2))
    print(f"opcode-frequency similarity (HyFM metric): {opcode_sim:.3f}")
    print(f"MinHash estimated Jaccard     (F3M metric): {minhash_sim:.3f}")
    print(f"encoded length: {len(encode_function(f1))} instructions")

    print("\n== alignment ==")
    alignment = align_functions(f1, f2)
    print(f"block pairs: {len(alignment.block_pairs)}")
    print(f"alignment ratio: {alignment.alignment_ratio:.2f}")

    print("\n== merged function ==")
    size_before = module_size(module)
    result = merge_functions(alignment, module)
    print(print_function(result.merged))
    benefit = ProfitabilityModel().evaluate(result)
    print(f"profitability: save {benefit.saving} modelled bytes -> merge!")

    # Capture reference outputs before rewiring the module.
    ref = {x: Interpreter().run(module.get_function("main"), [x]).value for x in range(0, 60, 7)}

    commit_merge(result)
    verify_module(module)
    size_after = module_size(module)
    print(f"\nmodule size: {size_before} -> {size_after} modelled bytes "
          f"({1 - size_after / size_before:.1%} reduction)")

    print("\n== differential check ==")
    for x, expected in ref.items():
        got = Interpreter().run(module.get_function("main"), [x]).value
        status = "ok" if got == expected else "MISMATCH"
        print(f"main({x:2d}) = {got:5d}  [{status}]")
        assert got == expected
    print("merged module is semantically equivalent ✔")


if __name__ == "__main__":
    main()
