#!/usr/bin/env python3
"""A production-shaped size pipeline, beyond the paper's core experiment.

Chains everything a release build would want, in order:

1. identical-function merging (the classic ``mergefunc``, near-free);
2. profile collection with the reference interpreter;
3. profile-guided F3M merging (paper §IV-F future work: keep hot
   functions out of merging so the size win costs no runtime);
4. post-merge clean-up passes (constant folding, CFG simplification, DCE);
5. a differential check that the final module still computes the same
   results, plus before/after size and dynamic-instruction numbers.

Run:  python examples/production_pipeline.py [num_functions]
"""

import sys

from repro.analysis import module_size
from repro.harness import format_table
from repro.ir import Interpreter, verify_module
from repro.merge import (
    HotnessFilter,
    PassConfig,
    ProfileGuidedPass,
    merge_identical_functions,
    profile_module,
)
from repro.search import MinHashLSHRanker
from repro.transforms import optimize_module
from repro.workloads import build_workload

INPUTS = (1, 5, 11)


def dynamic_cost(module):
    driver = module.get_function("driver")
    return sum(
        Interpreter().run(driver, [x]).instructions_executed for x in INPUTS
    )


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    module = build_workload(n, "pipeline")
    driver = module.get_function("driver")
    reference = {x: Interpreter().run(driver, [x]).value for x in INPUTS}

    stages = [("original", module_size(module), dynamic_cost(module))]

    ident = merge_identical_functions(module)
    stages.append(("+ identical merging", module_size(module), dynamic_cost(module)))

    profile = profile_module(module, inputs=INPUTS)
    hotness = HotnessFilter(profile, hot_fraction=0.25)
    pgo_pass = ProfileGuidedPass(
        MinHashLSHRanker(adaptive=True), hotness, PassConfig(verify=False)
    )
    report = pgo_pass.run(module)
    stages.append(("+ PGO-guided F3M", module_size(module), dynamic_cost(module)))

    optimize_module(module, drop_dead_functions=False)
    stages.append(("+ clean-up passes", module_size(module), dynamic_cost(module)))

    verify_module(module)
    for x, expected in reference.items():
        got = Interpreter().run(module.get_function("driver"), [x]).value
        assert got == expected, (x, got, expected)

    base_size, base_dyn = stages[0][1], stages[0][2]
    rows = [
        (
            stage,
            size,
            f"{1 - size / base_size:.1%}",
            f"{dyn / base_dyn - 1:+.1%}",
        )
        for stage, size, dyn in stages
    ]
    print(
        format_table(
            ["stage", "modelled size", "total reduction", "runtime overhead"], rows
        )
    )
    print(
        f"\nidentical groups folded: {ident.groups}; "
        f"similarity merges: {report.merges} "
        f"({report.strategy}); semantics verified on {len(INPUTS)} inputs ✔"
    )


if __name__ == "__main__":
    main()
