"""Basic blocks for the repro IR."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from .instructions import Instruction, Phi
from .types import LABEL
from .values import Value

if TYPE_CHECKING:  # pragma: no cover
    from .function import Function

__all__ = ["BasicBlock"]


class BasicBlock(Value):
    """A straight-line sequence of instructions ending in a terminator.

    Blocks are values of ``label`` type so they can appear as branch/phi
    operands, mirroring LLVM.
    """

    __slots__ = ("parent", "instructions")

    def __init__(self, name: str = "", parent: Optional["Function"] = None) -> None:
        super().__init__(LABEL, name)
        self.parent = parent
        self.instructions: List[Instruction] = []
        if parent is not None:
            parent.add_block(self)

    # -- structure ---------------------------------------------------------------
    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def phis(self) -> List[Phi]:
        out: List[Phi] = []
        for inst in self.instructions:
            if not inst.is_phi:
                break
            out.append(inst)  # type: ignore[arg-type]
        return out

    def non_phis(self) -> List[Instruction]:
        return self.instructions[len(self.phis()):]

    def first_non_phi_index(self) -> int:
        idx = 0
        for inst in self.instructions:
            if not inst.is_phi:
                break
            idx += 1
        return idx

    # -- CFG ---------------------------------------------------------------------
    def successors(self) -> List["BasicBlock"]:
        insts = self.instructions
        if insts and insts[-1].is_terminator:
            return insts[-1].successors()
        return []

    def predecessors(self) -> List["BasicBlock"]:
        """Predecessor blocks, deduplicated, in deterministic order."""
        preds: List[BasicBlock] = []
        seen = set()
        for user in self._uses:
            if isinstance(user, Instruction) and user.is_terminator:
                pred = user.parent
                if pred is not None and id(pred) not in seen:
                    seen.add(id(pred))
                    preds.append(pred)
        return preds

    # -- mutation ----------------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        if inst.parent is not None:
            raise ValueError("instruction already belongs to a block")
        if self.is_terminated:
            raise ValueError(f"block {self.name!r} is already terminated")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        if inst.parent is not None:
            raise ValueError("instruction already belongs to a block")
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def insert_before(self, anchor: Instruction, inst: Instruction) -> Instruction:
        return self.insert(self.instructions.index(anchor), inst)

    def insert_after(self, anchor: Instruction, inst: Instruction) -> Instruction:
        return self.insert(self.instructions.index(anchor) + 1, inst)

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        term = self.terminator
        if term is None:
            return self.append(inst)
        return self.insert_before(term, inst)

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    def erase_from_parent(self) -> None:
        """Remove this block from its function, dropping all its instructions."""
        for inst in list(self.instructions):
            inst.erase_from_parent()
        if self.parent is not None:
            self.parent.remove_block(self)

    def ref(self) -> str:
        return f"%{self.name}" if self.name else "%<anon-bb>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name!r} ({len(self.instructions)} insts)>"
