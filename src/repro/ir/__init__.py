"""A self-contained, LLVM-shaped SSA IR.

This package is the substrate the F3M reproduction runs on: typed values,
instructions, basic blocks, functions and modules, plus a textual
printer/parser, a verifier and a reference interpreter.
"""

from .basicblock import BasicBlock
from .builder import IRBuilder
from .clone import clone_function, clone_function_into, clone_instruction
from .function import Function
from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    FCmpPred,
    GetElementPtr,
    ICmp,
    ICmpPred,
    Instruction,
    Invoke,
    Load,
    Opcode,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .interp import ExecutionResult, FuelExhausted, Interpreter, InterpError, Trap
from .module import Module, link_modules
from .parser import ParseError, parse_function, parse_module
from .printer import format_instruction, print_function, print_module
from .types import (
    DOUBLE,
    FLOAT,
    I1,
    I8,
    I16,
    I32,
    I64,
    LABEL,
    VOID,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    LabelType,
    PointerType,
    StructType,
    Type,
    VoidType,
)
from .values import (
    Argument,
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    UndefValue,
    User,
    Value,
)
from .verifier import VerificationError, verify_function, verify_module

__all__ = [name for name in dir() if not name.startswith("_")]
