"""A convenience builder for constructing IR, in the style of ``IRBuilder``."""

from __future__ import annotations

from typing import Optional, Sequence

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    FCmpPred,
    GetElementPtr,
    ICmp,
    ICmpPred,
    Instruction,
    Invoke,
    Load,
    Opcode,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .types import FloatType, IntType, PointerType, Type
from .values import ConstantFloat, ConstantInt, ConstantNull, UndefValue, Value

__all__ = ["IRBuilder"]


class IRBuilder:
    """Appends instructions to an insertion block, auto-naming results."""

    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self.block = block

    # -- positioning -------------------------------------------------------------
    def position_at_end(self, block: BasicBlock) -> "IRBuilder":
        self.block = block
        return self

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise ValueError("builder is not positioned inside a function")
        return self.block.parent

    def _emit(self, inst: Instruction, name: str) -> Instruction:
        if self.block is None:
            raise ValueError("builder has no insertion block")
        if not inst.type.is_void:
            inst.name = name or self.function.next_name()
        self.block.append(inst)
        return inst

    # -- constants ---------------------------------------------------------------
    @staticmethod
    def const_int(type_: IntType, value: int) -> ConstantInt:
        return ConstantInt(type_, value)

    @staticmethod
    def const_float(type_: FloatType, value: float) -> ConstantFloat:
        return ConstantFloat(type_, value)

    @staticmethod
    def null(type_: PointerType) -> ConstantNull:
        return ConstantNull(type_)

    @staticmethod
    def undef(type_: Type) -> UndefValue:
        return UndefValue(type_)

    # -- binary ops ----------------------------------------------------------------
    def binop(self, opcode: Opcode, lhs: Value, rhs: Value, name: str = "") -> Instruction:
        return self._emit(BinaryOp(opcode, lhs, rhs), name)

    def add(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.ADD, a, b, name)

    def sub(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.SUB, a, b, name)

    def mul(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.MUL, a, b, name)

    def sdiv(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.SDIV, a, b, name)

    def udiv(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.UDIV, a, b, name)

    def srem(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.SREM, a, b, name)

    def urem(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.UREM, a, b, name)

    def and_(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.AND, a, b, name)

    def or_(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.OR, a, b, name)

    def xor(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.XOR, a, b, name)

    def shl(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.SHL, a, b, name)

    def lshr(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.LSHR, a, b, name)

    def ashr(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.ASHR, a, b, name)

    def fadd(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.FADD, a, b, name)

    def fsub(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.FSUB, a, b, name)

    def fmul(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.FMUL, a, b, name)

    def fdiv(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop(Opcode.FDIV, a, b, name)

    # -- comparisons / select --------------------------------------------------------
    def icmp(self, pred: ICmpPred, a: Value, b: Value, name: str = "") -> Instruction:
        return self._emit(ICmp(pred, a, b), name)

    def fcmp(self, pred: FCmpPred, a: Value, b: Value, name: str = "") -> Instruction:
        return self._emit(FCmp(pred, a, b), name)

    def select(self, cond: Value, if_true: Value, if_false: Value, name: str = "") -> Instruction:
        return self._emit(Select(cond, if_true, if_false), name)

    # -- memory ------------------------------------------------------------------
    def alloca(self, type_: Type, name: str = "") -> Instruction:
        return self._emit(Alloca(type_), name)

    def load(self, pointer: Value, name: str = "") -> Instruction:
        return self._emit(Load(pointer), name)

    def store(self, value: Value, pointer: Value) -> Instruction:
        return self._emit(Store(value, pointer), "")

    def gep(self, pointer: Value, indices: Sequence[Value], name: str = "") -> Instruction:
        return self._emit(GetElementPtr(pointer, indices), name)

    # -- casts --------------------------------------------------------------------
    def cast(self, opcode: Opcode, value: Value, dest: Type, name: str = "") -> Instruction:
        return self._emit(Cast(opcode, value, dest), name)

    def trunc(self, value: Value, dest: Type, name: str = "") -> Instruction:
        return self.cast(Opcode.TRUNC, value, dest, name)

    def zext(self, value: Value, dest: Type, name: str = "") -> Instruction:
        return self.cast(Opcode.ZEXT, value, dest, name)

    def sext(self, value: Value, dest: Type, name: str = "") -> Instruction:
        return self.cast(Opcode.SEXT, value, dest, name)

    def bitcast(self, value: Value, dest: Type, name: str = "") -> Instruction:
        return self.cast(Opcode.BITCAST, value, dest, name)

    def sitofp(self, value: Value, dest: Type, name: str = "") -> Instruction:
        return self.cast(Opcode.SITOFP, value, dest, name)

    def fptosi(self, value: Value, dest: Type, name: str = "") -> Instruction:
        return self.cast(Opcode.FPTOSI, value, dest, name)

    # -- calls --------------------------------------------------------------------
    def call(self, callee: Value, args: Sequence[Value], name: str = "") -> Instruction:
        return self._emit(Call(callee, args), name)

    def invoke(
        self,
        callee: Value,
        args: Sequence[Value],
        normal_dest: BasicBlock,
        unwind_dest: BasicBlock,
        name: str = "",
    ) -> Instruction:
        return self._emit(Invoke(callee, args, normal_dest, unwind_dest), name)

    # -- phi / control flow --------------------------------------------------------
    def phi(self, type_: Type, name: str = "") -> Phi:
        return self._emit(Phi(type_), name)  # type: ignore[return-value]

    def br(self, target: BasicBlock) -> Instruction:
        return self._emit(Branch(target), "")

    def cond_br(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Instruction:
        return self._emit(Branch(cond, if_true, if_false), "")

    def switch(self, value: Value, default: BasicBlock) -> Switch:
        return self._emit(Switch(value, default), "")  # type: ignore[return-value]

    def ret(self, value: Optional[Value] = None) -> Instruction:
        return self._emit(Ret(value), "")

    def unreachable(self) -> Instruction:
        return self._emit(Unreachable(), "")
