"""Functions for the repro IR."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from .basicblock import BasicBlock
from .instructions import Instruction
from .types import FunctionType, PointerType
from .values import Argument, Value

if TYPE_CHECKING:  # pragma: no cover
    from .module import Module

__all__ = ["Function"]


class Function(Value):
    """An IR function: typed arguments plus a list of basic blocks.

    A function with no blocks is a *declaration* (external).  Functions are
    values of pointer-to-function type so they can be used as call operands
    and stored/passed (``address_taken`` tracks indirect uses, which matters
    for merge-time thunk generation).
    """

    __slots__ = ("ftype", "args", "blocks", "parent", "internal", "_name_counter")

    def __init__(
        self,
        ftype: FunctionType,
        name: str,
        parent: Optional["Module"] = None,
        internal: bool = True,
    ) -> None:
        super().__init__(PointerType(ftype), name)
        self.ftype = ftype
        self.args: List[Argument] = [
            Argument(pt, f"arg{i}", i, self) for i, pt in enumerate(ftype.params)
        ]
        self.blocks: List[BasicBlock] = []
        self.parent = parent
        # Internal linkage: all callers are visible, so the function body can
        # be replaced/removed by merging.  External functions keep a thunk.
        self.internal = internal
        self._name_counter = 0
        if parent is not None:
            parent.add_function(self)

    # -- structure ---------------------------------------------------------------
    @property
    def return_type(self):
        return self.ftype.ret

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name!r} has no body")
        return self.blocks[0]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    @property
    def num_instructions(self) -> int:
        return sum(len(b) for b in self.blocks)

    # -- naming ------------------------------------------------------------------
    def next_name(self, prefix: str = "t") -> str:
        """A fresh local value name, unique within this function."""
        self._name_counter += 1
        return f"{prefix}{self._name_counter}"

    def uniquify_names(self) -> None:
        """Assign fresh names to unnamed/duplicate blocks and instructions."""
        seen: Dict[str, int] = {}

        def unique(base: str) -> str:
            name = base or "v"
            n = seen.get(name)
            if n is None:
                seen[name] = 0
                return name
            while True:
                n += 1
                candidate = f"{name}.{n}"
                if candidate not in seen:
                    seen[name] = n
                    seen[candidate] = 0
                    return candidate

        for arg in self.args:
            arg.name = unique(arg.name)
        for block in self.blocks:
            block.name = unique(block.name or "bb")
        for block in self.blocks:
            for inst in block.instructions:
                if not inst.type.is_void:
                    inst.name = unique(inst.name or "v")

    # -- mutation ----------------------------------------------------------------
    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.parent not in (None, self):
            raise ValueError("block already belongs to another function")
        block.parent = self
        self.blocks.append(block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def move_block_after(self, block: BasicBlock, anchor: BasicBlock) -> None:
        self.blocks.remove(block)
        self.blocks.insert(self.blocks.index(anchor) + 1, block)

    def drop_body(self) -> None:
        """Delete all blocks, turning the function into a declaration."""
        for block in list(self.blocks):
            for inst in list(block.instructions):
                inst.drop_all_references()
                inst.parent = None
            block.instructions.clear()
        for block in list(self.blocks):
            block.parent = None
        self.blocks.clear()

    def erase_from_parent(self) -> None:
        self.drop_body()
        if self.parent is not None:
            self.parent.remove_function(self)

    # -- queries -----------------------------------------------------------------
    def callers(self) -> List[Instruction]:
        """Direct call/invoke sites whose callee operand is this function."""
        from .instructions import Opcode

        sites = []
        for user, idx in self.uses():
            if (
                isinstance(user, Instruction)
                and user.opcode in (Opcode.CALL, Opcode.INVOKE)
                and idx == 0
            ):
                sites.append(user)
        return sites

    @property
    def address_taken(self) -> bool:
        """True if the function is referenced other than as a direct callee."""
        from .instructions import Opcode

        for user, idx in self.uses():
            if not isinstance(user, Instruction):
                return True
            if user.opcode not in (Opcode.CALL, Opcode.INVOKE) or idx != 0:
                return True
        return False

    def ref(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "declare" if self.is_declaration else "define"
        return f"<Function {kind} {self.ftype.ret} @{self.name}>"
