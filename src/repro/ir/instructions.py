"""Instruction set of the repro IR.

A deliberately LLVM-shaped instruction set: binary arithmetic, comparisons,
memory (``alloca``/``load``/``store``/``gep``), casts, ``phi``/``select``,
calls (including ``invoke``, needed to reproduce the second SSA-repair bug of
F3M Section III-E) and control flow.

Opcodes carry **stable integer codes** (:class:`Opcode`) because the paper's
instruction encoding packs the opcode number into the fingerprint; stability
across runs keeps MinHash fingerprints deterministic.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from .types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
    I1,
    I64,
)
from .values import ConstantInt, User, Value

if TYPE_CHECKING:  # pragma: no cover
    from .basicblock import BasicBlock
    from .function import Function

__all__ = [
    "Opcode",
    "ICmpPred",
    "FCmpPred",
    "Instruction",
    "BinaryOp",
    "ICmp",
    "FCmp",
    "Select",
    "Cast",
    "Alloca",
    "Load",
    "Store",
    "GetElementPtr",
    "Call",
    "Invoke",
    "Phi",
    "Branch",
    "Switch",
    "Ret",
    "Unreachable",
    "BINARY_OPCODES",
    "CAST_OPCODES",
    "TERMINATOR_OPCODES",
]


class Opcode(enum.IntEnum):
    """Stable opcode numbering (mirrors LLVM's ``Instruction::getOpcode``)."""

    # terminators
    RET = 1
    BR = 2
    SWITCH = 3
    INVOKE = 4
    UNREACHABLE = 5
    # integer binary
    ADD = 10
    SUB = 11
    MUL = 12
    SDIV = 13
    UDIV = 14
    SREM = 15
    UREM = 16
    # float binary
    FADD = 17
    FSUB = 18
    FMUL = 19
    FDIV = 20
    FREM = 21
    # bitwise binary
    SHL = 22
    LSHR = 23
    ASHR = 24
    AND = 25
    OR = 26
    XOR = 27
    # memory
    ALLOCA = 30
    LOAD = 31
    STORE = 32
    GEP = 33
    # casts
    TRUNC = 38
    ZEXT = 39
    SEXT = 40
    FPTRUNC = 41
    FPEXT = 42
    FPTOSI = 43
    SITOFP = 44
    PTRTOINT = 45
    INTTOPTR = 46
    BITCAST = 47
    # other
    ICMP = 53
    FCMP = 54
    PHI = 55
    CALL = 56
    SELECT = 57


BINARY_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.SDIV,
        Opcode.UDIV,
        Opcode.SREM,
        Opcode.UREM,
        Opcode.FADD,
        Opcode.FSUB,
        Opcode.FMUL,
        Opcode.FDIV,
        Opcode.FREM,
        Opcode.SHL,
        Opcode.LSHR,
        Opcode.ASHR,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
    }
)

CAST_OPCODES = frozenset(
    {
        Opcode.TRUNC,
        Opcode.ZEXT,
        Opcode.SEXT,
        Opcode.FPTRUNC,
        Opcode.FPEXT,
        Opcode.FPTOSI,
        Opcode.SITOFP,
        Opcode.PTRTOINT,
        Opcode.INTTOPTR,
        Opcode.BITCAST,
    }
)

TERMINATOR_OPCODES = frozenset(
    {Opcode.RET, Opcode.BR, Opcode.SWITCH, Opcode.INVOKE, Opcode.UNREACHABLE}
)

_COMMUTATIVE = frozenset(
    {
        Opcode.ADD,
        Opcode.MUL,
        Opcode.FADD,
        Opcode.FMUL,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
    }
)

_FLOAT_BINARY = frozenset(
    {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FREM}
)


class ICmpPred(enum.IntEnum):
    EQ = 32
    NE = 33
    UGT = 34
    UGE = 35
    ULT = 36
    ULE = 37
    SGT = 38
    SGE = 39
    SLT = 40
    SLE = 41


class FCmpPred(enum.IntEnum):
    OEQ = 1
    OGT = 2
    OGE = 3
    OLT = 4
    OLE = 5
    ONE = 6
    ORD = 7
    UNO = 8
    UEQ = 9
    UNE = 14


class Instruction(User):
    """Base class of all instructions.

    An instruction is also a :class:`Value` (its result).  ``parent`` is the
    owning :class:`BasicBlock`, maintained by the block's insertion API.
    """

    __slots__ = ("opcode", "parent")

    def __init__(self, opcode: Opcode, type_: Type, operands: Sequence[Value], name: str = "") -> None:
        super().__init__(type_, name)
        self.opcode = opcode
        self.parent: Optional["BasicBlock"] = None
        for op in operands:
            self._append_operand(op)

    # -- classification ----------------------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATOR_OPCODES

    @property
    def is_binary(self) -> bool:
        return self.opcode in BINARY_OPCODES

    @property
    def is_cast(self) -> bool:
        return self.opcode in CAST_OPCODES

    @property
    def is_commutative(self) -> bool:
        return self.opcode in _COMMUTATIVE

    @property
    def is_phi(self) -> bool:
        return self.opcode == Opcode.PHI

    def may_write_memory(self) -> bool:
        return self.opcode in (Opcode.STORE, Opcode.CALL, Opcode.INVOKE)

    def may_read_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.CALL, Opcode.INVOKE)

    def has_side_effects(self) -> bool:
        return self.may_write_memory() or self.is_terminator

    # -- CFG ---------------------------------------------------------------------
    def successors(self) -> List["BasicBlock"]:
        """Successor blocks (non-empty only for terminators)."""
        return []

    @property
    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent is not None else None

    # -- mutation ----------------------------------------------------------------
    def erase_from_parent(self) -> None:
        """Remove from the owning block and drop operand references."""
        if self.parent is not None:
            self.parent.remove(self)
        self.drop_all_references()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import format_instruction

        try:
            return f"<{format_instruction(self)}>"
        except Exception:
            return f"<Instruction {self.opcode.name}>"


class BinaryOp(Instruction):
    __slots__ = ()

    def __init__(self, opcode: Opcode, lhs: Value, rhs: Value, name: str = "") -> None:
        if opcode not in BINARY_OPCODES:
            raise ValueError(f"{opcode!r} is not a binary opcode")
        if lhs.type is not rhs.type:
            raise TypeError(f"binary operand type mismatch: {lhs.type} vs {rhs.type}")
        if opcode in _FLOAT_BINARY:
            if not lhs.type.is_float:
                raise TypeError(f"{opcode.name} requires float operands, got {lhs.type}")
        elif not lhs.type.is_int:
            raise TypeError(f"{opcode.name} requires integer operands, got {lhs.type}")
        super().__init__(opcode, lhs.type, [lhs, rhs], name)

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


class ICmp(Instruction):
    __slots__ = ("pred",)

    def __init__(self, pred: ICmpPred, lhs: Value, rhs: Value, name: str = "") -> None:
        if lhs.type is not rhs.type:
            raise TypeError(f"icmp operand type mismatch: {lhs.type} vs {rhs.type}")
        if not (lhs.type.is_int or lhs.type.is_pointer):
            raise TypeError(f"icmp requires int or pointer operands, got {lhs.type}")
        super().__init__(Opcode.ICMP, I1, [lhs, rhs], name)
        self.pred = pred


class FCmp(Instruction):
    __slots__ = ("pred",)

    def __init__(self, pred: FCmpPred, lhs: Value, rhs: Value, name: str = "") -> None:
        if lhs.type is not rhs.type:
            raise TypeError(f"fcmp operand type mismatch: {lhs.type} vs {rhs.type}")
        if not lhs.type.is_float:
            raise TypeError(f"fcmp requires float operands, got {lhs.type}")
        super().__init__(Opcode.FCMP, I1, [lhs, rhs], name)
        self.pred = pred


class Select(Instruction):
    __slots__ = ()

    def __init__(self, cond: Value, if_true: Value, if_false: Value, name: str = "") -> None:
        if cond.type is not I1:
            raise TypeError(f"select condition must be i1, got {cond.type}")
        if if_true.type is not if_false.type:
            raise TypeError(
                f"select arm type mismatch: {if_true.type} vs {if_false.type}"
            )
        super().__init__(Opcode.SELECT, if_true.type, [cond, if_true, if_false], name)

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def true_value(self) -> Value:
        return self.operand(1)

    @property
    def false_value(self) -> Value:
        return self.operand(2)


_CAST_NAMES = {
    Opcode.TRUNC: "trunc",
    Opcode.ZEXT: "zext",
    Opcode.SEXT: "sext",
    Opcode.FPTRUNC: "fptrunc",
    Opcode.FPEXT: "fpext",
    Opcode.FPTOSI: "fptosi",
    Opcode.SITOFP: "sitofp",
    Opcode.PTRTOINT: "ptrtoint",
    Opcode.INTTOPTR: "inttoptr",
    Opcode.BITCAST: "bitcast",
}


def _check_cast(opcode: Opcode, src: Type, dst: Type) -> None:
    ok = True
    if opcode == Opcode.TRUNC:
        ok = src.is_int and dst.is_int and src.bits > dst.bits  # type: ignore[attr-defined]
    elif opcode in (Opcode.ZEXT, Opcode.SEXT):
        ok = src.is_int and dst.is_int and src.bits < dst.bits  # type: ignore[attr-defined]
    elif opcode == Opcode.FPTRUNC:
        ok = src.is_float and dst.is_float and src.bits > dst.bits  # type: ignore[attr-defined]
    elif opcode == Opcode.FPEXT:
        ok = src.is_float and dst.is_float and src.bits < dst.bits  # type: ignore[attr-defined]
    elif opcode == Opcode.FPTOSI:
        ok = src.is_float and dst.is_int
    elif opcode == Opcode.SITOFP:
        ok = src.is_int and dst.is_float
    elif opcode == Opcode.PTRTOINT:
        ok = src.is_pointer and dst.is_int
    elif opcode == Opcode.INTTOPTR:
        ok = src.is_int and dst.is_pointer
    elif opcode == Opcode.BITCAST:
        ok = (src.is_pointer and dst.is_pointer) or (
            src.is_int and dst.is_float and src.bits == dst.bits  # type: ignore[attr-defined]
        ) or (
            src.is_float and dst.is_int and src.bits == dst.bits  # type: ignore[attr-defined]
        )
    if not ok:
        raise TypeError(f"invalid {_CAST_NAMES[opcode]} from {src} to {dst}")


class Cast(Instruction):
    __slots__ = ()

    def __init__(self, opcode: Opcode, value: Value, dest_type: Type, name: str = "") -> None:
        if opcode not in CAST_OPCODES:
            raise ValueError(f"{opcode!r} is not a cast opcode")
        _check_cast(opcode, value.type, dest_type)
        super().__init__(opcode, dest_type, [value], name)

    @property
    def value(self) -> Value:
        return self.operand(0)


class Alloca(Instruction):
    """Stack allocation; yields a pointer to ``allocated_type``."""

    __slots__ = ("allocated_type",)

    def __init__(self, allocated_type: Type, name: str = "") -> None:
        if not allocated_type.is_first_class:
            raise TypeError(f"cannot allocate {allocated_type}")
        super().__init__(Opcode.ALLOCA, PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type


class Load(Instruction):
    __slots__ = ()

    def __init__(self, pointer: Value, name: str = "") -> None:
        if not pointer.type.is_pointer:
            raise TypeError(f"load requires a pointer operand, got {pointer.type}")
        super().__init__(Opcode.LOAD, pointer.type.pointee, [pointer], name)  # type: ignore[attr-defined]

    @property
    def pointer(self) -> Value:
        return self.operand(0)


class Store(Instruction):
    __slots__ = ()

    def __init__(self, value: Value, pointer: Value) -> None:
        if not pointer.type.is_pointer:
            raise TypeError(f"store requires a pointer operand, got {pointer.type}")
        if pointer.type.pointee is not value.type:  # type: ignore[attr-defined]
            raise TypeError(
                f"store type mismatch: {value.type} into {pointer.type}"
            )
        super().__init__(Opcode.STORE, VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def pointer(self) -> Value:
        return self.operand(1)


def gep_result_type(base: Type, indices: Sequence[Value]) -> Type:
    """Resolve the pointee type reached by a GEP index list."""
    if not base.is_pointer:
        raise TypeError(f"gep base must be a pointer, got {base}")
    current: Type = base.pointee  # type: ignore[attr-defined]
    for idx in indices[1:]:
        if isinstance(current, ArrayType):
            current = current.element
        elif isinstance(current, StructType):
            if not isinstance(idx, ConstantInt):
                raise TypeError("struct gep index must be a constant integer")
            field = idx.value
            if field >= len(current.fields):
                raise TypeError(f"struct index {field} out of range for {current}")
            current = current.fields[field]
        else:
            raise TypeError(f"cannot index into {current}")
    return PointerType(current)


class GetElementPtr(Instruction):
    __slots__ = ()

    def __init__(self, pointer: Value, indices: Sequence[Value], name: str = "") -> None:
        for idx in indices:
            if not idx.type.is_int:
                raise TypeError(f"gep index must be an integer, got {idx.type}")
        result = gep_result_type(pointer.type, list(indices))
        super().__init__(Opcode.GEP, result, [pointer] + list(indices), name)

    @property
    def pointer(self) -> Value:
        return self.operand(0)

    @property
    def indices(self) -> Tuple[Value, ...]:
        return self.operands[1:]


def _check_call(callee: Value, args: Sequence[Value]) -> Type:
    ftype = callee.type
    if ftype.is_pointer:
        ftype = ftype.pointee  # type: ignore[attr-defined]
    if not isinstance(ftype, FunctionType):
        raise TypeError(f"callee is not a function: {callee.type}")
    if len(args) != len(ftype.params):
        raise TypeError(
            f"call expects {len(ftype.params)} arguments, got {len(args)}"
        )
    for i, (arg, param) in enumerate(zip(args, ftype.params)):
        if arg.type is not param:
            raise TypeError(f"call argument {i} type mismatch: {arg.type} vs {param}")
    return ftype.ret


class Call(Instruction):
    __slots__ = ()

    def __init__(self, callee: Value, args: Sequence[Value], name: str = "") -> None:
        ret = _check_call(callee, args)
        super().__init__(Opcode.CALL, ret, [callee] + list(args), name)

    @property
    def callee(self) -> Value:
        return self.operand(0)

    @property
    def args(self) -> Tuple[Value, ...]:
        return self.operands[1:]


class Invoke(Instruction):
    """Call with exceptional control flow; a terminator.

    Operand layout: ``[callee, arg..., normal_dest, unwind_dest]``.
    """

    __slots__ = ()

    def __init__(
        self,
        callee: Value,
        args: Sequence[Value],
        normal_dest: "BasicBlock",
        unwind_dest: "BasicBlock",
        name: str = "",
    ) -> None:
        ret = _check_call(callee, args)
        super().__init__(
            Opcode.INVOKE, ret, [callee] + list(args) + [normal_dest, unwind_dest], name
        )

    @property
    def callee(self) -> Value:
        return self.operand(0)

    @property
    def args(self) -> Tuple[Value, ...]:
        return self.operands[1:-2]

    @property
    def normal_dest(self) -> "BasicBlock":
        return self.operand(self.num_operands - 2)  # type: ignore[return-value]

    @property
    def unwind_dest(self) -> "BasicBlock":
        return self.operand(self.num_operands - 1)  # type: ignore[return-value]

    def successors(self) -> List["BasicBlock"]:
        ops = self._operands
        return [ops[-2], ops[-1]]  # type: ignore[list-item]


class Phi(Instruction):
    """SSA phi node; operands alternate ``[value0, block0, value1, block1, ...]``."""

    __slots__ = ()

    def __init__(self, type_: Type, name: str = "") -> None:
        super().__init__(Opcode.PHI, type_, [], name)

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type is not self.type:
            raise TypeError(f"phi incoming type mismatch: {value.type} vs {self.type}")
        self._append_operand(value)
        self._append_operand(block)

    @property
    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        ops = self._operands
        return [(ops[i], ops[i + 1]) for i in range(0, len(ops), 2)]  # type: ignore[list-item]

    def incoming_for(self, block: "BasicBlock") -> Optional[Value]:
        for value, pred in self.incoming:
            if pred is block:
                return value
        return None

    def remove_incoming(self, block: "BasicBlock") -> None:
        for i in range(0, len(self._operands), 2):
            if self._operands[i + 1] is block:
                self._pop_operand(i + 1)
                self._pop_operand(i)
                return
        raise ValueError(f"block {block.name} is not an incoming edge")

    def set_incoming_block(self, old: "BasicBlock", new: "BasicBlock") -> None:
        for i in range(1, len(self._operands), 2):
            if self._operands[i] is old:
                self.set_operand(i, new)  # type: ignore[arg-type]


class Branch(Instruction):
    """Conditional (``br i1 c, T, F``) or unconditional (``br T``) branch."""

    __slots__ = ()

    def __init__(
        self,
        target_or_cond,
        if_true: Optional["BasicBlock"] = None,
        if_false: Optional["BasicBlock"] = None,
    ) -> None:
        if if_true is None:
            super().__init__(Opcode.BR, VOID, [target_or_cond])
        else:
            cond = target_or_cond
            if cond.type is not I1:
                raise TypeError(f"branch condition must be i1, got {cond.type}")
            if if_false is None:
                raise ValueError("conditional branch requires a false target")
            super().__init__(Opcode.BR, VOID, [cond, if_true, if_false])

    @property
    def is_conditional(self) -> bool:
        return self.num_operands == 3

    @property
    def condition(self) -> Value:
        if not self.is_conditional:
            raise ValueError("unconditional branch has no condition")
        return self.operand(0)

    def successors(self) -> List["BasicBlock"]:
        ops = self._operands
        if len(ops) == 3:
            return [ops[1], ops[2]]  # type: ignore[list-item]
        return [ops[0]]  # type: ignore[list-item]


class Switch(Instruction):
    """``switch`` on an integer value.

    Operand layout: ``[value, default, const0, block0, const1, block1, ...]``.
    """

    __slots__ = ()

    def __init__(self, value: Value, default: "BasicBlock") -> None:
        if not value.type.is_int:
            raise TypeError(f"switch requires an integer value, got {value.type}")
        super().__init__(Opcode.SWITCH, VOID, [value, default])

    def add_case(self, const: ConstantInt, block: "BasicBlock") -> None:
        if const.type is not self.operand(0).type:
            raise TypeError("switch case type mismatch")
        self._append_operand(const)
        self._append_operand(block)

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def default(self) -> "BasicBlock":
        return self.operand(1)  # type: ignore[return-value]

    @property
    def cases(self) -> List[Tuple[ConstantInt, "BasicBlock"]]:
        ops = self._operands
        return [(ops[i], ops[i + 1]) for i in range(2, len(ops), 2)]  # type: ignore[list-item]

    def successors(self) -> List["BasicBlock"]:
        ops = self._operands
        return [ops[1], *ops[3::2]]  # type: ignore[list-item]


class Ret(Instruction):
    __slots__ = ()

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__(Opcode.RET, VOID, [] if value is None else [value])

    @property
    def value(self) -> Optional[Value]:
        return self.operand(0) if self.num_operands else None

    def successors(self) -> List["BasicBlock"]:
        return []


class Unreachable(Instruction):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(Opcode.UNREACHABLE, VOID, [])
