"""Modules (translation units) for the repro IR."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .function import Function
from .types import FunctionType

__all__ = ["Module", "link_modules"]


class Module:
    """A collection of functions — the unit function merging operates on.

    The paper applies merging after all source files are linked into one
    monolithic bitcode file (LTO fashion); :func:`link_modules` provides the
    equivalent for our workload generators.
    """

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self._functions: Dict[str, Function] = {}

    # -- access ------------------------------------------------------------------
    @property
    def functions(self) -> List[Function]:
        return list(self._functions.values())

    def __iter__(self) -> Iterator[Function]:
        return iter(self._functions.values())

    def __len__(self) -> int:
        return len(self._functions)

    def get_function(self, name: str) -> Optional[Function]:
        return self._functions.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def defined_functions(self) -> List[Function]:
        return [f for f in self._functions.values() if not f.is_declaration]

    @property
    def num_instructions(self) -> int:
        return sum(f.num_instructions for f in self._functions.values())

    # -- mutation ----------------------------------------------------------------
    def add_function(self, func: Function) -> Function:
        if func.name in self._functions and self._functions[func.name] is not func:
            raise ValueError(f"duplicate function name {func.name!r}")
        func.parent = self
        self._functions[func.name] = func
        return func

    def remove_function(self, func: Function) -> None:
        existing = self._functions.get(func.name)
        if existing is not func:
            raise ValueError(f"function {func.name!r} is not in this module")
        del self._functions[func.name]
        func.parent = None

    def declare_function(self, ftype: FunctionType, name: str) -> Function:
        """Get-or-create an external declaration."""
        existing = self._functions.get(name)
        if existing is not None:
            if existing.ftype is not ftype:
                raise ValueError(f"conflicting types for {name!r}")
            return existing
        return Function(ftype, name, parent=self, internal=False)

    def unique_name(self, base: str) -> str:
        if base not in self._functions:
            return base
        n = 1
        while f"{base}.{n}" in self._functions:
            n += 1
        return f"{base}.{n}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Module {self.name!r} ({len(self._functions)} functions)>"


def link_modules(modules: List[Module], name: str = "linked") -> Module:
    """Link *modules* into a single module, LTO-style.

    Definitions win over declarations; duplicate definitions are renamed
    (the paper notes name conflicts were handled by leaving code out — we
    rename instead, which keeps every function in play for merging).
    """
    out = Module(name)
    for mod in modules:
        for func in mod.functions:
            existing = out.get_function(func.name)
            if existing is None:
                mod.remove_function(func)
                out.add_function(func)
            elif existing.is_declaration and not func.is_declaration:
                existing.replace_all_uses_with(func)
                out.remove_function(existing)
                mod.remove_function(func)
                out.add_function(func)
            elif func.is_declaration:
                func.replace_all_uses_with(existing)
            else:
                mod.remove_function(func)
                func.name = out.unique_name(func.name)
                out.add_function(func)
    return out
