"""Parser for the textual repro IR (the format produced by the printer).

The grammar is a compact LLVM dialect — see :mod:`repro.ir.printer`.  The
parser exists so tests and examples can state IR literally, and so the
printer/parser round-trip can be property-tested.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    FCmpPred,
    GetElementPtr,
    ICmp,
    ICmpPred,
    Invoke,
    Load,
    Opcode,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
    BINARY_OPCODES,
    CAST_OPCODES,
)
from .module import Module
from .types import (
    ArrayType,
    DOUBLE,
    FLOAT,
    FunctionType,
    IntType,
    LABEL,
    PointerType,
    StructType,
    Type,
    VOID,
)
from .values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    UndefValue,
    Value,
)

__all__ = ["ParseError", "parse_module", "parse_function"]


class ParseError(Exception):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>;[^\n]*)
  | (?P<local>%[A-Za-z0-9_.\-]+)
  | (?P<global>@[A-Za-z0-9_.\-$]+)
  | (?P<float>-?\d+\.\d+(e[-+]?\d+)?|-?inf|nan)
  | (?P<int>-?\d+)
  | (?P<word>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<punct>\*|[(){}\[\],:=])
    """,
    re.VERBOSE,
)

_BINARY_WORDS = {op.name.lower(): op for op in BINARY_OPCODES}
_CAST_WORDS = {op.name.lower(): op for op in CAST_OPCODES}
_ICMP_PREDS = {p.name.lower(): p for p in ICmpPred}
_FCMP_PREDS = {p.name.lower(): p for p in FCmpPred}


class _Tokens:
    def __init__(self, text: str) -> None:
        self.tokens: List[Tuple[str, str, int]] = []
        line = 1
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if m is None:
                raise ParseError(f"unexpected character {text[pos]!r}", line)
            kind = m.lastgroup or ""
            value = m.group(0)
            if kind not in ("ws", "comment"):
                self.tokens.append((kind, value, line))
            line += value.count("\n")
            pos = m.end()
        self.index = 0

    @property
    def line(self) -> int:
        if self.index < len(self.tokens):
            return self.tokens[self.index][2]
        return self.tokens[-1][2] if self.tokens else 1

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.index < len(self.tokens):
            kind, value, _ = self.tokens[self.index]
            return kind, value
        return None

    def next(self) -> Tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input", self.line)
        self.index += 1
        return tok

    def expect(self, value: str) -> str:
        kind, got = self.next()
        if got != value:
            raise ParseError(f"expected {value!r}, got {got!r}", self.line)
        return got

    def accept(self, value: str) -> bool:
        tok = self.peek()
        if tok is not None and tok[1] == value:
            self.index += 1
            return True
        return False


def _parse_type(toks: _Tokens) -> Type:
    kind, value = toks.next()
    base: Type
    if value == "void":
        base = VOID
    elif value == "label":
        base = LABEL
    elif value == "float":
        base = FLOAT
    elif value == "double":
        base = DOUBLE
    elif kind == "word" and re.fullmatch(r"i\d+", value):
        base = IntType(int(value[1:]))
    elif value == "[":
        _, count = toks.next()
        toks.expect("x")
        elem = _parse_type(toks)
        toks.expect("]")
        base = ArrayType(elem, int(count))
    elif value == "{":
        fields = []
        if not toks.accept("}"):
            fields.append(_parse_type(toks))
            while toks.accept(","):
                fields.append(_parse_type(toks))
            toks.expect("}")
        base = StructType(fields)
    else:
        raise ParseError(f"expected a type, got {value!r}", toks.line)
    # Suffixes: "(params)" builds a function type, "*" a pointer.  This is
    # unambiguous because every call-like construct puts the callee token
    # between the return type and its argument parenthesis, so a "(" right
    # after a type can only be a function-type parameter list (the operand
    # spelling of address-taken functions: ``i32 (i32)* @callee``).
    while True:
        if toks.accept("("):
            params = []
            if not toks.accept(")"):
                params.append(_parse_type(toks))
                while toks.accept(","):
                    params.append(_parse_type(toks))
                toks.expect(")")
            base = FunctionType(base, params)
        elif toks.accept("*"):
            base = PointerType(base)
        else:
            return base


class _FunctionParser:
    """Parses one function body with deferred (two-phase) name resolution."""

    def __init__(self, module: Module, toks: _Tokens) -> None:
        self.module = module
        self.toks = toks
        self.locals: Dict[str, Value] = {}
        self.placeholders: Dict[str, Value] = {}
        self.block_placeholders: Dict[str, BasicBlock] = {}
        self.func: Optional[Function] = None

    # -- name resolution ----------------------------------------------------------
    def _local(self, name: str, type_: Type) -> Value:
        existing = self.locals.get(name)
        if existing is not None:
            return existing
        ph = self.placeholders.get(name)
        if ph is None:
            ph = Value(type_, name)
            self.placeholders[name] = ph
        return ph

    def _block_ref(self, label: str) -> BasicBlock:
        existing = self.locals.get(label)
        if isinstance(existing, BasicBlock):
            return existing
        ph = self.block_placeholders.get(label)
        if ph is None:
            ph = BasicBlock(label)
            self.block_placeholders[label] = ph
        return ph

    def _define(self, name: str, value: Value) -> None:
        if name in self.locals:
            raise ParseError(f"redefinition of %{name}", self.toks.line)
        self.locals[name] = value

    def _resolve(self) -> None:
        for name, ph in self.placeholders.items():
            real = self.locals.get(name)
            if real is None:
                raise ParseError(f"use of undefined value %{name}", self.toks.line)
            ph.replace_all_uses_with(real)
        for label, ph in self.block_placeholders.items():
            real = self.locals.get(label)
            if not isinstance(real, BasicBlock):
                raise ParseError(f"use of undefined label %{label}", self.toks.line)
            ph.replace_all_uses_with(real)

    # -- operands -------------------------------------------------------------------
    def _value(self, type_: Type) -> Value:
        kind, tok = self.toks.next()
        if kind == "local":
            return self._local(tok[1:], type_)
        if kind == "global":
            func = self.module.get_function(tok[1:])
            if func is None:
                raise ParseError(f"unknown function {tok}", self.toks.line)
            return func
        if kind == "int":
            if type_.is_float:
                return ConstantFloat(type_, float(tok))  # type: ignore[arg-type]
            if not type_.is_int:
                raise ParseError(f"integer literal for type {type_}", self.toks.line)
            return ConstantInt(type_, int(tok))  # type: ignore[arg-type]
        if kind == "float":
            return ConstantFloat(type_, float(tok))  # type: ignore[arg-type]
        if tok == "null":
            return ConstantNull(type_)  # type: ignore[arg-type]
        if tok == "undef":
            return UndefValue(type_)
        raise ParseError(f"expected a value, got {tok!r}", self.toks.line)

    def _typed_value(self) -> Value:
        return self._value(_parse_type(self.toks))

    def _label(self) -> BasicBlock:
        self.toks.expect("label")
        kind, tok = self.toks.next()
        if kind != "local":
            raise ParseError(f"expected a label, got {tok!r}", self.toks.line)
        return self._block_ref(tok[1:])

    # -- instructions ------------------------------------------------------------------
    def _parse_instruction(self, block: BasicBlock) -> None:  # noqa: C901
        toks = self.toks
        kind, tok = toks.next()
        result_name: Optional[str] = None
        if kind == "local":
            result_name = tok[1:]
            toks.expect("=")
            kind, tok = toks.next()
        op = tok

        inst = None
        if op == "ret":
            if toks.accept("void"):
                inst = Ret(None)
            else:
                inst = Ret(self._typed_value())
        elif op == "br":
            if toks.peek() and toks.peek()[1] == "label":
                inst = Branch(self._label())
            else:
                cond_ty = _parse_type(toks)
                cond = self._value(cond_ty)
                toks.expect(",")
                t = self._label()
                toks.expect(",")
                f = self._label()
                inst = Branch(cond, t, f)
        elif op == "switch":
            ty = _parse_type(toks)
            value = self._value(ty)
            toks.expect(",")
            default = self._label()
            toks.expect("[")
            sw = Switch(value, default)
            while not toks.accept("]"):
                case_ty = _parse_type(toks)
                const = self._value(case_ty)
                target = self._label()
                if not isinstance(const, ConstantInt):
                    raise ParseError("switch case must be an integer constant", toks.line)
                sw.add_case(const, target)
                toks.accept(",")
            inst = sw
        elif op == "unreachable":
            inst = Unreachable()
        elif op == "icmp":
            _, pred = toks.next()
            ty = _parse_type(toks)
            a = self._value(ty)
            toks.expect(",")
            b = self._value(ty)
            inst = ICmp(_ICMP_PREDS[pred], a, b)
        elif op == "fcmp":
            _, pred = toks.next()
            ty = _parse_type(toks)
            a = self._value(ty)
            toks.expect(",")
            b = self._value(ty)
            inst = FCmp(_FCMP_PREDS[pred], a, b)
        elif op == "select":
            cond = self._typed_value()
            toks.expect(",")
            t = self._typed_value()
            toks.expect(",")
            f = self._typed_value()
            inst = Select(cond, t, f)
        elif op == "alloca":
            inst = Alloca(_parse_type(toks))
        elif op == "load":
            _parse_type(toks)  # result type (redundant)
            toks.expect(",")
            inst = Load(self._typed_value())
        elif op == "store":
            value = self._typed_value()
            toks.expect(",")
            pointer = self._typed_value()
            inst = Store(value, pointer)
        elif op == "gep":
            pointer = self._typed_value()
            indices = []
            while toks.accept(","):
                indices.append(self._typed_value())
            inst = GetElementPtr(pointer, indices)
        elif op in ("call", "invoke"):
            ret_ty = _parse_type(toks)
            kind, callee_tok = toks.next()
            if kind == "global":
                callee = self.module.get_function(callee_tok[1:])
                if callee is None:
                    raise ParseError(f"unknown function {callee_tok}", toks.line)
            elif kind == "local":
                # Indirect call: the local must resolve to a function pointer.
                raise ParseError("indirect calls are not supported in text IR", toks.line)
            else:
                raise ParseError(f"expected a callee, got {callee_tok!r}", toks.line)
            toks.expect("(")
            args = []
            if not toks.accept(")"):
                args.append(self._typed_value())
                while toks.accept(","):
                    args.append(self._typed_value())
                toks.expect(")")
            if op == "call":
                inst = Call(callee, args)
            else:
                toks.expect("to")
                normal = self._label()
                toks.expect("unwind")
                unwind = self._label()
                inst = Invoke(callee, args, normal, unwind)
            if inst.type is not ret_ty:
                raise ParseError(
                    f"call result type {ret_ty} != callee return {inst.type}", toks.line
                )
        elif op == "phi":
            ty = _parse_type(toks)
            phi = Phi(ty)
            while True:
                toks.expect("[")
                value = self._value(ty)
                toks.expect(",")
                kind, label_tok = toks.next()
                if kind != "local":
                    raise ParseError("expected phi incoming label", toks.line)
                toks.expect("]")
                phi.add_incoming(value, self._block_ref(label_tok[1:]))
                if not toks.accept(","):
                    break
            inst = phi
        elif op in _CAST_WORDS:
            value = self._typed_value()
            toks.expect("to")
            inst = Cast(_CAST_WORDS[op], value, _parse_type(toks))
        elif op in _BINARY_WORDS:
            ty = _parse_type(toks)
            a = self._value(ty)
            toks.expect(",")
            b = self._value(ty)
            inst = BinaryOp(_BINARY_WORDS[op], a, b)
        else:
            raise ParseError(f"unknown instruction {op!r}", toks.line)

        if result_name is not None:
            if inst.type.is_void:
                raise ParseError(f"void instruction cannot be named %{result_name}", toks.line)
            inst.name = result_name
            self._define(result_name, inst)
        block.append(inst)

    # -- function -----------------------------------------------------------------
    def parse_body(self, func: Function) -> None:
        self.func = func
        for arg in func.args:
            self._define(arg.name, arg)
        toks = self.toks
        toks.expect("{")
        current: Optional[BasicBlock] = None
        while not toks.accept("}"):
            tok = toks.peek()
            if tok is None:
                raise ParseError("unterminated function body", toks.line)
            kind, value = tok
            # A label is `<word-or-local> :`
            nxt = (
                self.toks.tokens[self.toks.index + 1][1]
                if self.toks.index + 1 < len(self.toks.tokens)
                else None
            )
            if kind in ("word", "int") and nxt == ":":
                toks.next()
                toks.expect(":")
                current = BasicBlock(value, func)
                self._define(value, current)
            else:
                if current is None:
                    raise ParseError("instruction outside any block", toks.line)
                self._parse_instruction(current)
        self._resolve()


def _parse_params(toks: _Tokens) -> Tuple[List[Type], List[str]]:
    toks.expect("(")
    types: List[Type] = []
    names: List[str] = []
    if not toks.accept(")"):
        while True:
            types.append(_parse_type(toks))
            kind, value = toks.peek() or ("", "")
            if kind == "local":
                toks.next()
                names.append(value[1:])
            else:
                names.append(f"arg{len(names)}")
            if not toks.accept(","):
                break
        toks.expect(")")
    return types, names


def parse_module(text: str, name: str = "parsed") -> Module:
    """Parse a whole module from its textual form."""
    toks = _Tokens(text)
    module = Module(name)
    # First pass over token stream: we parse definitions in order; forward
    # references to functions are handled by pre-scanning headers.
    _prescan_headers(text, module)
    while toks.peek() is not None:
        kind, value = toks.next()
        if value == "define":
            ret = _parse_type(toks)
            kind, fname = toks.next()
            if kind != "global":
                raise ParseError(f"expected @name, got {fname!r}", toks.line)
            types, names = _parse_params(toks)
            func = module.get_function(fname[1:])
            assert func is not None  # created by prescan
            for arg, argname in zip(func.args, names):
                arg.name = argname
            _FunctionParser(module, toks).parse_body(func)
        elif value == "declare":
            ret = _parse_type(toks)
            toks.next()
            _parse_params(toks)
        else:
            raise ParseError(f"expected 'define' or 'declare', got {value!r}", toks.line)
    return module


_HEADER_RE = re.compile(
    r"^\s*(define|declare)\s+(?P<rest>.*?@(?P<name>[A-Za-z0-9_.\-$]+)\s*\(.*)$",
    re.MULTILINE,
)


def _prescan_headers(text: str, module: Module) -> None:
    """Create Function shells for all headers so calls can forward-reference."""
    for match in _HEADER_RE.finditer(text):
        header = match.group(0)
        toks = _Tokens(header)
        toks.next()  # define/declare
        is_def = match.group(1) == "define"
        ret = _parse_type(toks)
        _, fname = toks.next()
        types, _ = _parse_params(toks)
        name = fname[1:]
        if module.get_function(name) is None:
            Function(FunctionType(ret, types), name, parent=module, internal=is_def)


def parse_function(text: str, module: Optional[Module] = None) -> Function:
    """Parse a single function definition; returns the Function."""
    mod = module if module is not None else Module("scratch")
    before = {f.name for f in mod.functions}
    parsed = parse_module(text)
    # Re-link the parsed functions into the caller's module.
    first_def: Optional[Function] = None
    for func in parsed.functions:
        parsed.remove_function(func)
        if func.name in before:
            raise ParseError(f"function @{func.name} already exists", 1)
        mod.add_function(func)
        if first_def is None and not func.is_declaration:
            first_def = func
    if first_def is None:
        raise ParseError("no function definition found", 1)
    return first_def
