"""A reference interpreter for the repro IR.

Two jobs:

* **Differential testing** of the merged-code generator: run the original
  function and the merged function on the same inputs and compare results.
  This is how we reproduce the miscompilations behind the HyFM bug fixes of
  F3M Section III-E (``legacy_bugs=True`` makes them observable again).
* **Runtime-impact measurement** (paper Figure 17): merged functions execute
  extra guard branches and ``select`` instructions; the interpreter's dynamic
  instruction count is our architecture-neutral stand-in for SPEC runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    FCmpPred,
    GetElementPtr,
    ICmp,
    ICmpPred,
    Instruction,
    Invoke,
    Load,
    Opcode,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .types import ArrayType, FloatType, IntType, PointerType, StructType, Type
from .values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    UndefValue,
    Value,
)

__all__ = ["Interpreter", "InterpError", "Trap", "FuelExhausted", "ExecutionResult"]


class InterpError(Exception):
    """Interpreter misuse or unsupported construct."""


class Trap(InterpError):
    """Runtime trap: division by zero, unreachable, null deref, out of fuel."""


class FuelExhausted(Trap):
    """The step budget ran out before the function returned.

    A structured subclass so callers running untrusted or merged code (the
    differential oracle, the fuzz campaign) can tell "this execution hung"
    from genuine runtime traps without string matching.
    """


@dataclass
class ExecutionResult:
    """Outcome of one top-level function execution."""

    value: object
    instructions_executed: int
    blocks_executed: int = 0


def type_size(type_: Type) -> int:
    """Byte size used by the flat memory model (no padding)."""
    if isinstance(type_, IntType):
        return max(1, (type_.bits + 7) // 8)
    if isinstance(type_, FloatType):
        return type_.bits // 8
    if isinstance(type_, PointerType):
        return 8
    if isinstance(type_, ArrayType):
        return type_.count * type_size(type_.element)
    if isinstance(type_, StructType):
        return sum(type_size(f) for f in type_.fields)
    raise InterpError(f"type {type_} has no size")


def _struct_offset(struct: StructType, index: int) -> int:
    return sum(type_size(f) for f in struct.fields[:index])


@dataclass
class _Frame:
    function: Function
    values: Dict[int, object] = field(default_factory=dict)

    def get(self, value: Value) -> object:
        return self.values[id(value)]

    def set(self, value: Value, result: object) -> None:
        self.values[id(value)] = result


class Interpreter:
    """Executes IR functions over a flat byte-granular memory.

    Pointers are plain integers; function "pointers" are the
    :class:`Function` objects themselves (taking their integer address is
    unsupported, which our workloads never do).
    """

    def __init__(
        self,
        externals: Optional[Dict[str, Callable[..., object]]] = None,
        fuel: int = 10_000_000,
        max_call_depth: int = 256,
    ) -> None:
        self.externals = dict(externals or {})
        self.fuel = fuel
        self.max_call_depth = max_call_depth
        self.memory: Dict[int, object] = {}
        # Per-function dynamic call counts (profile data for PGO-style
        # merging policies; see repro.merge.pgo).
        self.call_counts: Dict[str, int] = {}
        self._brk = 0x1000  # leave low addresses unmapped so null derefs trap
        self._executed = 0
        self._blocks = 0
        self._depth = 0

    # -- public API ----------------------------------------------------------------
    def run(self, func: Function, args: Sequence[object]) -> ExecutionResult:
        """Execute *func* with Python-level *args*; returns the result."""
        self._executed = 0
        self._blocks = 0
        value = self._call(func, list(args))
        return ExecutionResult(value, self._executed, self._blocks)

    def alloc(self, size: int) -> int:
        """Allocate *size* zeroed bytes; returns the base address."""
        base = self._brk
        self._brk += max(1, size) + 16  # red zone between allocations
        for off in range(size):
            self.memory[base + off] = 0
        return base

    def store_bytes(self, addr: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            self.memory[addr + i] = byte

    # -- evaluation ------------------------------------------------------------------
    def _const(self, value: Value) -> object:
        if isinstance(value, ConstantInt):
            return value.value
        if isinstance(value, ConstantFloat):
            return value.value
        if isinstance(value, ConstantNull):
            return 0
        if isinstance(value, UndefValue):
            if value.type.is_float:
                return 0.0
            return 0
        if isinstance(value, Function):
            return value
        raise InterpError(f"cannot evaluate {value!r} as a constant")

    def _eval(self, frame: _Frame, value: Value) -> object:
        if isinstance(value, (Instruction, Argument)):
            try:
                return frame.get(value)
            except KeyError:
                raise InterpError(
                    f"read of unassigned value %{value.name} in {frame.function.name}"
                ) from None
        return self._const(value)

    def _call(self, func: Function, args: List[object]) -> object:
        if func.is_declaration:
            ext = self.externals.get(func.name)
            if ext is None:
                raise InterpError(f"call to unresolved external @{func.name}")
            return ext(*args)
        if self._depth >= self.max_call_depth:
            raise Trap(f"call depth exceeded at @{func.name}")
        if len(args) != len(func.args):
            raise InterpError(
                f"@{func.name} expects {len(func.args)} args, got {len(args)}"
            )
        self.call_counts[func.name] = self.call_counts.get(func.name, 0) + 1
        self._depth += 1
        try:
            frame = _Frame(func)
            for formal, actual in zip(func.args, args):
                frame.set(formal, actual)
            return self._run_body(frame)
        finally:
            self._depth -= 1

    def _run_body(self, frame: _Frame) -> object:
        block = frame.function.entry
        prev: Optional[BasicBlock] = None
        while True:
            self._blocks += 1
            # Phi nodes evaluate simultaneously against the incoming edge.
            phis = block.phis()
            if phis:
                if prev is None:
                    raise Trap("phi in entry block")
                staged: List[Tuple[Phi, object]] = []
                for phi in phis:
                    incoming = phi.incoming_for(prev)
                    if incoming is None:
                        raise Trap(
                            f"phi %{phi.name} has no incoming for %{prev.name}"
                        )
                    staged.append((phi, self._eval(frame, incoming)))
                for phi, val in staged:
                    frame.set(phi, val)
                self._executed += len(phis)

            for inst in block.instructions[len(phis):]:
                self._executed += 1
                if self._executed > self.fuel:
                    raise FuelExhausted("out of fuel")
                outcome = self._exec(frame, inst)
                if outcome is not None:
                    kind, payload = outcome
                    if kind == "ret":
                        return payload
                    prev, block = block, payload  # branch taken
                    break
            else:
                raise Trap(f"block %{block.name} fell through without terminator")

    # -- instruction dispatch -----------------------------------------------------
    def _exec(self, frame: _Frame, inst: Instruction):  # noqa: C901 - dispatcher
        if isinstance(inst, BinaryOp):
            frame.set(inst, self._binop(inst, frame))
            return None
        if isinstance(inst, ICmp):
            frame.set(inst, self._icmp(inst, frame))
            return None
        if isinstance(inst, FCmp):
            frame.set(inst, self._fcmp(inst, frame))
            return None
        if isinstance(inst, Select):
            cond = self._eval(frame, inst.condition)
            picked = inst.true_value if cond else inst.false_value
            frame.set(inst, self._eval(frame, picked))
            return None
        if isinstance(inst, Cast):
            frame.set(inst, self._cast(inst, frame))
            return None
        if isinstance(inst, Alloca):
            frame.set(inst, self.alloc(type_size(inst.allocated_type)))
            return None
        if isinstance(inst, Load):
            frame.set(inst, self._load(self._addr(frame, inst.pointer), inst.type))
            return None
        if isinstance(inst, Store):
            self._store(
                self._addr(frame, inst.pointer),
                self._eval(frame, inst.value),
                inst.value.type,
            )
            return None
        if isinstance(inst, GetElementPtr):
            frame.set(inst, self._gep(frame, inst))
            return None
        if isinstance(inst, Call):
            callee = self._eval(frame, inst.callee)
            if not isinstance(callee, Function):
                raise Trap("indirect call through a non-function value")
            result = self._call(callee, [self._eval(frame, a) for a in inst.args])
            if not inst.type.is_void:
                frame.set(inst, result)
            return None
        if isinstance(inst, Invoke):
            callee = self._eval(frame, inst.callee)
            if not isinstance(callee, Function):
                raise Trap("indirect invoke through a non-function value")
            # No unwinding in our workloads: always take the normal edge.
            result = self._call(callee, [self._eval(frame, a) for a in inst.args])
            if not inst.type.is_void:
                frame.set(inst, result)
            return ("br", inst.normal_dest)
        if isinstance(inst, Branch):
            if inst.is_conditional:
                cond = self._eval(frame, inst.condition)
                true_bb, false_bb = inst.successors()
                return ("br", true_bb if cond else false_bb)
            return ("br", inst.successors()[0])
        if isinstance(inst, Switch):
            scrutinee = self._eval(frame, inst.value)
            for const, target in inst.cases:
                if const.value == scrutinee:
                    return ("br", target)
            return ("br", inst.default)
        if isinstance(inst, Ret):
            return ("ret", None if inst.value is None else self._eval(frame, inst.value))
        if isinstance(inst, Unreachable):
            raise Trap("executed unreachable")
        raise InterpError(f"no interpreter rule for {inst.opcode!r}")  # pragma: no cover

    # -- helpers --------------------------------------------------------------------
    def _addr(self, frame: _Frame, pointer: Value) -> int:
        addr = self._eval(frame, pointer)
        if not isinstance(addr, int):
            raise Trap("pointer operand is not an address")
        if addr == 0:
            raise Trap("null pointer dereference")
        return addr

    def _load(self, addr: int, type_: Type) -> object:
        cell = self.memory.get(addr)
        if cell is None:
            raise Trap(f"load from unmapped address {addr:#x}")
        if isinstance(cell, tuple) and cell[0] == "typed":
            return cell[1]
        # Raw zeroed memory: default value of the type.
        if type_.is_float:
            return 0.0
        return cell if isinstance(cell, (int, Function)) else 0

    def _store(self, addr: int, value: object, type_: Type) -> None:
        if addr not in self.memory:
            raise Trap(f"store to unmapped address {addr:#x}")
        # Whole values are stored in the first byte-cell; our own codegen
        # always loads with the matching type, so this is sound here.
        self.memory[addr] = ("typed", value)

    def _binop(self, inst: BinaryOp, frame: _Frame) -> object:
        a = self._eval(frame, inst.lhs)
        b = self._eval(frame, inst.rhs)
        op = inst.opcode
        if op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FREM):
            fa, fb = float(a), float(b)
            if op == Opcode.FADD:
                return fa + fb
            if op == Opcode.FSUB:
                return fa - fb
            if op == Opcode.FMUL:
                return fa * fb
            if op == Opcode.FDIV:
                if fb == 0.0:
                    return float("inf") if fa > 0 else (float("-inf") if fa < 0 else float("nan"))
                return fa / fb
            import math

            return math.fmod(fa, fb) if fb != 0.0 else float("nan")

        bits = inst.type.bits  # type: ignore[attr-defined]
        mask = (1 << bits) - 1

        def to_signed(x: int) -> int:
            x &= mask
            return x - (1 << bits) if x >= (1 << (bits - 1)) else x

        ia, ib = int(a) & mask, int(b) & mask
        if op == Opcode.ADD:
            return (ia + ib) & mask
        if op == Opcode.SUB:
            return (ia - ib) & mask
        if op == Opcode.MUL:
            return (ia * ib) & mask
        if op == Opcode.AND:
            return ia & ib
        if op == Opcode.OR:
            return ia | ib
        if op == Opcode.XOR:
            return ia ^ ib
        if op == Opcode.SHL:
            if ib >= bits:
                return 0
            return (ia << ib) & mask
        if op == Opcode.LSHR:
            if ib >= bits:
                return 0
            return ia >> ib
        if op == Opcode.ASHR:
            sa = to_signed(ia)
            if ib >= bits:
                return mask if sa < 0 else 0
            return (sa >> ib) & mask
        if op in (Opcode.SDIV, Opcode.SREM):
            sa, sb = to_signed(ia), to_signed(ib)
            if sb == 0:
                raise Trap("integer division by zero")
            q = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                q = -q
            if op == Opcode.SDIV:
                return q & mask
            return (sa - q * sb) & mask
        if op in (Opcode.UDIV, Opcode.UREM):
            if ib == 0:
                raise Trap("integer division by zero")
            return (ia // ib) & mask if op == Opcode.UDIV else (ia % ib) & mask
        raise InterpError(f"unhandled binary {op!r}")  # pragma: no cover

    def _icmp(self, inst: ICmp, frame: _Frame) -> int:
        a = self._eval(frame, inst.operand(0))
        b = self._eval(frame, inst.operand(1))
        if isinstance(a, Function) or isinstance(b, Function):
            eq = a is b
            if inst.pred == ICmpPred.EQ:
                return int(eq)
            if inst.pred == ICmpPred.NE:
                return int(not eq)
            raise Trap("ordered comparison of function pointers")
        type_ = inst.operand(0).type
        bits = type_.bits if isinstance(type_, IntType) else 64
        mask = (1 << bits) - 1
        ua, ub = int(a) & mask, int(b) & mask

        def sgn(x: int) -> int:
            return x - (1 << bits) if x >= (1 << (bits - 1)) else x

        p = inst.pred
        table = {
            ICmpPred.EQ: ua == ub,
            ICmpPred.NE: ua != ub,
            ICmpPred.UGT: ua > ub,
            ICmpPred.UGE: ua >= ub,
            ICmpPred.ULT: ua < ub,
            ICmpPred.ULE: ua <= ub,
            ICmpPred.SGT: sgn(ua) > sgn(ub),
            ICmpPred.SGE: sgn(ua) >= sgn(ub),
            ICmpPred.SLT: sgn(ua) < sgn(ub),
            ICmpPred.SLE: sgn(ua) <= sgn(ub),
        }
        return int(table[p])

    def _fcmp(self, inst: FCmp, frame: _Frame) -> int:
        import math

        a = float(self._eval(frame, inst.operand(0)))
        b = float(self._eval(frame, inst.operand(1)))
        nan = math.isnan(a) or math.isnan(b)
        p = inst.pred
        if p == FCmpPred.ORD:
            return int(not nan)
        if p == FCmpPred.UNO:
            return int(nan)
        if p == FCmpPred.UEQ:
            return int(nan or a == b)
        if p == FCmpPred.UNE:
            return int(nan or a != b)
        if nan:
            return 0
        table = {
            FCmpPred.OEQ: a == b,
            FCmpPred.OGT: a > b,
            FCmpPred.OGE: a >= b,
            FCmpPred.OLT: a < b,
            FCmpPred.OLE: a <= b,
            FCmpPred.ONE: a != b,
        }
        return int(table[p])

    def _cast(self, inst: Cast, frame: _Frame) -> object:
        value = self._eval(frame, inst.value)
        src, dst = inst.value.type, inst.type
        op = inst.opcode
        if op == Opcode.TRUNC:
            return int(value) & dst.mask  # type: ignore[attr-defined]
        if op == Opcode.ZEXT:
            return int(value) & src.mask  # type: ignore[attr-defined]
        if op == Opcode.SEXT:
            bits = src.bits  # type: ignore[attr-defined]
            v = int(value) & src.mask  # type: ignore[attr-defined]
            if v >= (1 << (bits - 1)):
                v -= 1 << bits
            return v & dst.mask  # type: ignore[attr-defined]
        if op == Opcode.FPTRUNC or op == Opcode.FPEXT:
            import struct

            if dst.bits == 32:  # type: ignore[attr-defined]
                return struct.unpack("f", struct.pack("f", float(value)))[0]
            return float(value)
        if op == Opcode.FPTOSI:
            try:
                v = int(float(value))
            except (OverflowError, ValueError):
                raise Trap("fptosi of non-finite value")
            return v & dst.mask  # type: ignore[attr-defined]
        if op == Opcode.SITOFP:
            bits = src.bits  # type: ignore[attr-defined]
            v = int(value) & src.mask  # type: ignore[attr-defined]
            if v >= (1 << (bits - 1)):
                v -= 1 << bits
            return float(v)
        if op in (Opcode.PTRTOINT, Opcode.INTTOPTR, Opcode.BITCAST):
            return value
        raise InterpError(f"unhandled cast {op!r}")  # pragma: no cover

    def _gep(self, frame: _Frame, inst: GetElementPtr) -> int:
        addr = self._addr(frame, inst.pointer)
        current: Type = inst.pointer.type.pointee  # type: ignore[attr-defined]
        indices = list(inst.indices)
        first = self._eval(frame, indices[0])
        addr += int(first) * type_size(current)
        for idx in indices[1:]:
            if isinstance(current, ArrayType):
                addr += int(self._eval(frame, idx)) * type_size(current.element)
                current = current.element
            elif isinstance(current, StructType):
                field = int(self._eval(frame, idx))
                addr += _struct_offset(current, field)
                current = current.fields[field]
            else:
                raise Trap(f"gep into non-aggregate {current}")
        return addr
