"""Function cloning with value remapping.

Used by the merged-code generator to copy instructions from the two input
functions into the merged function, and by the workload mutation engine to
derive "similar" function variants.
"""

from __future__ import annotations

from typing import Dict, Optional

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Invoke,
    Load,
    Opcode,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .module import Module
from .types import FunctionType
from .values import Value

__all__ = ["clone_instruction", "clone_function_into", "clone_function"]

ValueMap = Dict[int, Value]


def _mapped(value: Value, vmap: ValueMap) -> Value:
    return vmap.get(id(value), value)


def clone_instruction(inst: Instruction, vmap: ValueMap) -> Instruction:
    """Clone *inst*, remapping operands through *vmap* (identity fallback).

    Phi nodes are cloned with remapped incoming values/blocks; callers that
    clone whole CFGs should populate block mappings in *vmap* first.
    """
    ops = [_mapped(op, vmap) for op in inst.operands]
    new: Instruction
    if isinstance(inst, BinaryOp):
        new = BinaryOp(inst.opcode, ops[0], ops[1])
    elif isinstance(inst, ICmp):
        new = ICmp(inst.pred, ops[0], ops[1])
    elif isinstance(inst, FCmp):
        new = FCmp(inst.pred, ops[0], ops[1])
    elif isinstance(inst, Select):
        new = Select(ops[0], ops[1], ops[2])
    elif isinstance(inst, Cast):
        new = Cast(inst.opcode, ops[0], inst.type)
    elif isinstance(inst, Alloca):
        new = Alloca(inst.allocated_type)
    elif isinstance(inst, Load):
        new = Load(ops[0])
    elif isinstance(inst, Store):
        new = Store(ops[0], ops[1])
    elif isinstance(inst, GetElementPtr):
        new = GetElementPtr(ops[0], ops[1:])
    elif isinstance(inst, Call):
        new = Call(ops[0], ops[1:])
    elif isinstance(inst, Invoke):
        new = Invoke(ops[0], ops[1:-2], ops[-2], ops[-1])  # type: ignore[arg-type]
    elif isinstance(inst, Phi):
        new = Phi(inst.type)
        for i in range(0, len(ops), 2):
            new.add_incoming(ops[i], ops[i + 1])  # type: ignore[arg-type]
    elif isinstance(inst, Branch):
        if inst.is_conditional:
            new = Branch(ops[0], ops[1], ops[2])  # type: ignore[arg-type]
        else:
            new = Branch(ops[0])
    elif isinstance(inst, Switch):
        new = Switch(ops[0], ops[1])  # type: ignore[arg-type]
        for i in range(2, len(ops), 2):
            new.add_case(ops[i], ops[i + 1])  # type: ignore[arg-type]
    elif isinstance(inst, Ret):
        new = Ret(ops[0] if ops else None)
    elif isinstance(inst, Unreachable):
        new = Unreachable()
    else:  # pragma: no cover - exhaustive above
        raise NotImplementedError(f"cannot clone {inst.opcode!r}")
    new.name = inst.name
    vmap[id(inst)] = new
    return new


def clone_function_into(source: Function, dest: Function, vmap: Optional[ValueMap] = None) -> ValueMap:
    """Clone the body of *source* into the empty function *dest*.

    *vmap* may pre-map source arguments to destination values (used by the
    merger to route merged parameters).  Unmapped arguments map positionally.
    """
    if dest.blocks:
        raise ValueError("destination function must be empty")
    vmap = dict(vmap) if vmap else {}
    for i, arg in enumerate(source.args):
        if id(arg) not in vmap:
            if i >= len(dest.args):
                raise ValueError("destination has fewer parameters than source")
            vmap[id(arg)] = dest.args[i]
    # Blocks first so branches/phis can forward-reference.
    for block in source.blocks:
        vmap[id(block)] = BasicBlock(block.name, dest)
    cloned_phis = []
    for block in source.blocks:
        new_block: BasicBlock = vmap[id(block)]  # type: ignore[assignment]
        for inst in block.instructions:
            new = clone_instruction(inst, vmap)
            new_block.append(new)
            if inst.is_phi:
                cloned_phis.append((inst, new))
    # Phi incoming values can be back-edge references to instructions cloned
    # *after* the phi; remap them now that the value map is complete.
    for original, new in cloned_phis:
        for idx, op in enumerate(original.operands):
            mapped = vmap.get(id(op))
            if mapped is not None and new.operand(idx) is not mapped:
                new.set_operand(idx, mapped)
    return vmap


def clone_function(source: Function, name: str, module: Optional[Module] = None) -> Function:
    """Create a fresh copy of *source* named *name* (in *module* if given)."""
    dest = Function(source.ftype, name, parent=module, internal=source.internal)
    for src_arg, dst_arg in zip(source.args, dest.args):
        dst_arg.name = src_arg.name
    clone_function_into(source, dest)
    return dest
