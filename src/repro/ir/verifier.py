"""IR verifier: structural and SSA-dominance well-formedness checks.

This is the arbiter of correctness for the merged-code generator.  The two
HyFM bugs described in F3M Section III-E are exactly dominance violations
that LLVM's verifier misses post-repair; ours checks the same properties, and
the interpreter-based differential tests catch the miscompiles the paper
describes.

Findings are structured :class:`~repro.diagnostics.Diagnostic` objects —
the same type the checkers in :mod:`repro.staticcheck` emit — and the
dominance phase *is* the staticcheck ``ssa-dominance`` checker, so the
verifier and the linter can never disagree about SSA validity.
:class:`VerificationError` keeps its historical string surface: ``str()``
joins the rendered diagnostics and ``.errors`` is the list of rendered
strings.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from ..diagnostics import Diagnostic, Severity
from .basicblock import BasicBlock
from .function import Function
from .instructions import Instruction, Phi
from .module import Module
from .values import Argument, Constant, Value

__all__ = ["VerificationError", "verify_function", "verify_module"]


class VerificationError(Exception):
    """Raised when an IR unit violates a well-formedness rule.

    Carries structured :class:`Diagnostic` objects in ``.diagnostics``;
    plain strings passed by older call sites are wrapped on the fly.  The
    legacy ``.errors`` list-of-strings and the joined ``str()`` message are
    preserved for backward compatibility.
    """

    def __init__(self, errors: Sequence[Union[str, Diagnostic]]) -> None:
        self.diagnostics: List[Diagnostic] = [
            e
            if isinstance(e, Diagnostic)
            else Diagnostic(checker="verifier", severity=Severity.ERROR, message=e)
            for e in errors
        ]
        super().__init__("\n".join(str(d) for d in self.diagnostics))

    @property
    def errors(self) -> List[str]:
        return [str(d) for d in self.diagnostics]


def _diag(func: Function, message: str, block=None, inst=None) -> Diagnostic:
    return Diagnostic(
        checker="verifier",
        severity=Severity.ERROR,
        message=message,
        function=func.name,
        block=block.name if block is not None else None,
        instruction=(inst.name or None) if inst is not None else None,
    )


def _check_operand_scope(
    func: Function, inst: Instruction, errors: List[Diagnostic]
) -> None:
    block = inst.parent
    for op in inst.operands:
        if isinstance(op, Function):
            # Direct callee / function reference: fine only when the callee
            # lives in the same module (a cross-module reference would
            # dangle after the foreign module is mutated or dropped).
            if func.parent is not None and op.parent is not func.parent:
                errors.append(
                    _diag(
                        func,
                        f"instruction references function @{op.name} "
                        "from another module",
                        block,
                        inst,
                    )
                )
        elif isinstance(op, Constant):
            continue
        elif isinstance(op, Argument):
            if op.parent is not func:
                errors.append(
                    _diag(
                        func,
                        f"instruction uses argument %{op.name} of another function",
                        block,
                        inst,
                    )
                )
        elif isinstance(op, BasicBlock):
            if op.parent is not func:
                errors.append(
                    _diag(
                        func,
                        f"instruction references block %{op.name} of another function",
                        block,
                        inst,
                    )
                )
        elif isinstance(op, Instruction):
            if op.function is not func:
                errors.append(
                    _diag(
                        func,
                        f"instruction uses value %{op.name} defined outside the function",
                        block,
                        inst,
                    )
                )
        else:
            errors.append(
                _diag(func, f"unknown operand kind {type(op).__name__}", block, inst)
            )


def _check_block(func: Function, block: BasicBlock, errors: List[Diagnostic]) -> None:
    if not block.instructions:
        errors.append(_diag(func, f"block %{block.name} is empty", block))
        return
    term = block.instructions[-1]
    if not term.is_terminator:
        errors.append(
            _diag(func, f"block %{block.name} does not end in a terminator", block)
        )
    for inst in block.instructions[:-1]:
        if inst.is_terminator:
            errors.append(
                _diag(
                    func,
                    f"terminator in the middle of block %{block.name}",
                    block,
                    inst,
                )
            )
    seen_non_phi = False
    for inst in block.instructions:
        if inst.parent is not block:
            errors.append(
                _diag(
                    func,
                    f"instruction parent pointer broken in %{block.name}",
                    block,
                    inst,
                )
            )
        if inst.is_phi:
            if seen_non_phi:
                errors.append(
                    _diag(
                        func,
                        f"phi after non-phi instruction in %{block.name}",
                        block,
                        inst,
                    )
                )
        else:
            seen_non_phi = True


def _check_phis(func: Function, block: BasicBlock, errors: List[Diagnostic]) -> None:
    preds = block.predecessors()
    pred_ids = {id(p) for p in preds}
    for phi in block.phis():
        inc_ids = [id(b) for _, b in phi.incoming]
        if len(set(inc_ids)) != len(inc_ids):
            errors.append(
                _diag(
                    func,
                    f"phi %{phi.name} has duplicate incoming blocks",
                    block,
                    phi,
                )
            )
        if set(inc_ids) != pred_ids:
            errors.append(
                _diag(
                    func,
                    f"phi %{phi.name} incoming blocks do not match the "
                    f"predecessors of %{block.name}",
                    block,
                    phi,
                )
            )


def verify_function(func: Function) -> None:
    """Raise :class:`VerificationError` if *func* is malformed."""
    errors: List[Diagnostic] = []
    if func.is_declaration:
        return
    entry = func.entry
    if entry.predecessors():
        errors.append(_diag(func, "entry block has predecessors", entry))
    if entry.phis():
        errors.append(_diag(func, "entry block contains phi nodes", entry))

    for block in func.blocks:
        if block.parent is not func:
            errors.append(
                _diag(func, f"block %{block.name} parent pointer broken", block)
            )
        _check_block(func, block, errors)
        _check_phis(func, block, errors)
        for inst in block.instructions:
            _check_operand_scope(func, inst, errors)

    # Return type agreement.
    from .instructions import Ret

    for block in func.blocks:
        term = block.terminator
        if isinstance(term, Ret):
            if func.return_type.is_void:
                if term.value is not None:
                    errors.append(
                        _diag(func, "ret with value in void function", block, term)
                    )
            elif term.value is None:
                errors.append(
                    _diag(func, "ret void in non-void function", block, term)
                )
            elif term.value.type is not func.return_type:
                errors.append(
                    _diag(
                        func,
                        f"ret type {term.value.type} != {func.return_type}",
                        block,
                        term,
                    )
                )

    if errors:
        raise VerificationError(errors)

    # Dominance checks only make sense on structurally sound IR.  The rule
    # is the staticcheck ``ssa-dominance`` checker — imported lazily because
    # repro.staticcheck depends on repro.ir and repro.analysis.
    from ..staticcheck.checkers import dominance_diagnostics

    errors = dominance_diagnostics(func)
    if errors:
        raise VerificationError(errors)


def verify_module(module: Module) -> None:
    """Verify every function in *module*."""
    errors: List[Diagnostic] = []
    for func in module.functions:
        try:
            verify_function(func)
        except VerificationError as exc:
            errors.extend(exc.diagnostics)
    if errors:
        raise VerificationError(errors)
