"""IR verifier: structural and SSA-dominance well-formedness checks.

This is the arbiter of correctness for the merged-code generator.  The two
HyFM bugs described in F3M Section III-E are exactly dominance violations
that LLVM's verifier misses post-repair; ours checks the same properties, and
the interpreter-based differential tests catch the miscompiles the paper
describes.
"""

from __future__ import annotations

from typing import List

from .basicblock import BasicBlock
from .function import Function
from .instructions import Instruction, Phi
from .module import Module
from .values import Argument, Constant, Value

__all__ = ["VerificationError", "verify_function", "verify_module"]


class VerificationError(Exception):
    """Raised when an IR unit violates a well-formedness rule."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__("\n".join(errors))
        self.errors = errors


def _check_operand_scope(func: Function, inst: Instruction, errors: List[str]) -> None:
    for op in inst.operands:
        if isinstance(op, Constant):
            continue
        if isinstance(op, Argument):
            if op.parent is not func:
                errors.append(
                    f"{func.name}: instruction uses argument %{op.name} of another function"
                )
        elif isinstance(op, BasicBlock):
            if op.parent is not func:
                errors.append(
                    f"{func.name}: instruction references block %{op.name} of another function"
                )
        elif isinstance(op, Instruction):
            if op.function is not func:
                errors.append(
                    f"{func.name}: instruction uses value %{op.name} defined outside the function"
                )
        elif isinstance(op, Function):
            pass  # global references are always fine
        else:
            errors.append(f"{func.name}: unknown operand kind {type(op).__name__}")


def _check_block(func: Function, block: BasicBlock, errors: List[str]) -> None:
    if not block.instructions:
        errors.append(f"{func.name}: block %{block.name} is empty")
        return
    term = block.instructions[-1]
    if not term.is_terminator:
        errors.append(f"{func.name}: block %{block.name} does not end in a terminator")
    for inst in block.instructions[:-1]:
        if inst.is_terminator:
            errors.append(
                f"{func.name}: terminator in the middle of block %{block.name}"
            )
    seen_non_phi = False
    for inst in block.instructions:
        if inst.parent is not block:
            errors.append(
                f"{func.name}: instruction parent pointer broken in %{block.name}"
            )
        if inst.is_phi:
            if seen_non_phi:
                errors.append(
                    f"{func.name}: phi after non-phi instruction in %{block.name}"
                )
        else:
            seen_non_phi = True


def _check_phis(func: Function, block: BasicBlock, errors: List[str]) -> None:
    preds = block.predecessors()
    pred_ids = {id(p) for p in preds}
    for phi in block.phis():
        inc_ids = [id(b) for _, b in phi.incoming]
        if len(set(inc_ids)) != len(inc_ids):
            errors.append(
                f"{func.name}: phi %{phi.name} has duplicate incoming blocks"
            )
        if set(inc_ids) != pred_ids:
            errors.append(
                f"{func.name}: phi %{phi.name} incoming blocks do not match the "
                f"predecessors of %{block.name}"
            )


def verify_function(func: Function) -> None:
    """Raise :class:`VerificationError` if *func* is malformed."""
    errors: List[str] = []
    if func.is_declaration:
        return
    entry = func.entry
    if entry.predecessors():
        errors.append(f"{func.name}: entry block has predecessors")
    if entry.phis():
        errors.append(f"{func.name}: entry block contains phi nodes")

    for block in func.blocks:
        if block.parent is not func:
            errors.append(f"{func.name}: block %{block.name} parent pointer broken")
        _check_block(func, block, errors)
        _check_phis(func, block, errors)
        for inst in block.instructions:
            _check_operand_scope(func, inst, errors)

    # Return type agreement.
    from .instructions import Opcode, Ret

    for block in func.blocks:
        term = block.terminator
        if isinstance(term, Ret):
            if func.return_type.is_void:
                if term.value is not None:
                    errors.append(f"{func.name}: ret with value in void function")
            elif term.value is None:
                errors.append(f"{func.name}: ret void in non-void function")
            elif term.value.type is not func.return_type:
                errors.append(
                    f"{func.name}: ret type {term.value.type} != {func.return_type}"
                )

    if errors:
        raise VerificationError(errors)

    # Dominance checks only make sense on structurally sound IR.  Imported
    # lazily: repro.analysis itself depends on repro.ir.
    from ..analysis.dominators import DominatorTree

    dt = DominatorTree(func)
    for block in func.blocks:
        if not dt.is_reachable(block):
            continue  # unreachable code is exempt from dominance rules
        for inst in block.instructions:
            for idx, op in enumerate(inst.operands):
                if inst.is_phi and idx % 2 == 1:
                    continue  # incoming-block slots
                if isinstance(op, Instruction):
                    if op.parent is not None and not dt.is_reachable(op.parent):
                        continue
                    if not dt.dominates(op, inst, idx):
                        errors.append(
                            f"{func.name}: use of %{op.name} in block "
                            f"%{block.name} is not dominated by its definition"
                        )
    if errors:
        raise VerificationError(errors)


def verify_module(module: Module) -> None:
    """Verify every function in *module*."""
    errors: List[str] = []
    for func in module.functions:
        try:
            verify_function(func)
        except VerificationError as exc:
            errors.extend(exc.errors)
    if errors:
        raise VerificationError(errors)
