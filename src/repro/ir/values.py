"""Value hierarchy for the repro IR.

Everything an instruction can reference is a :class:`Value`: constants,
function arguments, instructions (which are themselves values), basic blocks
(as branch targets) and functions (as call targets).  Values track their
*uses* so that ``replace_all_uses_with`` — the workhorse of the merged-code
generator — runs in time proportional to the number of uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from .types import FloatType, IntType, PointerType, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .instructions import Instruction

__all__ = [
    "Value",
    "User",
    "Constant",
    "ConstantInt",
    "ConstantFloat",
    "ConstantNull",
    "UndefValue",
    "Argument",
]


class Value:
    """Base class for all IR values."""

    __slots__ = ("type", "name", "_uses")

    def __init__(self, type_: Type, name: str = "") -> None:
        self.type = type_
        self.name = name
        # Map user -> list of operand indices at which this value appears.
        self._uses: Dict["User", List[int]] = {}

    # -- use tracking -----------------------------------------------------------
    def _add_use(self, user: "User", index: int) -> None:
        self._uses.setdefault(user, []).append(index)

    def _remove_use(self, user: "User", index: int) -> None:
        slots = self._uses.get(user)
        if slots is not None:
            slots.remove(index)
            if not slots:
                del self._uses[user]

    @property
    def users(self) -> List["User"]:
        """Distinct users of this value (order is insertion order)."""
        return list(self._uses)

    @property
    def num_uses(self) -> int:
        return sum(len(slots) for slots in self._uses.values())

    def uses(self) -> Iterator[Tuple["User", int]]:
        """Iterate ``(user, operand_index)`` pairs."""
        for user, slots in list(self._uses.items()):
            for idx in list(slots):
                yield user, idx

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every use of ``self`` to refer to ``new`` instead."""
        if new is self:
            return
        for user, idx in list(self.uses()):
            user.set_operand(idx, new)

    # -- printing ----------------------------------------------------------------
    def ref(self) -> str:
        """Short textual reference used when this value appears as an operand."""
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.type} {self.ref()}>"


class User(Value):
    """A value that references other values through an operand list."""

    __slots__ = ("_operands",)

    def __init__(self, type_: Type, name: str = "") -> None:
        super().__init__(type_, name)
        self._operands: List[Value] = []

    @property
    def operands(self) -> Tuple[Value, ...]:
        return tuple(self._operands)

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def operand(self, index: int) -> Value:
        return self._operands[index]

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        if old is value:
            return
        old._remove_use(self, index)
        self._operands[index] = value
        value._add_use(self, index)

    def _append_operand(self, value: Value) -> None:
        value._add_use(self, len(self._operands))
        self._operands.append(value)

    def _pop_operand(self, index: int) -> Value:
        """Remove the operand at *index*, shifting later use indices down."""
        value = self._operands.pop(index)
        value._remove_use(self, index)
        for later_idx in range(index, len(self._operands)):
            op = self._operands[later_idx]
            op._remove_use(self, later_idx + 1)
            op._add_use(self, later_idx)
        return value

    def drop_all_references(self) -> None:
        """Detach this user from all of its operands (pre-deletion hygiene)."""
        for idx, op in enumerate(self._operands):
            op._remove_use(self, idx)
        self._operands.clear()


class Constant(Value):
    """Base class for immutable constant values."""

    __slots__ = ()

    def ref(self) -> str:  # pragma: no cover - overridden by subclasses
        raise NotImplementedError


class ConstantInt(Constant):
    """Integer constant, stored wrapped to the width of its type."""

    __slots__ = ("value",)

    def __init__(self, type_: IntType, value: int) -> None:
        if not isinstance(type_, IntType):
            raise TypeError(f"ConstantInt requires an integer type, got {type_}")
        super().__init__(type_)
        self.value = value & type_.mask

    @property
    def signed_value(self) -> int:
        bits: int = self.type.bits  # type: ignore[attr-defined]
        if bits == 1:
            return self.value
        if self.value >= (1 << (bits - 1)):
            return self.value - (1 << bits)
        return self.value

    def ref(self) -> str:
        return str(self.signed_value)

    def __repr__(self) -> str:
        return f"<ConstantInt {self.type} {self.signed_value}>"


class ConstantFloat(Constant):
    __slots__ = ("value",)

    def __init__(self, type_: FloatType, value: float) -> None:
        if not isinstance(type_, FloatType):
            raise TypeError(f"ConstantFloat requires a float type, got {type_}")
        super().__init__(type_)
        self.value = float(value)

    def ref(self) -> str:
        return repr(self.value)

    def __repr__(self) -> str:
        return f"<ConstantFloat {self.type} {self.value}>"


class ConstantNull(Constant):
    """The null pointer of a given pointer type."""

    __slots__ = ()

    def __init__(self, type_: PointerType) -> None:
        if not isinstance(type_, PointerType):
            raise TypeError(f"ConstantNull requires a pointer type, got {type_}")
        super().__init__(type_)

    def ref(self) -> str:
        return "null"


class UndefValue(Constant):
    """An undefined value of any first-class type."""

    __slots__ = ()

    def __init__(self, type_: Type) -> None:
        super().__init__(type_)

    def ref(self) -> str:
        return "undef"


class Argument(Value):
    """A formal parameter of a function."""

    __slots__ = ("parent", "index")

    def __init__(self, type_: Type, name: str, index: int, parent: Optional[object] = None) -> None:
        super().__init__(type_, name)
        self.parent = parent
        self.index = index

    def __repr__(self) -> str:
        return f"<Argument {self.type} %{self.name}>"
