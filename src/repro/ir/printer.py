"""Textual printer for the repro IR (LLVM-flavoured syntax).

The printed form round-trips through :mod:`repro.ir.parser`, which the test
suite exercises with property-based tests.
"""

from __future__ import annotations

from typing import List

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    Alloca,
    Branch,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Invoke,
    Load,
    Opcode,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
)
from .module import Module
from .values import Value

__all__ = ["format_value", "format_instruction", "print_function", "print_module"]

_OPCODE_NAMES = {op: op.name.lower() for op in Opcode}


def format_value(value: Value) -> str:
    """``<type> <ref>`` operand spelling."""
    return f"{value.type} {value.ref()}"


def _ops(values) -> str:
    return ", ".join(v.ref() for v in values)


def format_instruction(inst: Instruction) -> str:  # noqa: C901 - printer dispatch
    """One-line textual form of *inst* (without indentation)."""
    name = _OPCODE_NAMES[inst.opcode]
    lhs = f"%{inst.name} = " if not inst.type.is_void and inst.name else ""

    if isinstance(inst, Ret):
        return f"ret {format_value(inst.value)}" if inst.value is not None else "ret void"
    if isinstance(inst, Branch):
        if inst.is_conditional:
            t, f = inst.successors()
            return f"br i1 {inst.condition.ref()}, label {t.ref()}, label {f.ref()}"
        return f"br label {inst.successors()[0].ref()}"
    if isinstance(inst, Switch):
        cases = ", ".join(f"{format_value(c)} label {b.ref()}" for c, b in inst.cases)
        return (
            f"switch {format_value(inst.value)}, label {inst.default.ref()} "
            f"[{cases}]"
        )
    if isinstance(inst, ICmp):
        return (
            f"{lhs}icmp {inst.pred.name.lower()} {format_value(inst.operand(0))},"
            f" {inst.operand(1).ref()}"
        )
    if isinstance(inst, FCmp):
        return (
            f"{lhs}fcmp {inst.pred.name.lower()} {format_value(inst.operand(0))},"
            f" {inst.operand(1).ref()}"
        )
    if isinstance(inst, Select):
        return (
            f"{lhs}select {format_value(inst.condition)}, "
            f"{format_value(inst.true_value)}, {format_value(inst.false_value)}"
        )
    if isinstance(inst, Alloca):
        return f"{lhs}alloca {inst.allocated_type}"
    if isinstance(inst, Load):
        return f"{lhs}load {inst.type}, {format_value(inst.pointer)}"
    if isinstance(inst, Store):
        return f"store {format_value(inst.value)}, {format_value(inst.pointer)}"
    if isinstance(inst, GetElementPtr):
        idx = ", ".join(format_value(i) for i in inst.indices)
        return f"{lhs}gep {format_value(inst.pointer)}, {idx}"
    if isinstance(inst, Call):
        args = ", ".join(format_value(a) for a in inst.args)
        return f"{lhs}call {inst.type} {inst.callee.ref()}({args})"
    if isinstance(inst, Invoke):
        args = ", ".join(format_value(a) for a in inst.args)
        return (
            f"{lhs}invoke {inst.type} {inst.callee.ref()}({args}) "
            f"to label {inst.normal_dest.ref()} unwind label {inst.unwind_dest.ref()}"
        )
    if isinstance(inst, Phi):
        inc = ", ".join(f"[ {v.ref()}, {b.ref()} ]" for v, b in inst.incoming)
        return f"{lhs}phi {inst.type} {inc}"
    if isinstance(inst, Cast):
        return f"{lhs}{name} {format_value(inst.value)} to {inst.type}"
    if inst.is_binary:
        return (
            f"{lhs}{name} {format_value(inst.operand(0))}, {inst.operand(1).ref()}"
        )
    if inst.opcode == Opcode.UNREACHABLE:
        return "unreachable"
    raise NotImplementedError(f"printer missing for {inst.opcode!r}")  # pragma: no cover


def _print_block(block: BasicBlock, out: List[str]) -> None:
    out.append(f"{block.name}:")
    for inst in block.instructions:
        out.append(f"  {format_instruction(inst)}")


def print_function(func: Function) -> str:
    params = ", ".join(f"{a.type} %{a.name}" for a in func.args)
    header = f"{func.return_type} @{func.name}({params})"
    if func.is_declaration:
        return f"declare {header}"
    out = [f"define {header} {{"]
    for block in func.blocks:
        _print_block(block, out)
    out.append("}")
    return "\n".join(out)


def print_module(module: Module) -> str:
    parts = [print_function(f) for f in module.functions]
    return "\n\n".join(parts) + ("\n" if parts else "")
