"""Type system for the repro IR.

The IR is a compact, typed subset of LLVM IR — just enough surface for the
function-merging algorithms of F3M (CGO 2022) and its baseline HyFM to be
implemented faithfully.  Types are interned: structurally identical types are
the *same object*, so identity comparison (``a is b``) is valid, mirroring
LLVM's uniqued ``Type*`` pointers.

The paper's instruction encoding (Section III-B) relies on "a unique number
for each type"; LLVM uses the address of the uniqued type object.  We provide
a deterministic equivalent, :attr:`Type.type_id`, derived from an FNV-1a hash
of the type's canonical spelling so that fingerprints are stable across runs
and machines.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

__all__ = [
    "Type",
    "VoidType",
    "LabelType",
    "IntType",
    "FloatType",
    "PointerType",
    "ArrayType",
    "StructType",
    "FunctionType",
    "VOID",
    "LABEL",
    "I1",
    "I8",
    "I16",
    "I32",
    "I64",
    "FLOAT",
    "DOUBLE",
]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a over *data* (used only for stable type ids)."""
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return h


class Type:
    """Base class of all IR types.

    Instances are interned by subclass constructors; never instantiate
    :class:`Type` directly.
    """

    __slots__ = ("_repr", "type_id")

    def _finish(self, spelling: str) -> None:
        self._repr = spelling
        # Non-zero 32-bit id, stable across runs (see module docstring).
        self.type_id = (_fnv1a_64(spelling.encode("utf-8")) & 0x7FFFFFFF) or 1

    # -- classification helpers -------------------------------------------------
    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_label(self) -> bool:
        return isinstance(self, LabelType)

    @property
    def is_int(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (ArrayType, StructType))

    @property
    def is_first_class(self) -> bool:
        """First-class types can be produced by instructions."""
        return not isinstance(self, (VoidType, FunctionType, LabelType))

    def __repr__(self) -> str:
        return self._repr

    def __str__(self) -> str:
        return self._repr


class VoidType(Type):
    __slots__ = ()
    _instance: "VoidType" = None

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            inst = object.__new__(cls)
            inst._finish("void")
            cls._instance = inst
        return cls._instance


class LabelType(Type):
    """The type of basic blocks when used as operands (branch targets)."""

    __slots__ = ()
    _instance: "LabelType" = None

    def __new__(cls) -> "LabelType":
        if cls._instance is None:
            inst = object.__new__(cls)
            inst._finish("label")
            cls._instance = inst
        return cls._instance


class IntType(Type):
    """Arbitrary-width integer type ``iN`` (we use 1/8/16/32/64 in practice)."""

    __slots__ = ("bits",)
    _cache: Dict[int, "IntType"] = {}

    def __new__(cls, bits: int) -> "IntType":
        inst = cls._cache.get(bits)
        if inst is None:
            if bits <= 0:
                raise ValueError(f"integer width must be positive, got {bits}")
            inst = object.__new__(cls)
            inst.bits = bits
            inst._finish(f"i{bits}")
            cls._cache[bits] = inst
        return inst

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    @property
    def signed_min(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def signed_max(self) -> int:
        return (1 << (self.bits - 1)) - 1


class FloatType(Type):
    """IEEE float type: ``float`` (32) or ``double`` (64)."""

    __slots__ = ("bits",)
    _cache: Dict[int, "FloatType"] = {}

    def __new__(cls, bits: int) -> "FloatType":
        inst = cls._cache.get(bits)
        if inst is None:
            if bits not in (32, 64):
                raise ValueError(f"float width must be 32 or 64, got {bits}")
            inst = object.__new__(cls)
            inst.bits = bits
            inst._finish("float" if bits == 32 else "double")
            cls._cache[bits] = inst
        return inst


class PointerType(Type):
    """Typed pointer ``<pointee>*``."""

    __slots__ = ("pointee",)
    _cache: Dict[Type, "PointerType"] = {}

    def __new__(cls, pointee: Type) -> "PointerType":
        inst = cls._cache.get(pointee)
        if inst is None:
            if pointee.is_void or pointee.is_label:
                raise ValueError(f"cannot point to {pointee}")
            inst = object.__new__(cls)
            inst.pointee = pointee
            inst._finish(f"{pointee}*")
            cls._cache[pointee] = inst
        return inst


class ArrayType(Type):
    """Fixed-size array ``[N x T]``."""

    __slots__ = ("element", "count")
    _cache: Dict[Tuple[Type, int], "ArrayType"] = {}

    def __new__(cls, element: Type, count: int) -> "ArrayType":
        key = (element, count)
        inst = cls._cache.get(key)
        if inst is None:
            if count < 0:
                raise ValueError("array count must be non-negative")
            if not element.is_first_class:
                raise ValueError(f"invalid array element type {element}")
            inst = object.__new__(cls)
            inst.element = element
            inst.count = count
            inst._finish(f"[{count} x {element}]")
            cls._cache[key] = inst
        return inst


class StructType(Type):
    """Anonymous literal struct ``{T0, T1, ...}`` (interned structurally)."""

    __slots__ = ("fields",)
    _cache: Dict[Tuple[Type, ...], "StructType"] = {}

    def __new__(cls, fields: Sequence[Type]) -> "StructType":
        key = tuple(fields)
        inst = cls._cache.get(key)
        if inst is None:
            for f in key:
                if not f.is_first_class:
                    raise ValueError(f"invalid struct field type {f}")
            inst = object.__new__(cls)
            inst.fields = key
            inst._finish("{" + ", ".join(str(f) for f in key) + "}")
            cls._cache[key] = inst
        return inst


class FunctionType(Type):
    """Function type ``ret (p0, p1, ...)``."""

    __slots__ = ("ret", "params")
    _cache: Dict[Tuple[Type, Tuple[Type, ...]], "FunctionType"] = {}

    def __new__(cls, ret: Type, params: Sequence[Type]) -> "FunctionType":
        key = (ret, tuple(params))
        inst = cls._cache.get(key)
        if inst is None:
            if ret.is_label or isinstance(ret, FunctionType):
                raise ValueError(f"invalid return type {ret}")
            for p in key[1]:
                if not p.is_first_class:
                    raise ValueError(f"invalid parameter type {p}")
            inst = object.__new__(cls)
            inst.ret = ret
            inst.params = key[1]
            inst._finish(f"{ret} ({', '.join(str(p) for p in key[1])})")
            cls._cache[key] = inst
        return inst


# Commonly used singletons.
VOID = VoidType()
LABEL = LabelType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
FLOAT = FloatType(32)
DOUBLE = FloatType(64)
