"""Differential-execution oracle gating merge commits.

Runs each original function against the merged function (called the way
its thunk would call it) on auto-generated inputs through the reference
interpreter, and vetoes the commit on any observable divergence.  This is
the `ir/interp.py` differential-testing purpose wired directly into the
pass: with ``legacy_bugs=True`` the §III-E miscompilations are caught
*before* they are committed instead of surfacing as wrong program output.
"""

from .differential import (
    DifferentialOracle,
    Divergence,
    OracleConfig,
    OracleVerdict,
)
from .inputs import ArgSpec, BufferSpec, synthesize_inputs

__all__ = [
    "ArgSpec",
    "BufferSpec",
    "DifferentialOracle",
    "Divergence",
    "OracleConfig",
    "OracleVerdict",
    "synthesize_inputs",
]
