"""The differential-execution check behind the ``--oracle`` gate.

For a candidate :class:`~repro.merge.merger.MergeResult`, each original
function is executed side by side with the merged function called the
way its thunk would call it (function id constant, parameters routed
through the param map, ``undef`` slots defaulted to zero).  Any
observable divergence — different return value, different trap
behaviour, different bytes left in pointed-to buffers — vetoes the
commit.

The comparison is deliberately conservative in what it *vetoes*:
executions the interpreter cannot complete for environmental reasons
(unresolved externals, exhausted fuel on the original, unsupported
constructs) are counted as *skipped*, never as divergences, so the
oracle cannot reject a merge it could not actually test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..ir.function import Function
from ..ir.interp import FuelExhausted, InterpError, Interpreter, Trap
from ..ir.types import FloatType, PointerType
from .inputs import ArgSpec, BufferSpec, materialize, synthesize_inputs

if TYPE_CHECKING:  # pragma: no cover - type-only import avoids a cycle
    from ..merge.merger import MergeResult

__all__ = [
    "OracleConfig",
    "OracleTimeout",
    "Divergence",
    "OracleVerdict",
    "DifferentialOracle",
]

#: The structured exception behind oracle timeouts: the interpreter's step
#: budget ran dry.  Exported under the oracle's name so campaign-level
#: code can catch "the oracle timed out" without importing interp details.
OracleTimeout = FuelExhausted


@dataclass(frozen=True)
class OracleConfig:
    """Differential-check knobs.

    ``merged_fuel_factor`` gives the merged side headroom for its guard
    branches and selects so a slower-but-correct merge is never mistaken
    for a hang; a merge that needs more than that is not equivalent in
    any practical sense and is vetoed.
    """

    inputs_per_function: int = 5
    fuel: int = 50_000
    merged_fuel_factor: int = 4
    seed: int = 0xD1FF
    compare_memory: bool = True


@dataclass
class Divergence:
    """One input on which original and merged behaviour differ."""

    function: str
    fid: int
    args: Tuple[ArgSpec, ...]
    expected: object
    actual: object
    kind: str  # "value" | "trap" | "memory" | "timeout"

    def __str__(self) -> str:
        return (
            f"@{self.function} (fid={self.fid}) on {list(self.args)}: "
            f"{self.kind} divergence, original={self.expected!r} "
            f"merged={self.actual!r}"
        )


@dataclass
class OracleVerdict:
    """Aggregate outcome of one differential check."""

    checked: int = 0
    skipped: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.divergences

    @property
    def timed_out(self) -> bool:
        """True when every divergence is a merged-side step-budget timeout
        (the introduced-infinite-loop shape) rather than observed
        behavioural disagreement."""
        return bool(self.divergences) and all(
            d.kind == "timeout" for d in self.divergences
        )


class _Skip(Exception):
    """Internal: this input cannot be judged (environmental limitation)."""


def _default_for(type_) -> object:
    """The thunk passes ``undef`` for unmapped slots; the interpreter
    evaluates ``undef`` to zero, so zero is the faithful default."""
    if isinstance(type_, FloatType):
        return 0.0
    return 0


def _values_equal(a: object, b: object) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return a == b
    return a == b


class DifferentialOracle:
    """Gate merges on observable input/output equivalence."""

    def __init__(self, config: OracleConfig = OracleConfig()) -> None:
        self.config = config

    # -- public API ----------------------------------------------------------------
    def check(self, result: "MergeResult") -> OracleVerdict:
        """Differentially test both originals against *result.merged*."""
        verdict = OracleVerdict()
        sides = (
            (result.function_a, result.param_map_a, 0),
            (result.function_b, result.param_map_b, 1),
        )
        for func, param_map, fid in sides:
            vectors = synthesize_inputs(
                func, self.config.inputs_per_function, self.config.seed
            )
            if vectors is None:
                verdict.skipped += self.config.inputs_per_function
                continue
            for specs in vectors:
                try:
                    divergence = self._compare(
                        func, result.merged, param_map, fid, specs
                    )
                except _Skip:
                    verdict.skipped += 1
                    continue
                verdict.checked += 1
                if divergence is not None:
                    verdict.divergences.append(divergence)
        return verdict

    # -- one execution pair ----------------------------------------------------------
    def _run(
        self, func: Function, specs: Sequence[ArgSpec], fuel: int, fuel_traps: bool
    ) -> Tuple[object, Optional[Trap], List[object], Interpreter]:
        """Returns ``(value, trap_or_None, concrete_args, interpreter)``.

        ``fuel_traps`` selects how fuel exhaustion is reported: the original
        side *skips* (we could not observe its behaviour), the merged side —
        whose budget already includes guard/select headroom — counts it as a
        trap, i.e. a behavioural divergence from a terminating original.
        """
        interp = Interpreter(fuel=fuel)
        args = materialize(specs, interp)
        try:
            value = interp.run(func, args).value
            return value, None, args, interp
        except Trap as trap:
            if isinstance(trap, FuelExhausted) and not fuel_traps:
                raise _Skip from trap
            return None, trap, args, interp
        except InterpError as exc:
            raise _Skip from exc
        except RecursionError as exc:  # deep interpreter stacks on hostile inputs
            raise _Skip from exc

    def _compare(
        self,
        func: Function,
        merged: Function,
        param_map: Sequence[int],
        fid: int,
        specs: Sequence[ArgSpec],
    ) -> Optional[Divergence]:
        merged_specs: List[ArgSpec] = [
            _default_for(param) for param in merged.ftype.params
        ]
        merged_specs[0] = fid
        for spec, slot in zip(specs, param_map):
            merged_specs[slot] = spec

        value_o, trap_o, args_o, interp_o = self._run(
            func, specs, self.config.fuel, fuel_traps=False
        )
        merged_fuel = self.config.fuel * self.config.merged_fuel_factor
        value_m, trap_m, args_m, interp_m = self._run(
            merged, merged_specs, merged_fuel, fuel_traps=True
        )

        if (trap_o is None) != (trap_m is None):
            # A merged side that merely ran out of (already generous) fuel
            # while the original terminated is reported as a *timeout*, the
            # introduced-infinite-loop shape, distinct from a real trap.
            kind = (
                "timeout" if isinstance(trap_m, FuelExhausted) else "trap"
            )
            return Divergence(
                func.name, fid, tuple(specs),
                (str(trap_o) or "trap") if trap_o is not None else value_o,
                (str(trap_m) or "trap") if trap_m is not None else value_m,
                kind,
            )
        if trap_o is not None:
            # Both sides trapped; the merged trap may fire from a different
            # (guarded) block, so trap *kinds* are not compared.
            return None
        if not func.return_type.is_void and not isinstance(
            func.return_type, PointerType
        ):
            if not _values_equal(value_o, value_m):
                return Divergence(
                    func.name, fid, tuple(specs), value_o, value_m, "value"
                )
        if self.config.compare_memory:
            # Pair each pointer argument with its merged slot through the
            # param map (slots are not necessarily in parameter order for
            # the second function).
            for idx, spec in enumerate(specs):
                if not isinstance(spec, BufferSpec):
                    continue
                addr_o, addr_m = args_o[idx], args_m[param_map[idx]]
                if not isinstance(addr_o, int) or not isinstance(addr_m, int):
                    continue
                bytes_o = [interp_o.memory.get(addr_o + i) for i in range(spec.size)]
                bytes_m = [interp_m.memory.get(addr_m + i) for i in range(spec.size)]
                if bytes_o != bytes_m:
                    return Divergence(
                        func.name, fid, tuple(specs), bytes_o, bytes_m, "memory"
                    )
        return None
