"""Deterministic argument synthesis for the differential oracle.

Inputs are *specs*, not raw values: scalar params map to concrete
numbers, pointer params to a :class:`BufferSpec` that each interpreter
materializes into its own freshly allocated memory.  Both sides of a
differential run materialize buffers in the same order, so the runs stay
internally consistent even though absolute addresses are run-local.

Synthesis is seeded from the function's name and signature, so two runs
of the oracle over the same module produce identical input sets —
required by the pass-level determinism guarantee.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..fingerprint.fnv import fnv1a_32
from ..ir.function import Function
from ..ir.interp import Interpreter, type_size
from ..ir.types import FloatType, IntType, PointerType, Type

__all__ = ["ArgSpec", "BufferSpec", "synthesize_inputs", "materialize"]


@dataclass(frozen=True)
class BufferSpec:
    """A pointer argument: *size* zeroed bytes with *fill* stored first."""

    size: int
    fill: Tuple[int, ...] = ()

    def materialize(self, interp: Interpreter) -> int:
        base = interp.alloc(self.size)
        for off, byte in enumerate(self.fill):
            interp.memory[base + off] = byte
        return base


ArgSpec = Union[int, float, BufferSpec]


def _int_pool(bits: int) -> List[int]:
    if bits == 1:
        return [0, 1]
    top = (1 << bits) - 1
    half = 1 << (bits - 1)
    return [0, 1, 2, 3, top, half - 1, half, 7 % (top or 1)]


def _spec_for(type_: Type, rng: random.Random) -> Optional[ArgSpec]:
    if isinstance(type_, IntType):
        pool = _int_pool(type_.bits)
        return rng.choice(pool) if rng.random() < 0.7 else rng.randrange(0, 1 << min(type_.bits, 16))
    if isinstance(type_, FloatType):
        pool = [0.0, 1.0, -1.0, 2.5, 0.5, 100.0]
        return rng.choice(pool) if rng.random() < 0.7 else round(rng.uniform(-8.0, 8.0), 3)
    if isinstance(type_, PointerType):
        try:
            size = max(1, type_size(type_.pointee))
        except Exception:
            return None
        fill = tuple(rng.randrange(0, 8) for _ in range(min(size, 8)))
        return BufferSpec(size, fill)
    return None


def synthesize_inputs(
    func: Function, count: int, seed: int = 0xD1FF
) -> Optional[List[List[ArgSpec]]]:
    """*count* argument vectors for *func*, or None if a param type is
    outside the oracle's vocabulary (the check is then inconclusive)."""
    key = fnv1a_32(f"{func.name}/{func.ftype}".encode()) ^ seed
    rng = random.Random(key)
    vectors: List[List[ArgSpec]] = []
    for _ in range(count):
        vector: List[ArgSpec] = []
        for param in func.ftype.params:
            spec = _spec_for(param, rng)
            if spec is None:
                return None
            vector.append(spec)
        vectors.append(vector)
    return vectors


def materialize(specs: Sequence[ArgSpec], interp: Interpreter) -> List[object]:
    """Resolve *specs* into concrete interpreter arguments."""
    return [
        spec.materialize(interp) if isinstance(spec, BufferSpec) else spec
        for spec in specs
    ]
