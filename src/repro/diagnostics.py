"""Structured diagnostics shared by the verifier and the static analyzer.

One :class:`Diagnostic` pinpoints one finding: which checker produced it,
how severe it is, and where in the IR it lives (function / block /
instruction, all by *name* so a diagnostic stays valid after the IR object
it described has been mutated or rolled back).  The verifier
(:class:`repro.ir.verifier.VerificationError`) and every checker in
:mod:`repro.staticcheck` speak this one type, which is what lets
``repro lint --json`` emit machine-readable output for all of them.

This module deliberately imports nothing from the rest of the package so
that the lowest layers (``repro.ir``) can depend on it without cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

__all__ = [
    "Severity",
    "Diagnostic",
    "as_diagnostic",
    "errors_only",
    "has_errors",
    "max_severity",
    "format_diagnostics",
]


class Severity(enum.IntEnum):
    """Ordered severity levels (comparable: ``ERROR > WARNING > INFO``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding from one checker, locatable in the IR by name.

    ``code`` is a stable machine-readable identifier of the finding *kind*
    (e.g. ``"ssa-dominance/use-before-def"``); messages may be reworded
    between releases, codes may not.
    """

    checker: str
    severity: Severity
    message: str
    function: Optional[str] = None
    block: Optional[str] = None
    instruction: Optional[str] = None
    code: Optional[str] = None

    @property
    def location(self) -> str:
        """``@func:%block:%inst`` with absent parts omitted."""
        parts: List[str] = []
        if self.function is not None:
            parts.append(f"@{self.function}")
        if self.block is not None:
            parts.append(f"%{self.block}")
        if self.instruction is not None:
            parts.append(f"%{self.instruction}")
        return ":".join(parts)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (stable keys, severity by name)."""
        return {
            "checker": self.checker,
            "severity": str(self.severity),
            "code": self.code,
            "message": self.message,
            "function": self.function,
            "block": self.block,
            "instruction": self.instruction,
        }

    def __str__(self) -> str:
        loc = self.location
        prefix = f"{self.severity}[{self.checker}]"
        if loc:
            return f"{prefix} {loc}: {self.message}"
        return f"{prefix}: {self.message}"


def as_diagnostic(
    item: Union[str, Diagnostic],
    checker: str = "verifier",
    severity: Severity = Severity.ERROR,
) -> Diagnostic:
    """Wrap a plain string into a :class:`Diagnostic` (pass-through otherwise)."""
    if isinstance(item, Diagnostic):
        return item
    return Diagnostic(checker=checker, severity=severity, message=item)


def errors_only(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diagnostics if d.severity >= Severity.ERROR]


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity >= Severity.ERROR for d in diagnostics)


def max_severity(diagnostics: Sequence[Diagnostic]) -> Optional[Severity]:
    if not diagnostics:
        return None
    return max(d.severity for d in diagnostics)


def format_diagnostics(diagnostics: Iterable[Diagnostic]) -> str:
    return "\n".join(str(d) for d in diagnostics)
