"""MiniC: a small C-like frontend targeting the repro IR."""

from .codegen import CodegenError, compile_program, compile_source
from .lexer import LexError, tokenize
from .parser import ParseError, parse_program

__all__ = [
    "CodegenError",
    "compile_program",
    "compile_source",
    "LexError",
    "tokenize",
    "ParseError",
    "parse_program",
]
