"""Tokenizer for MiniC, the demo source language.

MiniC is a small C subset — enough to write realistic functions that
compile to the repro IR and feed the merging pipeline: ``int``/``long``/
``double``/``bool``/``void`` types, arithmetic and logical expressions,
``if``/``else``, ``while``, ``for``, calls and recursion.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "int",
    "long",
    "double",
    "bool",
    "void",
    "if",
    "else",
    "while",
    "for",
    "return",
    "true",
    "false",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>&&|\|\||==|!=|<=|>=|<<|>>|[-+*/%<>=!&|^~(),;{}])
    """,
    re.VERBOSE | re.DOTALL,
)


class LexError(Exception):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str  # 'int' | 'float' | 'ident' | 'keyword' | 'op' | 'eof'
    text: str
    line: int


def tokenize(source: str) -> List[Token]:
    """Turn MiniC source text into a token list ending with an EOF token."""
    tokens: List[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise LexError(f"unexpected character {source[pos]!r}", line)
        kind = match.lastgroup or ""
        text = match.group(0)
        if kind == "ident" and text in KEYWORDS:
            kind = "keyword"
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, text, line))
        line += text.count("\n")
        pos = match.end()
    tokens.append(Token("eof", "", line))
    return tokens
