"""Abstract syntax tree for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = [
    "Node",
    "Program",
    "FunctionDecl",
    "Param",
    "Block",
    "VarDecl",
    "Assign",
    "If",
    "While",
    "For",
    "Return",
    "ExprStmt",
    "IntLiteral",
    "FloatLiteral",
    "BoolLiteral",
    "VarRef",
    "Unary",
    "Binary",
    "Call",
]


class Node:
    """Base class for AST nodes (line numbers aid error messages)."""

    __slots__ = ("line",)

    def __init__(self, line: int = 0) -> None:
        self.line = line


class Expr(Node):
    __slots__ = ()


class Stmt(Node):
    __slots__ = ()


class IntLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, line: int = 0) -> None:
        super().__init__(line)
        self.value = value


class FloatLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float, line: int = 0) -> None:
        super().__init__(line)
        self.value = value


class BoolLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, value: bool, line: int = 0) -> None:
        super().__init__(line)
        self.value = value


class VarRef(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str, line: int = 0) -> None:
        super().__init__(line)
        self.name = name


class Unary(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line: int = 0) -> None:
        super().__init__(line)
        self.op = op
        self.operand = operand


class Binary(Expr):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr, line: int = 0) -> None:
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Call(Expr):
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: List[Expr], line: int = 0) -> None:
        super().__init__(line)
        self.name = name
        self.args = args


class Block(Stmt):
    __slots__ = ("statements",)

    def __init__(self, statements: List[Stmt], line: int = 0) -> None:
        super().__init__(line)
        self.statements = statements


class VarDecl(Stmt):
    __slots__ = ("type_name", "name", "init")

    def __init__(self, type_name: str, name: str, init: Optional[Expr], line: int = 0) -> None:
        super().__init__(line)
        self.type_name = type_name
        self.name = name
        self.init = init


class Assign(Stmt):
    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Expr, line: int = 0) -> None:
        super().__init__(line)
        self.name = name
        self.value = value


class If(Stmt):
    __slots__ = ("condition", "then_block", "else_block")

    def __init__(
        self,
        condition: Expr,
        then_block: Block,
        else_block: Optional[Block],
        line: int = 0,
    ) -> None:
        super().__init__(line)
        self.condition = condition
        self.then_block = then_block
        self.else_block = else_block


class While(Stmt):
    __slots__ = ("condition", "body")

    def __init__(self, condition: Expr, body: Block, line: int = 0) -> None:
        super().__init__(line)
        self.condition = condition
        self.body = body


class For(Stmt):
    __slots__ = ("init", "condition", "step", "body")

    def __init__(
        self,
        init: Optional[Stmt],
        condition: Optional[Expr],
        step: Optional[Stmt],
        body: Block,
        line: int = 0,
    ) -> None:
        super().__init__(line)
        self.init = init
        self.condition = condition
        self.step = step
        self.body = body


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr], line: int = 0) -> None:
        super().__init__(line)
        self.value = value


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int = 0) -> None:
        super().__init__(line)
        self.expr = expr


class Param(Node):
    __slots__ = ("type_name", "name")

    def __init__(self, type_name: str, name: str, line: int = 0) -> None:
        super().__init__(line)
        self.type_name = type_name
        self.name = name


class FunctionDecl(Node):
    __slots__ = ("return_type", "name", "params", "body")

    def __init__(
        self,
        return_type: str,
        name: str,
        params: List[Param],
        body: Block,
        line: int = 0,
    ) -> None:
        super().__init__(line)
        self.return_type = return_type
        self.name = name
        self.params = params
        self.body = body


class Program(Node):
    __slots__ = ("functions",)

    def __init__(self, functions: List[FunctionDecl], line: int = 0) -> None:
        super().__init__(line)
        self.functions = functions
