"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import List, Optional

from .ast import (
    Assign,
    Binary,
    Block,
    BoolLiteral,
    Call,
    Expr,
    ExprStmt,
    FloatLiteral,
    For,
    FunctionDecl,
    If,
    IntLiteral,
    Param,
    Program,
    Return,
    Stmt,
    Unary,
    VarDecl,
    VarRef,
    While,
)
from .lexer import Token, tokenize

__all__ = ["ParseError", "parse_program"]

_TYPES = {"int", "long", "double", "bool", "void"}

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


class ParseError(Exception):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ----------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.peek()
        self.pos += 1
        return token

    def accept(self, text: str) -> bool:
        if self.peek().text == text and self.peek().kind != "eof":
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> Token:
        token = self.peek()
        if token.text != text:
            raise ParseError(f"expected {text!r}, got {token.text!r}", token.line)
        return self.next()

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.kind != "ident":
            raise ParseError(f"expected identifier, got {token.text!r}", token.line)
        return self.next()

    def expect_type(self) -> Token:
        token = self.peek()
        if token.kind != "keyword" or token.text not in _TYPES:
            raise ParseError(f"expected a type, got {token.text!r}", token.line)
        return self.next()

    # -- grammar -----------------------------------------------------------------
    def program(self) -> Program:
        functions = []
        while self.peek().kind != "eof":
            functions.append(self.function())
        return Program(functions)

    def function(self) -> FunctionDecl:
        ret = self.expect_type()
        name = self.expect_ident()
        self.expect("(")
        params: List[Param] = []
        if not self.accept(")"):
            while True:
                ptype = self.expect_type()
                if ptype.text == "void":
                    raise ParseError("parameters cannot be void", ptype.line)
                pname = self.expect_ident()
                params.append(Param(ptype.text, pname.text, pname.line))
                if not self.accept(","):
                    break
            self.expect(")")
        body = self.block()
        return FunctionDecl(ret.text, name.text, params, body, ret.line)

    def block(self) -> Block:
        start = self.expect("{")
        statements: List[Stmt] = []
        while not self.accept("}"):
            if self.peek().kind == "eof":
                raise ParseError("unterminated block", start.line)
            statements.append(self.statement())
        return Block(statements, start.line)

    def statement(self) -> Stmt:
        token = self.peek()
        if token.text == "{":
            return self.block()
        if token.text == "return":
            self.next()
            value: Optional[Expr] = None
            if self.peek().text != ";":
                value = self.expression()
            self.expect(";")
            return Return(value, token.line)
        if token.text == "if":
            self.next()
            self.expect("(")
            condition = self.expression()
            self.expect(")")
            then_block = self.block()
            else_block = self.block() if self.accept("else") else None
            return If(condition, then_block, else_block, token.line)
        if token.text == "while":
            self.next()
            self.expect("(")
            condition = self.expression()
            self.expect(")")
            return While(condition, self.block(), token.line)
        if token.text == "for":
            self.next()
            self.expect("(")
            init = None if self.peek().text == ";" else self.simple_statement()
            self.expect(";")
            condition = None if self.peek().text == ";" else self.expression()
            self.expect(";")
            step = None if self.peek().text == ")" else self.simple_statement()
            self.expect(")")
            return For(init, condition, step, self.block(), token.line)
        stmt = self.simple_statement()
        self.expect(";")
        return stmt

    def simple_statement(self) -> Stmt:
        """Declaration, assignment or expression (no trailing semicolon)."""
        token = self.peek()
        if token.kind == "keyword" and token.text in _TYPES:
            type_tok = self.next()
            if type_tok.text == "void":
                raise ParseError("variables cannot be void", type_tok.line)
            name = self.expect_ident()
            init = self.expression() if self.accept("=") else None
            return VarDecl(type_tok.text, name.text, init, type_tok.line)
        if token.kind == "ident" and self.peek(1).text == "=":
            name = self.next()
            self.expect("=")
            return Assign(name.text, self.expression(), name.line)
        return ExprStmt(self.expression(), token.line)

    # -- expressions (precedence climbing) ------------------------------------------
    def expression(self, min_precedence: int = 1) -> Expr:
        lhs = self.unary()
        while True:
            op = self.peek().text
            precedence = _PRECEDENCE.get(op)
            if precedence is None or precedence < min_precedence:
                return lhs
            op_tok = self.next()
            rhs = self.expression(precedence + 1)
            lhs = Binary(op, lhs, rhs, op_tok.line)

    def unary(self) -> Expr:
        token = self.peek()
        if token.text in ("-", "!", "~"):
            self.next()
            return Unary(token.text, self.unary(), token.line)
        return self.primary()

    def primary(self) -> Expr:
        token = self.next()
        if token.kind == "int":
            return IntLiteral(int(token.text), token.line)
        if token.kind == "float":
            return FloatLiteral(float(token.text), token.line)
        if token.text in ("true", "false"):
            return BoolLiteral(token.text == "true", token.line)
        if token.text == "(":
            expr = self.expression()
            self.expect(")")
            return expr
        if token.kind == "ident":
            if self.peek().text == "(":
                self.next()
                args: List[Expr] = []
                if not self.accept(")"):
                    args.append(self.expression())
                    while self.accept(","):
                        args.append(self.expression())
                    self.expect(")")
                return Call(token.text, args, token.line)
            return VarRef(token.text, token.line)
        raise ParseError(f"unexpected token {token.text!r}", token.line)


def parse_program(source: str) -> Program:
    """Parse MiniC *source* into an AST."""
    return _Parser(tokenize(source)).program()
