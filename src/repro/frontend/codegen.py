"""MiniC → repro-IR code generation.

Classic C-frontend lowering: every local variable becomes an entry-block
``alloca``; reads load, writes store.  The resulting IR is correct but
memory-heavy — exactly what :mod:`repro.transforms.mem2reg` then promotes
into SSA registers, the same division of labour as clang + LLVM.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.cfg import remove_unreachable_blocks
from ..ir.basicblock import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import FCmpPred, ICmpPred, Opcode
from ..ir.module import Module
from ..ir.types import DOUBLE, FunctionType, I1, I32, I64, IntType, Type, VOID
from ..ir.values import ConstantFloat, ConstantInt, Value
from . import ast

__all__ = ["CodegenError", "compile_program", "compile_source"]


class CodegenError(Exception):
    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


_TYPE_MAP: Dict[str, Type] = {
    "int": I32,
    "long": I64,
    "double": DOUBLE,
    "bool": I1,
    "void": VOID,
}
_RANK = {I1: 0, I32: 1, I64: 2, DOUBLE: 3}

_INT_OPS = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.SDIV,
    "%": Opcode.SREM,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.ASHR,
}
_FLOAT_OPS = {
    "+": Opcode.FADD,
    "-": Opcode.FSUB,
    "*": Opcode.FMUL,
    "/": Opcode.FDIV,
}
_ICMP = {
    "==": ICmpPred.EQ,
    "!=": ICmpPred.NE,
    "<": ICmpPred.SLT,
    "<=": ICmpPred.SLE,
    ">": ICmpPred.SGT,
    ">=": ICmpPred.SGE,
}
_FCMP = {
    "==": FCmpPred.OEQ,
    "!=": FCmpPred.UNE,
    "<": FCmpPred.OLT,
    "<=": FCmpPred.OLE,
    ">": FCmpPred.OGT,
    ">=": FCmpPred.OGE,
}


class _FunctionEmitter:
    def __init__(self, module: Module, func: Function, decl: ast.FunctionDecl) -> None:
        self.module = module
        self.func = func
        self.decl = decl
        self.builder = IRBuilder()
        self.entry = BasicBlock("entry", func)
        self.builder.position_at_end(self.entry)
        # Scope stack: name -> (alloca, declared type).
        self.scopes: List[Dict[str, Tuple[Value, Type]]] = [{}]

    # -- scope helpers ------------------------------------------------------------
    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, type_: Type, line: int) -> Value:
        if name in self.scopes[-1]:
            raise CodegenError(f"redeclaration of {name!r}", line)
        slot = self.builder.alloca(type_, name=f"{name}.addr")
        self.scopes[-1][name] = (slot, type_)
        return slot

    def lookup(self, name: str, line: int) -> Tuple[Value, Type]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise CodegenError(f"use of undeclared variable {name!r}", line)

    # -- conversions -----------------------------------------------------------------
    def convert(self, value: Value, to_type: Type, line: int) -> Value:
        from_type = value.type
        if from_type is to_type:
            return value
        b = self.builder
        if to_type is I1:
            if from_type.is_int:
                return b.icmp(ICmpPred.NE, value, ConstantInt(from_type, 0))
            if from_type.is_float:
                return b.fcmp(FCmpPred.UNE, value, ConstantFloat(DOUBLE, 0.0))
        if from_type is I1 and isinstance(to_type, IntType):
            return b.zext(value, to_type)
        if from_type is I1 and to_type is DOUBLE:
            return b.sitofp(b.zext(value, I32), DOUBLE)
        if isinstance(from_type, IntType) and isinstance(to_type, IntType):
            if from_type.bits < to_type.bits:
                return b.sext(value, to_type)
            return b.trunc(value, to_type)
        if isinstance(from_type, IntType) and to_type is DOUBLE:
            return b.sitofp(value, DOUBLE)
        if from_type is DOUBLE and isinstance(to_type, IntType):
            return b.fptosi(value, to_type)
        raise CodegenError(f"cannot convert {from_type} to {to_type}", line)

    def promote(self, lhs: Value, rhs: Value, line: int) -> Tuple[Value, Value]:
        """Usual arithmetic conversions: widen both to the higher rank."""
        lt = lhs.type if lhs.type is not I1 else I32
        rt = rhs.type if rhs.type is not I1 else I32
        target = lt if _RANK[lt] >= _RANK[rt] else rt
        return self.convert(lhs, target, line), self.convert(rhs, target, line)

    # -- expressions -----------------------------------------------------------------
    def emit_expr(self, node: ast.Expr) -> Value:
        if isinstance(node, ast.IntLiteral):
            type_ = I32 if -(2**31) <= node.value < 2**31 else I64
            return ConstantInt(type_, node.value)
        if isinstance(node, ast.FloatLiteral):
            return ConstantFloat(DOUBLE, node.value)
        if isinstance(node, ast.BoolLiteral):
            return ConstantInt(I1, int(node.value))
        if isinstance(node, ast.VarRef):
            slot, type_ = self.lookup(node.name, node.line)
            return self.builder.load(slot, name=node.name)
        if isinstance(node, ast.Unary):
            return self._emit_unary(node)
        if isinstance(node, ast.Binary):
            return self._emit_binary(node)
        if isinstance(node, ast.Call):
            return self._emit_call(node)
        raise CodegenError(f"unsupported expression {type(node).__name__}", node.line)

    def _emit_unary(self, node: ast.Unary) -> Value:
        operand = self.emit_expr(node.operand)
        b = self.builder
        if node.op == "-":
            if operand.type.is_float:
                return b.fsub(ConstantFloat(DOUBLE, 0.0), operand)
            operand = self.convert(operand, I32, node.line) if operand.type is I1 else operand
            return b.sub(ConstantInt(operand.type, 0), operand)  # type: ignore[arg-type]
        if node.op == "!":
            as_bool = self.convert(operand, I1, node.line)
            return b.xor(as_bool, ConstantInt(I1, 1))
        if node.op == "~":
            if not operand.type.is_int or operand.type is I1:
                raise CodegenError("~ requires an integer operand", node.line)
            return b.xor(operand, ConstantInt(operand.type, -1))  # type: ignore[arg-type]
        raise CodegenError(f"unknown unary operator {node.op!r}", node.line)

    def _emit_binary(self, node: ast.Binary) -> Value:
        if node.op in ("&&", "||"):
            return self._emit_logical(node)
        lhs = self.emit_expr(node.lhs)
        rhs = self.emit_expr(node.rhs)
        lhs, rhs = self.promote(lhs, rhs, node.line)
        b = self.builder
        if node.op in _ICMP:
            if lhs.type.is_float:
                return b.fcmp(_FCMP[node.op], lhs, rhs)
            return b.icmp(_ICMP[node.op], lhs, rhs)
        if lhs.type.is_float:
            opcode = _FLOAT_OPS.get(node.op)
            if opcode is None:
                raise CodegenError(
                    f"operator {node.op!r} not defined for double", node.line
                )
            return b.binop(opcode, lhs, rhs)
        opcode = _INT_OPS.get(node.op)
        if opcode is None:
            raise CodegenError(f"unknown operator {node.op!r}", node.line)
        return b.binop(opcode, lhs, rhs)

    def _emit_logical(self, node: ast.Binary) -> Value:
        """Short-circuit && / || via control flow and a phi."""
        b = self.builder
        func = self.func
        lhs = self.convert(self.emit_expr(node.lhs), I1, node.line)
        lhs_block = b.block
        rhs_block = BasicBlock(func.next_name("sc.rhs"), func)
        join_block = BasicBlock(func.next_name("sc.join"), func)
        if node.op == "&&":
            b.cond_br(lhs, rhs_block, join_block)
            short_value = ConstantInt(I1, 0)
        else:
            b.cond_br(lhs, join_block, rhs_block)
            short_value = ConstantInt(I1, 1)
        b.position_at_end(rhs_block)
        rhs = self.convert(self.emit_expr(node.rhs), I1, node.line)
        rhs_exit = b.block
        b.br(join_block)
        b.position_at_end(join_block)
        phi = b.phi(I1)
        phi.add_incoming(short_value, lhs_block)
        phi.add_incoming(rhs, rhs_exit)
        return phi

    def _emit_call(self, node: ast.Call) -> Value:
        callee = self.module.get_function(node.name)
        if callee is None:
            raise CodegenError(f"call to unknown function {node.name!r}", node.line)
        params = callee.ftype.params
        if len(node.args) != len(params):
            raise CodegenError(
                f"{node.name} expects {len(params)} arguments, got {len(node.args)}",
                node.line,
            )
        args = [
            self.convert(self.emit_expr(arg), param, node.line)
            for arg, param in zip(node.args, params)
        ]
        return self.builder.call(callee, args)

    # -- statements ------------------------------------------------------------------
    def _terminated(self) -> bool:
        return self.builder.block.is_terminated

    def _fresh_block_if_terminated(self) -> None:
        if self._terminated():
            # Statements after return/… are unreachable; emit them into a
            # detached-from-control-flow block that a later cleanup drops.
            dead = BasicBlock(self.func.next_name("dead"), self.func)
            self.builder.position_at_end(dead)

    def emit_stmt(self, node: ast.Stmt) -> None:
        self._fresh_block_if_terminated()
        if isinstance(node, ast.Block):
            self.push_scope()
            for stmt in node.statements:
                self.emit_stmt(stmt)
            self.pop_scope()
        elif isinstance(node, ast.VarDecl):
            type_ = _TYPE_MAP[node.type_name]
            slot = self.declare(node.name, type_, node.line)
            init = (
                self.convert(self.emit_expr(node.init), type_, node.line)
                if node.init is not None
                else self._zero(type_)
            )
            self.builder.store(init, slot)
        elif isinstance(node, ast.Assign):
            slot, type_ = self.lookup(node.name, node.line)
            value = self.convert(self.emit_expr(node.value), type_, node.line)
            self.builder.store(value, slot)
        elif isinstance(node, ast.Return):
            ret_type = self.func.return_type
            if ret_type.is_void:
                if node.value is not None:
                    raise CodegenError("void function returning a value", node.line)
                self.builder.ret()
            else:
                if node.value is None:
                    raise CodegenError("non-void function must return a value", node.line)
                self.builder.ret(
                    self.convert(self.emit_expr(node.value), ret_type, node.line)
                )
        elif isinstance(node, ast.If):
            self._emit_if(node)
        elif isinstance(node, ast.While):
            self._emit_while(node)
        elif isinstance(node, ast.For):
            self._emit_for(node)
        elif isinstance(node, ast.ExprStmt):
            self.emit_expr(node.expr)
        else:
            raise CodegenError(f"unsupported statement {type(node).__name__}", node.line)

    def _zero(self, type_: Type) -> Value:
        if type_.is_float:
            return ConstantFloat(DOUBLE, 0.0)
        return ConstantInt(type_, 0)  # type: ignore[arg-type]

    def _emit_if(self, node: ast.If) -> None:
        b = self.builder
        func = self.func
        condition = self.convert(self.emit_expr(node.condition), I1, node.line)
        then_block = BasicBlock(func.next_name("if.then"), func)
        else_block = (
            BasicBlock(func.next_name("if.else"), func)
            if node.else_block is not None
            else None
        )
        join = BasicBlock(func.next_name("if.end"), func)
        # NB: an empty BasicBlock is falsy (len == 0), so `or` is wrong here.
        b.cond_br(condition, then_block, join if else_block is None else else_block)

        b.position_at_end(then_block)
        self.emit_stmt(node.then_block)
        if not self._terminated():
            b.br(join)

        if else_block is not None:
            b.position_at_end(else_block)
            self.emit_stmt(node.else_block)  # type: ignore[arg-type]
            if not self._terminated():
                b.br(join)

        b.position_at_end(join)

    def _emit_while(self, node: ast.While) -> None:
        b = self.builder
        func = self.func
        header = BasicBlock(func.next_name("while.cond"), func)
        body = BasicBlock(func.next_name("while.body"), func)
        exit_block = BasicBlock(func.next_name("while.end"), func)
        b.br(header)
        b.position_at_end(header)
        condition = self.convert(self.emit_expr(node.condition), I1, node.line)
        b.cond_br(condition, body, exit_block)
        b.position_at_end(body)
        self.emit_stmt(node.body)
        if not self._terminated():
            b.br(header)
        b.position_at_end(exit_block)

    def _emit_for(self, node: ast.For) -> None:
        b = self.builder
        func = self.func
        self.push_scope()  # for-init variables scope to the loop
        if node.init is not None:
            self.emit_stmt(node.init)
        header = BasicBlock(func.next_name("for.cond"), func)
        body = BasicBlock(func.next_name("for.body"), func)
        exit_block = BasicBlock(func.next_name("for.end"), func)
        b.br(header)
        b.position_at_end(header)
        if node.condition is not None:
            condition = self.convert(self.emit_expr(node.condition), I1, node.line)
            b.cond_br(condition, body, exit_block)
        else:
            b.br(body)
        b.position_at_end(body)
        self.emit_stmt(node.body)
        if not self._terminated():
            if node.step is not None:
                self.emit_stmt(node.step)
            b.br(header)
        b.position_at_end(exit_block)
        self.pop_scope()

    # -- whole function ----------------------------------------------------------------
    def emit(self) -> None:
        for arg, param in zip(self.func.args, self.decl.params):
            arg.name = param.name
            slot = self.declare(param.name, arg.type, param.line)
            self.builder.store(arg, slot)
        for stmt in self.decl.body.statements:
            self.emit_stmt(stmt)
        if not self._terminated():
            if self.func.return_type.is_void:
                self.builder.ret()
            else:
                # C leaves this undefined; we define it as zero.
                self.builder.ret(self._zero(self.func.return_type))
        remove_unreachable_blocks(self.func)


def compile_program(program: ast.Program, module_name: str = "minic") -> Module:
    """Lower a parsed MiniC program to an IR module."""
    module = Module(module_name)
    decls: List[Tuple[Function, ast.FunctionDecl]] = []
    for decl in program.functions:
        if decl.name in module:
            raise CodegenError(f"redefinition of function {decl.name!r}", decl.line)
        ftype = FunctionType(
            _TYPE_MAP[decl.return_type],
            [_TYPE_MAP[p.type_name] for p in decl.params],
        )
        func = Function(ftype, decl.name, parent=module)
        decls.append((func, decl))
    for func, decl in decls:
        _FunctionEmitter(module, func, decl).emit()
        func.uniquify_names()
    return module


def compile_source(source: str, module_name: str = "minic") -> Module:
    """Compile MiniC source text to a verified IR module."""
    from ..ir.verifier import verify_module
    from .parser import parse_program

    module = compile_program(parse_program(source), module_name)
    verify_module(module)
    return module
