"""Unified observability layer: structured tracing, metrics, run manifests.

Three cooperating pieces, all zero-dependency and optional at runtime:

* :mod:`repro.obs.trace` — a span tracer.  Pipeline code opens named,
  attributed spans (``with trace.span("align", fn_a=...)``); spans nest,
  time themselves on the monotonic clock, survive exceptions (a span that
  raises still closes, flagged ``error=True``), land in a bounded
  in-memory ring and, optionally, in a JSONL sink.  When no tracer is
  installed every instrumentation point costs one global load and one
  branch.
* :mod:`repro.obs.metrics` — a metrics registry: counters, gauges and
  log2-bucketed histograms (percentile summaries without raw-sample
  retention), plus snapshot-time *sources* that absorb the pipeline's
  existing counters (fingerprint/alignment caches, LSH index state,
  outcome tallies) behind one :meth:`Registry.snapshot`.
* :mod:`repro.obs.manifest` — the run manifest: one self-describing JSON
  per ``repro merge`` / ``repro bench-perf`` run (config, adaptive
  parameters, git revision, metrics snapshot, stage table, outcome
  table, module digest) so any two runs are diffable
  (:func:`diff_manifests`) and renderable (``repro report``).

See ``docs/observability.md`` for the span catalogue, metrics schema and
manifest format.
"""

from . import trace
from .manifest import (
    RunManifest,
    build_merge_manifest,
    collect_pass_telemetry,
    diff_manifests,
    load_manifest,
    render_manifest,
    render_manifest_diff,
    save_manifest,
)
from .metrics import Counter, Gauge, Histogram, Registry
from .trace import Span, Tracer, span_totals

__all__ = [
    "trace",
    "Tracer",
    "Span",
    "span_totals",
    "Registry",
    "Counter",
    "Gauge",
    "Histogram",
    "RunManifest",
    "build_merge_manifest",
    "collect_pass_telemetry",
    "diff_manifests",
    "load_manifest",
    "save_manifest",
    "render_manifest",
    "render_manifest_diff",
]
