"""Structured span tracing for the merging pipeline.

A *span* is one named, timed region of pipeline work — a merge attempt, an
alignment, an LSH probe — carrying free-form attributes and point-in-time
*events* (cache hit/miss markers).  Spans nest: each span records its
parent, so a JSONL trace reconstructs the full call tree of a run.

Design constraints, in priority order:

1. **Disabled tracing is free.**  No tracer installed means every
   instrumentation point reduces to one module-global load and one
   ``is None`` branch before returning a shared no-op span; nothing is
   retained (``tests/obs/test_trace.py`` pins this with ``tracemalloc``).
2. **Exception safety.**  A span whose body raises still closes, records
   its duration, and is flagged ``error=True`` with the exception type.
3. **Bounded memory.**  Finished spans land in a ring buffer
   (``maxlen`` spans); the optional JSONL sink streams every finished
   span to disk, so long runs can keep full traces without keeping them
   resident.

Timing uses the monotonic clock (``time.perf_counter``), the same clock
as the pass's own stage accounting, so span totals and the profiler's
stage table agree (gated within 5% by ``benchmarks/test_obs_overhead.py``).

Usage::

    tracer = Tracer(sink="run.jsonl")
    with tracer.install():
        run_pipeline()
    totals = span_totals(tracer.finished())

Instrumentation sites use the module-level helpers, which dispatch to the
installed tracer (or the no-op)::

    from repro.obs import trace
    with trace.span("align", fn_a=a.name, fn_b=b.name):
        ...
        trace.event("align_cache", hit=True)
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "span",
    "event",
    "active",
    "enabled",
    "install",
    "uninstall",
    "span_totals",
    "load_trace",
]


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """One named, timed, attributed region of work."""

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "start",
        "duration",
        "error",
        "error_type",
        "events",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, object],
        span_id: int,
        parent_id: Optional[int],
        depth: int,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start = 0.0
        self.duration = 0.0
        self.error = False
        self.error_type: Optional[str] = None
        self.events: List[Tuple[str, float, Dict[str, object]]] = []

    # -- context manager -------------------------------------------------------------
    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        if exc_type is not None:
            self.error = True
            self.error_type = exc_type.__name__
        self._tracer._finish(self)
        return False  # never swallow the exception

    # -- enrichment ------------------------------------------------------------------
    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time event inside this span (offset seconds
        from the span start)."""
        self.events.append((name, time.perf_counter() - self.start, attrs))

    # -- serialization ---------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "dur": self.duration,
        }
        if self.attrs:
            payload["attrs"] = self.attrs
        if self.error:
            payload["error"] = True
            payload["error_type"] = self.error_type
        if self.events:
            payload["events"] = [
                {"name": name, "offset": offset, **({"attrs": a} if a else {})}
                for name, offset, a in self.events
            ]
        return payload


class Tracer:
    """Owns the span stack, the finished-span ring and the optional sink.

    The span stack is thread-local, so concurrent pipeline threads each
    get a consistent parent chain; the ring and the sink are shared and
    lock-protected.
    """

    def __init__(self, maxlen: int = 1 << 16, sink: Optional[str] = None) -> None:
        self.maxlen = maxlen
        self._ring: "deque[Span]" = deque(maxlen=maxlen)
        self._local = threading.local()
        # The lock only guards the sink handle: id allocation uses
        # itertools.count (atomic under the GIL) and bounded deque appends
        # are thread-safe, so the sink-less hot path takes no lock at all.
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._sink_path = sink
        self._sink_handle = None
        self.spans_started = 0
        self.spans_dropped = 0
        if sink is not None:
            self._sink_handle = open(sink, "w", encoding="utf-8")

    # -- span lifecycle ---------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs) -> Span:
        """Open a new span as a child of the current one (enter to start)."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        span_id = next(self._ids)
        # Informational tally; a lost update under thread preemption is
        # acceptable, a per-span lock is not.
        self.spans_started += 1
        sp = Span(
            self,
            name,
            attrs,
            span_id,
            parent.span_id if parent is not None else None,
            len(stack),
        )
        stack.append(sp)
        return sp

    def event(self, name: str, **attrs) -> None:
        """Attach an event to the innermost open span (dropped if none)."""
        stack = self._stack()
        if stack:
            stack[-1].event(name, **attrs)

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _finish(self, sp: Span) -> None:
        stack = self._stack()
        # Exception paths can close spans out of order; pop to (and
        # including) the finished span so the stack never leaks an entry.
        while stack:
            top = stack.pop()
            if top is sp:
                break
        ring = self._ring
        if len(ring) == self.maxlen:
            self.spans_dropped += 1
        ring.append(sp)  # bounded deque: thread-safe, evicts oldest
        if self._sink_handle is not None:
            with self._lock:
                json.dump(sp.to_dict(), self._sink_handle, sort_keys=True)
                self._sink_handle.write("\n")

    # -- inspection -------------------------------------------------------------------
    def finished(self) -> List[Span]:
        """Finished spans still resident in the ring (oldest first)."""
        return list(self._ring)

    def close(self) -> None:
        if self._sink_handle is not None:
            self._sink_handle.close()
            self._sink_handle = None

    # -- installation -----------------------------------------------------------------
    @contextmanager
    def install(self):
        """Make this tracer the process-wide active tracer for a ``with``
        block (restores the previous one on exit, closes the sink)."""
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = previous
            self.close()


# ---------------------------------------------------------------------------
# Module-level dispatch (the instrumentation surface)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def span(name: str, **attrs):
    """A span on the active tracer, or the shared no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """An event on the active tracer's innermost span (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is None:
        return
    tracer.event(name, **attrs)


def active() -> Optional[Tracer]:
    """The installed tracer, or None.  Hot paths that would do real work
    just to compute span attributes should guard on this first."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


def install(tracer: Tracer) -> None:
    """Install *tracer* process-wide (prefer ``Tracer.install()``)."""
    global _ACTIVE
    _ACTIVE = tracer


def uninstall() -> None:
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = None


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def span_totals(spans: Iterable) -> Dict[str, Dict[str, object]]:
    """Aggregate spans (``Span`` objects or ``to_dict`` payloads) by name.

    Returns ``{name: {"count", "total_s", "errors"}}`` — the shape the
    manifest's stage table and the profiler-agreement test consume.
    """
    out: Dict[str, Dict[str, object]] = {}
    for sp in spans:
        if isinstance(sp, Span):
            name, dur, err = sp.name, sp.duration, sp.error
        else:
            name, dur, err = sp["name"], sp.get("dur", 0.0), sp.get("error", False)
        agg = out.get(name)
        if agg is None:
            agg = {"count": 0, "total_s": 0.0, "errors": 0}
            out[name] = agg
        agg["count"] += 1
        agg["total_s"] += dur
        if err:
            agg["errors"] += 1
    return out


def load_trace(path: str) -> List[Dict[str, object]]:
    """Read a JSONL trace back as a list of span payloads."""
    spans: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans
