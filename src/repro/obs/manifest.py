"""Run manifests: one self-describing JSON per pipeline run.

A manifest captures everything needed to say *what this run was* — the
pass configuration, the adaptive policy's (t, r, b, k) choices (paper
Eq. 3–4), the workload seed, the git revision of the code, the metrics
snapshot, the profiler stage table, the outcome table and a content
digest of the resulting module — so that any two runs are mechanically
diffable (:func:`diff_manifests`) and any single run renders as the
harness table (``repro report``).

The manifest is deliberately plain data (one flat dataclass over
JSON-ready dicts): no object graph to version, and
``emit → save → load → diff == {}`` holds exactly
(``tests/obs/test_manifest.py``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "MANIFEST_SCHEMA",
    "RunManifest",
    "git_revision",
    "module_digest",
    "collect_pass_telemetry",
    "build_merge_manifest",
    "save_manifest",
    "load_manifest",
    "diff_manifests",
    "render_manifest",
    "render_manifest_diff",
]

#: Bumped when the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1


@dataclass
class RunManifest:
    """One run of the pipeline, described completely enough to diff."""

    kind: str  # "merge" | "bench-perf"
    strategy: str = ""
    config: Dict[str, object] = field(default_factory=dict)
    # Adaptive-policy choices (threshold t, rows r, bands b, fingerprint
    # size k) when the adaptive ranker picked them; None for static runs.
    adaptive: Optional[Dict[str, object]] = None
    seed: Optional[int] = None
    git_rev: Optional[str] = None
    created_unix: float = 0.0
    # Workload / result identity.
    module_name: Optional[str] = None
    module_digest: Optional[str] = None
    functions: int = 0
    merges: int = 0
    size_before: int = 0
    size_after: int = 0
    total_time: float = 0.0
    comparisons: int = 0
    # Tables.
    stages: Dict[str, float] = field(default_factory=dict)
    outcomes: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA

    @property
    def size_reduction(self) -> float:
        if self.size_before == 0:
            return 0.0
        return 1.0 - self.size_after / self.size_before

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunManifest":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


# ---------------------------------------------------------------------------
# Identity helpers
# ---------------------------------------------------------------------------


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """HEAD of the repository containing this code (or *cwd* when given),
    or None when git is unavailable.  Defaulting to the package directory
    — not the process cwd — means a run launched from anywhere still
    records the revision of the code that produced it."""
    if cwd is None:
        cwd = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except Exception:
        return None
    if out.returncode != 0:
        return None
    rev = out.stdout.strip()
    return rev or None


def module_digest(module) -> str:
    """Content digest of a module: sha256 of its canonical printed form."""
    from ..ir.printer import print_module

    return hashlib.sha256(print_module(module).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Telemetry collection
# ---------------------------------------------------------------------------


def collect_pass_telemetry(pass_, report, registry) -> None:
    """Wire a finished pass's scattered counters into *registry*.

    Registers snapshot-time sources for the owners that keep live stats —
    the fingerprint cache, the alignment block/plan caches, the LSH index,
    the ranker's query counters — and folds the report's one-shot outcome
    tallies into counters.  Safe to call with any ranker/config: absent
    pieces are skipped.
    """
    ranker = pass_.ranker

    fp_cache = getattr(ranker, "cache", None)
    if fp_cache is not None:
        registry.register_source("fingerprint_cache", fp_cache.stats.to_dict)

    engine = getattr(pass_, "engine", None)
    if engine is not None:
        registry.register_source("align_cache", engine.cache.stats.to_dict)
        registry.register_source("plan_cache", engine.plans.stats.to_dict)

    index = getattr(ranker, "_index", None)
    if index is not None and hasattr(index, "index_stats"):
        registry.register_source("lsh_index", index.index_stats)
    if index is not None and hasattr(index, "bucket_summary"):
        registry.register_source("lsh_buckets", index.bucket_summary)

    from ..staticcheck.dataflow import solver_stats

    registry.register_source("staticcheck.dataflow", solver_stats)

    stats = getattr(ranker, "stats", None)
    if stats is not None:
        registry.register_source(
            "ranking",
            lambda s=stats: {
                "queries": s.queries,
                "comparisons": s.comparisons,
                "buckets_probed": s.buckets_probed,
                "capped_buckets": s.capped_buckets,
            },
        )

    registry.absorb_counts("merge.outcome", report.outcome_counts())
    registry.counter("merge.attempts").inc(len(report.attempts))
    registry.counter("merge.merges").inc(report.merges)


# ---------------------------------------------------------------------------
# Building
# ---------------------------------------------------------------------------


def build_merge_manifest(
    report,
    ranker=None,
    pass_config=None,
    module=None,
    registry=None,
    kind: str = "merge",
    module_name: Optional[str] = None,
    seed: Optional[int] = None,
) -> RunManifest:
    """Fold one finished merge run into a :class:`RunManifest`.

    The stage table is the profiler's own
    (:func:`repro.harness.profile.profile_from_report`), so manifest stage
    seconds and ``bench-perf`` stage rows are the same numbers.
    """
    from ..harness.profile import profile_from_report

    profile = profile_from_report(report, ranker)

    config_dict: Dict[str, object] = {}
    if pass_config is not None:
        config_dict = dataclasses.asdict(pass_config)

    adaptive = None
    params = getattr(ranker, "parameters", None)
    if params is not None:
        adaptive = {
            "threshold": params.threshold,
            "rows": params.rows,
            "bands": params.bands,
            "fingerprint_size": params.fingerprint_size,
        }

    return RunManifest(
        kind=kind,
        strategy=report.strategy,
        config=config_dict,
        adaptive=adaptive,
        seed=seed,
        git_rev=git_revision(),
        created_unix=time.time(),
        module_name=module_name,
        module_digest=module_digest(module) if module is not None else None,
        functions=report.num_functions,
        merges=report.merges,
        size_before=report.size_before,
        size_after=report.size_after,
        total_time=report.total_time,
        comparisons=report.comparisons,
        stages=dict(profile.stages),
        outcomes=report.outcome_counts(),
        metrics=registry.snapshot() if registry is not None else {},
    )


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------


def save_manifest(manifest: RunManifest, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_manifest(path: str) -> RunManifest:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return RunManifest.from_dict(payload)


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------


def _leaf_equal(a, b, rel_tol: float) -> bool:
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b or a == b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        if a == b:
            return True
        if rel_tol <= 0.0:
            return False
        scale = max(abs(a), abs(b))
        return abs(a - b) <= rel_tol * scale
    return a == b


def _diff_value(a, b, rel_tol: float, path: str, out: Dict[str, Dict[str, object]]):
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in a:
                out[sub] = {"a": None, "b": b[key]}
            elif key not in b:
                out[sub] = {"a": a[key], "b": None}
            else:
                _diff_value(a[key], b[key], rel_tol, sub, out)
        return
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            out[path] = {"a": a, "b": b}
            return
        for i, (x, y) in enumerate(zip(a, b)):
            _diff_value(x, y, rel_tol, f"{path}[{i}]", out)
        return
    if not _leaf_equal(a, b, rel_tol):
        out[path] = {"a": a, "b": b}


def diff_manifests(
    a: RunManifest,
    b: RunManifest,
    rel_tol: float = 0.0,
    ignore: Sequence[str] = (),
) -> Dict[str, Dict[str, object]]:
    """Structural diff of two manifests: ``{dotted.path: {"a": .., "b": ..}}``.

    Empty dict means identical (up to *rel_tol* on numeric leaves).
    *ignore* drops paths by prefix — pass ``("created_unix", "git_rev")``
    to compare runs across commits, or ``("stages", "total_time")`` to
    compare decisions while ignoring timing noise.
    """
    out: Dict[str, Dict[str, object]] = {}
    _diff_value(a.to_dict(), b.to_dict(), rel_tol, "", out)
    if ignore:
        out = {
            path: delta
            for path, delta in out.items()
            if not any(path == p or path.startswith(p + ".") or path.startswith(p + "[")
                       for p in ignore)
        }
    return out


# ---------------------------------------------------------------------------
# Rendering (the `repro report` subcommand)
# ---------------------------------------------------------------------------


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def render_manifest(manifest: RunManifest) -> str:
    """One manifest as harness tables: header facts, stages, outcomes."""
    # Imported here, not at module top: harness pulls in the merging pass,
    # which itself imports repro.obs for instrumentation.
    from ..harness.table import format_outcome_table, format_table

    facts: List[Tuple[str, object]] = [
        ("kind", manifest.kind),
        ("strategy", manifest.strategy),
        ("functions", manifest.functions),
        ("merges", manifest.merges),
        ("size before", manifest.size_before),
        ("size after", manifest.size_after),
        ("size reduction", f"{manifest.size_reduction:.2%}"),
        ("total time (s)", f"{manifest.total_time:.3f}"),
        ("comparisons", manifest.comparisons),
        ("git rev", (manifest.git_rev or "?")[:12]),
        ("module digest", (manifest.module_digest or "?")[:12]),
    ]
    if manifest.seed is not None:
        facts.append(("seed", manifest.seed))
    if manifest.adaptive:
        adaptive = manifest.adaptive
        facts.append(
            (
                "adaptive t/r/b/k",
                f"{adaptive.get('threshold')}/{adaptive.get('rows')}"
                f"/{adaptive.get('bands')}/{adaptive.get('fingerprint_size')}",
            )
        )
    parts = [format_table(["field", "value"], facts)]

    if manifest.stages:
        stage_rows = [
            (name, f"{seconds:.6f}")
            for name, seconds in manifest.stages.items()
        ]
        parts.append(format_table(["stage", "seconds"], stage_rows))

    if manifest.outcomes:
        parts.append(format_outcome_table(manifest.outcomes))

    sources = manifest.metrics.get("sources") if manifest.metrics else None
    if sources:
        rows = []
        for source, values in sorted(sources.items()):
            if isinstance(values, dict):
                for key, value in sorted(values.items()):
                    if isinstance(value, (int, float, str, bool)):
                        rows.append((f"{source}.{key}", _fmt(value)))
        if rows:
            parts.append(format_table(["metric", "value"], rows))

    return "\n\n".join(parts)


def render_manifest_diff(diff: Dict[str, Dict[str, object]]) -> str:
    """A manifest diff as one harness table (or a no-difference note)."""
    from ..harness.table import format_table

    if not diff:
        return "manifests identical"
    rows = [
        (path, _fmt(delta["a"]), _fmt(delta["b"]))
        for path, delta in sorted(diff.items())
    ]
    return format_table(["field", "run a", "run b"], rows)
