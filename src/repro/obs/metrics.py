"""Metrics registry: counters, gauges, log2-bucketed histograms, sources.

The pipeline already counts a lot — fingerprint-cache hits, alignment-plan
evictions, LSH tombstones, per-outcome attempt tallies — but each counter
lives with its owner and is reported ad hoc.  The :class:`Registry` gives
them one front door:

* native instruments (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) for new measurements, created on first use and
  namespaced by dotted names (``merge.outcome.merged``);
* *sources* — callables returning a flat mapping — registered for the
  existing stat objects (``FingerprintCache.stats.to_dict`` and friends),
  read lazily at snapshot time so owners keep their counters and the
  registry never double-books;
* :meth:`Registry.snapshot` folds both into one JSON-ready dict, the
  ``metrics`` block of the run manifest.

Histograms use **fixed log2 buckets**: an observation lands in bucket
``e`` when ``2**e <= value < 2**(e+1)``.  Bucket counts plus total/min/max
give percentile *upper bounds* without retaining raw samples, so a
histogram's memory cost is constant no matter how many stage timings a
2000-function run records.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Mapping, Optional

__all__ = ["Counter", "Gauge", "Histogram", "Registry"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """A value that goes up and down (sizes, live counts)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


# Histogram bucket range: 2**-40 (~1e-12, well under a clock tick) to
# 2**24 (~1.7e7 — seconds, bytes or counts alike fit).  Observations
# outside the range land in the first/last bucket; zeros and negatives
# are counted separately (log2 is undefined for them).
_MIN_EXP = -40
_MAX_EXP = 24


class Histogram:
    """Fixed log2-bucket histogram; constant memory, percentile bounds."""

    __slots__ = ("name", "count", "total", "zeros", "minimum", "maximum", "_buckets")

    MIN_EXP = _MIN_EXP
    MAX_EXP = _MAX_EXP

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.zeros = 0  # observations <= 0 (no defined bucket)
        self.minimum = math.inf
        self.maximum = -math.inf
        self._buckets: Dict[int, int] = {}

    @staticmethod
    def bucket_of(value: float) -> int:
        """The bucket exponent *e* with ``2**e <= value < 2**(e+1)``,
        clamped to ``[MIN_EXP, MAX_EXP]``.  Requires ``value > 0``."""
        # frexp: value = m * 2**x with 0.5 <= m < 1, so floor(log2) = x-1.
        # Exact for powers of two, unlike floor(log(value, 2)).
        _, exp = math.frexp(value)
        return min(max(exp - 1, _MIN_EXP), _MAX_EXP)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value <= 0:
            self.zeros += 1
            return
        e = self.bucket_of(value)
        self._buckets[e] = self._buckets.get(e, 0) + 1

    def percentile(self, q: float) -> float:
        """Upper-bound estimate of the *q*-quantile (``0 < q <= 1``): the
        upper edge of the bucket where the cumulative count crosses."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self.count == 0:
            return 0.0
        target = math.ceil(q * self.count)
        seen = self.zeros
        if seen >= target:
            return 0.0
        for e in sorted(self._buckets):
            seen += self._buckets[e]
            if seen >= target:
                return float(2.0 ** (e + 1))
        return self.maximum

    def to_dict(self) -> Dict[str, object]:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "zeros": self.zeros,
            # JSON keys must be strings; "e" means [2**e, 2**(e+1)).
            "buckets": {str(e): c for e, c in sorted(self._buckets.items())},
        }


class Registry:
    """Namespace of instruments plus snapshot-time external sources."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sources: Dict[str, Callable[[], Mapping[str, object]]] = {}

    # -- instruments (get-or-create) ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = Counter(name)
                self._counters[name] = inst
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = Gauge(name)
                self._gauges[name] = inst
            return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = Histogram(name)
                self._histograms[name] = inst
            return inst

    # -- external sources --------------------------------------------------------------
    def register_source(
        self, name: str, supplier: Callable[[], Mapping[str, object]]
    ) -> None:
        """Absorb an existing stats owner: *supplier* is called at each
        snapshot and its mapping lands under ``sources.<name>``.  The
        owner keeps its counters; re-registering a name replaces it."""
        with self._lock:
            self._sources[name] = supplier

    def absorb_counts(self, prefix: str, counts: Mapping[str, int]) -> None:
        """Fold a one-shot ``{key: count}`` mapping into counters under
        ``<prefix>.<key>`` (outcome tallies, per-stage attempt counts)."""
        for key, value in counts.items():
            self.counter(f"{prefix}.{key}").inc(int(value))

    # -- snapshot ----------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """One JSON-ready view of everything the registry knows."""
        with self._lock:
            counters = {name: c.value for name, c in sorted(self._counters.items())}
            gauges = {name: g.value for name, g in sorted(self._gauges.items())}
            histograms = {
                name: h.to_dict() for name, h in sorted(self._histograms.items())
            }
            sources = list(self._sources.items())
        out: Dict[str, object] = {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "sources": {},
        }
        resolved: Dict[str, object] = out["sources"]  # type: ignore[assignment]
        for name, supplier in sorted(sources):
            try:
                resolved[name] = dict(supplier())
            except Exception as exc:  # a broken source must not sink a report
                resolved[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return out
