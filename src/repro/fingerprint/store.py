"""Memory-mapped, append-only columnar fingerprint store.

The corpus-scale regime (10^5–10^6 functions, ROADMAP item 2) cannot hold
``MinHashFingerprint`` objects — or even one dense in-RAM signature matrix
plus per-function Python bookkeeping — resident for the whole corpus.  This
module streams the output of :func:`repro.fingerprint.batch.encode_module` /
:func:`minhash_encoded_batch` into a directory of flat, append-only columns
that are read back through ``np.memmap``, so working-set size is governed by
the page cache rather than corpus size:

``header.json``
    ``{"magic": "f3m-fpstore", "format_version": 1, "config": {...},
    "count": n, "encoded_total": m, "store_encoded": bool}`` — rewritten
    atomically (tmp + rename) after every append, so a crash mid-append
    leaves at worst unreferenced trailing bytes.
``values.u32``
    the ``(n, k)`` uint32 signature matrix, row-major.
``meta.i64``
    ``(n, 4)`` int64 sidecar: encoded stream length, the two salted FNV-1a
    content hashes (:func:`repro.fingerprint.cache.content_keys`), and the
    shingle count.  Rows are exactly the :class:`FingerprintCache` key +
    entry minus the values, which is what lets the cache spill into and
    load from a store.
``encoded.u64`` / ``offsets.i64`` (optional, ``store_encoded=True``)
    the concatenated encoded instruction streams and per-row cumulative
    end offsets, so the store doubles as the corpus container: any row
    range's streams can be sliced back out without re-generating IR.

Appends are plain ``O_APPEND``-style writes of contiguous bytes; memmap
views are recreated lazily after each append.  Fingerprints written through
:meth:`FingerprintStore.append_encoded` are bit-identical to the in-RAM
path because they come from the same ``minhash_encoded_batch`` call.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from .batch import minhash_encoded_batch
from .cache import content_keys
from .minhash import MinHashConfig

__all__ = ["FingerprintStore", "StoreFormatError"]

_MAGIC = "f3m-fpstore"
_FORMAT_VERSION = 1

# meta.i64 column indices
_META_LEN, _META_H1, _META_H2, _META_SHINGLES = 0, 1, 2, 3
_META_COLS = 4


class StoreFormatError(ValueError):
    """The directory is not a fingerprint store this code can read."""


def _config_to_dict(config: MinHashConfig) -> Dict[str, object]:
    return {
        "k": config.k,
        "shingle_size": config.shingle_size,
        "seed": config.seed,
        "independent_hashes": config.independent_hashes,
    }


def _config_from_dict(payload: Dict[str, object]) -> MinHashConfig:
    return MinHashConfig(
        k=int(payload["k"]),
        shingle_size=int(payload["shingle_size"]),
        seed=int(payload["seed"]),
        independent_hashes=bool(payload["independent_hashes"]),
    )


class FingerprintStore:
    """Append-only columnar MinHash store for one :class:`MinHashConfig`."""

    def __init__(self, directory: str, config: MinHashConfig, store_encoded: bool,
                 count: int, encoded_total: int) -> None:
        self.directory = directory
        self.config = config
        self.store_encoded = store_encoded
        self._count = count
        self._encoded_total = encoded_total
        self._values_mm: Optional[np.memmap] = None
        self._meta_mm: Optional[np.memmap] = None
        self._encoded_mm: Optional[np.memmap] = None
        self._offsets_mm: Optional[np.memmap] = None

    # -- lifecycle -------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str,
        config: Optional[MinHashConfig] = None,
        *,
        store_encoded: bool = True,
    ) -> "FingerprintStore":
        """Create an empty store at *directory* (must not already be one)."""
        config = config or MinHashConfig()
        os.makedirs(directory, exist_ok=True)
        if os.path.exists(os.path.join(directory, "header.json")):
            raise StoreFormatError(f"store already exists at {directory}")
        store = cls(directory, config, store_encoded, 0, 0)
        for name in store._column_names():
            # Truncate stale column files from a half-deleted store.
            open(store._path(name), "wb").close()
        store._write_header()
        return store

    @classmethod
    def open(cls, directory: str) -> "FingerprintStore":
        """Open an existing store, validating magic and format version."""
        path = os.path.join(directory, "header.json")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                header = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreFormatError(f"unreadable store header at {path}: {exc}") from exc
        if header.get("magic") != _MAGIC:
            raise StoreFormatError(f"{path}: bad magic {header.get('magic')!r}")
        if header.get("format_version") != _FORMAT_VERSION:
            raise StoreFormatError(
                f"{path}: format_version {header.get('format_version')!r}, "
                f"expected {_FORMAT_VERSION}"
            )
        try:
            config = _config_from_dict(header["config"])
            count = int(header["count"])
            encoded_total = int(header["encoded_total"])
            store_encoded = bool(header["store_encoded"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreFormatError(f"{path}: malformed header: {exc}") from exc
        store = cls(directory, config, store_encoded, count, encoded_total)
        store._check_column_sizes()
        return store

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def _column_names(self) -> Tuple[str, ...]:
        names = ("values.u32", "meta.i64")
        if self.store_encoded:
            names += ("encoded.u64", "offsets.i64")
        return names

    def _write_header(self) -> None:
        header = {
            "magic": _MAGIC,
            "format_version": _FORMAT_VERSION,
            "config": _config_to_dict(self.config),
            "count": self._count,
            "encoded_total": self._encoded_total,
            "store_encoded": self.store_encoded,
        }
        tmp = self._path("header.json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(header, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self._path("header.json"))

    def _check_column_sizes(self) -> None:
        expect = {
            "values.u32": self._count * self.config.k * 4,
            "meta.i64": self._count * _META_COLS * 8,
        }
        if self.store_encoded:
            expect["encoded.u64"] = self._encoded_total * 8
            expect["offsets.i64"] = self._count * 8
        for name, size in expect.items():
            try:
                actual = os.path.getsize(self._path(name))
            except OSError as exc:
                raise StoreFormatError(f"missing column {name}: {exc}") from exc
            if actual < size:
                raise StoreFormatError(
                    f"column {name} truncated: {actual} bytes < expected {size}"
                )

    # -- views -----------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def _invalidate(self) -> None:
        self._values_mm = None
        self._meta_mm = None
        self._encoded_mm = None
        self._offsets_mm = None

    @property
    def values(self) -> np.ndarray:
        """The ``(n, k)`` uint32 signature matrix, memory-mapped read-only."""
        if self._count == 0:
            return np.empty((0, self.config.k), dtype=np.uint32)
        if self._values_mm is None or self._values_mm.shape[0] != self._count:
            self._values_mm = np.memmap(
                self._path("values.u32"), dtype=np.uint32, mode="r",
                shape=(self._count, self.config.k),
            )
        return self._values_mm

    @property
    def meta(self) -> np.ndarray:
        """The ``(n, 4)`` int64 sidecar: length, h1, h2, num_shingles."""
        if self._count == 0:
            return np.empty((0, _META_COLS), dtype=np.int64)
        if self._meta_mm is None or self._meta_mm.shape[0] != self._count:
            self._meta_mm = np.memmap(
                self._path("meta.i64"), dtype=np.int64, mode="r",
                shape=(self._count, _META_COLS),
            )
        return self._meta_mm

    @property
    def lengths(self) -> np.ndarray:
        return self.meta[:, _META_LEN]

    @property
    def num_shingles(self) -> np.ndarray:
        return self.meta[:, _META_SHINGLES]

    @property
    def offsets(self) -> np.ndarray:
        """Per-row cumulative end offsets into ``encoded.u64``."""
        if not self.store_encoded:
            raise StoreFormatError("store was created without encoded streams")
        if self._count == 0:
            return np.empty(0, dtype=np.int64)
        if self._offsets_mm is None or self._offsets_mm.shape[0] != self._count:
            self._offsets_mm = np.memmap(
                self._path("offsets.i64"), dtype=np.int64, mode="r",
                shape=(self._count,),
            )
        return self._offsets_mm

    @property
    def encoded(self) -> np.ndarray:
        if not self.store_encoded:
            raise StoreFormatError("store was created without encoded streams")
        if self._encoded_total == 0:
            return np.empty(0, dtype=np.uint64)
        if self._encoded_mm is None or self._encoded_mm.shape[0] != self._encoded_total:
            self._encoded_mm = np.memmap(
                self._path("encoded.u64"), dtype=np.uint64, mode="r",
                shape=(self._encoded_total,),
            )
        return self._encoded_mm

    def encoded_slice(self, start: int, stop: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(flat, lens)`` of rows ``[start, stop)`` — the exact shape
        ``encode_module`` produced, sliceable without loading other rows."""
        if not (0 <= start <= stop <= self._count):
            raise IndexError(f"row range [{start}, {stop}) out of [0, {self._count})")
        lens = np.asarray(self.lengths[start:stop])
        off = self.offsets
        lo = int(off[start - 1]) if start > 0 else 0
        hi = int(off[stop - 1]) if stop > start else lo
        return np.asarray(self.encoded[lo:hi]), lens

    def iter_chunks(self, chunk_rows: int) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Yield ``(start, stop, values_view)`` over the store in row chunks."""
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        values = self.values
        for start in range(0, self._count, chunk_rows):
            stop = min(start + chunk_rows, self._count)
            yield start, stop, values[start:stop]

    # -- appends ---------------------------------------------------------------------
    def _append_column(self, name: str, data: np.ndarray, dtype) -> None:
        with open(self._path(name), "ab") as fh:
            fh.write(np.ascontiguousarray(data, dtype=dtype).tobytes())

    def append_encoded(self, flat: np.ndarray, lens: np.ndarray) -> Tuple[int, int]:
        """MinHash the encoded streams with the store's config and append.

        *flat*/*lens* are one ``encode_module`` output.  Returns the
        ``[start, stop)`` row range the batch landed in.  Fingerprints are
        produced by the same :func:`minhash_encoded_batch` the in-RAM path
        uses, so stored signatures are bit-identical to it.
        """
        flat = np.asarray(flat, dtype=np.uint64)
        lens = np.asarray(lens, dtype=np.int64)
        values, counts = minhash_encoded_batch(flat, lens, self.config)
        keys = content_keys(flat, lens)
        meta = np.empty((lens.shape[0], _META_COLS), dtype=np.int64)
        meta[:, _META_LEN] = lens
        meta[:, _META_H1] = [h1 for _, h1, _ in keys]
        meta[:, _META_H2] = [h2 for _, _, h2 in keys]
        meta[:, _META_SHINGLES] = counts
        return self._append_rows(values, meta, flat, lens)

    def append_fingerprints(
        self,
        values: np.ndarray,
        lengths: np.ndarray,
        h1: np.ndarray,
        h2: np.ndarray,
        num_shingles: np.ndarray,
    ) -> Tuple[int, int]:
        """Append pre-computed fingerprints (cache spill path).

        Only valid on stores created with ``store_encoded=False`` — the
        encoded streams are not available from a fingerprint cache, and a
        partially-populated encoded column would desynchronize the layout.
        """
        if self.store_encoded:
            raise StoreFormatError(
                "append_fingerprints requires a store_encoded=False store"
            )
        n = np.asarray(values).shape[0]
        meta = np.empty((n, _META_COLS), dtype=np.int64)
        meta[:, _META_LEN] = np.asarray(lengths, dtype=np.int64)
        meta[:, _META_H1] = np.asarray(h1, dtype=np.int64)
        meta[:, _META_H2] = np.asarray(h2, dtype=np.int64)
        meta[:, _META_SHINGLES] = np.asarray(num_shingles, dtype=np.int64)
        return self._append_rows(np.asarray(values), meta, None, None)

    def _append_rows(
        self,
        values: np.ndarray,
        meta: np.ndarray,
        flat: Optional[np.ndarray],
        lens: Optional[np.ndarray],
    ) -> Tuple[int, int]:
        n = values.shape[0]
        if values.shape[1] != self.config.k:
            raise ValueError(f"values have k={values.shape[1]}, store has k={self.config.k}")
        if n == 0:
            return self._count, self._count
        self._append_column("values.u32", values, np.uint32)
        self._append_column("meta.i64", meta, np.int64)
        if self.store_encoded:
            self._append_column("encoded.u64", flat, np.uint64)
            new_offsets = self._encoded_total + np.cumsum(lens, dtype=np.int64)
            self._append_column("offsets.i64", new_offsets, np.int64)
            self._encoded_total += int(flat.shape[0])
        start = self._count
        self._count += n
        self._write_header()
        self._invalidate()
        return start, self._count

    # -- diagnostics -----------------------------------------------------------------
    def content_key_set(self) -> set:
        """All ``(length, h1, h2)`` content keys currently stored."""
        meta = np.asarray(self.meta)
        return set(
            zip(
                meta[:, _META_LEN].tolist(),
                meta[:, _META_H1].tolist(),
                meta[:, _META_H2].tolist(),
            )
        )

    def stats(self) -> Dict[str, object]:
        """Scalar store gauges for the metrics registry / bench metadata."""
        on_disk = 0
        for name in self._column_names():
            try:
                on_disk += os.path.getsize(self._path(name))
            except OSError:
                pass
        return {
            "count": self._count,
            "k": self.config.k,
            "encoded_total": self._encoded_total,
            "store_encoded": self.store_encoded,
            "bytes_on_disk": on_disk,
            "format_version": _FORMAT_VERSION,
        }
