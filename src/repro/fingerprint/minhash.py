"""MinHash fingerprints (paper Section III-B).

A function's fingerprint is a fixed-size vector of *k* minimum hash values,
one per (derived) hash function, over the shingles of its encoded
instruction sequence.  The fraction of equal entries between two
fingerprints estimates the Jaccard index of the underlying shingle sets
within :math:`O(1/\\sqrt{k})`.

Following the paper, the *k* hash functions are derived from a single
FNV-1a hash by xor-ing with *k* fixed random salts, "making its generation
many times faster" with "a very small effect on the quality".
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..ir.function import Function
from .encoding import EncodingOptions, encode_function
from .fnv import salts, fnv1a_32_array
from .shingles import shingle_hashes, shingle_set

__all__ = ["MinHashConfig", "MinHashFingerprint", "minhash_function", "exact_jaccard"]

_EMPTY_SENTINEL = np.uint32(0xFFFFFFFF)


@dataclass(frozen=True)
class MinHashConfig:
    """Parameters of the MinHash fingerprint.

    ``k`` — fingerprint size (number of derived hash functions); the paper's
    default is 200, with the adaptive policy shrinking it for large modules.
    ``shingle_size`` — K in the paper, default 2.
    ``seed`` — salt-derivation seed (fixed so results are reproducible).
    ``independent_hashes`` — ablation switch: use k *independent* FNV-1a
    variants (hash of salt||shingle) instead of the xor-salt trick.
    """

    k: int = 200
    shingle_size: int = 2
    seed: int = 0xF3F3F3
    independent_hashes: bool = False

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("fingerprint size k must be positive")
        if self.shingle_size <= 0:
            raise ValueError("shingle size must be positive")


# Bounded LRU of derived salt vectors.  A handful of (k, seed) pairs are
# ever live at once (static + adaptive configs and ablation sweeps), but
# unbounded growth would leak across long parameter sweeps.  The lock makes
# the cache safe under threaded rankers; pool workers are separate
# processes, so each builds its own copy once and reuses it per chunk.
_SALT_CACHE: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
_SALT_CACHE_MAX = 16
_SALT_CACHE_LOCK = threading.Lock()


def _salts_for(config: MinHashConfig) -> np.ndarray:
    key = (config.k, config.seed)
    with _SALT_CACHE_LOCK:
        cached = _SALT_CACHE.get(key)
        if cached is not None:
            _SALT_CACHE.move_to_end(key)
            return cached
    computed = salts(config.k, config.seed).astype(np.uint32)
    with _SALT_CACHE_LOCK:
        _SALT_CACHE[key] = computed
        while len(_SALT_CACHE) > _SALT_CACHE_MAX:
            _SALT_CACHE.popitem(last=False)
    return computed


class MinHashFingerprint:
    """A k-entry MinHash vector plus the similarity/estimation operations."""

    __slots__ = ("values", "config", "num_shingles")

    def __init__(self, values: np.ndarray, config: MinHashConfig, num_shingles: int) -> None:
        self.values = values
        self.config = config
        self.num_shingles = num_shingles

    @classmethod
    def from_encoded(
        cls, encoded: Sequence[int], config: MinHashConfig = MinHashConfig()
    ) -> "MinHashFingerprint":
        base = shingle_hashes(encoded, config.shingle_size)
        if base.size == 0:
            # Empty function: a fingerprint that matches nothing but itself.
            values = np.full(config.k, _EMPTY_SENTINEL, dtype=np.uint32)
            return cls(values, config, 0)
        salt_vec = _salts_for(config)
        if config.independent_hashes:
            # k separate FNV-1a hashes of (salt, shingle_hash) pairs.
            cols = []
            for salt in salt_vec:
                pairs = np.stack(
                    [np.full(base.shape, salt, dtype=np.uint32), base], axis=1
                )
                cols.append(fnv1a_32_array(pairs).min())
            values = np.array(cols, dtype=np.uint32)
        else:
            # One hash per shingle, xor-ed with k salts: min over shingles.
            # (n, 1) ^ (1, k) -> (n, k); min along shingles axis.
            values = (base[:, None] ^ salt_vec[None, :]).min(axis=0)
        return cls(values.astype(np.uint32), config, int(base.size))

    # -- similarity -----------------------------------------------------------------
    def similarity(self, other: "MinHashFingerprint") -> float:
        """Estimated Jaccard index: fraction of matching hash entries."""
        if self.config.k != other.config.k:
            raise ValueError("cannot compare fingerprints of different sizes")
        return float(np.count_nonzero(self.values == other.values)) / self.config.k

    def distance(self, other: "MinHashFingerprint") -> float:
        """Estimated Jaccard distance (1 − similarity)."""
        return 1.0 - self.similarity(other)

    def band_hashes(self, rows: int) -> np.ndarray:
        """LSH band signatures: FNV-1a over consecutive *rows*-sized chunks.

        The fingerprint is split into ``b = k // rows`` non-overlapping
        sub-vectors and each is hashed into one 32-bit band value.
        """
        k = self.config.k
        b = k // rows
        usable = self.values[: b * rows].reshape(b, rows)
        return fnv1a_32_array(usable)

    def __len__(self) -> int:
        return self.config.k


def minhash_function(
    func: Function,
    config: MinHashConfig = MinHashConfig(),
    encoding: Optional[EncodingOptions] = None,
) -> MinHashFingerprint:
    """MinHash fingerprint of a function's encoded instruction sequence."""
    encoded = encode_function(func, encoding or EncodingOptions())
    return MinHashFingerprint.from_encoded(encoded, config)


def exact_jaccard(encoded_a: Sequence[int], encoded_b: Sequence[int], k: int = 2) -> float:
    """Ground-truth Jaccard index of two functions' shingle sets."""
    sa = shingle_set(encoded_a, k)
    sb = shingle_set(encoded_b, k)
    if not sa and not sb:
        return 1.0
    union = len(sa | sb)
    return len(sa & sb) / union if union else 1.0
