"""Opcode-frequency fingerprints — the HyFM/state-of-the-art baseline.

"Each function is associated with a fingerprint, i.e., a vector representing
the frequencies of all the instruction opcodes in its function body"
(paper Section II-A).  Candidate selection is nearest-neighbour search under
Manhattan distance over these vectors; Figures 4–6 show why this correlates
poorly with alignment quality, which is the problem F3M solves.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..ir.function import Function
from ..ir.basicblock import BasicBlock
from ..ir.instructions import Opcode

__all__ = ["OpcodeFingerprint", "fingerprint_function", "fingerprint_block"]

_OPCODES: List[Opcode] = sorted(Opcode, key=int)
_INDEX: Dict[int, int] = {int(op): i for i, op in enumerate(_OPCODES)}
_DIM = len(_OPCODES)


class OpcodeFingerprint:
    """A vector of instruction-opcode frequencies with HyFM's metrics."""

    __slots__ = ("counts", "magnitude")

    def __init__(self, counts: np.ndarray) -> None:
        self.counts = counts
        self.magnitude = int(counts.sum())

    @classmethod
    def from_instructions(cls, instructions: Iterable) -> "OpcodeFingerprint":
        counts = np.zeros(_DIM, dtype=np.int64)
        for inst in instructions:
            counts[_INDEX[int(inst.opcode)]] += 1
        return cls(counts)

    def distance(self, other: "OpcodeFingerprint") -> int:
        """Manhattan distance between the frequency vectors."""
        return int(np.abs(self.counts - other.counts).sum())

    def similarity(self, other: "OpcodeFingerprint") -> float:
        """Normalized similarity in [0, 1]: 1 − d / (|A| + |B|).

        Identical fingerprints score 1; disjoint opcode multisets score 0.
        This is the "normalized fingerprint similarity" plotted in the
        paper's Figures 4 and 6.
        """
        total = self.magnitude + other.magnitude
        if total == 0:
            return 1.0
        return 1.0 - self.distance(other) / total

    def __len__(self) -> int:
        return _DIM


def fingerprint_function(func: Function) -> OpcodeFingerprint:
    """Opcode-frequency fingerprint of a whole function."""
    return OpcodeFingerprint.from_instructions(func.instructions())


def fingerprint_block(block: BasicBlock) -> OpcodeFingerprint:
    """Opcode-frequency fingerprint of one basic block (HyFM block pairing)."""
    return OpcodeFingerprint.from_instructions(block.instructions)
