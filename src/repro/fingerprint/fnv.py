"""Fowler–Noll–Vo hashing (FNV-1a variant).

The paper hashes shingles with FNV-1a, "chosen for its robustness to
permutations, computational efficiency, widespread use in practice, and
simple implementation" (Section III-B).  Instead of k independent hash
functions, a single FNV-1a output is xor-ed with k random salts — the same
speed trick the paper uses.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "fnv1a_32",
    "fnv1a_32_ints",
    "fnv1a_32_pair",
    "fnv1a_32_array_u32",
    "salts",
]

FNV32_OFFSET = 0x811C9DC5
FNV32_PRIME = 0x01000193
_U32 = 0xFFFFFFFF


def fnv1a_32(data: bytes) -> int:
    """32-bit FNV-1a over raw bytes."""
    h = FNV32_OFFSET
    for byte in data:
        h ^= byte
        h = (h * FNV32_PRIME) & _U32
    return h


def fnv1a_32_ints(values: Iterable[int]) -> int:
    """32-bit FNV-1a over a sequence of 32-bit integers, byte by byte."""
    h = FNV32_OFFSET
    for value in values:
        v = value & _U32
        for shift in (0, 8, 16, 24):
            h ^= (v >> shift) & 0xFF
            h = (h * FNV32_PRIME) & _U32
    return h


def fnv1a_32_pair(a: int, b: int) -> int:
    """FNV-1a of exactly two 32-bit integers (the hot path for K=2 shingles)."""
    h = FNV32_OFFSET
    for v in (a & _U32, b & _U32):
        h ^= v & 0xFF
        h = (h * FNV32_PRIME) & _U32
        h ^= (v >> 8) & 0xFF
        h = (h * FNV32_PRIME) & _U32
        h ^= (v >> 16) & 0xFF
        h = (h * FNV32_PRIME) & _U32
        h ^= (v >> 24) & 0xFF
        h = (h * FNV32_PRIME) & _U32
    return h


def fnv1a_32_array(values: "np.ndarray") -> "np.ndarray":
    """Vectorized FNV-1a over the rows of a ``(n, w)`` uint32 array.

    Each row is hashed as *w* little-endian 32-bit words, matching
    :func:`fnv1a_32_ints` exactly.
    """
    values = np.asarray(values, dtype=np.uint64)
    if values.ndim == 1:
        values = values[:, None]
    h = np.full(values.shape[0], FNV32_OFFSET, dtype=np.uint64)
    prime = np.uint64(FNV32_PRIME)
    mask = np.uint64(_U32)
    for col in range(values.shape[1]):
        word = values[:, col]
        for shift in (0, 8, 16, 24):
            h ^= (word >> np.uint64(shift)) & np.uint64(0xFF)
            h = (h * prime) & mask
    return h.astype(np.uint32)


def fnv1a_32_array_u32(values: "np.ndarray") -> "np.ndarray":
    """Bit-identical to :func:`fnv1a_32_array`, computed in uint32.

    The hash state is a 32-bit value throughout, so uint32 wraparound
    multiplication replaces the explicit ``& 0xFFFFFFFF`` masking and the
    arrays move half the memory.  Only the batched engine calls this — the
    per-function reference path keeps the original implementation so the
    perf bench compares against the pre-batching engine as it was.
    """
    values = np.asarray(values)
    if values.dtype != np.uint32:
        values = values.astype(np.uint32)  # truncation == the & 0xFFFFFFFF mask
    if values.ndim == 1:
        values = values[:, None]
    h = np.full(values.shape[0], FNV32_OFFSET, dtype=np.uint32)
    prime = np.uint32(FNV32_PRIME)
    ff = np.uint32(0xFF)
    tmp = np.empty_like(h)
    for col in range(values.shape[1]):
        word = values[:, col]
        for shift in (0, 8, 16, 24):
            np.right_shift(word, np.uint32(shift), out=tmp)
            np.bitwise_and(tmp, ff, out=tmp)
            np.bitwise_xor(h, tmp, out=h)
            np.multiply(h, prime, out=h)
    return h


def salts(k: int, seed: int = 0xF3F3F3) -> "np.ndarray":
    """*k* deterministic 32-bit xor salts deriving k hash functions from one."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 32, size=k, dtype=np.uint32)
