"""Shingling: fixed-length overlapping subsequences of encoded instructions.

The paper splits the encoded instruction sequence into shingles of length
K = 2 ("we empirically found that this produces the best results: K > 2
leads to fewer hash matches and higher cost ... K = 1 works on individual
instructions and does not capture the function's structure").
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

import numpy as np

from .fnv import fnv1a_32_array

__all__ = ["shingles", "shingle_hashes", "shingle_set"]


def shingles(encoded: Sequence[int], k: int = 2) -> List[Tuple[int, ...]]:
    """Overlapping length-*k* windows of *encoded*.

    A sequence shorter than *k* yields a single (short) shingle so that tiny
    functions still produce a fingerprint.
    """
    if k <= 0:
        raise ValueError("shingle size must be positive")
    n = len(encoded)
    if n == 0:
        return []
    if n < k:
        return [tuple(encoded)]
    return [tuple(encoded[i : i + k]) for i in range(n - k + 1)]


def shingle_hashes(encoded: Sequence[int], k: int = 2) -> np.ndarray:
    """FNV-1a hash of every shingle, as a uint32 array (vectorized)."""
    n = len(encoded)
    if n == 0:
        return np.empty(0, dtype=np.uint32)
    arr = np.asarray(encoded, dtype=np.uint32)
    if n < k:
        return fnv1a_32_array(arr[None, :])
    windows = np.lib.stride_tricks.sliding_window_view(arr, k)
    return fnv1a_32_array(windows)


def shingle_set(encoded: Sequence[int], k: int = 2) -> Set[Tuple[int, ...]]:
    """The *set* of shingles — the ground-truth sets whose Jaccard index
    MinHash estimates (used by tests and the exact-Jaccard oracle)."""
    return set(shingles(encoded, k))
