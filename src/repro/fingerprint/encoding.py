"""32-bit instruction encoding (paper Section III-B).

Each instruction is translated into one 32-bit integer carrying "the four
most important properties with regards to merging: opcode, result type,
number of operands, and operand types".  Two instructions that can merge
(same opcode, compatible types) encode to the same integer even when their
*operands' identities* differ — this is exactly why MinHash over encoded
shingles correlates with alignment quality where raw text would not.

Bit layout (LSB first)::

    [ 0..5 ]  opcode            (6 bits)
    [ 6..9 ]  operand count     (4 bits, saturated at 15)
    [10..17]  result type id    (8 bits, folded)
    [18..31]  operand type product (14 bits, folded)

For the combined operand type we multiply the per-type ids, exactly as the
paper does ("we multiply all the numerical representations of the operand
types"), then fold into the available bits.
"""

from __future__ import annotations

from typing import List

from ..ir.function import Function
from ..ir.instructions import FCmp, ICmp, Instruction
from ..analysis.linearizer import linearize

__all__ = ["encode_instruction", "encode_function", "EncodingOptions"]

_U32 = 0xFFFFFFFF


class EncodingOptions:
    """Knobs for the encoding (ablation support).

    ``include_predicates`` folds icmp/fcmp predicates into the opcode field;
    the paper's four-property scheme omits them (the alignment strategy
    checks predicates later), so the default is False.
    """

    __slots__ = ("include_predicates",)

    def __init__(self, include_predicates: bool = False) -> None:
        self.include_predicates = include_predicates


_DEFAULT_OPTIONS = EncodingOptions()


def _fold(value: int, bits: int) -> int:
    """xor-fold an arbitrary integer into *bits* bits."""
    mask = (1 << bits) - 1
    out = 0
    value &= (1 << 64) - 1
    while value:
        out ^= value & mask
        value >>= bits
    return out


def encode_instruction(inst: Instruction, options: EncodingOptions = _DEFAULT_OPTIONS) -> int:
    """Encode one instruction into a 32-bit integer."""
    opcode = int(inst.opcode) & 0x3F
    if options.include_predicates and isinstance(inst, (ICmp, FCmp)):
        opcode ^= (int(inst.pred) & 0x3F) << 1
        opcode &= 0x3F
    noperands = min(inst.num_operands, 15)
    result_ty = _fold(inst.type.type_id, 8)
    product = 1
    for op in inst.operands:
        product = (product * (op.type.type_id | 1)) & ((1 << 64) - 1)
    operand_ty = _fold(product, 14)
    return (
        opcode
        | (noperands << 6)
        | (result_ty << 10)
        | (operand_ty << 18)
    ) & _U32


def encode_function(func: Function, options: EncodingOptions = _DEFAULT_OPTIONS) -> List[int]:
    """Encode the linearized instruction sequence of *func*."""
    return [encode_instruction(inst, options) for inst in linearize(func)]
