"""Content-addressed MinHash fingerprint cache.

Merge workloads are full of identical-bodied functions — exact duplicates
in the input, clones produced by earlier merges, and whole re-runs over the
same module (the remerge loop, benchmark repeats, partitioned passes that
consult a global summary first).  Fingerprints are pure functions of the
*encoded instruction stream* and the :class:`MinHashConfig`, so they can be
shared content-addressed:

* key = FNV-1a of the encoded stream (two salted 32-bit passes, computed
  vectorized for a whole module at once) + stream length + the config;
* an in-memory LRU layer bounds resident entries (``maxsize``);
* an optional on-disk layer (``.repro-cache/`` by default) persists
  fingerprints across CLI invocations as one ``.npz`` per config.

Hit/miss/eviction counters feed the pipeline profiler and the perf bench.
"""

from __future__ import annotations

import json
import os
import threading
import zipfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .fnv import fnv1a_32_array
from .minhash import MinHashConfig

__all__ = ["CacheStats", "FingerprintCache", "DEFAULT_CACHE_DIR", "CACHE_FORMAT_VERSION"]

DEFAULT_CACHE_DIR = ".repro-cache"

# Version of the .npz disk layout.  Bump when the key derivation or the
# array schema changes; files with a different (or missing) version are
# skipped on load — a cold cache is always correct, silently mixing
# incompatible fingerprints never is.
CACHE_FORMAT_VERSION = 1

# Second-pass key salt: prepended to the stream so the two 32-bit FNV-1a
# hashes are independent, giving a 64-bit effective content key.
_KEY_SALT = 0x9E3779B9

# (stream length, fnv1a(stream), fnv1a(salt || stream))
ContentKey = Tuple[int, int, int]
# ((k, shingle_size, seed, independent), length, h1, h2)
CacheKey = Tuple[Tuple[int, int, int, bool], int, int, int]


@dataclass
class CacheStats:
    """Cache effectiveness counters (reported by the perf bench)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_entries_loaded: int = 0
    # Disk files rejected on load, split by why: a *version* skip means a
    # file written under an older/newer CACHE_FORMAT_VERSION (expected
    # after an upgrade — cold start, not data loss), an *invalid* skip
    # means a malformed/truncated/inconsistent file.  The undifferentiated
    # total is kept for report compatibility.
    disk_files_skipped_version: int = 0
    disk_files_skipped_invalid: int = 0

    @property
    def disk_files_skipped(self) -> int:
        return self.disk_files_skipped_version + self.disk_files_skipped_invalid

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_entries_loaded": self.disk_entries_loaded,
            "disk_files_skipped": self.disk_files_skipped,
            "disk_files_skipped_version": self.disk_files_skipped_version,
            "disk_files_skipped_invalid": self.disk_files_skipped_invalid,
            "hit_rate": self.hit_rate,
        }


def _config_key(config: MinHashConfig) -> Tuple[int, int, int, bool]:
    return (config.k, config.shingle_size, config.seed, config.independent_hashes)


def content_keys(flat: np.ndarray, lens: np.ndarray) -> List[ContentKey]:
    """Content keys for every stream packed in ``(flat, lens)``.

    Both FNV-1a passes run vectorized: streams are grouped by length and
    each group hashed as one ``(m, length)`` batch, so keying a module
    costs a few array operations rather than a Python hash loop per
    function.
    """
    flat = np.asarray(flat, dtype=np.uint64)
    lens = np.asarray(lens, dtype=np.int64)
    n = lens.shape[0]
    offsets = np.cumsum(lens) - lens
    h1 = np.empty(n, dtype=np.uint32)
    h2 = np.empty(n, dtype=np.uint32)
    for length in np.unique(lens).tolist():
        rows = np.flatnonzero(lens == length)
        if length == 0:
            empty = np.empty((rows.shape[0], 0), dtype=np.uint64)
            h1[rows] = fnv1a_32_array(empty)
            h2[rows] = fnv1a_32_array(
                np.full((rows.shape[0], 1), _KEY_SALT, dtype=np.uint64)
            )
            continue
        gather = offsets[rows][:, None] + np.arange(length, dtype=np.int64)[None, :]
        streams = flat[gather]
        h1[rows] = fnv1a_32_array(streams)
        salted = np.empty((rows.shape[0], length + 1), dtype=np.uint64)
        salted[:, 0] = _KEY_SALT
        salted[:, 1:] = streams
        h2[rows] = fnv1a_32_array(salted)
    lens_list = lens.tolist()
    h1_list = h1.tolist()
    h2_list = h2.tolist()
    return list(zip(lens_list, h1_list, h2_list))


class FingerprintCache:
    """LRU fingerprint store keyed by encoded-stream content + config.

    Thread-safe (one lock around the entry map); process pools do not
    share it — each worker computes raw values and the parent process owns
    the cache, so there is nothing to synchronize across processes.
    """

    def __init__(
        self,
        maxsize: int = 1 << 20,
        directory: Optional[str] = None,
    ) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.directory = directory
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, Tuple[np.ndarray, int]]" = OrderedDict()
        if directory is not None:
            self.load(directory)

    def __len__(self) -> int:
        return len(self._entries)

    # -- keying ----------------------------------------------------------------------
    def keys_for(
        self, flat: np.ndarray, lens: np.ndarray, config: MinHashConfig
    ) -> List[CacheKey]:
        """Full cache keys for every stream packed in ``(flat, lens)``."""
        ckey = _config_key(config)
        return [(ckey, length, h1, h2) for length, h1, h2 in content_keys(flat, lens)]

    # -- lookup ----------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[Tuple[np.ndarray, int]]:
        """``(values, num_shingles)`` for *key*, or None on a miss.

        The values array is returned as a copy so callers can never mutate
        a cached fingerprint in place.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[0].copy(), entry[1]

    def put(self, key: CacheKey, values: np.ndarray, num_shingles: int) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            self._entries[key] = (
                np.array(values, dtype=np.uint32, copy=True),
                int(num_shingles),
            )
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    # -- disk layer ------------------------------------------------------------------
    def _config_path(self, directory: str, ckey: Tuple[int, int, int, bool]) -> str:
        k, shingle, seed, independent = ckey
        name = f"minhash-k{k}-s{shingle}-seed{seed:x}" + ("-ind" if independent else "")
        return os.path.join(directory, f"{name}.npz")

    def save(self, directory: Optional[str] = None) -> List[str]:
        """Persist all entries under *directory* (one ``.npz`` per config).

        Returns the written paths.  A ``stats.json`` sidecar records the
        session counters for post-hoc inspection.
        """
        directory = directory or self.directory or DEFAULT_CACHE_DIR
        os.makedirs(directory, exist_ok=True)
        with self._lock:
            by_config: Dict[Tuple[int, int, int, bool], List[Tuple[CacheKey, Tuple[np.ndarray, int]]]] = {}
            for key, entry in self._entries.items():
                by_config.setdefault(key[0], []).append((key, entry))
        paths = []
        for ckey, items in by_config.items():
            path = self._config_path(directory, ckey)
            np.savez_compressed(
                path,
                format_version=np.array([CACHE_FORMAT_VERSION], dtype=np.int64),
                config=np.array(
                    [ckey[0], ckey[1], ckey[2], int(ckey[3])], dtype=np.int64
                ),
                lengths=np.array([key[1] for key, _ in items], dtype=np.int64),
                h1=np.array([key[2] for key, _ in items], dtype=np.uint64),
                h2=np.array([key[3] for key, _ in items], dtype=np.uint64),
                num_shingles=np.array([e[1] for _, e in items], dtype=np.int64),
                values=np.stack([e[0] for _, e in items]),
            )
            paths.append(path)
        with open(os.path.join(directory, "stats.json"), "w", encoding="utf-8") as fh:
            json.dump(self.stats.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return paths

    def _read_npz(self, path: str):
        """Parse and validate one saved ``.npz``.

        Returns ``(parsed, skip_reason)``: on success *parsed* is the
        ``(ckey, lengths, h1, h2, counts, values)`` tuple and *skip_reason*
        is None; otherwise *parsed* is None and *skip_reason* is
        ``"version"`` (well-formed file written under a different
        CACHE_FORMAT_VERSION — the expected post-upgrade cold start) or
        ``"invalid"`` (malformed/truncated/inconsistent file).  Either way
        a rejected file means a cold start for its entries, never an
        exception and never silently mixed-in fingerprints computed under
        different rules.
        """
        try:
            with np.load(path) as payload:
                version = payload["format_version"]
                if version.shape != (1,):
                    return None, "invalid"
                if int(version[0]) != CACHE_FORMAT_VERSION:
                    return None, "version"
                cfg = payload["config"]
                if cfg.shape != (4,):
                    return None, "invalid"
                ckey = (int(cfg[0]), int(cfg[1]), int(cfg[2]), bool(cfg[3]))
                lengths = payload["lengths"]
                h1 = payload["h1"]
                h2 = payload["h2"]
                counts = payload["num_shingles"]
                values = payload["values"]
        except (OSError, KeyError, ValueError, zipfile.BadZipFile):
            return None, "invalid"
        n = lengths.shape[0]
        if not (h1.shape == h2.shape == counts.shape == (n,)):
            return None, "invalid"
        # The values matrix must hold one k-wide row per key, with k from
        # the config the file claims — a mismatch means the file was
        # written under different encoding rules than its name suggests.
        if values.ndim != 2 or values.shape != (n, ckey[0]):
            return None, "invalid"
        return (ckey, lengths, h1, h2, counts, values), None

    def load(self, directory: Optional[str] = None) -> int:
        """Load previously saved entries from *directory*; returns the count.

        Files that fail validation are skipped and counted by reason —
        ``stats.disk_files_skipped_version`` for format-version mismatches,
        ``stats.disk_files_skipped_invalid`` for malformed arrays or
        truncated zips — and the cache simply starts cold for those
        entries.
        """
        directory = directory or self.directory or DEFAULT_CACHE_DIR
        if not os.path.isdir(directory):
            return 0
        loaded = 0
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".npz"):
                continue
            parsed, skip_reason = self._read_npz(os.path.join(directory, name))
            if parsed is None:
                if skip_reason == "version":
                    self.stats.disk_files_skipped_version += 1
                else:
                    self.stats.disk_files_skipped_invalid += 1
                continue
            ckey, lengths, h1, h2, counts, values = parsed
            with self._lock:
                for i in range(lengths.shape[0]):
                    key = (ckey, int(lengths[i]), int(h1[i]), int(h2[i]))
                    if key not in self._entries:
                        self._entries[key] = (
                            values[i].astype(np.uint32, copy=True),
                            int(counts[i]),
                        )
                        loaded += 1
        self.stats.disk_entries_loaded += loaded
        return loaded

    # -- columnar-store interop --------------------------------------------------------
    def spill_to_store(self, store) -> int:
        """Append entries matching *store*'s config into a
        :class:`~repro.fingerprint.store.FingerprintStore`; returns the
        number appended.  Entries whose content key is already present in
        the store are skipped (the store is append-only).  The store must
        have been created with ``store_encoded=False`` — a cache holds no
        encoded streams.
        """
        ckey = _config_key(store.config)
        existing = store.content_key_set()
        with self._lock:
            pending = [
                (key, entry)
                for key, entry in self._entries.items()
                if key[0] == ckey and (key[1], key[2], key[3]) not in existing
            ]
        if not pending:
            return 0
        store.append_fingerprints(
            values=np.stack([entry[0] for _, entry in pending]),
            lengths=np.array([key[1] for key, _ in pending], dtype=np.int64),
            h1=np.array([key[2] for key, _ in pending], dtype=np.int64),
            h2=np.array([key[3] for key, _ in pending], dtype=np.int64),
            num_shingles=np.array([entry[1] for _, entry in pending], dtype=np.int64),
        )
        return len(pending)

    def load_from_store(self, store, limit: Optional[int] = None) -> int:
        """Warm the cache from a :class:`FingerprintStore`; returns the count.

        Rows stream through the store's memmap in order (oldest first), so
        with ``limit`` (or ``maxsize``) pressure the newest rows win LRU.
        """
        ckey = _config_key(store.config)
        meta = np.asarray(store.meta)
        values = store.values
        n = meta.shape[0] if limit is None else min(meta.shape[0], limit)
        loaded = 0
        with self._lock:
            for i in range(n):
                key = (ckey, int(meta[i, 0]), int(meta[i, 1]), int(meta[i, 2]))
                if key in self._entries:
                    continue
                self._entries[key] = (
                    np.array(values[i], dtype=np.uint32, copy=True),
                    int(meta[i, 3]),
                )
                loaded += 1
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
        self.stats.disk_entries_loaded += loaded
        return loaded
