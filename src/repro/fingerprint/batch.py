"""Batched module-wide MinHash fingerprinting (the F3M hot path, vectorized).

The per-function reference path (:func:`minhash_function`) round-trips
through numpy once per function: encode → shingle → hash → k-way min.
Over a whole module that is thousands of tiny array operations whose fixed
per-call overhead dominates the actual hashing work.  This module computes
the same fingerprints in a handful of module-wide passes:

* :func:`encode_module` packs every function's encoded instruction stream
  into one flat ``uint64`` array with per-function lengths — a single
  pure-Python sweep reads the IR, while the bit-folding and field packing
  of the 32-bit encoding run vectorized over all instructions at once;
* :func:`minhash_encoded_batch` hashes every shingle window of every
  function in one pass, xors the whole window-hash stream against all *k*
  salts, and reduces per-function minima with ``np.minimum.reduceat``;
* :func:`minhash_module` ties both together with the content-addressed
  :class:`~repro.fingerprint.cache.FingerprintCache` (identical-bodied
  functions share one computation) and an optional
  ``ProcessPoolExecutor`` fan-out, chunked by encoded-stream size, for
  large modules.

Every path is bit-identical to :func:`minhash_function` — property-tested
in ``tests/fingerprint/test_batch.py``.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from itertools import chain
from operator import attrgetter
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.linearizer import linearize
from ..ir.function import Function
from ..obs import trace
from .encoding import EncodingOptions, encode_function
from .minhash import MinHashConfig, MinHashFingerprint, _salts_for
from .fnv import fnv1a_32_array_u32

__all__ = [
    "encode_module",
    "minhash_encoded_batch",
    "minhash_module",
    "minhash_single",
]

_U32 = 0xFFFFFFFF
_U64 = (1 << 64) - 1
_EMPTY_SENTINEL = np.uint32(0xFFFFFFFF)

# Cap on shingle windows per vectorized xor/min block: bounds the scratch
# (k, windows) matrix at k=200 to ~13 MB.  The block buffer is reused (see
# _xor_scratch), so the cap only bounds retained memory — per-block reduceat
# overhead is negligible once the buffer stops being reallocated.
_MAX_BLOCK_WINDOWS = 1 << 14

# Grow-only per-thread scratch for the (k, windows) xor block.  A fresh
# multi-MB np.empty per call lands on mmap'd pages that the allocator
# returns to the OS on free, so every call would pay the page faults again;
# reusing one buffer keeps the hot loop fault-free after warm-up.
_SCRATCH = threading.local()


def _xor_scratch(k: int, windows: int) -> np.ndarray:
    buf = getattr(_SCRATCH, "xor_buf", None)
    if buf is None or buf.shape[0] < k or buf.shape[1] < windows:
        grow_k = k if buf is None else max(k, buf.shape[0])
        grow_w = windows if buf is None else max(windows, buf.shape[1])
        buf = np.empty((grow_k, grow_w), dtype=np.uint32)
        _SCRATCH.xor_buf = buf
    return buf[:k, :windows]

# Reaching through to the IntEnum's _value_ slot skips one __index__ call
# per instruction when the list is converted to an array below.
_GET_OPCODE = attrgetter("opcode._value_")
_GET_TYPE_ID = attrgetter("type.type_id")
_GET_OPERANDS = attrgetter("_operands")


# ---------------------------------------------------------------------------
# Vectorized module encoding
# ---------------------------------------------------------------------------


def _pack_streams(encoded: Sequence[Sequence[int]]) -> Tuple[np.ndarray, np.ndarray]:
    """Pack per-function encoded streams into (flat uint64, lengths)."""
    lens = np.array([len(e) for e in encoded], dtype=np.int64)
    total = int(lens.sum())
    flat = np.fromiter(
        (v for stream in encoded for v in stream), dtype=np.uint64, count=total
    )
    return flat, lens


def encode_module(
    functions: Sequence[Function], options: Optional[EncodingOptions] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Encode all *functions* at once.

    Returns ``(flat, lens)`` where ``flat`` is every function's encoded
    instruction stream concatenated into one ``uint64`` array and ``lens``
    holds the per-function stream lengths (``int64``).  Bit-identical to
    calling :func:`encode_function` per function.

    One Python sweep extracts the four raw per-instruction properties
    (opcode, operand count, result type id, operand-type product); the
    xor-folds and the bit packing of the 32-bit encoding run as whole-module
    array operations.
    """
    options = options or EncodingOptions()
    if options.include_predicates:
        # The predicate ablation folds per-instruction predicate kinds into
        # the opcode field; it needs isinstance dispatch per instruction, so
        # it takes the reference encoder (correctness over speed for the
        # ablation configuration).
        return _pack_streams([encode_function(f, options) for f in functions])

    insts_all: List = []
    lens_list: List[int] = []
    for func in functions:
        insts = linearize(func)
        lens_list.append(len(insts))
        insts_all.extend(insts)
    opcodes = list(map(_GET_OPCODE, insts_all))
    tids = list(map(_GET_TYPE_ID, insts_all))
    # _operands skips the tuple copy of the .operands property.
    opl = list(map(_GET_OPERANDS, insts_all))

    lens = np.array(lens_list, dtype=np.int64)
    if not opcodes:
        return np.empty(0, dtype=np.uint64), lens

    nops = np.array(list(map(len, opl)), dtype=np.int64)
    op_tids = np.fromiter(
        map(_GET_TYPE_ID, chain.from_iterable(opl)),
        dtype=np.uint64,
        count=int(nops.sum()),
    )
    # Operand-type product per instruction via one segmented reduction.  A
    # trailing sentinel 1 keeps every reduceat start index in bounds; for a
    # zero-operand instruction reduceat returns a single (wrong) element,
    # overwritten with the empty product below.  uint64 multiplication wraps
    # mod 2**64, which equals masking every step (ring homomorphism) — the
    # same argument the reference encoder relies on.
    seg = np.empty(op_tids.shape[0] + 1, dtype=np.uint64)
    seg[:-1] = op_tids | np.uint64(1)
    seg[-1] = 1
    starts = np.cumsum(nops) - nops
    p_a = np.multiply.reduceat(seg, starts)
    p_a[nops == 0] = 1

    op_a = np.array(opcodes, dtype=np.uint64) & np.uint64(0x3F)
    no_a = np.minimum(nops, 15).astype(np.uint64)
    # result type fold: type ids are 31-bit, so _fold(tid, 8) is the xor of
    # the four 8-bit chunks.
    t_a = np.array(tids, dtype=np.uint64)
    result_fold = (
        t_a ^ (t_a >> np.uint64(8)) ^ (t_a >> np.uint64(16)) ^ (t_a >> np.uint64(24))
    ) & np.uint64(0xFF)
    # operand product fold: 64-bit products xor-folded in 14-bit chunks
    # (ceil(64/14) = 5 chunks), matching encoding._fold(product, 14).
    operand_fold = p_a.copy()
    for shift in (14, 28, 42, 56):
        operand_fold ^= p_a >> np.uint64(shift)
    operand_fold &= np.uint64(0x3FFF)

    flat = (
        op_a
        | (no_a << np.uint64(6))
        | (result_fold << np.uint64(10))
        | (operand_fold << np.uint64(18))
    ) & np.uint64(_U32)
    return flat, lens


# ---------------------------------------------------------------------------
# Vectorized batched MinHash
# ---------------------------------------------------------------------------


def _segment_indices(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``[starts[i], starts[i]+counts[i])`` ranges as one array."""
    total = int(counts.sum())
    ends = np.cumsum(counts)
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(ends - counts, counts)
        + np.repeat(starts, counts)
    )


def _window_hashes(
    flat: np.ndarray, lens: np.ndarray, shingle_size: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-window FNV-1a hashes for every non-empty function.

    Returns ``(base, seg_starts, wcounts, nonempty)``: the window-hash
    stream of all non-empty functions concatenated in function order, the
    start of each function's segment inside it, the per-function window
    counts and the indices of the non-empty functions.
    """
    offsets = np.cumsum(lens) - lens
    nonempty = np.flatnonzero(lens > 0)
    ne_lens = lens[nonempty]
    ne_off = offsets[nonempty]
    # A function shorter than the shingle size yields one (short) window.
    wcounts = np.where(ne_lens >= shingle_size, ne_lens - shingle_size + 1, 1)
    seg_starts = np.cumsum(wcounts) - wcounts
    base = np.empty(int(wcounts.sum()), dtype=np.uint32)

    # Encoded words are 32-bit values in a uint64 carrier; truncating the
    # stream once up front halves the window-gather traffic and feeds the
    # uint32 FNV kernel without a per-call conversion copy.
    flat32 = flat.astype(np.uint32)
    normal = ne_lens >= shingle_size
    if normal.any():
        counts = wcounts[normal]
        src = _segment_indices(ne_off[normal], counts)
        dest = _segment_indices(seg_starts[normal], counts)
        windows = np.lib.stride_tricks.sliding_window_view(flat32, shingle_size)
        base[dest] = fnv1a_32_array_u32(windows[src])
    short = ~normal
    if short.any():
        s_lens = ne_lens[short]
        s_off = ne_off[short]
        s_dest = seg_starts[short]
        for length in np.unique(s_lens).tolist():
            rows = s_lens == length
            gather = s_off[rows][:, None] + np.arange(length, dtype=np.int64)[None, :]
            base[s_dest[rows]] = fnv1a_32_array_u32(flat32[gather])
    return base, seg_starts, wcounts, nonempty


def minhash_encoded_batch(
    flat: np.ndarray,
    lens: np.ndarray,
    config: MinHashConfig = MinHashConfig(),
) -> Tuple[np.ndarray, np.ndarray]:
    """MinHash values for every function packed in ``(flat, lens)``.

    Returns ``(values, num_shingles)`` — a ``(n, k)`` uint32 matrix and the
    per-function window counts — where row *i* is bit-identical to
    ``MinHashFingerprint.from_encoded(stream_i, config).values``.
    """
    flat = np.asarray(flat, dtype=np.uint64)
    lens = np.asarray(lens, dtype=np.int64)
    n = lens.shape[0]
    k = config.k
    values = np.full((n, k), _EMPTY_SENTINEL, dtype=np.uint32)
    counts = np.zeros(n, dtype=np.int64)
    if n == 0 or not (lens > 0).any():
        return values, counts

    base, seg_starts, wcounts, nonempty = _window_hashes(flat, lens, config.shingle_size)
    counts[nonempty] = wcounts
    salt_vec = _salts_for(config)

    if config.independent_hashes:
        # k separate FNV-1a hashes of (salt, window_hash) pairs, one pass
        # over the whole window stream per salt.
        pairs = np.empty((base.shape[0], 2), dtype=np.uint32)
        pairs[:, 1] = base
        out = np.empty((k, nonempty.shape[0]), dtype=np.uint32)
        for j in range(k):
            pairs[:, 0] = salt_vec[j]
            out[j] = np.minimum.reduceat(fnv1a_32_array_u32(pairs), seg_starts)
        values[nonempty] = out.T
        return values, counts

    # xor-salt path: expand the window-hash stream against all k salts in
    # (k, windows) blocks — the salts-major layout keeps each reduceat
    # segment contiguous — and reduce per-function minima in one call.
    m = nonempty.shape[0]
    out = np.empty((m, k), dtype=np.uint32)
    seg_ends = seg_starts + wcounts
    fstart = 0
    while fstart < m:
        fend = int(np.searchsorted(seg_ends, seg_ends[fstart] + _MAX_BLOCK_WINDOWS, "left"))
        fend = max(fend, fstart + 1)
        ws, we = int(seg_starts[fstart]), int(seg_ends[fend - 1])
        ext = _xor_scratch(k, we - ws)
        np.bitwise_xor(salt_vec[:, None], base[None, ws:we], out=ext)
        out[fstart:fend] = np.minimum.reduceat(
            ext, seg_starts[fstart:fend] - ws, axis=1
        ).T
        fstart = fend
    values[nonempty] = out
    return values, counts


# ---------------------------------------------------------------------------
# Process-pool fan-out
# ---------------------------------------------------------------------------


def _minhash_worker(payload):
    """Top-level worker (picklable): fingerprint one packed chunk."""
    flat, lens, config = payload
    return minhash_encoded_batch(flat, lens, config)


def _size_balanced_chunks(lens: np.ndarray, chunks: int) -> List[np.ndarray]:
    """Split function indices into contiguous runs of ~equal stream size.

    Chunking by encoded-stream size (not function count) keeps workers
    balanced when a few giant functions dominate the module.
    """
    total = int(lens.sum())
    if total == 0 or chunks <= 1:
        return [np.arange(lens.shape[0], dtype=np.int64)]
    target = max(1, total // chunks)
    bounds = np.searchsorted(
        np.cumsum(lens), np.arange(1, chunks, dtype=np.int64) * target, "left"
    )
    bounds = np.unique(np.concatenate([[0], bounds + 1, [lens.shape[0]]]))
    return [
        np.arange(bounds[i], bounds[i + 1], dtype=np.int64)
        for i in range(bounds.shape[0] - 1)
        if bounds[i + 1] > bounds[i]
    ]


def _minhash_parallel(
    flat: np.ndarray, lens: np.ndarray, config: MinHashConfig, workers: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Fan :func:`minhash_encoded_batch` out over a process pool."""
    offsets = np.cumsum(lens) - lens
    chunks = _size_balanced_chunks(lens, workers * 2)
    payloads = []
    for chunk in chunks:
        idx = _segment_indices(offsets[chunk], lens[chunk])
        payloads.append((flat[idx], lens[chunk], config))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        results = list(pool.map(_minhash_worker, payloads))
    values = np.concatenate([v for v, _ in results], axis=0)
    counts = np.concatenate([c for _, c in results], axis=0)
    return values, counts


# ---------------------------------------------------------------------------
# Top-level entry points
# ---------------------------------------------------------------------------


def minhash_module(
    functions: Iterable[Function],
    config: MinHashConfig = MinHashConfig(),
    encoding: Optional[EncodingOptions] = None,
    *,
    cache=None,
    workers: Optional[int] = None,
    min_parallel: int = 4096,
) -> List[MinHashFingerprint]:
    """MinHash fingerprints for a whole module in one batched pass.

    Bit-identical to ``[minhash_function(f, config, encoding) for f in
    functions]``.  With *cache* (a :class:`FingerprintCache`) fingerprints
    are shared content-addressed: functions with identical encoded streams
    — within this call, across calls, and across CLI invocations when the
    cache has a disk layer — are hashed once.  With ``workers > 1`` and at
    least *min_parallel* functions the hash computation fans out over a
    ``ProcessPoolExecutor``, chunked by encoded-stream size.
    """
    functions = list(functions)
    if not functions:
        return []
    with trace.span("encode", functions=len(functions)):
        flat, lens = encode_module(functions, encoding)
    n = len(functions)

    def compute(sel_flat, sel_lens):
        if workers is not None and workers > 1 and sel_lens.shape[0] >= min_parallel:
            return _minhash_parallel(sel_flat, sel_lens, config, workers)
        return minhash_encoded_batch(sel_flat, sel_lens, config)

    if cache is None:
        with trace.span("minhash", functions=n, hashed=n):
            values, counts = compute(flat, lens)
        return [
            MinHashFingerprint(values[i], config, int(counts[i])) for i in range(n)
        ]

    with trace.span("minhash", functions=n) as sp:
        keys = cache.keys_for(flat, lens, config)
        resolved: dict = {}
        compute_rows: List[int] = []
        for i, key in enumerate(keys):
            if key in resolved:
                continue
            hit = cache.get(key)
            if hit is not None:
                resolved[key] = hit
            else:
                resolved[key] = None
                compute_rows.append(i)
        sp.set(hashed=len(compute_rows), cache_hits=n - len(compute_rows))
        if compute_rows:
            rows = np.array(compute_rows, dtype=np.int64)
            offsets = np.cumsum(lens) - lens
            idx = _segment_indices(offsets[rows], lens[rows])
            values, counts = compute(flat[idx], lens[rows])
            for pos, i in enumerate(compute_rows):
                entry = (values[pos], int(counts[pos]))
                resolved[keys[i]] = entry
                cache.put(keys[i], values[pos], int(counts[pos]))
    return [
        MinHashFingerprint(resolved[keys[i]][0], config, resolved[keys[i]][1])
        for i in range(n)
    ]


def minhash_single(
    func: Function,
    config: MinHashConfig = MinHashConfig(),
    encoding: Optional[EncodingOptions] = None,
    cache=None,
) -> MinHashFingerprint:
    """Cache-aware single-function fingerprint (the remerge-loop path).

    Merged functions re-entering the candidate pool go through here one at
    a time; the content-addressed cache still catches identical bodies
    (and re-runs over the same module hit every time).
    """
    encoded = encode_function(func, encoding or EncodingOptions())
    if cache is None:
        return MinHashFingerprint.from_encoded(encoded, config)
    flat = np.asarray(encoded, dtype=np.uint64)
    key = cache.keys_for(flat, np.array([len(encoded)], dtype=np.int64), config)[0]
    hit = cache.get(key)
    if hit is not None:
        return MinHashFingerprint(hit[0], config, hit[1])
    fp = MinHashFingerprint.from_encoded(encoded, config)
    cache.put(key, fp.values, fp.num_shingles)
    return fp
