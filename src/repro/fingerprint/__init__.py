"""Function fingerprints: the HyFM opcode-frequency baseline and F3M MinHash."""

from .encoding import EncodingOptions, encode_function, encode_instruction
from .fnv import fnv1a_32, fnv1a_32_ints, fnv1a_32_pair, salts
from .minhash import MinHashConfig, MinHashFingerprint, exact_jaccard, minhash_function
from .opcode_freq import OpcodeFingerprint, fingerprint_block, fingerprint_function
from .shingles import shingle_hashes, shingle_set, shingles

__all__ = [
    "EncodingOptions",
    "encode_function",
    "encode_instruction",
    "fnv1a_32",
    "fnv1a_32_ints",
    "fnv1a_32_pair",
    "salts",
    "MinHashConfig",
    "MinHashFingerprint",
    "exact_jaccard",
    "minhash_function",
    "OpcodeFingerprint",
    "fingerprint_block",
    "fingerprint_function",
    "shingles",
    "shingle_hashes",
    "shingle_set",
]
