"""Function fingerprints: the HyFM opcode-frequency baseline and F3M MinHash.

The batched engine (:mod:`.batch`) computes module-wide MinHash vectorized
and bit-identically to the per-function reference path; :mod:`.cache`
shares fingerprints content-addressed across functions, runs and CLI
invocations.
"""

from .batch import encode_module, minhash_encoded_batch, minhash_module, minhash_single
from .cache import CacheStats, FingerprintCache
from .encoding import EncodingOptions, encode_function, encode_instruction
from .fnv import fnv1a_32, fnv1a_32_ints, fnv1a_32_pair, salts
from .minhash import MinHashConfig, MinHashFingerprint, exact_jaccard, minhash_function
from .opcode_freq import OpcodeFingerprint, fingerprint_block, fingerprint_function
from .shingles import shingle_hashes, shingle_set, shingles
from .store import FingerprintStore, StoreFormatError

__all__ = [
    "CacheStats",
    "EncodingOptions",
    "FingerprintCache",
    "encode_module",
    "minhash_encoded_batch",
    "minhash_module",
    "minhash_single",
    "encode_function",
    "encode_instruction",
    "fnv1a_32",
    "fnv1a_32_ints",
    "fnv1a_32_pair",
    "salts",
    "MinHashConfig",
    "MinHashFingerprint",
    "exact_jaccard",
    "minhash_function",
    "OpcodeFingerprint",
    "fingerprint_block",
    "fingerprint_function",
    "shingles",
    "shingle_hashes",
    "shingle_set",
    "FingerprintStore",
    "StoreFormatError",
]
