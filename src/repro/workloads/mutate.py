"""Mutation engine: derive "similar" variants of a base function.

Real programs contain families of nearly identical functions; merging lives
off them.  A variant is a clone of the base with *n* random, semantics-
bending but well-formedness-preserving edits — changed constants, swapped
operators, flipped predicates, inserted or deleted instructions.  The
mutation count controls how far the variant drifts, which in turn controls
the pair's alignment ratio and merge profitability: the knob behind the
profitable/unprofitable mixes in Figures 4, 6, 9, 10 and 14.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..ir.basicblock import BasicBlock
from ..ir.clone import clone_function
from ..ir.function import Function
from ..ir.instructions import (
    BinaryOp,
    Branch,
    Call,
    Cast,
    GetElementPtr,
    ICmp,
    ICmpPred,
    Instruction,
    Invoke,
    Opcode,
    Phi,
    Select,
    Switch,
    Unreachable,
)
from ..ir.module import Module
from ..ir.types import IntType
from ..ir.values import ConstantInt

__all__ = [
    "mutate_function",
    "mutate_function_danger",
    "make_variant",
    "make_danger_variant",
    "shuffle_function",
    "make_shuffled_variant",
    "DANGER_MUTATIONS",
]

_SWAP_GROUPS = [
    [Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR],
    [Opcode.SHL, Opcode.LSHR, Opcode.ASHR],
    [Opcode.FADD, Opcode.FSUB, Opcode.FMUL],
]
_ICMP_PREDS = [
    ICmpPred.EQ,
    ICmpPred.NE,
    ICmpPred.SLT,
    ICmpPred.SLE,
    ICmpPred.SGT,
    ICmpPred.SGE,
]
_DIV_OPS = (Opcode.SDIV, Opcode.UDIV, Opcode.SREM, Opcode.UREM)
_SHIFT_OPS = (Opcode.SHL, Opcode.LSHR, Opcode.ASHR)


def _non_phi_instructions(func: Function) -> List[Instruction]:
    """Mutable instructions: no phis, and no loop induction updates.

    Instructions named ``iv*`` are the generator's loop-counter increments;
    mutating them (e.g. ``add iv, 1`` -> ``sub iv, 1``) would produce
    non-terminating loops, which the interpreter-based experiments cannot
    tolerate.
    """
    return [
        inst
        for block in func.blocks
        for inst in block.instructions
        if not inst.is_phi and not inst.name.startswith("iv")
    ]


def _mutate_constant(func: Function, rng: random.Random) -> bool:
    candidates = []
    for inst in _non_phi_instructions(func):
        if isinstance(inst, (GetElementPtr, Switch)):
            continue  # index validity / case uniqueness constraints
        for idx, op in enumerate(inst.operands):
            if isinstance(op, ConstantInt) and op.type.bits > 1:
                candidates.append((inst, idx, op))
    if not candidates:
        return False
    inst, idx, op = rng.choice(candidates)
    if inst.opcode in _DIV_OPS and idx == 1:
        new_value = rng.randint(1, 13)  # keep divisors non-zero
    elif inst.opcode in _SHIFT_OPS and idx == 1:
        new_value = rng.randint(1, 5)
    else:
        # Avoid 0/1: they fold to identities under -Os-style cleanup and
        # the mutation would vanish before merging ever sees it.
        new_value = rng.randint(2, 63)
    if new_value == op.value:
        new_value = (new_value % 62) + 2
    inst.set_operand(idx, ConstantInt(op.type, new_value))
    return True


def _mutate_opcode(func: Function, rng: random.Random) -> bool:
    candidates = [
        inst
        for inst in _non_phi_instructions(func)
        if isinstance(inst, BinaryOp)
        and any(inst.opcode in group for group in _SWAP_GROUPS)
    ]
    if not candidates:
        return False
    inst = rng.choice(candidates)
    for group in _SWAP_GROUPS:
        if inst.opcode in group:
            others = [op for op in group if op != inst.opcode]
            inst.opcode = rng.choice(others)
            return True
    return False


def _mutate_predicate(func: Function, rng: random.Random) -> bool:
    candidates = [i for i in _non_phi_instructions(func) if isinstance(i, ICmp)]
    if not candidates:
        return False
    inst = rng.choice(candidates)
    inst.pred = rng.choice([p for p in _ICMP_PREDS if p != inst.pred])
    return True


def _insert_instruction(func: Function, rng: random.Random) -> bool:
    """Insert a new arithmetic op fed by an earlier same-block int value and
    reroute that value's later same-block uses through it."""
    candidates = []
    for block in func.blocks:
        for pos, inst in enumerate(block.instructions):
            if inst.is_phi or inst.is_terminator:
                continue
            if inst.type.is_int and inst.type.bits > 1:  # type: ignore[attr-defined]
                candidates.append((block, pos, inst))
    if not candidates:
        return False
    block, pos, source = rng.choice(candidates)
    new = BinaryOp(
        rng.choice([Opcode.ADD, Opcode.XOR, Opcode.SUB]),
        source,
        ConstantInt(source.type, rng.randint(1, 15)),  # type: ignore[arg-type]
    )
    new.name = func.next_name("mut")
    block.insert(pos + 1, new)
    # Reroute later same-block uses so the new op is live; a dead insert
    # would be erased by DCE before merging ever sees it.
    rerouted = False
    for user, idx in list(source.uses()):
        if (
            isinstance(user, Instruction)
            and user is not new
            and user.parent is block
            and block.instructions.index(user) > pos + 1
        ):
            user.set_operand(idx, new)
            rerouted = True
    if not rerouted:
        new.erase_from_parent()
        return False
    return True


def _reorder_instructions(func: Function, rng: random.Random) -> bool:
    """Swap two adjacent independent instructions.

    Preserves semantics and the opcode *multiset* — the HyFM fingerprint
    cannot see the change at all — while shifting the instruction sequence
    that shingles and alignment operate on.  This is exactly the structural
    blindness of opcode-frequency fingerprints the paper's Section II-B
    criticizes, so workloads need a realistic dose of it.
    """
    candidates = []
    for block in func.blocks:
        insts = block.instructions
        start = block.first_non_phi_index()
        end = len(insts) - 1 if block.is_terminated else len(insts)
        for pos in range(start, end - 1):
            a, b = insts[pos], insts[pos + 1]
            if a.name.startswith("iv") or b.name.startswith("iv"):
                continue
            if b in a.users or a in b.users:
                continue  # data dependence
            if (a.may_write_memory() or a.may_read_memory()) and (
                b.may_write_memory() or b.may_read_memory()
            ):
                continue  # possible memory dependence
            candidates.append((block, pos))
    if not candidates:
        return False
    block, pos = rng.choice(candidates)
    insts = block.instructions
    insts[pos], insts[pos + 1] = insts[pos + 1], insts[pos]
    return True


def _delete_instruction(func: Function, rng: random.Random) -> bool:
    candidates = [
        inst
        for inst in _non_phi_instructions(func)
        if isinstance(inst, BinaryOp) and inst.lhs.type is inst.type
    ]
    if not candidates:
        return False
    inst = rng.choice(candidates)
    inst.replace_all_uses_with(inst.lhs)
    inst.erase_from_parent()
    return True


_MUTATIONS = [
    (_mutate_constant, 0.30),
    (_reorder_instructions, 0.15),
    (_mutate_opcode, 0.15),
    (_mutate_predicate, 0.12),
    (_insert_instruction, 0.18),
    (_delete_instruction, 0.10),
]


# ---------------------------------------------------------------------------
# §III-E danger-shape mutators (fuzz campaign bias)
#
# The paper's Section III-E bugs live in exactly the IR shapes hand-written
# workloads underproduce: invoke results feeding phis, multi-phi join
# blocks that merging must demote to stack slots, and address-taken
# functions.  These mutators manufacture those shapes while staying
# verifier-valid and printer/parser round-trip safe (the property tests in
# ``tests/workloads/test_mutate_properties.py`` enforce both).
# ---------------------------------------------------------------------------


def _remap_phi_incomings(old_block: BasicBlock, new_block: BasicBlock) -> None:
    """After *old_block*'s terminator moved into *new_block*, successors'
    phis must name *new_block* as the incoming predecessor."""
    term = new_block.terminator
    if term is None:
        return
    for succ in term.successors():
        for phi in succ.phis():
            for i in range(1, phi.num_operands, 2):
                if phi.operand(i) is old_block:
                    phi.set_operand(i, new_block)


def _mutate_call_to_invoke(func: Function, rng: random.Random) -> bool:
    """Convert a call into an invoke whose result feeds a phi in the normal
    destination — the §III-E bug-2 trigger: the phi's incoming block is the
    invoke's own block, so a legacy demotion inserts its reload *before*
    the invoke that defines the value."""
    candidates = [
        inst
        for block in func.blocks
        for inst in block.instructions
        if isinstance(inst, Call) and isinstance(inst.callee, Function)
    ]
    if not candidates:
        return False
    call = rng.choice(candidates)
    block = call.parent
    pos = block.instructions.index(call)

    normal = BasicBlock(func.next_name("inv.cont"))
    unwind = BasicBlock(func.next_name("inv.pad"))
    func.add_block(normal)
    func.move_block_after(normal, block)
    func.add_block(unwind)
    func.move_block_after(unwind, normal)

    # The tail (everything after the call, terminator included) moves into
    # the normal destination; successor phis now see `normal` as their
    # predecessor.
    for inst in list(block.instructions[pos + 1 :]):
        block.remove(inst)
        normal.append(inst)
    _remap_phi_incomings(block, normal)

    invoke = Invoke(call.callee, list(call.args), normal, unwind)
    if not call.type.is_void:
        invoke.name = func.next_name("inv")
        phi = Phi(call.type)
        phi.name = func.next_name("inv.phi")
        call.replace_all_uses_with(phi)
        normal.insert(0, phi)
        phi.add_incoming(invoke, block)
    call.erase_from_parent()
    block.append(invoke)
    unwind.append(Unreachable())
    return True


def _mutate_split_diamond(func: Function, rng: random.Random) -> bool:
    """Split a block into a two-arm diamond joined by *two* phis plus a
    same-block use of both — the §III-E bug-1 trigger: demoting the first
    phi under the legacy placement stores at the end of the join block,
    after the reload the same-block use reads through."""
    candidates = []
    for block in func.blocks:
        insts = block.instructions
        for pos in range(block.first_non_phi_index(), len(insts) - 1):
            inst = insts[pos]
            if inst.is_terminator or inst.name.startswith("iv"):
                continue
            if isinstance(inst.type, IntType) and inst.type.bits > 1:
                candidates.append((block, pos, inst))
    if not candidates:
        return False
    block, pos, v = rng.choice(candidates)

    left = BasicBlock(func.next_name("dm.a"))
    right = BasicBlock(func.next_name("dm.b"))
    join = BasicBlock(func.next_name("dm.join"))
    for b in (left, right, join):
        func.add_block(b)
    # Keep source order block -> left -> right -> join.
    func.move_block_after(left, block)
    func.move_block_after(right, left)
    func.move_block_after(join, right)

    for inst in list(block.instructions[pos + 1 :]):
        block.remove(inst)
        join.append(inst)
    _remap_phi_incomings(block, join)

    va = BinaryOp(Opcode.ADD, v, ConstantInt(v.type, rng.randint(2, 31)))
    va.name = func.next_name("dm.va")
    vb = BinaryOp(Opcode.XOR, v, ConstantInt(v.type, rng.randint(2, 31)))
    vb.name = func.next_name("dm.vb")
    left.append(va)
    left.append(Branch(join))
    right.append(vb)
    right.append(Branch(join))

    cond = ICmp(ICmpPred.SGT, v, ConstantInt(v.type, 0))
    cond.name = func.next_name("dm.c")
    block.append(cond)
    block.append(Branch(cond, left, right))

    p = Phi(v.type)
    p.name = func.next_name("dm.p")
    p.add_incoming(va, left)
    p.add_incoming(vb, right)
    q = Phi(v.type)
    q.name = func.next_name("dm.q")
    q.add_incoming(ConstantInt(v.type, 1), left)
    q.add_incoming(ConstantInt(v.type, 2), right)
    join.insert(0, p)
    join.insert(1, q)
    u = BinaryOp(Opcode.MUL, p, q)
    u.name = func.next_name("dm.u")
    join.insert(2, u)

    # Reroute v's later uses (now living in the join block) through the
    # phi product so the diamond is live; a dead diamond would still be
    # valid IR but would never reach the demotion path under merging.
    for user, idx in list(v.uses()):
        if (
            isinstance(user, Instruction)
            and user.parent is join
            and user not in (p, q, u)
            and not user.is_phi
            and user.type is v.type
            and not user.name.startswith("iv")
        ):
            user.set_operand(idx, u)
            break
    return True


def _mutate_address_taken(func: Function, rng: random.Random) -> bool:
    """Take the address of module functions: route two function pointers
    through a select and compare the result — no indirect call, but the
    functions become address-taken operands, the shape merging must keep
    callable originals for (§III-E's third danger class)."""
    module = func.parent
    if module is None:
        return False
    pool = {}
    for g in module.defined_functions():
        pool.setdefault(g.type, []).append(g)
    if not pool:
        return False
    candidates = []
    for block in func.blocks:
        for pos, inst in enumerate(block.instructions):
            if inst.is_phi or inst.is_terminator or inst.name.startswith("iv"):
                continue
            if isinstance(inst.type, IntType) and inst.type.bits > 1:
                candidates.append((block, pos, inst))
    if not candidates:
        return False
    block, pos, v = rng.choice(candidates)
    fty = rng.choice(list(pool.keys()))
    g = rng.choice(pool[fty])
    h = rng.choice(pool[fty])

    cond = ICmp(ICmpPred.SGT, v, ConstantInt(v.type, 0))
    cond.name = func.next_name("at.c")
    sel = Select(cond, g, h)
    sel.name = func.next_name("at.fp")
    tok = ICmp(ICmpPred.EQ, sel, g)
    tok.name = func.next_name("at.eq")
    z = Cast(Opcode.ZEXT, tok, v.type)
    z.name = func.next_name("at.z")
    m = BinaryOp(Opcode.XOR, v, z)
    m.name = func.next_name("at.m")
    for offset, inst in enumerate((cond, sel, tok, z, m)):
        block.insert(pos + 1 + offset, inst)

    # Reroute later same-block uses of v through the token-mixed value so
    # the address-taking survives cleanup; undo entirely when nothing can
    # be rerouted.
    rerouted = False
    for user, idx in list(v.uses()):
        if (
            isinstance(user, Instruction)
            and user not in (cond, sel, tok, z, m)
            and user.parent is block
            and not user.is_phi
            and block.instructions.index(user) > pos + 5
        ):
            user.set_operand(idx, m)
            rerouted = True
    if not rerouted:
        for inst in (m, z, tok, sel, cond):
            inst.erase_from_parent()
        return False
    return True


#: The §III-E-biased mutator pool: (mutator, weight), exported for the
#: fuzz campaign's generator.
DANGER_MUTATIONS = [
    (_mutate_call_to_invoke, 0.40),
    (_mutate_split_diamond, 0.40),
    (_mutate_address_taken, 0.20),
]


def mutate_function(func: Function, rng: random.Random, n_mutations: int) -> int:
    """Apply up to *n_mutations* random edits in place; returns how many took."""
    applied = 0
    weights = [w for _fn, w in _MUTATIONS]
    funcs = [fn for fn, _w in _MUTATIONS]
    for _ in range(n_mutations):
        mutation = rng.choices(funcs, weights=weights, k=1)[0]
        if mutation(func, rng):
            applied += 1
    return applied


def mutate_function_danger(
    func: Function,
    rng: random.Random,
    n_mutations: int,
    danger_bias: float = 0.5,
) -> int:
    """Like :func:`mutate_function`, with each edit drawn from the §III-E
    danger pool with probability *danger_bias* (the fuzz campaign's knob)."""
    applied = 0
    plain_funcs = [fn for fn, _w in _MUTATIONS]
    plain_weights = [w for _fn, w in _MUTATIONS]
    danger_funcs = [fn for fn, _w in DANGER_MUTATIONS]
    danger_weights = [w for _fn, w in DANGER_MUTATIONS]
    for _ in range(n_mutations):
        if rng.random() < danger_bias:
            mutation = rng.choices(danger_funcs, weights=danger_weights, k=1)[0]
        else:
            mutation = rng.choices(plain_funcs, weights=plain_weights, k=1)[0]
        if mutation(func, rng):
            applied += 1
    return applied


def shuffle_function(func: Function, rng: random.Random, n_swaps: int) -> int:
    """Apply only instruction reorders: same semantics, same opcode
    multiset, different instruction schedule.

    Pairs built this way are the purest form of the paper's Figure 5
    problem: the opcode-frequency fingerprint scores them as identical
    while their alignment (and single-instruction shingles) degrade.
    """
    applied = 0
    for _ in range(n_swaps):
        if _reorder_instructions(func, rng):
            applied += 1
    return applied


def make_shuffled_variant(
    base: Function,
    name: str,
    rng: random.Random,
    n_swaps: int,
    module: Optional[Module] = None,
) -> Function:
    """Clone *base* as *name* and shuffle the clone's instruction order."""
    variant = clone_function(base, name, module if module is not None else base.parent)
    shuffle_function(variant, rng, n_swaps)
    return variant


def make_variant(
    base: Function,
    name: str,
    rng: random.Random,
    n_mutations: int,
    module: Optional[Module] = None,
) -> Function:
    """Clone *base* as *name* and mutate the clone."""
    variant = clone_function(base, name, module if module is not None else base.parent)
    mutate_function(variant, rng, n_mutations)
    return variant


def make_danger_variant(
    base: Function,
    name: str,
    rng: random.Random,
    n_mutations: int,
    module: Optional[Module] = None,
    danger_bias: float = 0.5,
) -> Function:
    """Clone *base* as *name* and mutate the clone with §III-E bias."""
    variant = clone_function(base, name, module if module is not None else base.parent)
    mutate_function_danger(variant, rng, n_mutations, danger_bias=danger_bias)
    return variant
