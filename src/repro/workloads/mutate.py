"""Mutation engine: derive "similar" variants of a base function.

Real programs contain families of nearly identical functions; merging lives
off them.  A variant is a clone of the base with *n* random, semantics-
bending but well-formedness-preserving edits — changed constants, swapped
operators, flipped predicates, inserted or deleted instructions.  The
mutation count controls how far the variant drifts, which in turn controls
the pair's alignment ratio and merge profitability: the knob behind the
profitable/unprofitable mixes in Figures 4, 6, 9, 10 and 14.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..ir.basicblock import BasicBlock
from ..ir.clone import clone_function
from ..ir.function import Function
from ..ir.instructions import (
    BinaryOp,
    GetElementPtr,
    ICmp,
    ICmpPred,
    Instruction,
    Opcode,
    Phi,
    Switch,
)
from ..ir.module import Module
from ..ir.values import ConstantInt

__all__ = ["mutate_function", "make_variant", "shuffle_function", "make_shuffled_variant"]

_SWAP_GROUPS = [
    [Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR],
    [Opcode.SHL, Opcode.LSHR, Opcode.ASHR],
    [Opcode.FADD, Opcode.FSUB, Opcode.FMUL],
]
_ICMP_PREDS = [
    ICmpPred.EQ,
    ICmpPred.NE,
    ICmpPred.SLT,
    ICmpPred.SLE,
    ICmpPred.SGT,
    ICmpPred.SGE,
]
_DIV_OPS = (Opcode.SDIV, Opcode.UDIV, Opcode.SREM, Opcode.UREM)
_SHIFT_OPS = (Opcode.SHL, Opcode.LSHR, Opcode.ASHR)


def _non_phi_instructions(func: Function) -> List[Instruction]:
    """Mutable instructions: no phis, and no loop induction updates.

    Instructions named ``iv*`` are the generator's loop-counter increments;
    mutating them (e.g. ``add iv, 1`` -> ``sub iv, 1``) would produce
    non-terminating loops, which the interpreter-based experiments cannot
    tolerate.
    """
    return [
        inst
        for block in func.blocks
        for inst in block.instructions
        if not inst.is_phi and not inst.name.startswith("iv")
    ]


def _mutate_constant(func: Function, rng: random.Random) -> bool:
    candidates = []
    for inst in _non_phi_instructions(func):
        if isinstance(inst, (GetElementPtr, Switch)):
            continue  # index validity / case uniqueness constraints
        for idx, op in enumerate(inst.operands):
            if isinstance(op, ConstantInt) and op.type.bits > 1:
                candidates.append((inst, idx, op))
    if not candidates:
        return False
    inst, idx, op = rng.choice(candidates)
    if inst.opcode in _DIV_OPS and idx == 1:
        new_value = rng.randint(1, 13)  # keep divisors non-zero
    elif inst.opcode in _SHIFT_OPS and idx == 1:
        new_value = rng.randint(1, 5)
    else:
        # Avoid 0/1: they fold to identities under -Os-style cleanup and
        # the mutation would vanish before merging ever sees it.
        new_value = rng.randint(2, 63)
    if new_value == op.value:
        new_value = (new_value % 62) + 2
    inst.set_operand(idx, ConstantInt(op.type, new_value))
    return True


def _mutate_opcode(func: Function, rng: random.Random) -> bool:
    candidates = [
        inst
        for inst in _non_phi_instructions(func)
        if isinstance(inst, BinaryOp)
        and any(inst.opcode in group for group in _SWAP_GROUPS)
    ]
    if not candidates:
        return False
    inst = rng.choice(candidates)
    for group in _SWAP_GROUPS:
        if inst.opcode in group:
            others = [op for op in group if op != inst.opcode]
            inst.opcode = rng.choice(others)
            return True
    return False


def _mutate_predicate(func: Function, rng: random.Random) -> bool:
    candidates = [i for i in _non_phi_instructions(func) if isinstance(i, ICmp)]
    if not candidates:
        return False
    inst = rng.choice(candidates)
    inst.pred = rng.choice([p for p in _ICMP_PREDS if p != inst.pred])
    return True


def _insert_instruction(func: Function, rng: random.Random) -> bool:
    """Insert a new arithmetic op fed by an earlier same-block int value and
    reroute that value's later same-block uses through it."""
    candidates = []
    for block in func.blocks:
        for pos, inst in enumerate(block.instructions):
            if inst.is_phi or inst.is_terminator:
                continue
            if inst.type.is_int and inst.type.bits > 1:  # type: ignore[attr-defined]
                candidates.append((block, pos, inst))
    if not candidates:
        return False
    block, pos, source = rng.choice(candidates)
    new = BinaryOp(
        rng.choice([Opcode.ADD, Opcode.XOR, Opcode.SUB]),
        source,
        ConstantInt(source.type, rng.randint(1, 15)),  # type: ignore[arg-type]
    )
    new.name = func.next_name("mut")
    block.insert(pos + 1, new)
    # Reroute later same-block uses so the new op is live; a dead insert
    # would be erased by DCE before merging ever sees it.
    rerouted = False
    for user, idx in list(source.uses()):
        if (
            isinstance(user, Instruction)
            and user is not new
            and user.parent is block
            and block.instructions.index(user) > pos + 1
        ):
            user.set_operand(idx, new)
            rerouted = True
    if not rerouted:
        new.erase_from_parent()
        return False
    return True


def _reorder_instructions(func: Function, rng: random.Random) -> bool:
    """Swap two adjacent independent instructions.

    Preserves semantics and the opcode *multiset* — the HyFM fingerprint
    cannot see the change at all — while shifting the instruction sequence
    that shingles and alignment operate on.  This is exactly the structural
    blindness of opcode-frequency fingerprints the paper's Section II-B
    criticizes, so workloads need a realistic dose of it.
    """
    candidates = []
    for block in func.blocks:
        insts = block.instructions
        start = block.first_non_phi_index()
        end = len(insts) - 1 if block.is_terminated else len(insts)
        for pos in range(start, end - 1):
            a, b = insts[pos], insts[pos + 1]
            if a.name.startswith("iv") or b.name.startswith("iv"):
                continue
            if b in a.users or a in b.users:
                continue  # data dependence
            if (a.may_write_memory() or a.may_read_memory()) and (
                b.may_write_memory() or b.may_read_memory()
            ):
                continue  # possible memory dependence
            candidates.append((block, pos))
    if not candidates:
        return False
    block, pos = rng.choice(candidates)
    insts = block.instructions
    insts[pos], insts[pos + 1] = insts[pos + 1], insts[pos]
    return True


def _delete_instruction(func: Function, rng: random.Random) -> bool:
    candidates = [
        inst
        for inst in _non_phi_instructions(func)
        if isinstance(inst, BinaryOp) and inst.lhs.type is inst.type
    ]
    if not candidates:
        return False
    inst = rng.choice(candidates)
    inst.replace_all_uses_with(inst.lhs)
    inst.erase_from_parent()
    return True


_MUTATIONS = [
    (_mutate_constant, 0.30),
    (_reorder_instructions, 0.15),
    (_mutate_opcode, 0.15),
    (_mutate_predicate, 0.12),
    (_insert_instruction, 0.18),
    (_delete_instruction, 0.10),
]


def mutate_function(func: Function, rng: random.Random, n_mutations: int) -> int:
    """Apply up to *n_mutations* random edits in place; returns how many took."""
    applied = 0
    weights = [w for _fn, w in _MUTATIONS]
    funcs = [fn for fn, _w in _MUTATIONS]
    for _ in range(n_mutations):
        mutation = rng.choices(funcs, weights=weights, k=1)[0]
        if mutation(func, rng):
            applied += 1
    return applied


def shuffle_function(func: Function, rng: random.Random, n_swaps: int) -> int:
    """Apply only instruction reorders: same semantics, same opcode
    multiset, different instruction schedule.

    Pairs built this way are the purest form of the paper's Figure 5
    problem: the opcode-frequency fingerprint scores them as identical
    while their alignment (and single-instruction shingles) degrade.
    """
    applied = 0
    for _ in range(n_swaps):
        if _reorder_instructions(func, rng):
            applied += 1
    return applied


def make_shuffled_variant(
    base: Function,
    name: str,
    rng: random.Random,
    n_swaps: int,
    module: Optional[Module] = None,
) -> Function:
    """Clone *base* as *name* and shuffle the clone's instruction order."""
    variant = clone_function(base, name, module if module is not None else base.parent)
    shuffle_function(variant, rng, n_swaps)
    return variant


def make_variant(
    base: Function,
    name: str,
    rng: random.Random,
    n_mutations: int,
    module: Optional[Module] = None,
) -> Function:
    """Clone *base* as *name* and mutate the clone."""
    variant = clone_function(base, name, module if module is not None else base.parent)
    mutate_function(variant, rng, n_mutations)
    return variant
