"""Synthetic workloads: random IR generation, mutation families, suites."""

from .generator import FunctionGenerator, GeneratorConfig
from .mutate import make_variant, mutate_function
from .suites import (
    BENCHMARKS,
    BenchmarkSpec,
    WorkloadConfig,
    benchmark_by_name,
    build_benchmark,
    build_workload,
    size_class,
)

__all__ = [
    "FunctionGenerator",
    "GeneratorConfig",
    "make_variant",
    "mutate_function",
    "BENCHMARKS",
    "BenchmarkSpec",
    "WorkloadConfig",
    "benchmark_by_name",
    "build_benchmark",
    "build_workload",
    "size_class",
]
