"""Benchmark-shaped workloads (paper Table I equivalents).

The paper evaluates on SPEC CPU2006/2017 plus large real applications
(Linux, Chrome).  Without their sources, we reproduce the *population
statistics* the merging pipeline actually sees: the function count of each
benchmark and a mix of unrelated functions and mutation-derived families of
similar functions.  Function counts follow the paper where stated
(perlbench 1837, Linux ≈45k, Chrome ≈1.2m) and typical SPEC sizes
elsewhere; a ``scale`` factor shrinks the giant programs to what a Python
host can simulate while preserving the size *ordering* across benchmarks.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..ir.basicblock import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import ICmpPred
from ..ir.module import Module
from ..ir.types import DOUBLE, FunctionType, I1, I32, I64, IntType
from ..ir.values import ConstantFloat, ConstantInt, Value
from .generator import FunctionGenerator, GeneratorConfig
from .mutate import make_shuffled_variant, make_variant

__all__ = [
    "BenchmarkSpec",
    "BENCHMARKS",
    "WorkloadConfig",
    "build_workload",
    "build_benchmark",
    "benchmark_by_name",
    "size_class",
]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table-I row: name and (paper-reported or typical) function count."""

    name: str
    functions: int
    category: str  # "spec2006" | "spec2017" | "app"


# Counts marked * are stated in the paper (perlbench 1837, Linux 45k,
# Chrome 1.2m); the rest are typical for the benchmark and only need to
# preserve relative ordering.
BENCHMARKS: List[BenchmarkSpec] = [
    BenchmarkSpec("462.libquantum", 115, "spec2006"),
    BenchmarkSpec("429.mcf", 136, "spec2006"),
    BenchmarkSpec("505.mcf_r", 141, "spec2017"),
    BenchmarkSpec("470.lbm", 179, "spec2006"),
    BenchmarkSpec("519.lbm_r", 189, "spec2017"),
    BenchmarkSpec("444.namd", 250, "spec2006"),
    BenchmarkSpec("508.namd_r", 266, "spec2017"),
    BenchmarkSpec("458.sjeng", 288, "spec2006"),
    BenchmarkSpec("433.milc", 334, "spec2006"),
    BenchmarkSpec("531.deepsjeng_r", 350, "spec2017"),
    BenchmarkSpec("456.hmmer", 538, "spec2006"),
    BenchmarkSpec("401.bzip2", 562, "spec2006"),
    BenchmarkSpec("473.astar", 610, "spec2006"),
    BenchmarkSpec("525.x264_r", 843, "spec2017"),
    BenchmarkSpec("445.gobmk", 1106, "spec2006"),
    BenchmarkSpec("464.h264ref", 1223, "spec2006"),
    BenchmarkSpec("400.perlbench", 1837, "spec2006"),  # *
    BenchmarkSpec("600.perlbench_s", 2051, "spec2017"),
    BenchmarkSpec("403.gcc", 3458, "spec2006"),
    BenchmarkSpec("447.dealII", 4234, "spec2006"),
    BenchmarkSpec("510.parest_r", 5318, "spec2017"),
    BenchmarkSpec("623.xalancbmk_s", 6891, "spec2017"),
    BenchmarkSpec("620.omnetpp_s", 9447, "spec2017"),
    BenchmarkSpec("602.gcc_s", 11288, "spec2017"),
    BenchmarkSpec("linux", 45000, "app"),  # *
    BenchmarkSpec("chrome", 1_200_000, "app"),  # *
]

_BY_NAME: Dict[str, BenchmarkSpec] = {b.name: b for b in BENCHMARKS}


def benchmark_by_name(name: str) -> BenchmarkSpec:
    return _BY_NAME[name]


def size_class(num_functions: int) -> str:
    """Paper Section IV-D buckets: small / medium / large."""
    if num_functions < 1000:
        return "small"
    if num_functions < 10_000:
        return "medium"
    return "large"


@dataclass(frozen=True)
class WorkloadConfig:
    """Population statistics of a generated workload.

    ``family_fraction`` — share of functions that belong to a similarity
    family (the merging fodder).  ``near_dup_fraction`` — share of family
    variants mutated only lightly (profitable pairs); the rest drift hard
    (fingerprint-similar but unprofitable pairs, the HyFM failure mode).
    """

    seed: int = 0xF3A
    family_fraction: float = 0.45
    min_family: int = 2
    max_family: int = 6
    near_dup_fraction: float = 0.40
    shuffle_fraction: float = 0.18
    light_mutations: int = 2
    heavy_mutations: int = 14
    drivers: int = 1
    preoptimize: bool = True
    generator: GeneratorConfig = GeneratorConfig()


def build_workload(
    num_functions: int,
    name: str = "workload",
    config: WorkloadConfig = WorkloadConfig(),
) -> Module:
    """Generate a module with *num_functions* defined functions (+ drivers)."""
    rng = random.Random(config.seed ^ (num_functions * 2654435761))
    module = Module(name)
    generator = FunctionGenerator(module, rng, config.generator)

    made = 0
    family_idx = 0
    while made < num_functions:
        in_family = rng.random() < config.family_fraction
        if in_family and num_functions - made >= config.min_family:
            size = rng.randint(
                config.min_family, min(config.max_family, num_functions - made)
            )
            base = generator.generate(f"fam{family_idx}.base")
            made += 1
            for v in range(size - 1):
                vname = f"fam{family_idx}.v{v}"
                roll = rng.random()
                if roll < 0.10:
                    # Exact duplicate (mergefunc fodder, a minority).
                    make_variant(base, vname, rng, 0, module)
                elif roll < 0.10 + config.shuffle_fraction:
                    # Same code, different instruction schedule: identical
                    # opcode multiset, degraded alignment (Figure 5's trap).
                    make_shuffled_variant(
                        base, vname, rng, rng.randint(6, 20), module
                    )
                elif roll < 0.10 + config.shuffle_fraction + config.near_dup_fraction:
                    make_variant(
                        base, vname, rng, rng.randint(1, config.light_mutations), module
                    )
                else:
                    make_variant(
                        base,
                        vname,
                        rng,
                        rng.randint(config.light_mutations + 2, config.heavy_mutations),
                        module,
                    )
                made += 1
            family_idx += 1
        else:
            generator.generate(f"fn{made}")
            made += 1

    for d in range(config.drivers):
        _build_driver(module, rng, f"driver{d}" if config.drivers > 1 else "driver")
    if config.preoptimize:
        # The paper applies merging "after all source files have been
        # optimized for size (-Os)"; without this, dead code left by the
        # generator would inflate every merging statistic.
        from ..transforms.pipeline import optimize_module

        optimize_module(module, max_rounds=2, drop_dead_functions=False)
    # Generated loops reuse local names like %iv; make every function's
    # names unique so the module's printed form round-trips through the
    # parser (partition sweeps snapshot modules as text).
    for func in module.defined_functions():
        func.uniquify_names()
    return module


def _build_driver(module: Module, rng: random.Random, name: str) -> Function:
    """An executable entry point calling a sample of the module's functions.

    Interpreting the driver before and after merging measures the dynamic
    instruction overhead of merged code (paper Figure 17).
    """
    callable_funcs = [
        f
        for f in module.defined_functions()
        if not f.name.startswith("driver")
        and all(isinstance(p, IntType) or p.is_float for p in f.ftype.params)
    ]
    sample_size = min(len(callable_funcs), 40)
    sample = rng.sample(callable_funcs, sample_size) if sample_size else []

    func = Function(FunctionType(I32, [I32]), module.unique_name(name), parent=module)
    func.internal = False  # entry points are externally visible
    builder = IRBuilder(BasicBlock("entry", func))
    x = func.args[0]
    acc: Value = builder.add(x, ConstantInt(I32, 1))
    for callee in sample:
        args: List[Value] = []
        for param in callee.ftype.params:
            if param is I32:
                args.append(acc)
            elif isinstance(param, IntType) and param.bits == 64:
                args.append(builder.sext(acc, I64))
            elif isinstance(param, IntType) and param.bits == 1:
                args.append(builder.icmp(ICmpPred.SGT, acc, ConstantInt(I32, 0)))
            elif isinstance(param, IntType):
                args.append(ConstantInt(param, 3))
            else:
                args.append(ConstantFloat(param, 2.5))  # type: ignore[arg-type]
        result = builder.call(callee, args)
        if result.type is I32:
            acc = builder.xor(acc, result)
        elif isinstance(result.type, IntType) and result.type.bits == 64:
            acc = builder.xor(acc, builder.trunc(result, I32))
        elif result.type.is_float:
            acc = builder.xor(acc, builder.fptosi(result, I32))
    builder.ret(acc)
    return func


def build_benchmark(
    name: str,
    scale: float = 1.0,
    max_functions: Optional[int] = None,
    config: Optional[WorkloadConfig] = None,
) -> Module:
    """Build the workload for one Table-I benchmark, optionally scaled."""
    spec = benchmark_by_name(name)
    n = max(8, int(round(spec.functions * scale)))
    if max_functions is not None:
        n = min(n, max_functions)
    from ..fingerprint.fnv import fnv1a_32

    cfg = config or WorkloadConfig(seed=(fnv1a_32(name.encode()) & 0xFFFFFF) or 1)
    return build_workload(n, name=name, config=cfg)
