"""Deterministic random IR generator.

The evaluation needs modules whose function populations look like real
programs to the merging pipeline: lots of unrelated functions, plus
*families* of near-duplicates (template instantiations, copy-pasted
handlers, generated boilerplate) that merging feeds on.  This module
generates individual structured functions; :mod:`repro.workloads.mutate`
derives family variants; :mod:`repro.workloads.suites` assembles whole
benchmark-shaped modules.

Each function is generated under a random *style* — a palette of preferred
types, a subset of opcodes, a distinctive memory shape — the way real
functions have their own idioms.  Without styles, every generated function
shares the same handful of instruction shingles and MinHash/LSH selectivity
collapses; with them, shingle diversity matches the behaviour the paper
reports on real code.

Everything is driven by :class:`random.Random` with explicit seeds, so every
workload is reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ir.basicblock import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import ICmpPred, Opcode
from ..ir.module import Module
from ..ir.types import (
    ArrayType,
    DOUBLE,
    FLOAT,
    FloatType,
    FunctionType,
    I1,
    I16,
    I32,
    I64,
    I8,
    IntType,
    PointerType,
    Type,
    VOID,
)
from ..ir.values import ConstantFloat, ConstantInt, Value

__all__ = ["GeneratorConfig", "FunctionGenerator"]

_INT_BINOPS = [Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR]
_SHIFT_BINOPS = [Opcode.SHL, Opcode.LSHR, Opcode.ASHR]
_DIV_BINOPS = [Opcode.SDIV, Opcode.UDIV, Opcode.SREM, Opcode.UREM]
_FLOAT_BINOPS = [Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV]
_ICMP_PREDS = [
    ICmpPred.EQ,
    ICmpPred.NE,
    ICmpPred.SLT,
    ICmpPred.SLE,
    ICmpPred.SGT,
    ICmpPred.SGE,
    ICmpPred.ULT,
    ICmpPred.UGT,
]
_INT_TYPES = [I8, I16, I32, I64]


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape parameters for generated functions."""

    min_ops: int = 6
    max_ops: int = 24
    max_params: int = 4
    branch_prob: float = 0.35
    loop_prob: float = 0.2
    call_prob: float = 0.12
    memory_prob: float = 0.25
    float_prob: float = 0.2
    max_depth: int = 2
    max_callee_depth: int = 3
    void_ret_prob: float = 0.15


class _Style:
    """Per-function idiom: preferred types, opcode palette, memory shape."""

    def __init__(self, rng: random.Random, cfg: GeneratorConfig) -> None:
        # Two working integer widths, weighted toward the first.
        self.int_types = rng.sample(_INT_TYPES, 2)
        self.float_type: FloatType = rng.choice([FLOAT, DOUBLE])
        self.int_ops = rng.sample(_INT_BINOPS, rng.randint(2, 4))
        self.shift_ops = rng.sample(_SHIFT_BINOPS, rng.randint(1, 2))
        self.div_ops = rng.sample(_DIV_BINOPS, rng.randint(1, 2))
        self.float_ops = rng.sample(_FLOAT_BINOPS, rng.randint(1, 3))
        self.preds = rng.sample(_ICMP_PREDS, rng.randint(2, 4))
        elem = rng.choice([I8, I16, I32, I64])
        self.array_type = ArrayType(elem, rng.choice([2, 3, 4, 6, 8]))
        self.use_casts = rng.random() < 0.5
        self.use_select = rng.random() < 0.35
        # Jittered kind probabilities give every function its own op mix.
        self.memory_prob = cfg.memory_prob * rng.uniform(0.2, 1.8)
        self.float_prob = cfg.float_prob * rng.uniform(0.0, 2.0)
        self.call_prob = cfg.call_prob * rng.uniform(0.3, 1.7)

    def int_type(self, rng: random.Random) -> IntType:
        return self.int_types[0] if rng.random() < 0.7 else self.int_types[1]


class _Scope:
    """Values available (dominating) at the current insertion point."""

    def __init__(self) -> None:
        self.by_type: Dict[Type, List[Value]] = {}

    def add(self, value: Value) -> None:
        if value.type.is_void or value.type.is_label:
            return
        self.by_type.setdefault(value.type, []).append(value)

    def pick(self, rng: random.Random, type_: Type) -> Optional[Value]:
        values = self.by_type.get(type_)
        return rng.choice(values) if values else None

    def snapshot(self) -> "_Scope":
        copy = _Scope()
        copy.by_type = {t: list(vs) for t, vs in self.by_type.items()}
        return copy


class FunctionGenerator:
    """Generates structured, verifier-clean, interpretable functions."""

    def __init__(
        self,
        module: Module,
        rng: random.Random,
        config: GeneratorConfig = GeneratorConfig(),
    ) -> None:
        self.module = module
        self.rng = rng
        self.config = config
        # Call-chain depth of every generated function, so the generator can
        # bound the dynamic call depth of any workload.
        self.depths: Dict[str, int] = {}
        self._callables: List[Function] = []
        self._style: Optional[_Style] = None

    # -- public API ----------------------------------------------------------------
    def generate(self, name: str) -> Function:
        rng, cfg = self.rng, self.config
        self._style = _Style(rng, cfg)
        style = self._style
        nparams = rng.randint(1, cfg.max_params)
        param_types: List[Type] = []
        for _ in range(nparams):
            roll = rng.random()
            if roll < 0.6:
                param_types.append(style.int_type(rng))
            elif roll < 0.8:
                param_types.append(I32)
            elif roll < 0.92:
                param_types.append(style.float_type)
            else:
                param_types.append(I1)
        if rng.random() < cfg.void_ret_prob:
            ret: Type = VOID
        else:
            ret = rng.choice([I32, style.int_types[0], style.int_types[0], style.float_type])

        func = Function(FunctionType(ret, param_types), name, parent=self.module)
        builder = IRBuilder(BasicBlock("entry", func))
        scope = _Scope()
        for arg in func.args:
            scope.add(arg)
        # Seed value so tiny functions still have material to work with.
        t0 = style.int_types[0]
        seed_val = builder.binop(
            rng.choice(style.int_ops),
            self._int_value(builder, scope, t0),
            ConstantInt(t0, rng.randint(1, 60)),
        )
        scope.add(seed_val)

        budget = rng.randint(cfg.min_ops, cfg.max_ops)
        scope = self._emit_region(builder, scope, budget, cfg.max_depth)
        self._emit_return(builder, scope, ret)

        depth = 1 + max(
            [0] + [self.depths.get(c.name, 0) for c in self._called_in(func)]
        )
        self.depths[func.name] = depth
        if depth <= cfg.max_callee_depth:
            self._callables.append(func)
        return func

    # -- regions ---------------------------------------------------------------------
    def _emit_region(
        self, builder: IRBuilder, scope: _Scope, budget: int, depth: int
    ) -> _Scope:
        rng, cfg = self.rng, self.config
        while budget > 0:
            roll = rng.random()
            if depth > 0 and roll < cfg.branch_prob and budget >= 4:
                used = self._emit_branch(builder, scope, min(budget, 8), depth - 1)
                budget -= used
            elif depth > 0 and roll < cfg.branch_prob + cfg.loop_prob and budget >= 4:
                used = self._emit_loop(builder, scope, min(budget, 8))
                budget -= used
            else:
                self._emit_straightline(builder, scope)
                budget -= 1
        return scope

    def _emit_straightline(
        self, builder: IRBuilder, scope: _Scope, allow_calls: bool = True
    ) -> None:
        rng = self.rng
        style = self._style
        assert style is not None
        roll = rng.random()
        if allow_calls and roll < style.call_prob and self._callables:
            self._emit_call(builder, scope)
        elif roll < style.call_prob + style.memory_prob:
            self._emit_memory(builder, scope)
        elif roll < style.call_prob + style.memory_prob + style.float_prob:
            self._emit_float_op(builder, scope)
        else:
            self._emit_int_op(builder, scope)

    # -- straight-line emitters ---------------------------------------------------------
    def _int_value(self, builder: IRBuilder, scope: _Scope, type_: IntType) -> Value:
        value = scope.pick(self.rng, type_)
        if value is None:
            value = ConstantInt(type_, self.rng.randint(0, 50))
        return value

    def _emit_int_op(self, builder: IRBuilder, scope: _Scope) -> None:
        rng = self.rng
        style = self._style
        assert style is not None
        type_ = style.int_type(rng)
        a = self._int_value(builder, scope, type_)
        roll = rng.random()
        if roll < 0.12:
            op = rng.choice(style.shift_ops)
            b: Value = ConstantInt(type_, rng.randint(1, min(5, type_.bits - 1)))
        elif roll < 0.22:
            op = rng.choice(style.div_ops)
            b = ConstantInt(type_, rng.randint(1, 13))  # non-zero divisor
        else:
            op = rng.choice(style.int_ops)
            b = (
                self._int_value(builder, scope, type_)
                if rng.random() < 0.6
                else ConstantInt(type_, rng.randint(0, 31))
            )
        result = builder.binop(op, a, b)
        scope.add(result)
        if rng.random() < 0.2:
            cmp_b = self._int_value(builder, scope, type_)
            scope.add(builder.icmp(rng.choice(style.preds), a, cmp_b))
        if style.use_casts and rng.random() < 0.25:
            self._emit_cast(builder, scope, result)
        if style.use_select and rng.random() < 0.25:
            cond = scope.pick(rng, I1)
            other = scope.pick(rng, result.type)
            if cond is not None and other is not None:
                scope.add(builder.select(cond, result, other))

    def _emit_cast(self, builder: IRBuilder, scope: _Scope, value: Value) -> None:
        if not isinstance(value.type, IntType):
            return
        rng = self.rng
        bits = value.type.bits
        wider = [t for t in _INT_TYPES if t.bits > bits]
        narrower = [t for t in _INT_TYPES if t.bits < bits and t.bits > 1]
        if wider and rng.random() < 0.6:
            target = rng.choice(wider)
            op = builder.zext if rng.random() < 0.5 else builder.sext
            scope.add(op(value, target))
        elif narrower:
            scope.add(builder.trunc(value, rng.choice(narrower)))

    def _emit_float_op(self, builder: IRBuilder, scope: _Scope) -> None:
        rng = self.rng
        style = self._style
        assert style is not None
        ftype = style.float_type
        a = scope.pick(rng, ftype)
        if a is None:
            src = self._int_value(builder, scope, style.int_types[0])
            a = builder.sitofp(src, ftype)
            scope.add(a)
        b = scope.pick(rng, ftype)
        if b is None or rng.random() < 0.4:
            b = ConstantFloat(ftype, round(rng.uniform(0.5, 9.5), 3))
        scope.add(builder.binop(rng.choice(style.float_ops), a, b))

    def _emit_memory(self, builder: IRBuilder, scope: _Scope) -> None:
        rng = self.rng
        style = self._style
        assert style is not None
        arr_ty = style.array_type
        elem: IntType = arr_ty.element  # type: ignore[assignment]
        ptr = scope.pick(rng, PointerType(arr_ty))
        if ptr is None:
            ptr = builder.alloca(arr_ty)
            scope.add(ptr)
        idx = ConstantInt(I64, rng.randint(0, arr_ty.count - 1))
        slot = builder.gep(ptr, [ConstantInt(I64, 0), idx])
        if rng.random() < 0.5:
            builder.store(self._int_value(builder, scope, elem), slot)
        else:
            scope.add(builder.load(slot))

    def _emit_call(self, builder: IRBuilder, scope: _Scope) -> None:
        rng = self.rng
        callee = rng.choice(self._callables)
        args: List[Value] = []
        for param in callee.ftype.params:
            if isinstance(param, IntType):
                args.append(self._int_value(builder, scope, param))
            elif param.is_float:
                value = scope.pick(rng, param)
                args.append(
                    value if value is not None else ConstantFloat(param, 1.5)  # type: ignore[arg-type]
                )
            else:
                return  # pointer params: skip the call
        result = builder.call(callee, args)
        scope.add(result)

    # -- control flow ---------------------------------------------------------------
    def _emit_branch(
        self, builder: IRBuilder, scope: _Scope, budget: int, depth: int
    ) -> int:
        rng = self.rng
        style = self._style
        assert style is not None
        func = builder.function
        cond = scope.pick(rng, I1)
        if cond is None:
            type_ = style.int_types[0]
            cond = builder.icmp(
                rng.choice(style.preds),
                self._int_value(builder, scope, type_),
                ConstantInt(type_, rng.randint(0, 20)),
            )
        then_bb = BasicBlock(func.next_name("then"), func)
        else_bb = BasicBlock(func.next_name("else"), func)
        join_bb = BasicBlock(func.next_name("join"), func)
        builder.cond_br(cond, then_bb, else_bb)

        half = max(1, budget // 2)
        base = scope.snapshot()
        merge_ty = style.int_types[0]

        builder.position_at_end(then_bb)
        then_scope = base.snapshot()
        self._emit_region(builder, then_scope, half, depth)
        then_val = then_scope.pick(rng, merge_ty)
        then_exit = builder.block
        builder.br(join_bb)

        builder.position_at_end(else_bb)
        else_scope = base.snapshot()
        self._emit_region(builder, else_scope, half, depth)
        else_val = else_scope.pick(rng, merge_ty)
        else_exit = builder.block
        builder.br(join_bb)

        builder.position_at_end(join_bb)
        scope.by_type = base.by_type
        if then_val is not None and else_val is not None:
            phi = builder.phi(merge_ty)
            phi.add_incoming(then_val, then_exit)
            phi.add_incoming(else_val, else_exit)
            scope.add(phi)
        return budget

    def _emit_loop(self, builder: IRBuilder, scope: _Scope, budget: int) -> int:
        rng = self.rng
        style = self._style
        assert style is not None
        func = builder.function
        pre = builder.block
        header = BasicBlock(func.next_name("loop"), func)
        body = BasicBlock(func.next_name("body"), func)
        exit_bb = BasicBlock(func.next_name("endloop"), func)
        trip = rng.randint(2, 6)
        acc_ty = style.int_types[0]
        acc_init = self._int_value(builder, scope, acc_ty)
        builder.br(header)

        builder.position_at_end(header)
        iv = builder.phi(I32, "iv")
        acc = builder.phi(acc_ty, "acc")
        iv.add_incoming(ConstantInt(I32, 0), pre)
        acc.add_incoming(acc_init, pre)
        cond = builder.icmp(ICmpPred.SLT, iv, ConstantInt(I32, trip))
        builder.cond_br(cond, body, exit_bb)

        builder.position_at_end(body)
        body_scope = scope.snapshot()
        body_scope.add(iv)
        body_scope.add(acc)
        step = builder.binop(
            rng.choice(style.int_ops),
            acc,
            self._int_value(builder, body_scope, acc_ty),
        )
        # No calls inside loop bodies: nested loop+call chains would make
        # the dynamic instruction count explode multiplicatively, and the
        # interpreter is our runtime-measurement substrate.
        for _ in range(max(0, budget - 4)):
            self._emit_straightline(builder, body_scope, allow_calls=False)
        iv_next = builder.add(iv, ConstantInt(I32, 1), "iv.next")
        body_exit = builder.block
        builder.br(header)
        iv.add_incoming(iv_next, body_exit)
        acc.add_incoming(step, body_exit)

        builder.position_at_end(exit_bb)
        scope.add(acc)
        scope.add(iv)
        return budget

    # -- epilogue -------------------------------------------------------------------
    def _emit_return(self, builder: IRBuilder, scope: _Scope, ret: Type) -> None:
        rng = self.rng
        if ret.is_void:
            builder.ret()
            return
        value = scope.pick(rng, ret)
        if value is None:
            if isinstance(ret, IntType):
                value = ConstantInt(ret, rng.randint(0, 99))
            else:
                value = ConstantFloat(ret, 0.0)  # type: ignore[arg-type]
        builder.ret(value)

    # -- helpers ---------------------------------------------------------------------
    @staticmethod
    def _called_in(func: Function) -> List[Function]:
        out = []
        for inst in func.instructions():
            if inst.opcode in (Opcode.CALL, Opcode.INVOKE):
                callee = inst.operand(0)
                if isinstance(callee, Function):
                    out.append(callee)
        return out
