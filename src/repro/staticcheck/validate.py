"""Translation validation for merges: the ``proved | refuted | unknown`` gate.

:func:`validate_merge` is the per-merge correctness verdict the merge
pipeline, ``repro lint`` and the fuzz campaign all share.  It takes a
fresh (pre-commit) :class:`~repro.merge.merger.MergeResult` — both
original bodies still intact — and checks *each* specialization of the
merged function against its original with the product-CFG walker
(:class:`~repro.staticcheck.simrel.ProductWalker`):

* ``proved`` — a simulation relation was established for **both**
  ``funcId`` values: calling ``merged`` the way the thunks do is
  behaviourally indistinguishable from calling the original.  The
  checker is one-sided-sound: it never returns ``proved`` for a merge
  the differential oracle could fail.
* ``refuted`` — a definitive miscompile-class defect was found: a
  ``demote.*`` reload no store reaches on the specialized path (the
  §III-E contract violation) or a constant-vs-constant return
  divergence.  Refutation diagnostics name the product-node pair.
* ``unknown`` — the walker ran out of budget or met a shape it cannot
  relate.  The caller's escalation policy decides what happens next; the
  pipeline's combined gate runs the expensive differential oracle only
  on this residue (see ``PassConfig.validate``).

The module also registers the ``validate`` checker: for already-merged
functions found in a module (where the originals have been reduced to
thunks, so no product walk is possible) it runs the *specialized
self-check* — folding each ``funcId`` constant through the merged CFG
and reporting demote reloads with no reaching store on that
specialization only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..diagnostics import Diagnostic, Severity
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Branch, Load
from ..ir.module import Module
from ..ir.types import I1
from .checkers import checker
from .dataflow import ReachingStores, solve
from .simrel import VALIDATE, Caps, ProductWalker, SideReport, _demote_prefix

__all__ = [
    "PROVED",
    "REFUTED",
    "UNKNOWN",
    "ValidationReport",
    "validate_merge",
    "specialized_demote_diagnostics",
    "MERGED_PREFIX",
]

PROVED = "proved"
REFUTED = "refuted"
UNKNOWN = "unknown"

#: Name prefix the merger stamps on merged functions.
MERGED_PREFIX = "merged."

_RANK = {PROVED: 0, UNKNOWN: 1, REFUTED: 2}


@dataclass
class ValidationReport:
    """Combined verdict over both specializations of one merge."""

    verdict: str = UNKNOWN
    sides: Dict[int, SideReport] = field(default_factory=dict)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for fid in sorted(self.sides):
            diags.extend(self.sides[fid].diagnostics)
        return diags

    @property
    def tasks(self) -> int:
        return sum(s.tasks for s in self.sides.values())

    @property
    def steps(self) -> int:
        return sum(s.steps for s in self.sides.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "verdict": self.verdict,
            "sides": {
                str(fid): {
                    "verdict": side.verdict,
                    "tasks": side.tasks,
                    "steps": side.steps,
                    "memo_hits": side.memo_hits,
                }
                for fid, side in sorted(self.sides.items())
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def validate_merge(result, caps: Optional[Caps] = None) -> ValidationReport:
    """Prove/refute that *result*'s merged function refines both originals.

    Must run **pre-commit**: the product walk needs the original bodies,
    which ``commit_merge`` replaces with thunks.  A ``refuted`` side
    short-circuits (the merge is dead either way); ``unknown`` on one
    side still walks the other so the report carries both verdicts.
    """
    report = ValidationReport()
    worst = PROVED
    prev: Optional[ProductWalker] = None
    for original, param_map, fid in (
        (result.function_a, result.param_map_a, 0),
        (result.function_b, result.param_map_b, 1),
    ):
        walker = ProductWalker(original, result.merged, fid, param_map, caps)
        if prev is not None:
            walker.adopt_caches(prev)
        prev = walker
        side = walker.run()
        report.sides[fid] = side
        if _RANK[side.verdict] > _RANK[worst]:
            worst = side.verdict
        if side.verdict == REFUTED:
            break
    report.verdict = worst
    return report


# ---------------------------------------------------------------------------
# Specialized self-check — what the registered checker can still prove once
# the originals are gone (post-commit modules seen by ``repro lint``).
# ---------------------------------------------------------------------------


def _specialized_reachable(func: Function, fid: int) -> List[BasicBlock]:
    """Blocks reachable from the entry once branches on the fid fold."""
    if not func.args:
        return list(func.blocks)
    discriminator = func.args[0]
    seen: Set[int] = set()
    order: List[BasicBlock] = []
    stack = [func.entry]
    while stack:
        block = stack.pop()
        if id(block) in seen:
            continue
        seen.add(id(block))
        order.append(block)
        term = block.terminator
        if (
            isinstance(term, Branch)
            and term.is_conditional
            and term.condition is discriminator
        ):
            succs = [term.successors()[0 if fid else 1]]
        else:
            succs = term.successors() if term is not None else []
        stack.extend(reversed(succs))
    return order


def specialized_demote_diagnostics(func: Function) -> List[Diagnostic]:
    """Demote reloads with no reaching store, per ``funcId`` specialization.

    Sharper than the merge-safety linter's whole-CFG scan: a reload is
    only reported if it is reachable under some concrete ``funcId``, so
    spills parked in the other specialization's private blocks do not
    fire.  Used by the ``validate`` checker on committed modules, where
    the full product walk is impossible.
    """
    diags: List[Diagnostic] = []
    problem = ReachingStores(func)
    if not problem.slots:
        return diags
    result = solve(problem, func)
    prefix = _demote_prefix()
    flagged: Set[int] = set()
    for fid in (0, 1):
        for block in _specialized_reachable(func, fid):
            for inst in block.instructions:
                if not isinstance(inst, Load) or id(inst) in flagged:
                    continue
                slot = problem.slot_of_load(inst)
                if slot is None or not (slot.name or "").startswith(prefix):
                    continue
                reaching = problem.reaching_stores(result, inst)
                if reaching:
                    continue
                flagged.add(id(inst))
                diags.append(
                    Diagnostic(
                        checker=VALIDATE,
                        severity=Severity.ERROR,
                        message=(
                            f"[funcId={fid}] reload %{inst.name} of SSA-repair "
                            f"slot %{slot.name} executes before any store to it "
                            "(§III-E demote contract)"
                        ),
                        function=func.name,
                        block=block.name,
                        instruction=inst.name or None,
                        code=f"{VALIDATE}/demote-reload",
                    )
                )
    return diags


def is_merged_function(func: Function) -> bool:
    """Does *func* look like a merger product (``merged.*`` with an i1 id)?"""
    return (
        func.name.startswith(MERGED_PREFIX)
        and bool(func.args)
        and func.args[0].type is I1
    )


@checker(
    VALIDATE,
    "module",
    "translation validation of merged functions (specialized demote contract)",
)
def _check_validate(module: Module) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for func in module.defined_functions():
        if is_merged_function(func):
            diags.extend(specialized_demote_diagnostics(func))
    return diags
