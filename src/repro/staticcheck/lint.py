"""Linting entry points: whole modules, single functions, and merge results.

Three layers:

* :func:`lint_function` / :func:`lint_module` — run the registered checkers
  (this is what ``repro lint`` calls).
* :func:`lint_merged_function` — the **merge-safety linter**: the generic
  checkers plus the escalation rule that turns a "no store reaches this
  load" warning into an ERROR when the slot is one SSA repair introduced
  (``demote.*``).  A correct repair always places the store so that it
  reaches every reload (the original def dominated every use, so a
  def→use path exists in the merged CFG); a reload with an *empty*
  may-reaching-store set is exactly how both §III-E placement bugs look
  statically — no execution needed.
* :func:`lint_commit` — structural validation of an applied commit:
  surviving originals must be well-formed thunks into the merged function
  (fid constant at slot 0, arguments routed per the param map), deleted
  originals must leave no dangling references.

:func:`lint_merge` combines the last two for the pass's ``--static-check``
gate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..diagnostics import Diagnostic, Severity
from ..ir.function import Function
from ..ir.instructions import Call, Phi, Ret
from ..ir.module import Module
from ..ir.types import I1
from ..ir.values import ConstantInt, UndefValue
from .checkers import (
    run_function_checks,
    run_module_checks,
    uninitialized_loads,
)

__all__ = [
    "lint_function",
    "lint_module",
    "demote_reload_diagnostics",
    "lint_merged_function",
    "lint_commit",
    "lint_merge",
]

MERGE_SAFETY = "merge-safety"


def lint_function(
    func: Function, checkers: Optional[Sequence[str]] = None
) -> List[Diagnostic]:
    """Run the function-scope checkers on one function."""
    return run_function_checks(func, checkers)


def lint_module(
    module: Module, checkers: Optional[Sequence[str]] = None
) -> List[Diagnostic]:
    """Run all (or the selected) checkers over a module."""
    return run_module_checks(module, checkers)


def _demote_prefix() -> str:
    # Lazy: repro.merge imports repro.staticcheck for the pass gate, so the
    # top level here must not import repro.merge back.
    from ..merge.ssa_repair import DEMOTE_PREFIX

    return DEMOTE_PREFIX


def demote_reload_diagnostics(func: Function) -> List[Diagnostic]:
    """§III-E placement-bug shapes in one function, as error diagnostics.

    A load from a demotion slot (``demote.*``) that no store may reach is
    exactly how both legacy placement bugs look statically: bug 1 leaves a
    same-block reload *before* its store (the reload feeds an ordinary
    instruction), bug 2 inserts a reload in an invoke's own block that
    feeds a phi.  The message distinguishes the two, so triage can key on
    it.  Works on any function — a fresh :class:`MergeResult` or a merged
    function already committed into a module (the fuzz campaign's
    post-hoc scan).
    """
    diags: List[Diagnostic] = []
    prefix = _demote_prefix()
    _, loads = uninitialized_loads(func)
    for load, slot in loads:
        if not (slot.name or "").startswith(prefix):
            continue
        feeds_phi = any(isinstance(user, Phi) for user, _ in load.uses())
        if feeds_phi:
            message = (
                f"reload of demotion slot %{slot.name} feeds a phi but no "
                "store reaches it (legacy phi/invoke placement bug)"
            )
            code = f"{MERGE_SAFETY}/phi-reload"
        else:
            message = (
                f"reload of demotion slot %{slot.name} executes before any "
                "store to it (store placed after the use)"
            )
            code = f"{MERGE_SAFETY}/stale-reload"
        diags.append(
            Diagnostic(
                checker=MERGE_SAFETY,
                severity=Severity.ERROR,
                message=message,
                function=func.name,
                block=load.parent.name if load.parent is not None else None,
                instruction=load.name or None,
                code=code,
            )
        )
    return diags


def lint_merged_function(result) -> List[Diagnostic]:
    """Statically validate the merged function of a :class:`MergeResult`.

    Runs the generic function checkers, then escalates uninitialized reads
    of demotion slots to errors (see module docstring).
    """
    merged: Function = result.merged
    diags = run_function_checks(merged)
    diags.extend(demote_reload_diagnostics(merged))
    return diags


def _thunk_diag(func: Function, message: str) -> Diagnostic:
    return Diagnostic(
        checker=MERGE_SAFETY,
        severity=Severity.ERROR,
        message=message,
        function=func.name,
        code=f"{MERGE_SAFETY}/bad-thunk",
    )


def _check_thunk(
    func: Function, merged: Function, param_map: List[int], fid: int
) -> List[Diagnostic]:
    """Validate the thunk shape ``commit_merge`` is supposed to produce."""
    diags: List[Diagnostic] = []
    if len(func.blocks) != 1:
        diags.append(
            _thunk_diag(func, f"thunk has {len(func.blocks)} blocks, expected 1")
        )
        return diags
    insts = func.entry.instructions
    if len(insts) != 2 or not isinstance(insts[0], Call) or not isinstance(insts[1], Ret):
        diags.append(_thunk_diag(func, "thunk body is not a call followed by ret"))
        return diags
    call, ret = insts[0], insts[1]
    if call.callee is not merged:
        diags.append(
            _thunk_diag(func, "thunk does not call the merged function")
        )
        return diags
    args = call.args
    fid_arg = args[0] if args else None
    if (
        not isinstance(fid_arg, ConstantInt)
        or fid_arg.type is not I1
        or fid_arg.value != fid
    ):
        diags.append(
            _thunk_diag(
                func, f"thunk function-id argument is not the i1 constant {fid}"
            )
        )
    routed = {0}
    for arg, slot in zip(func.args, param_map):
        if slot >= len(args) or args[slot] is not arg:
            diags.append(
                _thunk_diag(
                    func,
                    f"thunk does not route parameter %{arg.name} to merged "
                    f"argument slot {slot}",
                )
            )
        routed.add(slot)
    for i, value in enumerate(args):
        if i not in routed and not isinstance(value, (ConstantInt, UndefValue)):
            diags.append(
                _thunk_diag(
                    func, f"thunk passes a live value in unrouted slot {i}"
                )
            )
    if func.return_type.is_void:
        if ret.value is not None:
            diags.append(_thunk_diag(func, "void thunk returns a value"))
    elif ret.value is not call:
        diags.append(_thunk_diag(func, "thunk does not return the call result"))
    return diags


def lint_commit(result, module: Module) -> List[Diagnostic]:
    """Validate an *applied* commit: thunks, deletions, call-site rewrites."""
    diags: List[Diagnostic] = []
    merged: Function = result.merged
    for func, param_map, fid in (
        (result.function_a, result.param_map_a, 0),
        (result.function_b, result.param_map_b, 1),
    ):
        if module.get_function(func.name) is func:
            if func.is_declaration:
                continue  # declarations are left alone
            diags.extend(_check_thunk(func, merged, param_map, fid))
            # The thunk's own self-call is legitimate; any *other* caller
            # should have been rewritten to the merged function.
            for site in func.callers():
                if site.function is not func:
                    diags.append(
                        _thunk_diag(
                            func,
                            f"call site in @{site.function.name if site.function else '?'} "
                            "still targets the original function",
                        )
                    )
        else:
            if func.num_uses != 0:
                diags.append(
                    _thunk_diag(
                        func,
                        "deleted original function still has "
                        f"{func.num_uses} dangling references",
                    )
                )
    return diags


def lint_merge(result, module: Module, committed: bool = False) -> List[Diagnostic]:
    """Full static gate for one merge attempt.

    Pre-commit (``committed=False``): merged-function safety only.  After
    ``commit_merge`` has run (``committed=True``): also the commit's
    structural effects on the module.
    """
    diags = lint_merged_function(result)
    if committed:
        diags.extend(lint_commit(result, module))
    return diags
