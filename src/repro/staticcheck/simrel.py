"""Product-CFG simulation-relation checker.

:class:`ProductWalker` explores the product of one *original* function
and the *merged* function specialized to one ``funcId`` constant, and
tries to establish a simulation relation between the two by symbolic
evaluation (:mod:`repro.staticcheck.symeval`).

The exploration is an abstract lockstep execution.  A **product node**
is a pair of block cut-points; from each node both sides run forward
through straight-line code — following unconditional branches, folding
merged-side branches and selects whose condition is the ``funcId``
constant — until each reaches its next *observable event*: a store or
load through unmodelled memory, a call, or a terminator (conditional
branch, switch, invoke, return, unreachable).  The two event streams
must pair one-to-one with structurally equal terms; a paired terminator
spawns successor product nodes edge-by-edge.  States are memoized per
``(node, state)`` pair, and the whole search is parameter-bounded — any
budget overrun degrades the verdict to ``unknown``, never to a wrong
``proved``.

Three mechanisms make the common merge shapes go through:

* **phi abstraction** — at every block crossing, each original phi is
  rebound to a fresh opaque leaf after its concrete incoming term is
  recorded; a merged phi whose incoming term matches is bound to the
  same leaf.  This is what lets loops reach a fixpoint (the loop body
  re-walks with identical abstract state) while still proving the
  merged phi tracks the original one.
* **slot state** — non-escaping allocas (``tracked_slots``) are modelled
  as a per-side store map; a load with no reaching store
  (:class:`~repro.staticcheck.dataflow.ReachingStores`) reads the
  interpreter's deterministic zero.  A merged-side ``demote.*`` slot —
  an SSA-repair spill with no original counterpart — whose reload has
  *no* reaching store is the §III-E contract violation and is the one
  shape the checker reports as definitively ``refuted``.
* **leaf freshness** — whenever an original instruction that produces an
  opaque leaf (phi, call, invoke, load, escaping alloca) re-executes,
  every state entry mentioning that leaf is purged first.  Leaves always
  denote the *latest* value, so stale claims can never survive a loop
  iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..diagnostics import Diagnostic, Severity
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    Alloca,
    Branch,
    Call,
    Instruction,
    Invoke,
    Load,
    Opcode,
    Phi,
    Ret,
    Store,
    Switch,
    Unreachable,
)
from ..ir.types import VOID
from ..ir.values import Argument, Constant, Value
from .dataflow import ReachingStores, solve, tracked_slots
from .symeval import (
    Serials,
    Term,
    arg_term,
    const_int_value,
    const_term,
    fn_term,
    is_pure,
    leaf_term,
    pure_term,
    term_mentions,
    zero_term,
)

__all__ = ["Caps", "SideReport", "ProductWalker", "VALIDATE"]

#: Checker name stamped on every diagnostic the walker emits.
VALIDATE = "validate"

# Dispatch codes for the classified instruction stream (:meth:`ProductWalker
# .block_ops`).  ``advance`` is the single hottest loop in the validator;
# classifying each block once per walker replaces its per-step isinstance
# chain with an integer compare and lets the payload slot pre-resolve
# whatever the isinstance arm would have recomputed every visit (tracked
# alloca slots, branch targets, switch tables).
(
    _OP_PURE,
    _OP_PHI,
    _OP_ALLOCA_TRACKED,
    _OP_ALLOCA,
    _OP_LOAD_TRACKED,
    _OP_LOAD,
    _OP_STORE_TRACKED,
    _OP_STORE,
    _OP_CALL,
    _OP_INVOKE,
    _OP_BR_UNCOND,
    _OP_BR_COND,
    _OP_SWITCH,
    _OP_RET,
    _OP_UNREACH,
    _OP_OTHER,
) = range(16)


def _classify_block(block: BasicBlock, tracked: Dict) -> List[Tuple]:
    """One ``(code, inst, payload)`` triple per instruction of *block*."""
    ops: List[Tuple] = []
    for inst in block.instructions:
        if isinstance(inst, Phi):
            ops.append((_OP_PHI, inst, None))
        elif is_pure(inst):
            ops.append((_OP_PURE, inst, None))
        elif isinstance(inst, Alloca):
            code = _OP_ALLOCA_TRACKED if id(inst) in tracked else _OP_ALLOCA
            ops.append((code, inst, None))
        elif isinstance(inst, Load):
            pointer = inst.pointer
            if isinstance(pointer, Alloca) and id(pointer) in tracked:
                ops.append((_OP_LOAD_TRACKED, inst, pointer))
            else:
                ops.append((_OP_LOAD, inst, None))
        elif isinstance(inst, Store):
            pointer = inst.pointer
            if isinstance(pointer, Alloca) and id(pointer) in tracked:
                ops.append((_OP_STORE_TRACKED, inst, pointer))
            else:
                ops.append((_OP_STORE, inst, None))
        elif isinstance(inst, Call):
            ops.append((_OP_CALL, inst, None))
        elif isinstance(inst, Invoke):
            ops.append((_OP_INVOKE, inst, None))
        elif isinstance(inst, Branch):
            succs = inst.successors()
            if inst.is_conditional:
                ops.append((_OP_BR_COND, inst, (succs[0], succs[1])))
            else:
                ops.append((_OP_BR_UNCOND, inst, succs[0]))
        elif isinstance(inst, Switch):
            table = [(const.value, target) for const, target in inst.cases]
            ops.append((_OP_SWITCH, inst, (inst.default, table)))
        elif isinstance(inst, Ret):
            ops.append((_OP_RET, inst, None))
        elif isinstance(inst, Unreachable):
            ops.append((_OP_UNREACH, inst, None))
        else:
            ops.append((_OP_OTHER, inst, None))
    return ops


def _demote_prefix() -> str:
    # Lazy: repro.merge imports repro.staticcheck for the pass gate, so the
    # top level here must not import repro.merge back (same rule as lint.py).
    from ..merge.ssa_repair import DEMOTE_PREFIX

    return DEMOTE_PREFIX


def _thunk_target(func: Function):
    from ..merge.thunks import thunk_target

    return thunk_target(func)


@dataclass(frozen=True)
class Caps:
    """Search budgets; exceeding any of them yields ``unknown``."""

    max_tasks: int = 512
    max_steps: int = 100_000
    max_unfold: int = 4


@dataclass
class SideReport:
    """Outcome of one specialized side (one ``funcId`` vs one original)."""

    verdict: str  # proved | refuted | unknown
    diagnostics: List[Diagnostic] = field(default_factory=list)
    tasks: int = 0
    steps: int = 0
    memo_hits: int = 0


class _Refuted(Exception):
    def __init__(self, diag: Diagnostic) -> None:
        super().__init__(diag.message)
        self.diag = diag


class _Unknown(Exception):
    def __init__(self, diag: Diagnostic) -> None:
        super().__init__(diag.message)
        self.diag = diag


def _eq(a: Optional[Term], b: Optional[Term]) -> bool:
    return a is not None and b is not None and a == b


@dataclass
class _Resolution:
    """One original phi resolved at a block crossing during one walk.

    ``term`` is the phi's concrete incoming expression read from the
    *pre-crossing* state.  When it mentions a leaf that the same crossing
    rebinds (a loop-carried dependency between phis), the term denotes
    the previous generation of that leaf; it is only safe to match it
    against a merged incoming computed at the *same simultaneous*
    crossing, so ``_pair_phis`` invalidates it afterwards (``term=None``).
    """

    term: Optional[Term]
    leaf: Term
    name: str
    cross_gen: bool = False


class _Runner:
    """One side of the lockstep walk: straight-line abstract execution."""

    def __init__(
        self,
        walker: "ProductWalker",
        func: Function,
        block: BasicBlock,
        env: Dict[int, Term],
        sigma: Dict[int, Term],
        is_merged: bool,
    ) -> None:
        self.walker = walker
        self.func = func
        self.block = block
        self.env = env
        self.sigma = sigma
        self.is_merged = is_merged
        self.index = 0
        self.tracked = walker.merged_tracked if is_merged else walker.orig_tracked

    # -- value lookup -------------------------------------------------------------
    def lookup(self, value: Value) -> Optional[Term]:
        # Ordered by operand frequency: instruction results dominate.
        if isinstance(value, Instruction):
            return self.env.get(id(value))
        if isinstance(value, Constant):
            cache = self.walker.const_cache
            term = cache.get(id(value))
            if term is None:
                term = const_term(value)
                cache[id(value)] = term
            return term
        if isinstance(value, Argument):
            if self.is_merged:
                return self.env.get(id(value))
            return arg_term(value.index)
        if isinstance(value, Function):
            return fn_term(value)
        return None

    # -- phi resolution -----------------------------------------------------------
    def phi_incoming(
        self, pred: Optional[BasicBlock]
    ) -> List[Tuple[Phi, Optional[Term]]]:
        """Incoming terms of this block's phis, read from pre-crossing state.

        Pure except for positioning ``index`` past the phi group.  Kept
        separate from :meth:`apply_phis` so a product-node crossing can
        read *both* sides before the original side's rebinds purge the
        shared state (the merged incoming must see the same generation of
        every leaf the original incoming saw).
        """
        phis, self.index = self.walker.phi_prefix(self.block)
        if not phis:
            return []
        if pred is None:
            raise _Unknown(self.walker.diag("phi in an entry block", code="unsupported"))
        # Parallel semantics: all incoming terms read the pre-crossing state.
        return [
            (
                phi,
                None
                if phi.incoming_for(pred) is None
                else self.lookup(phi.incoming_for(pred)),
            )
            for phi in phis
        ]

    def apply_phis(
        self,
        incoming: List[Tuple[Phi, Optional[Term]]],
        rebound: frozenset = frozenset(),
    ) -> frozenset:
        """Rebind (original) or match (merged) a crossing's phis.

        Original side: each phi is rebound to its opaque leaf — purging
        every state entry and resolution that mentions the old
        generation — and its concrete incoming term is recorded for the
        merged side to match.  Returns the set of leaves rebound here.

        Merged side: each phi whose incoming term equals a recorded
        resolution (name-preferred among equal terms) binds to that
        resolution's leaf; an unmatched term survives concretely unless
        it mentions a leaf in *rebound* — then it denotes the previous
        generation and must be dropped.
        """
        if not self.is_merged:
            newly = frozenset(
                leaf_term("phi", self.walker.orig_serials.of(phi))
                for phi, _term in incoming
            )
            # One batched purge for the whole crossing: incoming terms were
            # already read pre-crossing, and a resolution whose term
            # mentions a rebound leaf survives as ``cross_gen`` (matchable
            # only at this simultaneous crossing) instead of being purged.
            if incoming:
                self.walker.purge(newly)
            for phi, term in incoming:
                leaf = leaf_term("phi", self.walker.orig_serials.of(phi))
                self.env[id(phi)] = leaf
                self.walker.resolutions.append(
                    _Resolution(term, leaf, phi.name, term_mentions(term, newly)
                                if term is not None else False)
                )
            return newly
        for phi, term in incoming:
            bound = None
            if term is not None:
                # Among term-equal resolutions (any of which is a sound
                # binding — equal incoming terms mean equal values at this
                # crossing), prefer the name-compatible one: the merger
                # suffixes side-B registers (``%i`` -> ``%i.1``), so a
                # merged phi whose base name matches the original's is
                # almost always its counterpart.  A wrong pick here only
                # costs precision (mismatch -> unknown), never soundness.
                match = None
                for res in self.walker.resolutions:
                    if res.term is None or res.term != term:
                        continue
                    if res.name and (
                        phi.name == res.name or phi.name.startswith(res.name + ".")
                    ):
                        match = res
                        break
                    if match is None:
                        match = res
                if match is not None:
                    bound = match.leaf
                elif term_mentions(term, rebound):
                    bound = None  # stale: refers to the purged generation
                else:
                    bound = term
            if bound is None:
                self.env.pop(id(phi), None)
            else:
                self.env[id(phi)] = bound
        return frozenset()

    def resolve_phis(self, pred: Optional[BasicBlock]) -> None:
        """Single-side crossing (glue): read and apply in one step.

        A cross-generation resolution recorded here has no simultaneous
        merged crossing to match it, so it is invalidated immediately.
        """
        self.apply_phis(self.phi_incoming(pred))
        if not self.is_merged:
            self.walker.resolutions = [
                r for r in self.walker.resolutions if not r.cross_gen
            ]

    # -- straight-line execution ----------------------------------------------------
    def _cross(self, target: BasicBlock) -> None:
        pred = self.block
        self.block = target
        self.resolve_phis(pred)

    def _glue(self, inst: Instruction, target: BasicBlock) -> Optional[Tuple]:
        """Take an unconditional (or folded) edge; event iff *target* has phis.

        A phi crossing rebinds original leaves and purges shared state, so
        it must happen *simultaneously* on both sides — it is surfaced as
        a ``cross`` event that cuts a product node instead of being glued
        through here mid-segment.  Phi-less targets rebind nothing and
        stay glue.
        """
        if self.walker.phi_prefix(target)[0]:
            return ("cross", inst, target)
        self._cross(target)
        return None

    def _tracked_load(self, inst: Load, slot: Alloca) -> None:
        if id(slot) in self.sigma:
            self.env[id(inst)] = self.sigma[id(slot)]
            return
        reach, reach_result = self.walker.reaching(self.is_merged)
        reaching = reach.reaching_stores(reach_result, inst)
        if not reaching:
            if self.is_merged and slot.name.startswith(_demote_prefix()):
                raise _Refuted(
                    self.walker.diag(
                        f"reload %{inst.name} of SSA-repair slot %{slot.name} "
                        "executes before any store to it (§III-E demote contract)",
                        code="demote-reload",
                        instruction=inst.name,
                    )
                )
            # No store ever reaches: the interpreter reads a deterministic zero.
            self.env[id(inst)] = zero_term(inst.type)
        else:
            self.env.pop(id(inst), None)

    def _call_event(self, kind: str, inst: Instruction) -> Tuple:
        callee = inst.callee  # type: ignore[attr-defined]
        args: List[Optional[Term]] = [self.lookup(a) for a in inst.args]  # type: ignore[attr-defined]
        callee, args = self.walker.unfold(callee, args)
        return (kind, inst, self.lookup(callee), tuple(args))

    def advance(self) -> Tuple:
        """Run to the next observable event and return it (un-consumed)."""
        walker = self.walker
        report = walker.report
        max_steps = walker.caps.max_steps
        block = self.block
        ops = walker.block_ops(block, self.tracked)
        while True:
            if self.block is not block:  # _glue crossed an edge
                block = self.block
                ops = walker.block_ops(block, self.tracked)
            report.steps += 1
            if report.steps > max_steps:
                raise _Unknown(walker.diag("step budget exhausted", code="budget"))
            if self.index >= len(ops):
                raise _Unknown(
                    walker.diag(
                        f"block %{block.name} is not terminated", code="unsupported"
                    )
                )
            code, inst, payload = ops[self.index]
            self.index += 1
            if code == _OP_PURE:
                term = pure_term(inst, self.lookup)
                if term is None:
                    self.env.pop(id(inst), None)
                else:
                    self.env[id(inst)] = term
                continue
            if code == _OP_BR_UNCOND:
                event = self._glue(inst, payload)
                if event is None:
                    continue
                return event
            if code == _OP_BR_COND:
                cond = self.lookup(inst.condition)
                taken = None if cond is None else const_int_value(cond)
                if taken is not None:
                    event = self._glue(inst, payload[0 if taken else 1])
                    if event is None:
                        continue
                    return event
                return ("br", inst, cond)
            if code == _OP_LOAD_TRACKED:
                self._tracked_load(inst, payload)
                continue
            if code == _OP_STORE_TRACKED:
                value = self.lookup(inst.value)
                if value is None:
                    self.sigma.pop(id(payload), None)
                else:
                    self.sigma[id(payload)] = value
                continue
            if code == _OP_CALL:
                return self._call_event("call", inst)
            if code == _OP_RET:
                value = inst.value
                return ("ret", inst, None if value is None else self.lookup(value))
            if code == _OP_ALLOCA_TRACKED:
                self.sigma.pop(id(inst), None)  # fresh slot: back to uninit
                continue
            if code == _OP_ALLOCA:
                return ("alloca", inst)
            if code == _OP_LOAD:
                return ("load", inst, self.lookup(inst.pointer))
            if code == _OP_STORE:
                return ("store", inst, self.lookup(inst.pointer), self.lookup(inst.value))
            if code == _OP_INVOKE:
                return self._call_event("invoke", inst)
            if code == _OP_SWITCH:
                value = self.lookup(inst.value)
                chosen = None if value is None else const_int_value(value)
                if chosen is not None:
                    default, table = payload
                    target = default
                    for case_value, case_block in table:
                        if case_value == chosen:
                            target = case_block
                            break
                    event = self._glue(inst, target)
                    if event is None:
                        continue
                    return event
                return ("switch", inst, value)
            if code == _OP_UNREACH:
                return ("unreach", inst)
            if code == _OP_PHI:
                raise _Unknown(walker.diag("phi after block head", code="unsupported"))
            raise _Unknown(
                walker.diag(f"unmodelled opcode {inst.opcode.name}", code="unsupported")
            )


class ProductWalker:
    """Check one specialized side: ``merged(fid, ...)`` refines ``original``."""

    def __init__(
        self,
        original: Function,
        merged: Function,
        fid: int,
        param_map: List[int],
        caps: Optional[Caps] = None,
    ) -> None:
        self.original = original
        self.merged = merged
        self.fid = fid
        self.param_map = param_map
        self.caps = caps or Caps()
        self.orig_serials = Serials(original)
        self.orig_tracked = tracked_slots(original)
        self.merged_tracked = tracked_slots(merged)
        # Reaching-stores is only consulted on a σ-miss (a tracked load
        # whose slot has no symbolic value in this segment), which most
        # walks never hit — solve lazily, once per side.
        self._reach: Dict[bool, Tuple[ReachingStores, object]] = {}
        # Per-block phi prefix, scanned once: (phis, first non-phi index).
        self._phi_cache: Dict[int, Tuple[List[Phi], int]] = {}
        # Per-block classified instruction stream (``advance``'s dispatch).
        self._ops_cache: Dict[int, List[Tuple]] = {}
        # Per-function block-escaping value ids (snapshot filter).
        self._keep_cache: Dict[int, set] = {}
        # Constant -> term, shared by both runners (same Constant objects
        # are looked up on every pass over a block).
        self.const_cache: Dict[int, Term] = {}
        # Walk-scoped mutable context (reset per task).
        self.omega: Dict[int, Term] = {}
        self.phi_env: Dict[int, Term] = {}
        self.sig_o: Dict[int, Term] = {}
        self.sig_m: Dict[int, Term] = {}
        self.resolutions: List[_Resolution] = []
        self.o_block: BasicBlock = original.entry
        self.m_block: BasicBlock = merged.entry
        self.report = SideReport(verdict="unknown")

    # -- shared helpers -----------------------------------------------------------
    def diag(
        self,
        message: str,
        code: str,
        severity: Severity = Severity.ERROR,
        instruction: Optional[str] = None,
    ) -> Diagnostic:
        """A diagnostic naming the current product-node pair."""
        return Diagnostic(
            checker=VALIDATE,
            severity=severity,
            message=(
                f"product node (%{self.o_block.name}, %{self.m_block.name}) "
                f"[funcId={self.fid}]: {message}"
            ),
            function=self.merged.name,
            block=self.m_block.name,
            instruction=instruction,
            code=f"{VALIDATE}/{code}",
        )

    def adopt_caches(self, other: "ProductWalker") -> None:
        """Share the structural caches of *other* (same merged function).

        ``validate_merge`` walks the merged function once per funcId; the
        second walker would otherwise re-classify and re-scan every
        merged block.  All shared caches are keyed by object identity
        (block / constant / function ids), so entries for the *other*
        original can never collide with this side's.
        """
        self._ops_cache = other._ops_cache
        self._phi_cache = other._phi_cache
        self._keep_cache = other._keep_cache
        self.const_cache = other.const_cache
        self.merged_tracked = other.merged_tracked

    def keep_ids(self, is_merged: bool) -> set:
        """Value ids worth carrying across a task boundary (one side).

        A successor task starts at a block head, so the only snapshot
        entries it can ever read are values that *escape* their defining
        block: operands used from another block, arguments, and every phi
        incoming (the child's ``resolve_phis`` reads those from the
        inherited state).  A value used only inside its defining block is
        re-defined there before any use if the block re-executes (SSA
        dominance), so dropping it is sound — and, unlike a liveness
        fixpoint, this set takes one linear pass to build.  Smaller
        snapshots also collide in the memo more often (states differing
        only in block-local temporaries now dedupe).
        """
        func = self.merged if is_merged else self.original
        keep = self._keep_cache.get(id(func))
        if keep is None:
            keep = set()
            for block in func.blocks:
                for inst in block.instructions:
                    if isinstance(inst, Phi):
                        for value, _pred in inst.incoming:
                            keep.add(id(value))
                        continue
                    for op in inst.operands:
                        if isinstance(op, Argument) or (
                            isinstance(op, Instruction) and op.parent is not block
                        ):
                            keep.add(id(op))
            self._keep_cache[id(func)] = keep
        return keep

    def block_ops(self, block: BasicBlock, tracked: Dict) -> List[Tuple]:
        """Cached instruction classification of *block* (see ``_classify_block``).

        Keyed by block identity alone: every block belongs to exactly one
        side's function, so the *tracked* set used on first classification
        is the only one it will ever be asked with.
        """
        ops = self._ops_cache.get(id(block))
        if ops is None:
            ops = _classify_block(block, tracked)
            self._ops_cache[id(block)] = ops
        return ops

    def phi_prefix(self, block: BasicBlock) -> Tuple[List[Phi], int]:
        """Cached ``(block.phis(), block.first_non_phi_index())``."""
        cached = self._phi_cache.get(id(block))
        if cached is None:
            phis = block.phis()
            cached = (phis, len(phis))
            self._phi_cache[id(block)] = cached
        return cached

    def reaching(self, is_merged: bool) -> Tuple[ReachingStores, object]:
        """The (lazily solved) reaching-stores analysis for one side."""
        cached = self._reach.get(is_merged)
        if cached is None:
            func = self.merged if is_merged else self.original
            problem = ReachingStores(func)
            cached = (problem, solve(problem, func))
            self._reach[is_merged] = cached
        return cached

    def purge(self, leaves: frozenset) -> None:
        """Drop every state entry that mentions a leaf in *leaves* (all of
        which are being rebound) — one pass over the state, however many
        phis the crossing rebinds."""
        for state in (self.omega, self.phi_env, self.sig_o, self.sig_m):
            stale = [k for k, t in state.items() if term_mentions(t, leaves)]
            for k in stale:
                del state[k]
        self.resolutions = [
            r
            for r in self.resolutions
            if r.term is None or not term_mentions(r.term, leaves)
        ]

    def unfold(
        self, callee: Value, args: List[Optional[Term]]
    ) -> Tuple[Value, List[Optional[Term]]]:
        """Redirect a call through thunks to the underlying merged function."""
        for _ in range(self.caps.max_unfold):
            if not isinstance(callee, Function):
                return callee, args
            inner = _thunk_target(callee)
            if inner is None or inner.callee is callee:
                return callee, args
            mapped: List[Optional[Term]] = []
            for op in inner.args:
                if isinstance(op, Argument):
                    mapped.append(args[op.index] if op.index < len(args) else None)
                elif isinstance(op, Constant):
                    mapped.append(const_term(op))
                else:
                    return callee, args
            callee, args = inner.callee, mapped
        return callee, args

    def bind_result(self, kind: str, o_inst: Instruction, m_inst: Instruction) -> None:
        """Pair an event's results: both sides now denote one fresh leaf."""
        if o_inst.type is VOID:
            return
        leaf = leaf_term(kind, self.orig_serials.of(o_inst))
        self.purge(frozenset((leaf,)))
        self.omega[id(o_inst)] = leaf
        self.phi_env[id(m_inst)] = leaf

    # -- task plumbing ------------------------------------------------------------
    def _snapshot(self) -> Tuple:
        # Sibling tasks spawned from one product node share the snapshot —
        # each copies privately at walk start (:meth:`_walk`) — and memo-
        # skipped tasks never pay for a copy at all.  Block-local
        # temporaries are filtered out (:meth:`keep_ids`); filtering by a
        # full liveness solve was tried and lost, the per-function
        # fixpoint costing more than the smaller states saved.
        o_keep = self.keep_ids(False)
        m_keep = self.keep_ids(True)
        return (
            {k: v for k, v in self.omega.items() if k in o_keep},
            {k: v for k, v in self.phi_env.items() if k in m_keep},
            dict(self.sig_o),
            dict(self.sig_m),
        )

    @staticmethod
    def _freeze(state: Tuple) -> Tuple:
        return tuple(frozenset(d.items()) for d in state)

    def _spawn(
        self,
        tasks: List[Tuple],
        o_succ: BasicBlock,
        m_succ: BasicBlock,
        o_pred: BasicBlock,
        m_pred: BasicBlock,
    ) -> None:
        tasks.append((o_succ, m_succ, o_pred, m_pred, self._snapshot()))

    # -- event pairing ------------------------------------------------------------
    def _mismatch(self, oev: Tuple, mev: Tuple, what: str) -> _Unknown:
        o_inst, m_inst = oev[1], mev[1]
        return _Unknown(
            self.diag(
                f"{what}: original {o_inst.opcode.name.lower()}"
                f" %{o_inst.name or '<anon>'} vs merged"
                f" {m_inst.opcode.name.lower()} %{m_inst.name or '<anon>'}",
                code="mismatch",
                instruction=m_inst.name or None,
            )
        )

    def _pair(self, oev: Tuple, mev: Tuple, tasks: List[Tuple]) -> bool:
        """Match one event pair; returns True when the path is fully proved."""
        okind, mkind = oev[0], mev[0]
        if okind != mkind:
            raise self._mismatch(oev, mev, "unmatched effectful instruction")
        o_inst, m_inst = oev[1], mev[1]
        if okind == "cross":
            # Both sides stand before a phi crossing; cut the segment so
            # the successor task resolves the phis simultaneously.
            self._spawn(tasks, oev[2], mev[2], self.o_block, self.m_block)
            return True
        if okind == "alloca":
            if str(o_inst.allocated_type) != str(m_inst.allocated_type):
                raise self._mismatch(oev, mev, "alloca type mismatch")
            self.bind_result("alloca", o_inst, m_inst)
            return False
        if okind == "load":
            if not _eq(oev[2], mev[2]):
                raise self._mismatch(oev, mev, "load address mismatch")
            self.bind_result("load", o_inst, m_inst)
            return False
        if okind == "store":
            if not _eq(oev[2], mev[2]) or not _eq(oev[3], mev[3]):
                raise self._mismatch(oev, mev, "store mismatch")
            return False
        if okind in ("call", "invoke"):
            if (
                not _eq(oev[2], mev[2])
                or len(oev[3]) != len(mev[3])
                or not all(_eq(a, b) for a, b in zip(oev[3], mev[3]))
            ):
                raise self._mismatch(oev, mev, f"{okind} argument mismatch")
            self.bind_result(okind, o_inst, m_inst)
            if okind == "invoke":
                self._spawn(
                    tasks,
                    o_inst.normal_dest,
                    m_inst.normal_dest,
                    self.o_block,
                    self.m_block,
                )
                self._spawn(
                    tasks,
                    o_inst.unwind_dest,
                    m_inst.unwind_dest,
                    self.o_block,
                    self.m_block,
                )
                return True
            return False
        if okind == "ret":
            if (o_inst.value is None) != (m_inst.value is None):
                raise self._mismatch(oev, mev, "return arity mismatch")
            if o_inst.value is None:
                return True
            o_val, m_val = oev[2], mev[2]
            if _eq(o_val, m_val):
                return True
            if (
                o_val is not None
                and m_val is not None
                and o_val[0] == "c"
                and m_val[0] == "c"
            ):
                raise _Refuted(
                    self.diag(
                        f"divergent return: original returns {o_val[2]}, "
                        f"merged returns {m_val[2]}",
                        code="ret-mismatch",
                        instruction=m_inst.name or None,
                    )
                )
            raise self._mismatch(oev, mev, "divergent return value")
        if okind == "br":
            if not _eq(oev[2], mev[2]):
                raise self._mismatch(oev, mev, "branch condition mismatch")
            o_succ, m_succ = o_inst.successors(), m_inst.successors()
            for o_s, m_s in zip(o_succ, m_succ):
                self._spawn(tasks, o_s, m_s, self.o_block, self.m_block)
            return True
        if okind == "switch":
            if not _eq(oev[2], mev[2]):
                raise self._mismatch(oev, mev, "switch value mismatch")
            o_cases = {c.value: b for c, b in o_inst.cases}
            m_cases = {c.value: b for c, b in m_inst.cases}
            if set(o_cases) != set(m_cases):
                raise self._mismatch(oev, mev, "switch case-set mismatch")
            self._spawn(tasks, o_inst.default, m_inst.default, self.o_block, self.m_block)
            for key in sorted(o_cases):
                self._spawn(tasks, o_cases[key], m_cases[key], self.o_block, self.m_block)
            return True
        if okind == "unreach":
            return True
        raise self._mismatch(oev, mev, "unmodelled event")  # pragma: no cover

    # -- one task -----------------------------------------------------------------
    def _walk(self, task: Tuple) -> List[Tuple]:
        o_block, m_block, o_pred, m_pred, state = task
        # Private copies: the snapshot dicts are shared with sibling tasks
        # and with the memo key already taken from them.
        self.omega = dict(state[0])
        self.phi_env = dict(state[1])
        self.sig_o = dict(state[2])
        self.sig_m = dict(state[3])
        self.resolutions = []
        self.o_block, self.m_block = o_block, m_block
        o_run = _Runner(self, self.original, o_block, self.omega, self.sig_o, False)
        m_run = _Runner(self, self.merged, m_block, self.phi_env, self.sig_m, True)
        # Simultaneous crossing: both sides read their incoming phi terms
        # from the shared pre-crossing state, then the original rebinds
        # (purging old generations) and the merged side matches.  Cross-
        # generation resolutions are only valid for this one match.
        o_inc = o_run.phi_incoming(o_pred)
        m_inc = m_run.phi_incoming(m_pred)
        rebound = o_run.apply_phis(o_inc)
        m_run.apply_phis(m_inc, rebound)
        self.resolutions = [r for r in self.resolutions if not r.cross_gen]
        tasks: List[Tuple] = []
        while True:
            oev = o_run.advance()
            self.o_block = o_run.block
            mev = m_run.advance()
            self.m_block = m_run.block
            if self._pair(oev, mev, tasks):
                return tasks

    # -- driver -------------------------------------------------------------------
    def _initial_state(self) -> Tuple:
        phi_env: Dict[int, Term] = {}
        margs = self.merged.args
        if margs:
            phi_env[id(margs[0])] = const_term_fid(self.fid)
        routed = set()
        for orig_index, slot in enumerate(self.param_map):
            if 0 <= slot < len(margs):
                phi_env[id(margs[slot])] = arg_term(orig_index)
                routed.add(slot)
        for slot, arg in enumerate(margs):
            if slot != 0 and slot not in routed:
                # Thunks pass undef here; the interpreter reads zero.
                phi_env[id(arg)] = zero_term(arg.type)
        return ({}, phi_env, {}, {})

    def run(self) -> SideReport:
        try:
            entry = (self.original.entry, self.merged.entry, None, None,
                     self._initial_state())
            pending: List[Tuple] = [entry]
            seen = set()
            while pending:
                task = pending.pop()
                key = (
                    id(task[0]),
                    id(task[1]),
                    None if task[2] is None else id(task[2]),
                    None if task[3] is None else id(task[3]),
                    self._freeze(task[4]),
                )
                if key in seen:
                    self.report.memo_hits += 1
                    continue
                seen.add(key)
                self.report.tasks += 1
                if self.report.tasks > self.caps.max_tasks:
                    raise _Unknown(self.diag("product-node budget exhausted", code="budget"))
                pending.extend(self._walk(task))
            self.report.verdict = "proved"
        except _Refuted as stop:
            self.report.verdict = "refuted"
            self.report.diagnostics.append(stop.diag)
        except _Unknown as stop:
            self.report.verdict = "unknown"
            self.report.diagnostics.append(
                Diagnostic(
                    checker=stop.diag.checker,
                    severity=Severity.WARNING,
                    message=stop.diag.message,
                    function=stop.diag.function,
                    block=stop.diag.block,
                    instruction=stop.diag.instruction,
                    code=stop.diag.code,
                )
            )
        except RecursionError:
            self.report.verdict = "unknown"
            self.report.diagnostics.append(
                Diagnostic(
                    checker=VALIDATE,
                    severity=Severity.WARNING,
                    message="term depth budget exhausted",
                    function=self.merged.name,
                    code=f"{VALIDATE}/budget",
                )
            )
        return self.report


def const_term_fid(fid: int) -> Term:
    """The ``i1`` discriminator constant the dispatch block folds on."""
    return ("c", "i1", fid)
