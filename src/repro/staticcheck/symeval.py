"""Symbolic terms for translation validation.

The product-CFG refinement checker (:mod:`repro.staticcheck.simrel`)
relates values of a merged function to values of one original by
*symbolic evaluation*: every SSA value is mapped to a **term** — a small,
hashable, structurally comparable tuple — and two values are considered
equal exactly when their terms are equal.  The vocabulary is chosen so
that equality of terms implies equality of runtime values under the
repro interpreter's semantics:

``("c", type_str, repr)``
    A constant.  ``undef`` and ``null`` normalize to the zero constant of
    their type because the interpreter evaluates both to zero; floats are
    keyed by ``repr`` so ``nan`` compares equal to itself and ``-0.0``
    stays distinct from ``0.0``.

``("a", index)``
    The *original* function's argument ``index``.  Merged arguments are
    translated through the parameter map at walk entry, so both sides
    speak in original argument indices.

``("fn", name)``
    A reference to a module function (call targets).

``("leaf", kind, serial)``
    An opaque value produced by an original-side instruction whose result
    the checker does not interpret: ``phi`` (abstracted at block entry),
    ``call``/``invoke`` results, ``load`` from unmodelled memory,
    escaping ``alloca`` addresses.  ``serial`` is the instruction's
    stable position in the original function.  A leaf names *the value
    most recently produced* by that instruction; the walker purges state
    entries that mention a leaf whenever the producing instruction
    (re-)executes, which is what keeps leaves fresh across loop
    iterations.

``(opcode, extra, operand_terms...)``
    A pure application: binary ops, comparisons (``extra`` is the
    predicate), casts (``extra`` is the destination type string),
    ``select`` and ``gep``.

Terms are *never* arithmetic-folded: the only evaluation rules are
``select`` on a constant condition and the normalization of
``undef``/``null`` to zero.  Less folding means fewer chances to prove
something false — an unmatched value can only yield ``unknown``, never a
false ``proved``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..ir.function import Function
from ..ir.instructions import (
    BINARY_OPCODES,
    CAST_OPCODES,
    Cast,
    FCmp,
    ICmp,
    Instruction,
    Opcode,
    Select,
)
from ..ir.values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    UndefValue,
    Value,
)

__all__ = [
    "Term",
    "const_term",
    "zero_term",
    "arg_term",
    "leaf_term",
    "fn_term",
    "const_int_value",
    "term_mentions",
    "is_pure",
    "pure_term",
    "Serials",
]

Term = Tuple[object, ...]

#: Opcodes whose result is a pure function of the operand values.
PURE_OPCODES = (
    frozenset(BINARY_OPCODES)
    | frozenset(CAST_OPCODES)
    | {Opcode.ICMP, Opcode.FCMP, Opcode.SELECT, Opcode.GEP}
)


def const_term(value: Value) -> Term:
    """Term of a constant operand (callers guarantee *value* is constant)."""
    if isinstance(value, ConstantInt):
        return ("c", str(value.type), value.value)
    if isinstance(value, ConstantFloat):
        return ("c", str(value.type), repr(value.value))
    if isinstance(value, (ConstantNull, UndefValue)):
        return zero_term(value.type)
    raise TypeError(f"not a modelled constant: {value!r}")


def zero_term(type_) -> Term:
    """The interpreter's default value of *type_* (undef / uninitialized)."""
    if type_.is_float:
        return ("c", str(type_), repr(0.0))
    return ("c", str(type_), 0)


def arg_term(index: int) -> Term:
    return ("a", index)


def leaf_term(kind: str, serial: int) -> Term:
    return ("leaf", kind, serial)


def fn_term(func: Function) -> Term:
    return ("fn", func.name)


def const_int_value(term: Term) -> Optional[int]:
    """The integer payload of a constant term, else ``None``."""
    if term[0] == "c" and isinstance(term[2], int):
        return term[2]
    return None


def term_mentions(term: Term, leaves: frozenset) -> bool:
    """Does *term* contain any of the given ``("leaf", ...)`` sub-terms?"""
    # Iterative: terms nest as deep as the walked segment is long, and
    # this predicate runs on every purge — recursion is measurably slower.
    stack = [term]
    while stack:
        t = stack.pop()
        head = t[0]
        if head == "leaf":
            if t in leaves:
                return True
        elif head not in ("c", "a", "fn"):
            for op in t[2:]:
                if isinstance(op, tuple):
                    stack.append(op)
    return False


def is_pure(inst: Instruction) -> bool:
    return inst.opcode in PURE_OPCODES


def pure_term(
    inst: Instruction, lookup: Callable[[Value], Optional[Term]]
) -> Optional[Term]:
    """Term of a pure instruction given operand terms via *lookup*.

    Returns ``None`` as soon as any operand term is unavailable — the
    caller treats the value as unknowable.  The single evaluation rule is
    ``select`` on a constant condition, needed so that merged-side
    ``select(funcId, b, a)`` operands collapse under specialization.  The
    fold is applied *before* the dead arm is looked up: under a concrete
    ``funcId`` the other specialization's operand is often unknowable
    (e.g. a reload only the other path stores), and it must not poison
    the selected value.
    """
    if inst.opcode == Opcode.SELECT:
        operands = list(inst.operands)
        cond = lookup(operands[0])
        if cond is None:
            return None
        picked = const_int_value(cond)
        if picked is not None:
            return lookup(operands[1 if picked else 2])
        arms = [lookup(op) for op in operands[1:]]
        if None in arms:
            return None
        return (int(Opcode.SELECT), None, cond, *arms)
    ops = []
    for op in inst.operands:
        term = lookup(op)
        if term is None:
            return None
        ops.append(term)
    if isinstance(inst, (ICmp, FCmp)):
        return (int(inst.opcode), int(inst.pred), *ops)
    if isinstance(inst, Cast):
        return (int(inst.opcode), str(inst.type), *ops)
    return (int(inst.opcode), None, *ops)


class Serials:
    """Stable per-function instruction serials (block-major order)."""

    def __init__(self, func: Function) -> None:
        self._by_id: Dict[int, int] = {}
        self.names: Dict[int, str] = {}
        serial = 0
        for block in func.blocks:
            for inst in block.instructions:
                self._by_id[id(inst)] = serial
                self.names[serial] = inst.name or f"#{serial}"
                serial += 1

    def of(self, inst: Instruction) -> int:
        return self._by_id[id(inst)]

    def name(self, serial: int) -> str:
        return self.names.get(serial, f"#{serial}")
