"""Static analysis over the repro IR: dataflow engine, checkers, linter.

The subsystem proves the §III-E merge invariants from the IR alone — no
interpreter, no inputs, no fuel — complementing the differential-execution
oracle (:mod:`repro.oracle`), which catches the same bugs dynamically.

Layers:

* :mod:`repro.staticcheck.dataflow` — generic worklist engine with
  reaching-stores and liveness instances.
* :mod:`repro.staticcheck.callgraph` — direct-call graph, SCCs, arity.
* :mod:`repro.staticcheck.checkers` — the checker registry
  (``ssa-dominance``, ``maybe-uninit``, ``unreachable-block``,
  ``dead-store``, ``type-consistency``, ``callgraph``).
* :mod:`repro.staticcheck.lint` — module/function linting plus the
  merge-safety linter used by the pass's ``--static-check`` gate.
* :mod:`repro.staticcheck.symeval` / :mod:`repro.staticcheck.simrel` /
  :mod:`repro.staticcheck.validate` — translation validation: a
  product-CFG refinement checker that symbolically proves a merged
  function equivalent to each original (``proved | refuted | unknown``),
  used by the pass's ``--validate`` gate and the fuzz campaign's third
  verifier.

Diagnostics are :class:`repro.diagnostics.Diagnostic` objects — the same
type the IR verifier raises — so ``repro lint --json`` serializes all of
them uniformly.
"""

from ..diagnostics import Diagnostic, Severity
from .callgraph import CallGraph, CallSite
from .checkers import (
    CheckerInfo,
    all_checkers,
    checker,
    dominance_diagnostics,
    get_checker,
    run_function_checks,
    run_module_checks,
)
from .dataflow import (
    DataflowProblem,
    DataflowResult,
    Liveness,
    ReachingStores,
    SlotLiveness,
    reset_solver_stats,
    solve,
    solver_stats,
    tracked_slots,
)
from .lint import (
    demote_reload_diagnostics,
    lint_commit,
    lint_function,
    lint_merge,
    lint_merged_function,
    lint_module,
)
from .simrel import Caps, ProductWalker, SideReport
from .validate import (
    PROVED,
    REFUTED,
    UNKNOWN,
    ValidationReport,
    specialized_demote_diagnostics,
    validate_merge,
)

__all__ = [
    "Diagnostic",
    "Severity",
    "CallGraph",
    "CallSite",
    "CheckerInfo",
    "all_checkers",
    "checker",
    "get_checker",
    "dominance_diagnostics",
    "run_function_checks",
    "run_module_checks",
    "DataflowProblem",
    "DataflowResult",
    "Liveness",
    "ReachingStores",
    "SlotLiveness",
    "solve",
    "tracked_slots",
    "solver_stats",
    "reset_solver_stats",
    "demote_reload_diagnostics",
    "lint_commit",
    "lint_function",
    "lint_merge",
    "lint_merged_function",
    "lint_module",
    "Caps",
    "ProductWalker",
    "SideReport",
    "PROVED",
    "REFUTED",
    "UNKNOWN",
    "ValidationReport",
    "validate_merge",
    "specialized_demote_diagnostics",
]
