"""Module call graph: direct call edges, recursion cycles, arity checks.

The graph is built once per module from ``call``/``invoke`` sites whose
callee operand is a :class:`~repro.ir.function.Function` (indirect calls
through non-function values have no static edge).  Strongly connected
components come from Tarjan's algorithm, iteratively, so deep thunk chains
cannot blow the Python stack; a function is *recursive* when its SCC has
more than one member or it calls itself directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.function import Function
from ..ir.instructions import Call, Instruction, Invoke
from ..ir.module import Module

__all__ = ["CallSite", "CallGraph"]


@dataclass(frozen=True)
class CallSite:
    """One direct call edge: *caller* invokes *callee* at *inst*."""

    caller: Function
    callee: Function
    inst: Instruction

    @property
    def num_args(self) -> int:
        return len(self.inst.args)  # type: ignore[attr-defined]


@dataclass
class CallGraph:
    """Direct-call graph over the functions of one module."""

    module: Module
    sites: List[CallSite] = field(default_factory=list)
    _callees: Dict[int, List[Function]] = field(default_factory=dict)
    _funcs: Dict[int, Function] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for func in self.module.functions:
            self._funcs[id(func)] = func
            self._callees.setdefault(id(func), [])
        for func in self.module.defined_functions():
            for block in func.blocks:
                for inst in block.instructions:
                    if not isinstance(inst, (Call, Invoke)):
                        continue
                    callee = inst.callee
                    if isinstance(callee, Function):
                        self.sites.append(CallSite(func, callee, inst))
                        self._callees[id(func)].append(callee)
                        self._funcs.setdefault(id(callee), callee)

    # -- queries -----------------------------------------------------------------
    def callees(self, func: Function) -> List[Function]:
        return list(self._callees.get(id(func), []))

    def call_sites_of(self, func: Function) -> List[CallSite]:
        return [s for s in self.sites if s.caller is func]

    def sccs(self) -> List[List[Function]]:
        """Strongly connected components, callees-first (reverse topological)."""
        index: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Dict[int, bool] = {}
        stack: List[Function] = []
        counter = [0]
        out: List[List[Function]] = []

        for root_id, root in self._funcs.items():
            if root_id in index:
                continue
            # Iterative Tarjan: (node, iterator-position) frames.
            work: List[Tuple[Function, int]] = [(root, 0)]
            while work:
                node, pos = work.pop()
                nid = id(node)
                if pos == 0:
                    index[nid] = lowlink[nid] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack[nid] = True
                succs = self._callees.get(nid, [])
                recursed = False
                for i in range(pos, len(succs)):
                    succ = succs[i]
                    sid = id(succ)
                    if sid not in index:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        recursed = True
                        break
                    if on_stack.get(sid):
                        lowlink[nid] = min(lowlink[nid], index[sid])
                if recursed:
                    continue
                if lowlink[nid] == index[nid]:
                    scc: List[Function] = []
                    while True:
                        top = stack.pop()
                        on_stack[id(top)] = False
                        scc.append(top)
                        if top is node:
                            break
                    out.append(scc)
                if work:
                    parent = work[-1][0]
                    lowlink[id(parent)] = min(lowlink[id(parent)], lowlink[nid])
        return out

    def recursive_groups(self) -> List[List[Function]]:
        """SCCs involved in recursion: size > 1, or a direct self-call."""
        groups = []
        for scc in self.sccs():
            if len(scc) > 1:
                groups.append(scc)
            else:
                only = scc[0]
                if any(c is only for c in self._callees.get(id(only), [])):
                    groups.append(scc)
        return groups

    def arity_mismatches(self) -> List[CallSite]:
        """Call sites whose argument count disagrees with the callee's type.

        Instruction constructors enforce this, but operand mutation (the
        thunk layer's call-site rewriting in particular) can break it after
        the fact — which is exactly when a static re-check earns its keep.
        """
        return [
            s for s in self.sites if s.num_args != len(s.callee.ftype.params)
        ]
