"""Generic forward/backward dataflow engine over ``analysis.cfg`` CFGs.

A :class:`DataflowProblem` supplies the lattice (``bottom`` / ``join``),
the per-instruction ``transfer`` function, the ``direction``, and an
optional per-edge hook (``edge``) for facts that live on CFG edges — the
SSA liveness of phi operands being the canonical example.  :func:`solve`
runs a deterministic worklist to the fixpoint over the *reachable* blocks
of a function and returns per-block in/out states, from which
:class:`DataflowResult` can reconstruct the state before or after any
single instruction.

Two classic instances are provided and unit-tested directly:

* :class:`ReachingStores` — forward may-analysis of which ``store``
  instructions reach each point, per non-escaping ``alloca`` slot.  This
  is the reaching-definitions instance that powers the
  maybe-uninitialized checker and the §III-E merge-safety linter.
* :class:`Liveness` — backward may-analysis of live SSA values, with phi
  uses attributed to the incoming edge (standard SSA liveness).

States are immutable ``frozenset`` values; the engine relies only on
``==`` to detect the fixpoint, so custom problems may use any hashable,
comparable state.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..analysis.cfg import reverse_postorder
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Alloca, Instruction, Load, Store
from ..ir.values import Argument, Value

__all__ = [
    "DataflowProblem",
    "DataflowResult",
    "solve",
    "solver_stats",
    "reset_solver_stats",
    "ReachingStores",
    "Liveness",
    "SlotLiveness",
    "tracked_slots",
]


# ---------------------------------------------------------------------------
# Solver telemetry: per-problem-class worklist statistics.
# ---------------------------------------------------------------------------

#: ``{problem class name: [solves, total iterations, max iterations,
#: total blocks]}`` — every :func:`solve` call lands here so the cost of
#: each analysis (and of new clients like the translation validator) is
#: visible in ``repro report`` via the obs metrics registry.
_SOLVER_STATS: Dict[str, List[int]] = {}
_SOLVER_LOCK = threading.Lock()


def _record_solve(problem: DataflowProblem, iterations: int, blocks: int) -> None:
    name = type(problem).__name__
    with _SOLVER_LOCK:
        row = _SOLVER_STATS.setdefault(name, [0, 0, 0, 0])
        row[0] += 1
        row[1] += iterations
        row[2] = max(row[2], iterations)
        row[3] += blocks


def solver_stats() -> Dict[str, object]:
    """Flat snapshot of the worklist counters, JSON/metrics-source ready.

    Keys are ``<Problem>.<stat>``; ``iterations_per_block`` is the mean
    number of worklist visits each reachable block needed to converge —
    near 1.0 means the analyses are running in almost one pass.
    """
    out: Dict[str, object] = {}
    with _SOLVER_LOCK:
        for name, (solves, iters, peak, blocks) in sorted(_SOLVER_STATS.items()):
            out[f"{name}.solves"] = solves
            out[f"{name}.iterations"] = iters
            out[f"{name}.max_iterations"] = peak
            if blocks:
                out[f"{name}.iterations_per_block"] = round(iters / blocks, 3)
    return out


def reset_solver_stats() -> None:
    with _SOLVER_LOCK:
        _SOLVER_STATS.clear()


class DataflowProblem:
    """Base class for dataflow problem definitions.

    Subclasses set ``direction`` to ``"forward"`` or ``"backward"`` and
    implement ``bottom``, ``join`` and ``transfer``.  ``boundary`` is the
    state at the entry (forward) or at every exit block (backward);
    ``edge`` transforms a state as it flows along one CFG edge.
    """

    direction: str = "forward"

    # -- lattice ----------------------------------------------------------------
    def bottom(self, func: Function) -> object:
        return frozenset()

    def boundary(self, func: Function) -> object:
        return self.bottom(func)

    def join(self, a: object, b: object) -> object:
        return a | b  # type: ignore[operator]

    # -- flow -------------------------------------------------------------------
    def transfer(self, inst: Instruction, state: object) -> object:
        raise NotImplementedError

    def edge(self, pred: BasicBlock, succ: BasicBlock, state: object) -> object:
        """State flowing along the edge ``pred -> succ``.

        Forward problems receive ``out[pred]``; backward problems receive
        ``in[succ]``.  The default is the identity.
        """
        return state

    # -- block-level folding ------------------------------------------------------
    def transfer_block(self, block: BasicBlock, state: object) -> object:
        insts = (
            block.instructions
            if self.direction == "forward"
            else reversed(block.instructions)
        )
        for inst in insts:
            state = self.transfer(inst, state)
        return state


@dataclass
class DataflowResult:
    """Fixpoint states of one :func:`solve` run."""

    problem: DataflowProblem
    function: Function
    in_states: Dict[int, object] = field(default_factory=dict)
    out_states: Dict[int, object] = field(default_factory=dict)
    iterations: int = 0

    def state_in(self, block: BasicBlock) -> object:
        """State at block entry (empty bottom for unreachable blocks)."""
        return self.in_states.get(id(block), self.problem.bottom(self.function))

    def state_out(self, block: BasicBlock) -> object:
        return self.out_states.get(id(block), self.problem.bottom(self.function))

    def state_before(self, inst: Instruction) -> object:
        """The state holding immediately before *inst* executes."""
        block = inst.parent
        assert block is not None
        if self.problem.direction == "forward":
            state = self.state_in(block)
            for other in block.instructions:
                if other is inst:
                    return state
                state = self.problem.transfer(other, state)
            raise ValueError("instruction not in its parent block")
        state = self.state_after(inst)
        return self.problem.transfer(inst, state)

    def state_after(self, inst: Instruction) -> object:
        """The state holding immediately after *inst* executes."""
        block = inst.parent
        assert block is not None
        if self.problem.direction == "forward":
            return self.problem.transfer(inst, self.state_before(inst))
        state = self.state_out(block)
        for other in reversed(block.instructions):
            if other is inst:
                return state
            state = self.problem.transfer(other, state)
        raise ValueError("instruction not in its parent block")


def solve(problem: DataflowProblem, func: Function) -> DataflowResult:
    """Worklist fixpoint of *problem* over the reachable blocks of *func*."""
    result = DataflowResult(problem, func)
    rpo = reverse_postorder(func)
    if not rpo:
        _record_solve(problem, 0, 0)
        return result
    if problem.direction not in ("forward", "backward"):
        raise ValueError(f"unknown dataflow direction {problem.direction!r}")
    forward = problem.direction == "forward"
    reachable = {id(b) for b in rpo}
    order = rpo if forward else list(reversed(rpo))
    index = {id(b): i for i, b in enumerate(order)}

    bottom = problem.bottom(func)
    for block in order:
        result.in_states[id(block)] = bottom
        result.out_states[id(block)] = bottom

    entry = func.entry
    # Deterministic worklist: seeded in processing order, re-queued on change.
    work = deque(order)
    queued = {id(b) for b in order}
    iterations = 0
    while work:
        block = work.popleft()
        queued.discard(id(block))
        iterations += 1
        if forward:
            if block is entry:
                in_state = problem.boundary(func)
            else:
                preds = [p for p in block.predecessors() if id(p) in reachable]
                in_state = bottom
                for pred in preds:
                    in_state = problem.join(
                        in_state,
                        problem.edge(pred, block, result.out_states[id(pred)]),
                    )
            result.in_states[id(block)] = in_state
            out_state = problem.transfer_block(block, in_state)
            if out_state != result.out_states[id(block)]:
                result.out_states[id(block)] = out_state
                for succ in block.successors():
                    if id(succ) in reachable and id(succ) not in queued:
                        queued.add(id(succ))
                        work.append(succ)
        else:
            succs = [s for s in block.successors() if id(s) in reachable]
            if not succs:
                out_state = problem.boundary(func)
            else:
                out_state = bottom
                for succ in succs:
                    out_state = problem.join(
                        out_state,
                        problem.edge(block, succ, result.in_states[id(succ)]),
                    )
            result.out_states[id(block)] = out_state
            in_state = problem.transfer_block(block, out_state)
            if in_state != result.in_states[id(block)]:
                result.in_states[id(block)] = in_state
                for pred in block.predecessors():
                    if id(pred) in reachable and id(pred) not in queued:
                        queued.add(id(pred))
                        work.append(pred)
    result.iterations = iterations
    _record_solve(problem, iterations, len(rpo))
    return result


# ---------------------------------------------------------------------------
# Memory-slot helpers shared by the reaching-stores / slot-liveness instances.
# ---------------------------------------------------------------------------


def tracked_slots(func: Function) -> Dict[int, Alloca]:
    """Non-escaping ``alloca`` slots of *func*, keyed by ``id``.

    A slot is tracked only when every use is a direct ``load`` from it or a
    direct ``store`` *to* it (pointer operand).  Any other use — a GEP, a
    call argument, storing the address itself — makes the slot's contents
    unknowable to a purely local analysis, so it is excluded rather than
    risking a false positive.
    """
    slots: Dict[int, Alloca] = {}
    for block in func.blocks:
        for inst in block.instructions:
            if not isinstance(inst, Alloca):
                continue
            escaped = False
            for user, idx in inst.uses():
                if isinstance(user, Load) and idx == 0:
                    continue
                if isinstance(user, Store) and idx == 1:
                    continue
                escaped = True
                break
            if not escaped:
                slots[id(inst)] = inst
    return slots


def _direct_slot(pointer: Value, slots: Dict[int, Alloca]) -> Optional[Alloca]:
    if isinstance(pointer, Alloca) and id(pointer) in slots:
        return pointer
    return None


class ReachingStores(DataflowProblem):
    """Forward may-analysis: which stores to tracked slots reach each point.

    State: ``frozenset`` of ``id(store)``.  A store to a tracked slot
    *kills* every other store to the same slot (strong update — the slot is
    a whole scalar) and *generates* itself.  Stores through untracked
    pointers change nothing because untracked slots are never queried.
    """

    direction = "forward"

    def __init__(self, func: Function) -> None:
        self.function = func
        self.slots = tracked_slots(func)
        # store id -> slot id, precomputed for the kill sets.
        self.slot_of_store: Dict[int, int] = {}
        self._stores: Dict[int, Store] = {}
        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, Store):
                    slot = _direct_slot(inst.pointer, self.slots)
                    if slot is not None:
                        self.slot_of_store[id(inst)] = id(slot)
                        self._stores[id(inst)] = inst

    def transfer(self, inst: Instruction, state: object) -> object:
        sid = id(inst)
        slot_id = self.slot_of_store.get(sid)
        if slot_id is None:
            return state
        kept = frozenset(
            d for d in state if self.slot_of_store[d] != slot_id  # type: ignore[union-attr]
        )
        return kept | {sid}

    # -- queries -----------------------------------------------------------------
    def slot_of_load(self, load: Load) -> Optional[Alloca]:
        return _direct_slot(load.pointer, self.slots)

    def reaching_stores(
        self, result: DataflowResult, load: Load
    ) -> Optional[List[Store]]:
        """Stores that may reach *load*; ``None`` if its slot is untracked."""
        slot = self.slot_of_load(load)
        if slot is None:
            return None
        state: FrozenSet[int] = result.state_before(load)  # type: ignore[assignment]
        return [
            self._stores[d] for d in state if self.slot_of_store[d] == id(slot)
        ]


class Liveness(DataflowProblem):
    """Backward may-analysis of live SSA values (instructions + arguments).

    Phi uses are attributed to the incoming edge via :meth:`edge` — the
    value is live at the *end of the predecessor*, not inside the phi's own
    block — and phi definitions are killed on the same edge, which is what
    makes this exact on loops.
    """

    direction = "backward"

    def transfer(self, inst: Instruction, state: object) -> object:
        live = set(state)  # type: ignore[arg-type]
        live.discard(id(inst))
        if not inst.is_phi:
            for op in inst.operands:
                if isinstance(op, (Instruction, Argument)):
                    live.add(id(op))
        return frozenset(live)

    def edge(self, pred: BasicBlock, succ: BasicBlock, state: object) -> object:
        live = set(state)  # type: ignore[arg-type]
        for phi in succ.phis():
            live.discard(id(phi))
        for phi in succ.phis():
            value = phi.incoming_for(pred)
            if isinstance(value, (Instruction, Argument)):
                live.add(id(value))
        return frozenset(live)


class SlotLiveness(DataflowProblem):
    """Backward may-analysis: which tracked slots may still be read.

    A slot is live when some path may execute a ``load`` of it before the
    next ``store`` to it.  Tracked slots cannot escape, so nothing is live
    at function exit; a store after which its slot is dead is a dead store.
    """

    direction = "backward"

    def __init__(self, func: Function) -> None:
        self.function = func
        self.slots = tracked_slots(func)

    def transfer(self, inst: Instruction, state: object) -> object:
        if isinstance(inst, Load):
            slot = _direct_slot(inst.pointer, self.slots)
            if slot is not None:
                return state | {id(slot)}  # type: ignore[operator]
        elif isinstance(inst, Store):
            slot = _direct_slot(inst.pointer, self.slots)
            if slot is not None:
                return frozenset(s for s in state if s != id(slot))  # type: ignore[union-attr]
        return state
