"""Checker registry and the built-in IR checkers.

Each checker is a named rule that inspects one function (scope
``"function"``) or a whole module (scope ``"module"``) and returns
:class:`~repro.diagnostics.Diagnostic` objects.  Registration order is the
execution order, which keeps ``repro lint`` output stable.

Severity policy: a checker reports ERROR only for properties whose
violation is a miscompile or undefined behaviour (dominance, type rules,
call arity); everything that is merely suspicious — an unreachable block,
a dead store, a load no store reaches — is a WARNING, because legitimate
IR can contain it (the interpreter zero-initializes memory, so an
uninitialized read is deterministic here).  The merge-safety linter in
:mod:`repro.staticcheck.lint` escalates the uninitialized-read warning to
an ERROR for the demotion slots that SSA repair itself introduced, where a
reaching store is a hard invariant of a correct repair (§III-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.cfg import reachable_blocks
from ..diagnostics import Diagnostic, Severity
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    Branch,
    Call,
    Instruction,
    Invoke,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.module import Module
from ..ir.types import I1, FunctionType
from .callgraph import CallGraph
from .dataflow import ReachingStores, SlotLiveness, solve

__all__ = [
    "CheckerInfo",
    "checker",
    "all_checkers",
    "get_checker",
    "run_function_checks",
    "run_module_checks",
    "dominance_diagnostics",
    "uninitialized_loads",
]


@dataclass(frozen=True)
class CheckerInfo:
    """One registered checker: its id, scope, description and entry point."""

    name: str
    scope: str  # "function" | "module"
    description: str
    run: Callable[..., List[Diagnostic]]


_REGISTRY: Dict[str, CheckerInfo] = {}


def checker(name: str, scope: str, description: str):
    """Register a checker function under *name*."""
    if scope not in ("function", "module"):
        raise ValueError(f"invalid checker scope {scope!r}")

    def wrap(fn: Callable[..., List[Diagnostic]]):
        if name in _REGISTRY:
            raise ValueError(f"duplicate checker {name!r}")
        _REGISTRY[name] = CheckerInfo(name, scope, description, fn)
        return fn

    return wrap


def all_checkers() -> List[CheckerInfo]:
    return list(_REGISTRY.values())


def get_checker(name: str) -> CheckerInfo:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown checker {name!r} (known: {known})") from None


def _select(names: Optional[Sequence[str]]) -> List[CheckerInfo]:
    if names is None:
        return all_checkers()
    return [get_checker(n) for n in names]


def run_function_checks(
    func: Function, names: Optional[Sequence[str]] = None
) -> List[Diagnostic]:
    """Run the function-scope checkers (all, or just *names*) on *func*."""
    diags: List[Diagnostic] = []
    if func.is_declaration:
        return diags
    for info in _select(names):
        if info.scope == "function":
            diags.extend(info.run(func))
    return diags


def run_module_checks(
    module: Module, names: Optional[Sequence[str]] = None
) -> List[Diagnostic]:
    """Run all selected checkers over *module* (functions, then module scope)."""
    diags: List[Diagnostic] = []
    infos = _select(names)
    for func in module.defined_functions():
        for info in infos:
            if info.scope == "function":
                diags.extend(info.run(func))
    for info in infos:
        if info.scope == "module":
            diags.extend(info.run(module))
    return diags


def _diag(
    name: str,
    severity: Severity,
    message: str,
    func: Optional[Function] = None,
    block: Optional[BasicBlock] = None,
    inst: Optional[Instruction] = None,
    code: Optional[str] = None,
) -> Diagnostic:
    return Diagnostic(
        checker=name,
        severity=severity,
        message=message,
        function=func.name if func is not None else None,
        block=block.name if block is not None else None,
        instruction=(inst.name or None) if inst is not None else None,
        code=f"{name}/{code}" if code is not None else None,
    )


# ---------------------------------------------------------------------------
# ssa-dominance — the rule the §III-E bugs break.  Shared with the verifier:
# ``verify_function`` delegates its dominance phase to this function so the
# two can never disagree.
# ---------------------------------------------------------------------------


def dominance_diagnostics(func: Function, dt=None) -> List[Diagnostic]:
    """Strict SSA-dominance violations in *func* (reachable code only)."""
    from ..analysis.dominators import DominatorTree

    if dt is None:
        dt = DominatorTree(func)
    diags: List[Diagnostic] = []
    for block in func.blocks:
        if not dt.is_reachable(block):
            continue  # unreachable code is exempt from dominance rules
        for inst in block.instructions:
            for idx, op in enumerate(inst.operands):
                if inst.is_phi and idx % 2 == 1:
                    continue  # incoming-block slots
                if not isinstance(op, Instruction):
                    continue
                if op.parent is not None and not dt.is_reachable(op.parent):
                    continue
                if not dt.dominates(op, inst, idx):
                    diags.append(
                        _diag(
                            "ssa-dominance",
                            Severity.ERROR,
                            f"use of %{op.name} is not dominated by its definition",
                            func,
                            block,
                            inst,
                            code="use-before-def",
                        )
                    )
    return diags


@checker("ssa-dominance", "function", "every use is dominated by its definition")
def _check_dominance(func: Function) -> List[Diagnostic]:
    return dominance_diagnostics(func)


# ---------------------------------------------------------------------------
# maybe-uninit — reaching-definitions instance of the dataflow engine.
# ---------------------------------------------------------------------------


def uninitialized_loads(func: Function):
    """Loads from tracked stack slots that no store may reach.

    Returns ``(problem, [(load, slot), ...])`` so callers (the checker here,
    the merge-safety linter) can share one dataflow solve.
    """
    problem = ReachingStores(func)
    found = []
    if not problem.slots:
        return problem, found
    result = solve(problem, func)
    reachable = reachable_blocks(func)
    for block in func.blocks:
        if id(block) not in reachable:
            continue
        for inst in block.instructions:
            if not isinstance(inst, Load):
                continue
            reaching = problem.reaching_stores(result, inst)
            if reaching is not None and not reaching:
                found.append((inst, problem.slot_of_load(inst)))
    return problem, found


@checker(
    "maybe-uninit",
    "function",
    "load from a stack slot that no store may reach",
)
def _check_maybe_uninit(func: Function) -> List[Diagnostic]:
    _, loads = uninitialized_loads(func)
    return [
        _diag(
            "maybe-uninit",
            Severity.WARNING,
            f"load from %{slot.name} is reached by no store "
            "(reads uninitialized memory)",
            func,
            load.parent,
            load,
            code="no-reaching-store",
        )
        for load, slot in loads
    ]


# ---------------------------------------------------------------------------
# unreachable-block
# ---------------------------------------------------------------------------


@checker("unreachable-block", "function", "basic block unreachable from the entry")
def _check_unreachable(func: Function) -> List[Diagnostic]:
    reachable = reachable_blocks(func)
    return [
        _diag(
            "unreachable-block",
            Severity.WARNING,
            f"block %{block.name} is unreachable from the entry",
            func,
            block,
            code="dead-block",
        )
        for block in func.blocks
        if id(block) not in reachable
    ]


# ---------------------------------------------------------------------------
# dead-store — backward slot-liveness instance of the dataflow engine.
# ---------------------------------------------------------------------------


@checker("dead-store", "function", "store to a stack slot that is never read")
def _check_dead_store(func: Function) -> List[Diagnostic]:
    problem = SlotLiveness(func)
    if not problem.slots:
        return []
    result = solve(problem, func)
    reachable = reachable_blocks(func)
    diags: List[Diagnostic] = []
    for block in func.blocks:
        if id(block) not in reachable:
            continue
        for inst in block.instructions:
            if not isinstance(inst, Store):
                continue
            slot = inst.pointer
            if id(slot) not in problem.slots:
                continue
            if id(slot) not in result.state_after(inst):  # type: ignore[operator]
                diags.append(
                    _diag(
                        "dead-store",
                        Severity.WARNING,
                        f"store to %{slot.name} is never read",
                        func,
                        block,
                        inst,
                        code="never-read",
                    )
                )
    return diags


# ---------------------------------------------------------------------------
# type-consistency — re-checks the constructor-enforced typing rules, which
# operand mutation (set_operand, call-site rewriting) can silently break.
# ---------------------------------------------------------------------------


def _callee_ftype(callee) -> Optional[FunctionType]:
    ftype = callee.type
    if ftype.is_pointer:
        ftype = ftype.pointee
    return ftype if isinstance(ftype, FunctionType) else None


@checker(
    "type-consistency",
    "function",
    "operand/result types agree across calls, phis, returns and memory ops",
)
def _check_types(func: Function) -> List[Diagnostic]:
    diags: List[Diagnostic] = []

    def bad(message: str, block: BasicBlock, inst: Instruction, code: str) -> None:
        diags.append(
            _diag(
                "type-consistency", Severity.ERROR, message, func, block, inst,
                code=code,
            )
        )

    for block in func.blocks:
        for inst in block.instructions:
            if isinstance(inst, (Call, Invoke)):
                ftype = _callee_ftype(inst.callee)
                if ftype is None:
                    bad(f"callee is not a function: {inst.callee.type}", block, inst, "bad-callee")
                    continue
                args = inst.args
                if len(args) != len(ftype.params):
                    bad(
                        f"call passes {len(args)} arguments, callee type "
                        f"expects {len(ftype.params)}",
                        block,
                        inst,
                        "call-arity",
                    )
                else:
                    for i, (arg, param) in enumerate(zip(args, ftype.params)):
                        if arg.type is not param:
                            bad(
                                f"call argument {i} has type {arg.type}, "
                                f"expected {param}",
                                block,
                                inst,
                                "call-arg-type",
                            )
                if inst.type is not ftype.ret:
                    bad(
                        f"call result type {inst.type} != callee return "
                        f"type {ftype.ret}",
                        block,
                        inst,
                        "call-ret-type",
                    )
            elif isinstance(inst, Phi):
                for value, pred in inst.incoming:
                    if value.type is not inst.type:
                        bad(
                            f"phi incoming value from %{pred.name} has type "
                            f"{value.type}, phi is {inst.type}",
                            block,
                            inst,
                            "phi-incoming-type",
                        )
            elif isinstance(inst, Ret):
                if func.return_type.is_void:
                    if inst.value is not None:
                        bad("ret with value in void function", block, inst, "ret-arity")
                elif inst.value is None:
                    bad("ret void in non-void function", block, inst, "ret-arity")
                elif inst.value.type is not func.return_type:
                    bad(
                        f"ret type {inst.value.type} != {func.return_type}",
                        block,
                        inst,
                        "ret-type",
                    )
            elif isinstance(inst, Store):
                ptype = inst.pointer.type
                if not ptype.is_pointer:
                    bad(f"store through non-pointer {ptype}", block, inst, "memory-type")
                elif inst.value.type is not ptype.pointee:
                    bad(
                        f"store of {inst.value.type} into {ptype}",
                        block,
                        inst,
                        "memory-type",
                    )
            elif isinstance(inst, Load):
                ptype = inst.pointer.type
                if not ptype.is_pointer:
                    bad(f"load through non-pointer {ptype}", block, inst, "memory-type")
                elif inst.type is not ptype.pointee:
                    bad(f"load of {inst.type} from {ptype}", block, inst, "memory-type")
            elif isinstance(inst, Select):
                if inst.condition.type is not I1:
                    bad("select condition is not i1", block, inst, "cond-type")
            elif isinstance(inst, Branch):
                if inst.is_conditional and inst.condition.type is not I1:
                    bad("branch condition is not i1", block, inst, "cond-type")
            elif inst.is_binary:
                lhs, rhs = inst.operand(0), inst.operand(1)
                if lhs.type is not rhs.type or lhs.type is not inst.type:
                    bad(
                        f"binary operand types {lhs.type}/{rhs.type} do not "
                        f"match result {inst.type}",
                        block,
                        inst,
                        "binary-type",
                    )
    return diags


# ---------------------------------------------------------------------------
# callgraph — module scope: direct-call arity and recursion structure.
# ---------------------------------------------------------------------------


@checker(
    "callgraph",
    "module",
    "call-graph consistency: direct-call arity, recursion cycles",
)
def _check_callgraph(module: Module) -> List[Diagnostic]:
    graph = CallGraph(module)
    diags: List[Diagnostic] = []
    for site in graph.arity_mismatches():
        diags.append(
            _diag(
                "callgraph",
                Severity.ERROR,
                f"call to @{site.callee.name} passes {site.num_args} "
                f"arguments, @{site.callee.name} takes "
                f"{len(site.callee.ftype.params)}",
                site.caller,
                site.inst.parent,
                site.inst,
                code="arity-mismatch",
            )
        )
    for group in graph.recursive_groups():
        names = " -> ".join(f"@{f.name}" for f in group)
        if len(group) == 1:
            message = f"@{group[0].name} is directly recursive"
        else:
            message = f"recursion cycle: {names}"
        diags.append(
            _diag("callgraph", Severity.INFO, message, func=group[0], code="recursive")
        )
    return diags
