"""Profile-guided function merging (paper Section IV-F, future work).

The paper observes that merging slows programs down only when *executed*
code got merged, and that "a more performance-aware implementation of
function merging would use profiling information to influence candidate
selection towards infrequently used functions.  This would eliminate all or
almost all performance overhead."

This module implements that proposal:

* :func:`profile_module` collects per-function dynamic call counts by
  running the module's entry point under the reference interpreter;
* :class:`HotnessFilter` classifies functions as hot/cold by a call-count
  percentile;
* :class:`ProfileGuidedPass` wraps :class:`FunctionMergingPass` so hot
  functions are excluded from merging entirely — cold-with-cold merges keep
  (almost) all of the size reduction while hot paths stay untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..ir.function import Function
from ..ir.interp import Interpreter
from ..ir.module import Module
from .pass_ import FunctionMergingPass, PassConfig
from .report import MergeReport
from ..search.pairing import Ranker

__all__ = ["profile_module", "HotnessFilter", "ProfileGuidedPass"]


def profile_module(
    module: Module,
    entry: str = "driver",
    inputs: Sequence[int] = (1, 5, 11),
    fuel: int = 10_000_000,
) -> Dict[str, int]:
    """Dynamic call counts per function, from running *entry* on *inputs*."""
    func = module.get_function(entry)
    if func is None or func.is_declaration:
        raise ValueError(f"no entry point @{entry} to profile")
    interp = Interpreter(fuel=fuel)
    for x in inputs:
        interp.run(func, [x])
    counts = dict(interp.call_counts)
    counts.pop(entry, None)
    return counts


@dataclass
class HotnessFilter:
    """Classify functions by dynamic call count.

    ``hot_fraction`` — the top fraction of *called* functions (by count)
    treated as hot.  Functions never called are always cold.
    """

    profile: Dict[str, int]
    hot_fraction: float = 0.2

    def __post_init__(self) -> None:
        called = sorted(
            (count for count in self.profile.values() if count > 0), reverse=True
        )
        if not called or self.hot_fraction <= 0:
            self._cutoff = float("inf")
        else:
            index = max(0, min(len(called) - 1, int(len(called) * self.hot_fraction) - 1))
            self._cutoff = called[index]

    def is_hot(self, func: Function) -> bool:
        return self.profile.get(func.name, 0) >= self._cutoff

    def cold_functions(self, module: Module) -> List[Function]:
        return [f for f in module.defined_functions() if not self.is_hot(f)]


class ProfileGuidedPass:
    """Function merging restricted to cold code.

    Hot functions are withheld from the ranker, so they can be neither a
    merge candidate nor a merge partner; everything else proceeds exactly
    as the wrapped pass would.
    """

    def __init__(
        self,
        ranker: Ranker,
        hotness: HotnessFilter,
        config: PassConfig = PassConfig(),
    ) -> None:
        self.hotness = hotness
        self._pass = FunctionMergingPass(ranker, config)

    def run(self, module: Module) -> MergeReport:
        report = self._pass.run(module, functions=self.hotness.cold_functions(module))
        report.strategy = f"{report.strategy}+pgo"
        return report
